// Encoded biological sequences and lightweight views over them.
//
// A Sequence owns its residue codes; SequenceView is a non-owning window
// (used pervasively: inverted-index blocks, subqueries, and extension
// regions are all views). Sequences carry a numeric id assigned by the
// SequenceStore they live in, plus the free-text FASTA description.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/sequence/alphabet.h"

namespace mendel::seq {

// Stable identifier of a reference sequence within one database.
using SequenceId = std::uint32_t;
inline constexpr SequenceId kInvalidSequenceId = 0xffffffffu;

using CodeSpan = std::span<const Code>;

class Sequence {
 public:
  Sequence() = default;
  Sequence(Alphabet alphabet, std::string name, std::vector<Code> codes)
      : alphabet_(alphabet), name_(std::move(name)), codes_(std::move(codes)) {}

  // Parses an ASCII residue string (throws ParseError on bad characters).
  static Sequence from_string(Alphabet alphabet, std::string name,
                              std::string_view residues);

  Alphabet alphabet() const { return alphabet_; }
  const std::string& name() const { return name_; }
  SequenceId id() const { return id_; }
  void set_id(SequenceId id) { id_ = id; }

  std::size_t size() const { return codes_.size(); }
  bool empty() const { return codes_.empty(); }
  Code operator[](std::size_t i) const { return codes_[i]; }
  CodeSpan codes() const { return codes_; }
  std::vector<Code>& mutable_codes() { return codes_; }

  // Window [start, start+len); clamped precondition: must lie inside the
  // sequence (throws InvalidArgument otherwise).
  CodeSpan window(std::size_t start, std::size_t len) const;

  // Renders back to uppercase ASCII letters.
  std::string to_string() const;

  bool operator==(const Sequence& other) const {
    return alphabet_ == other.alphabet_ && codes_ == other.codes_;
  }

 private:
  Alphabet alphabet_ = Alphabet::kProtein;
  SequenceId id_ = kInvalidSequenceId;
  std::string name_;
  std::vector<Code> codes_;
};

// Renders any code span to ASCII for diagnostics.
std::string to_string(Alphabet alphabet, CodeSpan codes);

// Parses ASCII residues into codes without wrapping in a Sequence.
std::vector<Code> encode_string(Alphabet alphabet, std::string_view residues);

// An in-memory, append-only collection of reference sequences with id
// assignment. This is the "database" handed to both Mendel and the BLAST
// baseline; the distributed SequenceRepository in src/mendel partitions one
// of these across storage nodes.
class SequenceStore {
 public:
  explicit SequenceStore(Alphabet alphabet) : alphabet_(alphabet) {}

  Alphabet alphabet() const { return alphabet_; }

  // Appends and assigns the next id; returns it. Rejects sequences of a
  // different alphabet.
  SequenceId add(Sequence sequence);

  std::size_t size() const { return sequences_.size(); }
  bool empty() const { return sequences_.empty(); }
  const Sequence& at(SequenceId id) const;
  bool contains(SequenceId id) const { return id < sequences_.size(); }

  // Total residues across all sequences (the "database size" axis of
  // Fig 6b).
  std::size_t total_residues() const { return total_residues_; }

  auto begin() const { return sequences_.begin(); }
  auto end() const { return sequences_.end(); }

 private:
  Alphabet alphabet_;
  std::vector<Sequence> sequences_;
  std::size_t total_residues_ = 0;
};

}  // namespace mendel::seq
