// Biological alphabets and residue encoding.
//
// Mendel stores every sequence as a vector of small integer codes rather
// than ASCII. The protein code order is the classic BLOSUM publication
// order (A R N D C Q E G H I L K M F P S T W Y V, then the ambiguity codes
// B Z X and the stop '*'), which lets the scoring-matrix tables in
// src/scoring be transcribed verbatim from the literature.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace mendel::seq {

enum class Alphabet : std::uint8_t { kDna = 0, kProtein = 1 };

// Residue codes are uint8_t indices into the alphabet's symbol table.
using Code = std::uint8_t;

// --- DNA ------------------------------------------------------------------
// A C G T plus the ambiguity base N. Lowercase input is accepted and
// upcased; any other IUPAC ambiguity code maps to N.
inline constexpr std::size_t kDnaCardinality = 5;  // A C G T N
inline constexpr Code kDnaA = 0, kDnaC = 1, kDnaG = 2, kDnaT = 3, kDnaN = 4;

// --- Protein ---------------------------------------------------------------
// 20 standard amino acids in BLOSUM order, then B (Asx), Z (Glx),
// X (unknown), * (stop).
inline constexpr std::size_t kProteinCardinality = 24;
inline constexpr std::string_view kProteinSymbols = "ARNDCQEGHILKMFPSTWYVBZX*";

// Number of distinct codes for an alphabet (including ambiguity codes).
std::size_t cardinality(Alphabet a);

// Number of *unambiguous* residues (4 for DNA, 20 for protein); generators
// sample only from this prefix of the code space.
std::size_t core_cardinality(Alphabet a);

// Letter -> code. Throws mendel::ParseError for characters outside the
// alphabet (whitespace and digits included; FASTA parsing strips those
// before calling).
Code encode(Alphabet a, char c);

// Code -> canonical uppercase letter. Throws mendel::InvalidArgument for
// out-of-range codes.
char decode(Alphabet a, Code code);

// True if `c` encodes successfully in alphabet `a`.
bool is_valid(Alphabet a, char c);

// Human-readable alphabet name ("dna" / "protein").
std::string_view name(Alphabet a);

// UniProtKB/Swiss-Prot September 2015 amino-acid background frequencies
// (fractions summing to ~1), indexed by protein code 0..19. Used by the
// workload generator (realistic composition; Leu ~9.7%, Trp ~1.1% — the
// nine-fold spread the paper §III-B cites) and by the Karlin–Altschul
// statistics in src/scoring.
const std::array<double, 20>& protein_background_frequencies();

// Uniform DNA background (0.25 each), indexed by DNA code 0..3.
const std::array<double, 4>& dna_background_frequencies();

}  // namespace mendel::seq
