// DNA → protein translation (standard genetic code) and six-frame
// translation, enabling blastx-style searches: nucleotide reads matched
// against a protein reference database (see examples/translated_search.cpp).
#pragma once

#include <array>
#include <vector>

#include "src/sequence/sequence.h"

namespace mendel::seq {

// Reverse complement of a DNA code sequence (N maps to N).
std::vector<Code> reverse_complement(CodeSpan dna);

// Translates one reading frame (offset 0..2) of `dna`; trailing partial
// codons are dropped. Codons containing N translate to X; stop codons
// translate to '*'. Throws InvalidArgument for frame > 2.
std::vector<Code> translate(CodeSpan dna, std::size_t frame);

// One of the six reading frames of a nucleotide sequence.
struct TranslatedFrame {
  // +1, +2, +3 forward; -1, -2, -3 on the reverse complement (blastx frame
  // numbering).
  int frame = 1;
  std::vector<Code> protein;
};

// All six frames (empty frames from very short inputs are omitted).
std::vector<TranslatedFrame> six_frame_translations(CodeSpan dna);

// The standard genetic code: codon index (16*b1 + 4*b2 + b3, bases in
// A,C,G,T code order) -> protein code. Exposed for tests.
const std::array<Code, 64>& standard_genetic_code();

}  // namespace mendel::seq
