#include "src/sequence/translate.h"

#include <string_view>

#include "src/common/error.h"

namespace mendel::seq {

namespace {

std::array<Code, 64> build_genetic_code() {
  // (codon, amino acid) pairs of the standard code.
  struct Entry {
    const char* codon;
    char aa;
  };
  static constexpr Entry kTable[] = {
      {"TTT", 'F'}, {"TTC", 'F'}, {"TTA", 'L'}, {"TTG", 'L'},
      {"CTT", 'L'}, {"CTC", 'L'}, {"CTA", 'L'}, {"CTG", 'L'},
      {"ATT", 'I'}, {"ATC", 'I'}, {"ATA", 'I'}, {"ATG", 'M'},
      {"GTT", 'V'}, {"GTC", 'V'}, {"GTA", 'V'}, {"GTG", 'V'},
      {"TCT", 'S'}, {"TCC", 'S'}, {"TCA", 'S'}, {"TCG", 'S'},
      {"CCT", 'P'}, {"CCC", 'P'}, {"CCA", 'P'}, {"CCG", 'P'},
      {"ACT", 'T'}, {"ACC", 'T'}, {"ACA", 'T'}, {"ACG", 'T'},
      {"GCT", 'A'}, {"GCC", 'A'}, {"GCA", 'A'}, {"GCG", 'A'},
      {"TAT", 'Y'}, {"TAC", 'Y'}, {"TAA", '*'}, {"TAG", '*'},
      {"CAT", 'H'}, {"CAC", 'H'}, {"CAA", 'Q'}, {"CAG", 'Q'},
      {"AAT", 'N'}, {"AAC", 'N'}, {"AAA", 'K'}, {"AAG", 'K'},
      {"GAT", 'D'}, {"GAC", 'D'}, {"GAA", 'E'}, {"GAG", 'E'},
      {"TGT", 'C'}, {"TGC", 'C'}, {"TGA", '*'}, {"TGG", 'W'},
      {"CGT", 'R'}, {"CGC", 'R'}, {"CGA", 'R'}, {"CGG", 'R'},
      {"AGT", 'S'}, {"AGC", 'S'}, {"AGA", 'R'}, {"AGG", 'R'},
      {"GGT", 'G'}, {"GGC", 'G'}, {"GGA", 'G'}, {"GGG", 'G'},
  };
  std::array<Code, 64> code{};
  for (const Entry& entry : kTable) {
    const std::string_view codon(entry.codon);
    const std::size_t index =
        16 * encode(Alphabet::kDna, codon[0]) +
        4 * encode(Alphabet::kDna, codon[1]) +
        encode(Alphabet::kDna, codon[2]);
    code[index] = encode(Alphabet::kProtein, entry.aa);
  }
  return code;
}

}  // namespace

const std::array<Code, 64>& standard_genetic_code() {
  static const std::array<Code, 64> code = build_genetic_code();
  return code;
}

std::vector<Code> reverse_complement(CodeSpan dna) {
  std::vector<Code> out;
  out.reserve(dna.size());
  for (std::size_t i = dna.size(); i-- > 0;) {
    switch (dna[i]) {
      case kDnaA:
        out.push_back(kDnaT);
        break;
      case kDnaC:
        out.push_back(kDnaG);
        break;
      case kDnaG:
        out.push_back(kDnaC);
        break;
      case kDnaT:
        out.push_back(kDnaA);
        break;
      default:
        out.push_back(kDnaN);
        break;
    }
  }
  return out;
}

std::vector<Code> translate(CodeSpan dna, std::size_t frame) {
  require(frame < 3, "translate: frame must be 0, 1, or 2");
  std::vector<Code> protein;
  if (dna.size() < frame + 3) return protein;
  protein.reserve((dna.size() - frame) / 3);
  const Code unknown = encode(Alphabet::kProtein, 'X');
  for (std::size_t i = frame; i + 3 <= dna.size(); i += 3) {
    if (dna[i] >= 4 || dna[i + 1] >= 4 || dna[i + 2] >= 4) {
      protein.push_back(unknown);  // codon contains N
      continue;
    }
    protein.push_back(
        standard_genetic_code()[16 * dna[i] + 4 * dna[i + 1] + dna[i + 2]]);
  }
  return protein;
}

std::vector<TranslatedFrame> six_frame_translations(CodeSpan dna) {
  std::vector<TranslatedFrame> frames;
  for (std::size_t f = 0; f < 3; ++f) {
    auto protein = translate(dna, f);
    if (!protein.empty()) {
      frames.push_back({static_cast<int>(f) + 1, std::move(protein)});
    }
  }
  const auto rc = reverse_complement(dna);
  for (std::size_t f = 0; f < 3; ++f) {
    auto protein = translate(rc, f);
    if (!protein.empty()) {
      frames.push_back({-(static_cast<int>(f) + 1), std::move(protein)});
    }
  }
  return frames;
}

}  // namespace mendel::seq
