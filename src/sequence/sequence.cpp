#include "src/sequence/sequence.h"

#include "src/common/error.h"

namespace mendel::seq {

Sequence Sequence::from_string(Alphabet alphabet, std::string name,
                               std::string_view residues) {
  return Sequence(alphabet, std::move(name),
                  encode_string(alphabet, residues));
}

CodeSpan Sequence::window(std::size_t start, std::size_t len) const {
  if (start + len > codes_.size()) {
    throw InvalidArgument("sequence window [" + std::to_string(start) + ", " +
                          std::to_string(start + len) + ") out of range for " +
                          "length " + std::to_string(codes_.size()));
  }
  return CodeSpan(codes_).subspan(start, len);
}

std::string Sequence::to_string() const {
  return seq::to_string(alphabet_, codes_);
}

std::string to_string(Alphabet alphabet, CodeSpan codes) {
  std::string out;
  out.reserve(codes.size());
  for (Code c : codes) out.push_back(decode(alphabet, c));
  return out;
}

std::vector<Code> encode_string(Alphabet alphabet,
                                std::string_view residues) {
  std::vector<Code> codes;
  codes.reserve(residues.size());
  for (char c : residues) codes.push_back(encode(alphabet, c));
  return codes;
}

SequenceId SequenceStore::add(Sequence sequence) {
  require(sequence.alphabet() == alphabet_,
          "SequenceStore alphabet mismatch on add()");
  const auto id = static_cast<SequenceId>(sequences_.size());
  sequence.set_id(id);
  total_residues_ += sequence.size();
  sequences_.push_back(std::move(sequence));
  return id;
}

const Sequence& SequenceStore::at(SequenceId id) const {
  if (id >= sequences_.size()) {
    throw InvalidArgument("unknown sequence id " + std::to_string(id));
  }
  return sequences_[id];
}

}  // namespace mendel::seq
