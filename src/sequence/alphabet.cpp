#include "src/sequence/alphabet.h"

#include <cctype>

#include "src/common/error.h"

namespace mendel::seq {

namespace {

// 256-entry lookup tables built once; 0xff marks an invalid character.
struct EncodeTables {
  std::array<Code, 256> dna;
  std::array<Code, 256> protein;

  EncodeTables() {
    dna.fill(0xff);
    protein.fill(0xff);
    auto set_both_cases = [](std::array<Code, 256>& table, char c, Code code) {
      table[static_cast<unsigned char>(std::toupper(c))] = code;
      table[static_cast<unsigned char>(std::tolower(c))] = code;
    };
    set_both_cases(dna, 'A', kDnaA);
    set_both_cases(dna, 'C', kDnaC);
    set_both_cases(dna, 'G', kDnaG);
    set_both_cases(dna, 'T', kDnaT);
    set_both_cases(dna, 'U', kDnaT);  // RNA input folds onto T
    // IUPAC ambiguity codes collapse to N.
    for (char c : {'N', 'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V'}) {
      set_both_cases(dna, c, kDnaN);
    }
    const std::string_view symbols = "ARNDCQEGHILKMFPSTWYVBZX*";
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      // Codes 0..19 are the standard residues; 20..23 are B Z X *.
      set_both_cases(protein, symbols[i], static_cast<Code>(i));
    }
    // Selenocysteine/pyrrolysine and rare codes map to X (unknown).
    for (char c : {'U', 'O', 'J'}) {
      set_both_cases(protein, c, 22);
    }
  }
};

const EncodeTables& tables() {
  static const EncodeTables t;
  return t;
}

constexpr char kDnaLetters[kDnaCardinality + 1] = "ACGTN";
constexpr char kProteinLetters[kProteinCardinality + 1] =
    "ARNDCQEGHILKMFPSTWYVBZX*";

}  // namespace

std::size_t cardinality(Alphabet a) {
  return a == Alphabet::kDna ? kDnaCardinality : kProteinCardinality;
}

std::size_t core_cardinality(Alphabet a) {
  return a == Alphabet::kDna ? 4u : 20u;
}

Code encode(Alphabet a, char c) {
  const auto& table =
      a == Alphabet::kDna ? tables().dna : tables().protein;
  const Code code = table[static_cast<unsigned char>(c)];
  if (code == 0xff) {
    throw ParseError(std::string("invalid ") + std::string(name(a)) +
                     " character '" + c + "'");
  }
  return code;
}

char decode(Alphabet a, Code code) {
  if (code >= cardinality(a)) {
    throw InvalidArgument("residue code " + std::to_string(code) +
                          " out of range for alphabet " +
                          std::string(name(a)));
  }
  return a == Alphabet::kDna ? kDnaLetters[code] : kProteinLetters[code];
}

bool is_valid(Alphabet a, char c) {
  const auto& table =
      a == Alphabet::kDna ? tables().dna : tables().protein;
  return table[static_cast<unsigned char>(c)] != 0xff;
}

std::string_view name(Alphabet a) {
  return a == Alphabet::kDna ? "dna" : "protein";
}

const std::array<double, 20>& protein_background_frequencies() {
  // UniProtKB/Swiss-Prot release 2015_09 composition statistics,
  // in BLOSUM code order A R N D C Q E G H I L K M F P S T W Y V.
  static const std::array<double, 20> freqs = {
      0.0826,  // A  Ala
      0.0553,  // R  Arg
      0.0406,  // N  Asn
      0.0546,  // D  Asp
      0.0137,  // C  Cys
      0.0393,  // Q  Gln
      0.0674,  // E  Glu
      0.0708,  // G  Gly
      0.0227,  // H  His
      0.0596,  // I  Ile
      0.0966,  // L  Leu  (most frequent, ~9x Trp — paper §III-B)
      0.0584,  // K  Lys
      0.0242,  // M  Met
      0.0386,  // F  Phe
      0.0470,  // P  Pro
      0.0660,  // S  Ser
      0.0535,  // T  Thr
      0.0109,  // W  Trp  (least frequent)
      0.0292,  // Y  Tyr
      0.0687,  // V  Val
  };
  return freqs;
}

const std::array<double, 4>& dna_background_frequencies() {
  static const std::array<double, 4> freqs = {0.25, 0.25, 0.25, 0.25};
  return freqs;
}

}  // namespace mendel::seq
