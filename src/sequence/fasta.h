// FASTA reading and writing.
//
// Standard multi-record FASTA: '>' description lines followed by wrapped
// residue lines. Blank lines are tolerated; ';' comment lines (legacy
// FASTA) are skipped. The reader streams from any std::istream so tests
// can parse from strings and the examples from files.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/sequence/sequence.h"

namespace mendel::seq {

// Parses every record from `in`. Throws ParseError on malformed input
// (residues before the first header, invalid characters).
std::vector<Sequence> read_fasta(std::istream& in, Alphabet alphabet);

// Convenience file wrapper; throws IoError if the file cannot be opened.
std::vector<Sequence> read_fasta_file(const std::string& path,
                                      Alphabet alphabet);

// Loads a FASTA stream directly into a store; returns #records added.
std::size_t load_fasta(std::istream& in, SequenceStore& store);

// Writes records with residue lines wrapped at `wrap` columns.
void write_fasta(std::ostream& out, const std::vector<Sequence>& sequences,
                 std::size_t wrap = 70);
void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& sequences,
                      std::size_t wrap = 70);

}  // namespace mendel::seq
