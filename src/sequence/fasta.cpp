#include "src/sequence/fasta.h"

#include <cctype>
#include <fstream>

#include "src/common/error.h"

namespace mendel::seq {

std::vector<Sequence> read_fasta(std::istream& in, Alphabet alphabet) {
  std::vector<Sequence> records;
  std::string line;
  std::string name;
  std::vector<Code> codes;
  bool in_record = false;
  std::size_t line_no = 0;

  auto flush = [&]() {
    if (!in_record) return;
    if (codes.empty()) {
      throw ParseError("FASTA record '" + name + "' has no residues");
    }
    records.emplace_back(alphabet, name, std::move(codes));
    codes = {};
  };

  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing CR from CRLF files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == ';') continue;  // legacy comment line
    if (line[0] == '>') {
      flush();
      name = line.substr(1);
      // Trim leading whitespace of the description.
      const auto first = name.find_first_not_of(" \t");
      name = first == std::string::npos ? std::string() : name.substr(first);
      in_record = true;
      continue;
    }
    if (!in_record) {
      throw ParseError("FASTA line " + std::to_string(line_no) +
                       ": residues before first '>' header");
    }
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      try {
        codes.push_back(encode(alphabet, c));
      } catch (const ParseError& e) {
        throw ParseError("FASTA line " + std::to_string(line_no) + ": " +
                         e.what());
      }
    }
  }
  flush();
  return records;
}

std::vector<Sequence> read_fasta_file(const std::string& path,
                                      Alphabet alphabet) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in, alphabet);
}

std::size_t load_fasta(std::istream& in, SequenceStore& store) {
  auto records = read_fasta(in, store.alphabet());
  for (auto& record : records) store.add(std::move(record));
  return records.size();
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& sequences,
                 std::size_t wrap) {
  require(wrap > 0, "FASTA wrap width must be positive");
  for (const auto& sequence : sequences) {
    out << '>' << sequence.name() << '\n';
    const std::string residues = sequence.to_string();
    for (std::size_t i = 0; i < residues.size(); i += wrap) {
      out << residues.substr(i, wrap) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& sequences,
                      std::size_t wrap) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open FASTA file for writing: " + path);
  write_fasta(out, sequences, wrap);
}

}  // namespace mendel::seq
