// Substitution scoring matrices.
//
// These are the matrices used to *score alignments* (paper parameter M in
// Table I). They are distinct from the Mendel *distance* matrices in
// distance.h, which are derived from them but only drive the vp-tree
// similarity search (paper §III-B: "this distance matrix is not used to
// score the actual alignments").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/sequence/alphabet.h"

namespace mendel::score {

// Affine gap penalties: opening a gap costs `open + extend`, each further
// gapped column costs `extend`. Values are positive costs.
struct GapPenalties {
  int open = 11;
  int extend = 1;
};

class ScoringMatrix {
 public:
  static constexpr std::size_t kMaxCodes = 24;

  ScoringMatrix(std::string name, seq::Alphabet alphabet,
                GapPenalties default_gaps);

  const std::string& name() const { return name_; }
  seq::Alphabet alphabet() const { return alphabet_; }
  GapPenalties default_gaps() const { return default_gaps_; }

  int score(seq::Code a, seq::Code b) const {
    return cells_[a][b];
  }

  // Contiguous int32 row of scores against code `a` — the SIMD banded DP
  // gathers substitution scores straight out of this.
  const int* row(seq::Code a) const { return cells_[a].data(); }

  void set(seq::Code a, seq::Code b, int value) { cells_[a][b] = value; }

  // Largest diagonal entry (best possible per-column score).
  int max_match_score() const;
  // Most negative entry.
  int min_score() const;

  // True if score(a,b) == score(b,a) for all codes of the alphabet.
  bool is_symmetric() const;

 private:
  std::string name_;
  seq::Alphabet alphabet_;
  GapPenalties default_gaps_;
  std::array<std::array<int, kMaxCodes>, kMaxCodes> cells_{};
};

// Canonical matrices (constructed once, returned by reference).
const ScoringMatrix& blosum62();
const ScoringMatrix& blosum80();
const ScoringMatrix& pam250();

// Simple DNA match/mismatch matrix (BLAST megablast-style defaults +2/-3);
// N scores 0 against everything.
ScoringMatrix dna_matrix(int match = 2, int mismatch = -3);

// Lookup by the string name a query carries (paper Table I parameter M):
// "BLOSUM62", "BLOSUM80", "PAM250", "DNA". Throws InvalidArgument for
// unknown names.
const ScoringMatrix& matrix_by_name(std::string_view name);

}  // namespace mendel::score
