// Quantized distance LUT + the dispatched integer window kernels.
//
// The DistanceMatrix cells Mendel actually ships are exact small rationals:
// Hamming is {0, 1}, and the symmetrized substitution-derived metrics are
// multiples of 1/2 (the (B[a][a]+B[b][b])/2 - B[a][b] transform halves
// integer scores; Floyd–Warshall repair only ever adds such values). A
// QuantizedDistance captures that exactly: every cell times a power-of-two
// `scale` is a non-negative integer <= 65535, stored twice — as uint16 for
// the scalar/NEON kernels and as int32 for the AVX2 gather kernels. Window
// distances accumulate in integers and divide by `scale` once at the end,
// which is exact in double (the scalar double kernel sums the same
// half-integer values, all exactly representable), so the quantized path
// returns bit-identical distances to the scalar reference — pinned by
// tests/simd_kernel_test.cpp.
//
// Matrices that are not exactly representable (a test matrix with 0.3
// cells, a user-loaded matrix with irrational entries) simply get no
// QuantizedDistance; every caller falls back to the checked double
// reference automatically.
//
// Early-abandon contract: because cells are non-negative, "some prefix sum
// exceeds bound" is equivalent to "the full sum exceeds bound", so the
// bounded kernels may test the running total once per vector chunk instead
// of once per residue and still make exactly the scalar kernel's
// keep/abandon decision. Abandoning kernels return a value > bound;
// within-bound results are exact.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "src/sequence/sequence.h"

namespace mendel::score {

class QuantizedDistance {
 public:
  // Mirrors ScoringMatrix::kMaxCodes (a static_assert in quantized.cpp
  // keeps them in sync without an include cycle).
  static constexpr std::size_t kMaxCodes = 24;
  static constexpr std::size_t kCells = kMaxCodes * kMaxCodes;

  // Builds the quantized twin of a flattened row-major double LUT
  // (cells[a * kMaxCodes + b]); null when any cell is not exactly
  // q / scale for a non-negative integer q <= 65535 and scale in
  // {1, 2, 4, 8}. `cardinality` is the alphabet size actually used — the
  // mismatch-indicator detection (the byte-compare Hamming fast path)
  // only inspects the codes that can appear in windows.
  static std::shared_ptr<const QuantizedDistance> build(
      const double* cells, std::size_t cardinality);

  std::int64_t scale() const { return scale_; }
  // True when d(a, b) == (a == b ? 0 : 1/scale) over the alphabet: window
  // distance is then a scaled Hamming distance and the kernels count
  // mismatching bytes 16/32 at a time instead of walking the LUT.
  bool indicator() const { return indicator_; }
  const std::uint16_t* lut16() const { return lut16_.data(); }
  const std::int32_t* lut32() const { return lut32_.data(); }

  // Scaled integer -> the exact double the scalar kernel would produce.
  double to_double(std::int64_t q) const {
    return static_cast<double>(q) / static_cast<double>(scale_);
  }

  // Largest integer threshold such that (q > threshold) == (q/scale >
  // bound) for every integer q >= 0; +/-infinity and negative bounds
  // included.
  std::int64_t threshold(double bound) const;

 private:
  QuantizedDistance() = default;

  std::int64_t scale_ = 1;
  bool indicator_ = false;
  std::array<std::uint16_t, kCells> lut16_{};
  std::array<std::int32_t, kCells> lut32_{};
};

// Dispatched kernel table, one per simd::Level. All kernels take scaled
// integer thresholds and return scaled integer distances; `a` is the probe
// side (its codes index LUT rows).
struct QKernelTable {
  // Full window distance.
  std::int64_t (*distance)(const QuantizedDistance& q, const seq::Code* a,
                           const seq::Code* b, std::size_t length);
  // Early-abandoning variant: exact when <= qthresh, otherwise any value
  // > qthresh.
  std::int64_t (*distance_bounded)(const QuantizedDistance& q,
                                   const seq::Code* a, const seq::Code* b,
                                   std::size_t length, std::int64_t qthresh);
  // Batched leaf scan: scores `count` arena windows (rows of `base`, row j
  // at base + slots[j] * stride) against one probe. out[j] is exact when
  // <= qthresh; once every window in a vector chunk is past qthresh the
  // remaining positions may be skipped (each such out[j] is > qthresh).
  // Requires the arena layout guarantees of vpt::WindowArena: base 32-byte
  // aligned with a readable 32-byte guard tail after the last row.
  void (*distance_batch)(const QuantizedDistance& q, const seq::Code* probe,
                         const seq::Code* base, std::size_t stride,
                         const std::uint32_t* slots, std::size_t count,
                         std::size_t length, std::int64_t qthresh,
                         std::int64_t* out);
  // Bit-packed variant of distance_batch: arena rows hold `bits`-wide codes
  // (bits in {2, 4}; residue i occupies bits [i*bits, (i+1)*bits) of the
  // row, little-endian within each byte) and the decode is fused into the
  // scan — the vector kernels gather one 32-bit word per lane and peel
  // 32/bits residues out of it before regathering. The probe stays
  // unpacked (its codes index LUT rows). Packing is lossless, so the
  // keep/abandon decisions and all kept values are identical to running
  // distance_batch over the decoded rows — pinned by the packed fuzz in
  // tests/simd_kernel_test.cpp. Same arena guard-tail requirements.
  void (*distance_batch_packed)(const QuantizedDistance& q,
                                const seq::Code* probe,
                                const std::uint8_t* base, std::size_t stride,
                                unsigned bits, const std::uint32_t* slots,
                                std::size_t count, std::size_t length,
                                std::int64_t qthresh, std::int64_t* out);
};

// The kernel table for simd::active_level() (one relaxed atomic read).
const QKernelTable& qkernels();
// The table for one specific level; levels that are not compiled in alias
// the scalar table. The fuzz test uses this to compare levels directly.
const QKernelTable& qkernels_for(int level);

}  // namespace mendel::score
