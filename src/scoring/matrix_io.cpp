#include "src/scoring/matrix_io.h"

#include <fstream>
#include <vector>
#include <map>
#include <mutex>
#include <sstream>

#include "src/common/error.h"

namespace mendel::score {

namespace {

std::map<std::string, ScoringMatrix, std::less<>>& registry() {
  static std::map<std::string, ScoringMatrix, std::less<>> matrices;
  return matrices;
}

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ScoringMatrix parse_ncbi_matrix(std::istream& in, std::string name,
                                seq::Alphabet alphabet, GapPenalties gaps) {
  ScoringMatrix matrix(std::move(name), alphabet, gaps);

  std::vector<seq::Code> columns;
  std::vector<bool> have_row(seq::cardinality(alphabet), false);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;

    if (columns.empty()) {
      // Header row: single letters naming the columns.
      std::string token = first;
      do {
        if (token.size() != 1 || !seq::is_valid(alphabet, token[0])) {
          throw ParseError("matrix line " + std::to_string(line_no) +
                           ": bad column letter '" + token + "'");
        }
        columns.push_back(seq::encode(alphabet, token[0]));
      } while (tokens >> token);
      continue;
    }

    // Data row: letter followed by one score per column.
    if (first.size() != 1 || !seq::is_valid(alphabet, first[0])) {
      throw ParseError("matrix line " + std::to_string(line_no) +
                       ": bad row letter '" + first + "'");
    }
    const seq::Code row = seq::encode(alphabet, first[0]);
    for (seq::Code column : columns) {
      int value;
      if (!(tokens >> value)) {
        throw ParseError("matrix line " + std::to_string(line_no) +
                         ": expected " + std::to_string(columns.size()) +
                         " scores");
      }
      matrix.set(row, column, value);
    }
    int extra;
    if (tokens >> extra) {
      throw ParseError("matrix line " + std::to_string(line_no) +
                       ": too many scores");
    }
    have_row[row] = true;
  }
  require(!columns.empty(), "matrix file has no header row");

  // All core residues must be covered.
  for (std::size_t c = 0; c < seq::core_cardinality(alphabet); ++c) {
    require(have_row[c],
            std::string("matrix file missing row for residue '") +
                seq::decode(alphabet, static_cast<seq::Code>(c)) + "'");
  }
  return matrix;
}

ScoringMatrix load_matrix_file(const std::string& path, std::string name,
                               seq::Alphabet alphabet, GapPenalties gaps) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open matrix file: " + path);
  return parse_ncbi_matrix(in, std::move(name), alphabet, gaps);
}

void register_matrix(ScoringMatrix matrix) {
  const std::string name = matrix.name();
  require(name != "BLOSUM62" && name != "BLOSUM80" && name != "PAM250" &&
              name != "DNA",
          "register_matrix: cannot shadow built-in matrix " + name);
  std::lock_guard lock(registry_mutex());
  registry().insert_or_assign(name, std::move(matrix));
}

const ScoringMatrix* find_registered_matrix(std::string_view name) {
  std::lock_guard lock(registry_mutex());
  auto it = registry().find(name);
  return it == registry().end() ? nullptr : &it->second;
}

}  // namespace mendel::score
