#include "src/scoring/karlin.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"
#include "src/sequence/alphabet.h"

namespace mendel::score {

namespace {

// phi(lambda) = sum_ij p_i p_j exp(lambda s_ij) - 1. phi(0) = 0; for a valid
// scoring system (negative expectation, some positive score) phi dips
// negative then crosses zero at the unique positive root.
double phi(const ScoringMatrix& scores, std::span<const double> freqs,
           double lambda) {
  double total = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    for (std::size_t j = 0; j < freqs.size(); ++j) {
      total += freqs[i] * freqs[j] *
               std::exp(lambda * scores.score(static_cast<seq::Code>(i),
                                              static_cast<seq::Code>(j)));
    }
  }
  return total - 1.0;
}

double relative_entropy(const ScoringMatrix& scores,
                        std::span<const double> freqs, double lambda) {
  double h = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    for (std::size_t j = 0; j < freqs.size(); ++j) {
      const double s = scores.score(static_cast<seq::Code>(i),
                                    static_cast<seq::Code>(j));
      // q_ij = p_i p_j exp(lambda s_ij) is the aligned-pair distribution.
      const double q = freqs[i] * freqs[j] * std::exp(lambda * s);
      h += q * lambda * s;
    }
  }
  return h;
}

}  // namespace

KarlinParams solve_ungapped(const ScoringMatrix& scores,
                            std::span<const double> freqs) {
  require(!freqs.empty(), "solve_ungapped: empty frequency vector");

  double expected = 0.0;
  bool has_positive = false;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    for (std::size_t j = 0; j < freqs.size(); ++j) {
      const int s = scores.score(static_cast<seq::Code>(i),
                                 static_cast<seq::Code>(j));
      expected += freqs[i] * freqs[j] * s;
      has_positive = has_positive || s > 0;
    }
  }
  require(expected < 0.0,
          "solve_ungapped: expected score must be negative for " +
              scores.name());
  require(has_positive,
          "solve_ungapped: no positive score in " + scores.name());

  // Bracket the positive root: phi is negative just right of 0 and grows
  // without bound, so double `hi` until phi(hi) > 0, then bisect.
  double lo = 1e-6;
  double hi = 0.5;
  while (phi(scores, freqs, hi) < 0.0) {
    lo = hi;
    hi *= 2.0;
    require(hi < 64.0, "solve_ungapped: lambda root bracket failed");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (phi(scores, freqs, mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  KarlinParams params;
  params.lambda = 0.5 * (lo + hi);
  params.h = relative_entropy(scores, freqs, params.lambda);
  // Quick K estimate (Altschul 1991 appendix-style approximation); exact K
  // needs the full lattice computation which is unnecessary for ranking.
  params.k = std::clamp(std::exp(-1.9 * params.h) * params.h / params.lambda *
                            params.lambda,
                        0.01, 0.5);
  return params;
}

KarlinParams gapped_params(const ScoringMatrix& scores) {
  // NCBI BLAST tabulated gapped parameters at the default gap penalties.
  if (scores.name() == "BLOSUM62") return {0.267, 0.041, 0.14};   // 11/1
  if (scores.name() == "BLOSUM80") return {0.299, 0.071, 0.21};   // 10/1
  if (scores.name() == "PAM250") return {0.215, 0.021, 0.10};     // 14/2
  if (scores.name() == "DNA") return {0.625, 0.41, 0.78};         // +2/-3, 5/2

  // Unknown matrix: solve ungapped at the matrix's alphabet background and
  // apply the conventional ~15% lambda reduction seen across BLAST tables.
  const auto& freqs =
      scores.alphabet() == seq::Alphabet::kProtein
          ? std::span<const double>(seq::protein_background_frequencies())
          : std::span<const double>(seq::dna_background_frequencies());
  KarlinParams params = solve_ungapped(scores, freqs);
  params.lambda *= 0.85;
  params.k *= 0.5;
  return params;
}

double evalue(const KarlinParams& params, double score, std::size_t query_len,
              std::size_t database_len) {
  return params.k * static_cast<double>(query_len) *
         static_cast<double>(database_len) *
         std::exp(-params.lambda * score);
}

double bit_score(const KarlinParams& params, double score) {
  return (params.lambda * score - std::log(params.k)) / std::log(2.0);
}

}  // namespace mendel::score
