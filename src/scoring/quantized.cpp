#include "src/scoring/quantized.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "src/common/simd.h"
#include "src/scoring/matrix.h"

#if defined(MENDEL_SIMD_X86)
#include <immintrin.h>
#endif
#if defined(MENDEL_SIMD_ARM)
#include <arm_neon.h>
#endif

namespace mendel::score {

static_assert(QuantizedDistance::kMaxCodes == ScoringMatrix::kMaxCodes,
              "quantized LUT geometry must match the scoring matrices");

namespace {

// Per-lane int32 accumulation is safe while length * 65535 < 2^31; longer
// windows (never seen in practice — blocks are tens of residues) take the
// scalar int64 path.
constexpr std::size_t kMaxVectorLength = 32000;

constexpr std::size_t kCodesStride = QuantizedDistance::kMaxCodes;

// --- scalar reference kernels (always compiled, always the fallback) -----

std::int64_t qdist_scalar(const QuantizedDistance& q, const seq::Code* a,
                          const seq::Code* b, std::size_t length) {
  const std::uint16_t* lut = q.lut16();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < length; ++i) {
    total += lut[a[i] * kCodesStride + b[i]];
  }
  return total;
}

std::int64_t qdist_bounded_scalar(const QuantizedDistance& q,
                                  const seq::Code* a, const seq::Code* b,
                                  std::size_t length, std::int64_t qthresh) {
  const std::uint16_t* lut = q.lut16();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < length; ++i) {
    total += lut[a[i] * kCodesStride + b[i]];
    if (total > qthresh) return total;
  }
  return total;
}

void qbatch_scalar(const QuantizedDistance& q, const seq::Code* probe,
                   const seq::Code* base, std::size_t stride,
                   const std::uint32_t* slots, std::size_t count,
                   std::size_t length, std::int64_t qthresh,
                   std::int64_t* out) {
  for (std::size_t j = 0; j < count; ++j) {
    out[j] = qdist_bounded_scalar(
        q, probe, base + static_cast<std::size_t>(slots[j]) * stride, length,
        qthresh);
  }
}

// --- packed-row kernels (bit-packed arena rows, decode fused in) ---------
//
// The scalar version accumulates the same LUT cells in the same order as
// qdist_bounded_scalar over the decoded row, so it is the bit-identity
// oracle for the vector packed kernels: identical keep/abandon decisions,
// identical kept values.

inline seq::Code packed_code(const std::uint8_t* row, std::size_t i,
                             unsigned bits) {
  const std::size_t bit = i * bits;
  return static_cast<seq::Code>((row[bit >> 3] >> (bit & 7)) &
                                ((1u << bits) - 1));
}

std::int64_t qdist_bounded_packed_scalar(const QuantizedDistance& q,
                                         const seq::Code* a,
                                         const std::uint8_t* row,
                                         unsigned bits, std::size_t length,
                                         std::int64_t qthresh) {
  const std::uint16_t* lut = q.lut16();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < length; ++i) {
    total += lut[a[i] * kCodesStride + packed_code(row, i, bits)];
    if (total > qthresh) return total;
  }
  return total;
}

void qbatch_packed_scalar(const QuantizedDistance& q, const seq::Code* probe,
                          const std::uint8_t* base, std::size_t stride,
                          unsigned bits, const std::uint32_t* slots,
                          std::size_t count, std::size_t length,
                          std::int64_t qthresh, std::int64_t* out) {
  for (std::size_t j = 0; j < count; ++j) {
    out[j] = qdist_bounded_packed_scalar(
        q, probe, base + static_cast<std::size_t>(slots[j]) * stride, bits,
        length, qthresh);
  }
}

#if defined(MENDEL_SIMD_X86)

// --- SSE2 (x86-64 baseline, no target attribute needed) ------------------
//
// Without gathers the general LUT walk stays scalar; the win at this level
// is the mismatch-indicator (Hamming) path, which compares 16 residues per
// iteration and reduces match bytes with psadbw.

inline std::int64_t hamming_sse2(const seq::Code* a, const seq::Code* b,
                                 std::size_t length) {
  std::int64_t matches = 0;
  const __m128i ones = _mm_set1_epi8(1);
  std::size_t i = 0;
  __m128i acc = _mm_setzero_si128();
  for (; i + 16 <= length; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i eq = _mm_and_si128(_mm_cmpeq_epi8(va, vb), ones);
    acc = _mm_add_epi64(acc, _mm_sad_epu8(eq, _mm_setzero_si128()));
  }
  matches = _mm_cvtsi128_si64(acc) +
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc));
  std::int64_t mismatches = static_cast<std::int64_t>(i) - matches;
  for (; i < length; ++i) mismatches += a[i] == b[i] ? 0 : 1;
  return mismatches;
}

std::int64_t qdist_sse2(const QuantizedDistance& q, const seq::Code* a,
                        const seq::Code* b, std::size_t length) {
  if (!q.indicator() || length < 16) return qdist_scalar(q, a, b, length);
  return hamming_sse2(a, b, length);
}

std::int64_t qdist_bounded_sse2(const QuantizedDistance& q,
                                const seq::Code* a, const seq::Code* b,
                                std::size_t length, std::int64_t qthresh) {
  if (!q.indicator() || length < 16) {
    return qdist_bounded_scalar(q, a, b, length, qthresh);
  }
  // Mismatch counts are bounded by length, so for short windows the full
  // count is cheaper than mid-stream threshold checks.
  return hamming_sse2(a, b, length);
}

void qbatch_sse2(const QuantizedDistance& q, const seq::Code* probe,
                 const seq::Code* base, std::size_t stride,
                 const std::uint32_t* slots, std::size_t count,
                 std::size_t length, std::int64_t qthresh,
                 std::int64_t* out) {
  if (!q.indicator() || length < 16) {
    qbatch_scalar(q, probe, base, stride, slots, count, length, qthresh, out);
    return;
  }
  for (std::size_t j = 0; j < count; ++j) {
    out[j] = hamming_sse2(
        probe, base + static_cast<std::size_t>(slots[j]) * stride, length);
  }
}

// --- AVX2 (per-function target attribute + runtime CPUID dispatch) -------

__attribute__((target("avx2"))) inline std::int64_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
  return _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2"))) inline std::int64_t hamming_avx2(
    const seq::Code* a, const seq::Code* b, std::size_t length) {
  std::int64_t matches = 0;
  const __m256i ones = _mm256_set1_epi8(1);
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 32 <= length; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi8(va, vb), ones);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(eq, _mm256_setzero_si256()));
  }
  const __m128i pair = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                     _mm256_extracti128_si256(acc, 1));
  matches = _mm_cvtsi128_si64(pair) +
            _mm_cvtsi128_si64(_mm_unpackhi_epi64(pair, pair));
  std::int64_t mismatches = static_cast<std::int64_t>(i) - matches;
  for (; i < length; ++i) mismatches += a[i] == b[i] ? 0 : 1;
  return mismatches;
}

// General LUT path: widen 8 residue pairs, form LUT indices, gather int32
// distances. Accumulates in epi32 lanes; the caller guards length.
__attribute__((target("avx2"))) std::int64_t qdist_avx2(
    const QuantizedDistance& q, const seq::Code* a, const seq::Code* b,
    std::size_t length) {
  if (length >= kMaxVectorLength) return qdist_scalar(q, a, b, length);
  if (q.indicator() && length >= 32) return hamming_avx2(a, b, length);
  const std::int32_t* lut = q.lut32();
  const __m256i stride_v =
      _mm256_set1_epi32(static_cast<int>(kCodesStride));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= length; i += 8) {
    const __m256i av = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i bv = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i idx =
        _mm256_add_epi32(_mm256_mullo_epi32(av, stride_v), bv);
    acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32(lut, idx, 4));
  }
  std::int64_t total = hsum_epi32(acc);
  const std::uint16_t* lut16 = q.lut16();
  for (; i < length; ++i) total += lut16[a[i] * kCodesStride + b[i]];
  return total;
}

__attribute__((target("avx2"))) std::int64_t qdist_bounded_avx2(
    const QuantizedDistance& q, const seq::Code* a, const seq::Code* b,
    std::size_t length, std::int64_t qthresh) {
  if (length >= kMaxVectorLength) {
    return qdist_bounded_scalar(q, a, b, length, qthresh);
  }
  if (q.indicator() && length >= 32) return hamming_avx2(a, b, length);
  const std::int32_t* lut = q.lut32();
  const __m256i stride_v =
      _mm256_set1_epi32(static_cast<int>(kCodesStride));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  std::size_t since_check = 0;
  for (; i + 8 <= length; i += 8) {
    const __m256i av = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i bv = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i idx =
        _mm256_add_epi32(_mm256_mullo_epi32(av, stride_v), bv);
    acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32(lut, idx, 4));
    // The tau test runs once per 32-residue chunk instead of per residue:
    // cells are non-negative, so a partial sum past the threshold already
    // settles the abandon decision.
    since_check += 8;
    if (since_check >= 32 && i + 8 < length) {
      since_check = 0;
      const std::int64_t partial = hsum_epi32(acc);
      if (partial > qthresh) return partial;
    }
  }
  std::int64_t total = hsum_epi32(acc);
  const std::uint16_t* lut16 = q.lut16();
  for (; i < length; ++i) {
    total += lut16[a[i] * kCodesStride + b[i]];
    if (total > qthresh) return total;
  }
  return total;
}

// Batched leaf scan: 8 arena windows per pass, position-major. Two gathers
// per position (window residues, then the probe's LUT row), interleaved
// int32 accumulators, and a once-per-chunk all-lanes-abandoned test.
// Residues are fetched with 4-byte gathers masked to the low byte, which
// is why the arena guarantees a readable 32-byte guard tail.
__attribute__((target("avx2"))) void qbatch_avx2(
    const QuantizedDistance& q, const seq::Code* probe, const seq::Code* base,
    std::size_t stride, const std::uint32_t* slots, std::size_t count,
    std::size_t length, std::int64_t qthresh, std::int64_t* out) {
  if (length >= kMaxVectorLength) {
    qbatch_scalar(q, probe, base, stride, slots, count, length, qthresh, out);
    return;
  }
  if (q.indicator() && length >= 32) {
    for (std::size_t j = 0; j < count; ++j) {
      out[j] = hamming_avx2(
          probe, base + static_cast<std::size_t>(slots[j]) * stride, length);
    }
    return;
  }
  const std::int32_t* lut = q.lut32();
  // Lane-local abandon threshold: clamp into int32 so the vector compare
  // can never fire on a lane whose true threshold is still far away.
  const int thresh32 = static_cast<int>(std::min<std::int64_t>(
      qthresh, std::numeric_limits<std::int32_t>::max()));
  const __m256i thresh_v = _mm256_set1_epi32(thresh32);
  const __m256i byte_mask = _mm256_set1_epi32(0xff);
  std::size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const __m256i slot_v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(slots + j));
    __m256i off = _mm256_mullo_epi32(
        slot_v, _mm256_set1_epi32(static_cast<int>(stride)));
    __m256i acc = _mm256_setzero_si256();
    std::size_t since_check = 0;
    for (std::size_t i = 0; i < length; ++i) {
      const __m256i raw = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(base), off, 1);
      const __m256i codes = _mm256_and_si256(raw, byte_mask);
      const std::int32_t* row = lut + probe[i] * kCodesStride;
      acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32(row, codes, 4));
      off = _mm256_add_epi32(off, _mm256_set1_epi32(1));
      if (++since_check >= 32 && i + 1 < length) {
        since_check = 0;
        const __m256i over = _mm256_cmpgt_epi32(acc, thresh_v);
        if (_mm256_movemask_epi8(over) == -1) break;  // every lane abandoned
      }
    }
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (std::size_t l = 0; l < 8; ++l) out[j + l] = lanes[l];
  }
  for (; j < count; ++j) {
    out[j] = qdist_bounded_scalar(
        q, probe, base + static_cast<std::size_t>(slots[j]) * stride, length,
        qthresh);
  }
}

// Packed batched leaf scan: like qbatch_avx2 but the row gather moves one
// 32-bit *word* per lane instead of one byte — 16 (2-bit) or 8 (4-bit)
// residues per gather — and codes are peeled off with a uniform right
// shift. Word starts within a row are 4-byte offsets, so every gather is
// the row base plus a shared in-row offset; the final word of the final
// row may overhang into the guard tail, which the arena keeps readable.
__attribute__((target("avx2"))) void qbatch_packed_avx2(
    const QuantizedDistance& q, const seq::Code* probe,
    const std::uint8_t* base, std::size_t stride, unsigned bits,
    const std::uint32_t* slots, std::size_t count, std::size_t length,
    std::int64_t qthresh, std::int64_t* out) {
  if (length >= kMaxVectorLength || (bits != 2 && bits != 4)) {
    qbatch_packed_scalar(q, probe, base, stride, bits, slots, count, length,
                         qthresh, out);
    return;
  }
  const std::int32_t* lut = q.lut32();
  const int thresh32 = static_cast<int>(std::min<std::int64_t>(
      qthresh, std::numeric_limits<std::int32_t>::max()));
  const __m256i thresh_v = _mm256_set1_epi32(thresh32);
  const __m256i code_mask = _mm256_set1_epi32((1 << bits) - 1);
  const __m128i shift_n = _mm_cvtsi32_si128(static_cast<int>(bits));
  const std::size_t codes_per_word = 32 / bits;
  std::size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const __m256i slot_v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slots + j));
    const __m256i off = _mm256_mullo_epi32(
        slot_v, _mm256_set1_epi32(static_cast<int>(stride)));
    __m256i acc = _mm256_setzero_si256();
    __m256i word = _mm256_setzero_si256();
    std::size_t phase = 0;
    std::size_t since_check = 0;
    for (std::size_t i = 0; i < length; ++i) {
      if (phase == 0) {
        const std::size_t word_byte = i * bits / 8;  // multiple of 4
        word = _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(base + word_byte), off, 1);
      }
      const __m256i codes = _mm256_and_si256(word, code_mask);
      word = _mm256_srl_epi32(word, shift_n);
      if (++phase == codes_per_word) phase = 0;
      const std::int32_t* row = lut + probe[i] * kCodesStride;
      acc = _mm256_add_epi32(acc, _mm256_i32gather_epi32(row, codes, 4));
      if (++since_check >= 32 && i + 1 < length) {
        since_check = 0;
        const __m256i over = _mm256_cmpgt_epi32(acc, thresh_v);
        if (_mm256_movemask_epi8(over) == -1) break;  // every lane abandoned
      }
    }
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (std::size_t l = 0; l < 8; ++l) out[j + l] = lanes[l];
  }
  for (; j < count; ++j) {
    out[j] = qdist_bounded_packed_scalar(
        q, probe, base + static_cast<std::size_t>(slots[j]) * stride, bits,
        length, qthresh);
  }
}

#endif  // MENDEL_SIMD_X86

#if defined(MENDEL_SIMD_ARM)

// --- NEON: 128-bit mismatch counting; the general LUT walk is scalar ----

inline std::int64_t hamming_neon(const seq::Code* a, const seq::Code* b,
                                 std::size_t length) {
  std::int64_t mismatches = 0;
  std::size_t i = 0;
  for (; i + 16 <= length; i += 16) {
    const uint8x16_t va = vld1q_u8(a + i);
    const uint8x16_t vb = vld1q_u8(b + i);
    const uint8x16_t ne = vmvnq_u8(vceqq_u8(va, vb));
    mismatches += vaddvq_u8(vandq_u8(ne, vdupq_n_u8(1)));
  }
  for (; i < length; ++i) mismatches += a[i] == b[i] ? 0 : 1;
  return mismatches;
}

std::int64_t qdist_neon(const QuantizedDistance& q, const seq::Code* a,
                        const seq::Code* b, std::size_t length) {
  if (!q.indicator() || length < 16) return qdist_scalar(q, a, b, length);
  return hamming_neon(a, b, length);
}

std::int64_t qdist_bounded_neon(const QuantizedDistance& q,
                                const seq::Code* a, const seq::Code* b,
                                std::size_t length, std::int64_t qthresh) {
  if (!q.indicator() || length < 16) {
    return qdist_bounded_scalar(q, a, b, length, qthresh);
  }
  return hamming_neon(a, b, length);
}

void qbatch_neon(const QuantizedDistance& q, const seq::Code* probe,
                 const seq::Code* base, std::size_t stride,
                 const std::uint32_t* slots, std::size_t count,
                 std::size_t length, std::int64_t qthresh,
                 std::int64_t* out) {
  if (!q.indicator() || length < 16) {
    qbatch_scalar(q, probe, base, stride, slots, count, length, qthresh, out);
    return;
  }
  for (std::size_t j = 0; j < count; ++j) {
    out[j] = hamming_neon(
        probe, base + static_cast<std::size_t>(slots[j]) * stride, length);
  }
}

#endif  // MENDEL_SIMD_ARM

constexpr QKernelTable kScalarTable{qdist_scalar, qdist_bounded_scalar,
                                    qbatch_scalar, qbatch_packed_scalar};

// SSE2 and NEON lack the gathers the fused-decode scan leans on, so their
// packed entries alias the scalar packed kernel (still bit-identical).
const QKernelTable kTables[4] = {
    kScalarTable,
#if defined(MENDEL_SIMD_X86)
    {qdist_sse2, qdist_bounded_sse2, qbatch_sse2, qbatch_packed_scalar},
    {qdist_avx2, qdist_bounded_avx2, qbatch_avx2, qbatch_packed_avx2},
#else
    kScalarTable,
    kScalarTable,
#endif
#if defined(MENDEL_SIMD_ARM)
    {qdist_neon, qdist_bounded_neon, qbatch_neon, qbatch_packed_scalar},
#else
    kScalarTable,
#endif
};

}  // namespace

std::shared_ptr<const QuantizedDistance> QuantizedDistance::build(
    const double* cells, std::size_t cardinality) {
  std::int64_t scale = 0;
  for (std::int64_t candidate : {1, 2, 4, 8}) {
    bool exact = true;
    for (std::size_t i = 0; i < kCells && exact; ++i) {
      const double v = cells[i];
      if (!(v >= 0.0) || !std::isfinite(v)) {
        return nullptr;  // negative / NaN cells are never representable
      }
      const double scaled = v * static_cast<double>(candidate);
      exact = scaled == std::floor(scaled) && scaled <= 65535.0;
    }
    if (exact) {
      scale = candidate;
      break;
    }
  }
  if (scale == 0) return nullptr;

  auto q = std::shared_ptr<QuantizedDistance>(new QuantizedDistance());
  q->scale_ = scale;
  for (std::size_t i = 0; i < kCells; ++i) {
    const auto v = static_cast<std::uint16_t>(
        cells[i] * static_cast<double>(scale));
    q->lut16_[i] = v;
    q->lut32_[i] = v;
  }
  bool indicator = true;
  const std::size_t n = std::min(cardinality, kMaxCodes);
  for (std::size_t a = 0; a < n && indicator; ++a) {
    for (std::size_t b = 0; b < n && indicator; ++b) {
      const std::uint16_t expected = a == b ? 0 : 1;
      indicator = q->lut16_[a * kMaxCodes + b] == expected;
    }
  }
  // The byte-compare kernels count raw mismatches, so the indicator path
  // additionally requires scale == 1 (a scaled indicator would need a
  // multiply the kernels don't do).
  q->indicator_ = indicator && scale == 1;
  return q;
}

std::int64_t QuantizedDistance::threshold(double bound) const {
  if (std::isnan(bound)) {
    // total > NaN is always false: the scalar kernel never abandons.
    return std::numeric_limits<std::int64_t>::max();
  }
  const double scaled = bound * static_cast<double>(scale_);
  if (scaled >= 9.0e18) return std::numeric_limits<std::int64_t>::max();
  if (scaled < 0.0) return -1;  // every non-negative sum abandons
  return static_cast<std::int64_t>(std::floor(scaled));
}

const QKernelTable& qkernels() {
  return qkernels_for(static_cast<int>(simd::active_level()));
}

const QKernelTable& qkernels_for(int level) {
  return kTables[level & 3];
}

}  // namespace mendel::score
