// Reading substitution matrices from NCBI-format text files, plus a
// process-wide registry so loaded matrices resolve through
// matrix_by_name() everywhere (query parameters carry matrices by name
// across the cluster).
//
// File format (the format `makeblastdb`/`blastp` ship matrices in):
//
//   # comments
//      A  R  N  D  ...
//   A  4 -1 -2 -2  ...
//   R -1  5  0 -2  ...
//
// Row/column letters may appear in any order and may cover any subset of
// the alphabet; unlisted pairs keep score 0 except that listed letters get
// min_score against unlisted ones would be surprising — so the loader
// requires the 20 standard residues (protein) or 4 bases (DNA) to be
// present and fills ambiguity codes conservatively (X/N rows default to
// -1 / 0 as in the NCBI tables) unless the file provides them.
#pragma once

#include <istream>
#include <string>

#include "src/scoring/matrix.h"

namespace mendel::score {

// Parses a matrix; `name` becomes its registry/lookup name. Throws
// ParseError on malformed input, InvalidArgument on missing core residues.
ScoringMatrix parse_ncbi_matrix(std::istream& in, std::string name,
                                seq::Alphabet alphabet,
                                GapPenalties gaps = {11, 1});

// File wrapper; throws IoError when unreadable.
ScoringMatrix load_matrix_file(const std::string& path, std::string name,
                               seq::Alphabet alphabet,
                               GapPenalties gaps = {11, 1});

// Registers a matrix under its name() for matrix_by_name() lookup
// (replaces any previous registration of the same name; the built-in
// matrices cannot be shadowed). Thread-safe.
void register_matrix(ScoringMatrix matrix);

// Lookup hook used by matrix_by_name(): returns nullptr when not
// registered.
const ScoringMatrix* find_registered_matrix(std::string_view name);

}  // namespace mendel::score
