// Metric-space distance functions for the vp-tree similarity layer.
//
// Paper §III-B: DNA uses Hamming distance; protein uses a distance matrix
// derived from a substitution matrix B via M[i][j] = |B[i][j] - B[i][i]|
// (zero diagonal, mismatch penalties proportional to substitution
// unlikeliness). As published, that transform is NOT symmetric (because
// B[i][i] != B[j][j]), so it is not a metric and vp-tree pruning built on it
// can be lossy. Mendel therefore ships two derivations:
//
//   * paper_from_scores()       — the literal published formula, kept for
//                                 fidelity experiments;
//   * metric_from_scores()      — symmetrized ((B[i][i]+B[j][j])/2 - B[i][j])
//                                 and Floyd–Warshall-repaired so the triangle
//                                 inequality holds exactly. This is the
//                                 default used everywhere in the pipeline.
//
// Window (block) distance is the L1 sum of per-residue distances, which is a
// metric over fixed-length windows whenever the per-residue table is one.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "src/common/error.h"
#include "src/scoring/matrix.h"
#include "src/scoring/quantized.h"
#include "src/sequence/sequence.h"

namespace mendel::score {

class DistanceMatrix {
 public:
  static constexpr std::size_t kMaxCodes = ScoringMatrix::kMaxCodes;

  explicit DistanceMatrix(seq::Alphabet alphabet);

  // 0/1 mismatch indicator — Hamming building block (DNA default).
  static DistanceMatrix hamming(seq::Alphabet alphabet);

  // Literal paper formula M[i][j] = |B[i][j] - B[i][i]| (asymmetric).
  static DistanceMatrix paper_from_scores(const ScoringMatrix& scores);

  // Symmetrized + triangle-repaired metric derivation (Mendel default for
  // protein data).
  static DistanceMatrix metric_from_scores(const ScoringMatrix& scores);

  seq::Alphabet alphabet() const { return alphabet_; }

  double at(seq::Code a, seq::Code b) const {
    return cells_[a * kMaxCodes + b];
  }
  void set(seq::Code a, seq::Code b, double value) {
    cells_[a * kMaxCodes + b] = value;
    // A hand-edited matrix loses its quantized twin until requantize() is
    // called again; the window kernels fall back to the double reference.
    quantized_.reset();
  }

  // Contiguous row of per-residue distances from code `a` — the window
  // kernels walk these so one row stays hot in cache across a scan.
  const double* row(seq::Code a) const { return &cells_[a * kMaxCodes]; }

  // Metric-axiom checks over all codes of the alphabet.
  bool zero_diagonal() const;
  bool is_symmetric() const;
  bool satisfies_triangle_inequality() const;
  bool is_metric() const {
    return zero_diagonal() && is_symmetric() &&
           satisfies_triangle_inequality();
  }

  // Enforces the triangle inequality in place by relaxing through
  // intermediate codes (Floyd–Warshall shortest path on the 24-vertex
  // complete graph). Distances only decrease; symmetry and zero diagonal
  // are preserved.
  void repair_triangle_inequality();

  // Largest per-residue distance; window distance is bounded by len * this.
  double max_entry() const;

  // Integer twin of this matrix for the SIMD window kernels, or null when
  // the cells are not exactly representable (callers then use the double
  // reference path). Shared between copies — the twin is immutable.
  const QuantizedDistance* quantized() const { return quantized_.get(); }

  // (Re)builds the quantized twin from the current cells. Factories call
  // this automatically; call it after a series of set() edits to restore
  // the SIMD path. Returns whether a twin exists afterwards.
  bool requantize();

 private:
  seq::Alphabet alphabet_;
  // Flattened row-major LUT: cells_[a * kMaxCodes + b] == d(a, b).
  std::array<double, kMaxCodes * kMaxCodes> cells_{};
  std::shared_ptr<const QuantizedDistance> quantized_;
};

// Checked double references for the window kernels. These define the
// semantics; the quantized SIMD path below is pinned bit-identical to them
// (for bounded: identical whenever the result is <= bound) by
// tests/simd_kernel_test.cpp.
namespace detail {

inline double window_distance_scalar(const DistanceMatrix& d,
                                     const seq::Code* a, const seq::Code* b,
                                     std::size_t length) {
  double total = 0.0;
  for (std::size_t i = 0; i < length; ++i) total += d.row(a[i])[b[i]];
  return total;
}

inline double window_distance_bounded_scalar(const DistanceMatrix& d,
                                             const seq::Code* a,
                                             const seq::Code* b,
                                             std::size_t length,
                                             double bound) {
  double total = 0.0;
  for (std::size_t i = 0; i < length; ++i) {
    total += d.row(a[i])[b[i]];
    if (total > bound) return total;
  }
  return total;
}

}  // namespace detail

// Unchecked hot-path kernels: the caller guarantees equal lengths (vp-tree
// metrics validate once per structure, not once per distance call). Both
// variants accumulate in ascending index order, so for any bound the
// bounded kernel returns exactly the unbounded sum whenever that sum is
// <= bound. Matrices with a quantized twin run the dispatched integer
// kernels; the result is bit-identical to the double reference because
// every partial sum is an exactly representable small rational.
inline double window_distance_unchecked(const DistanceMatrix& d,
                                        const seq::Code* a,
                                        const seq::Code* b,
                                        std::size_t length) {
  if (const QuantizedDistance* q = d.quantized()) {
    return q->to_double(qkernels().distance(*q, a, b, length));
  }
  return detail::window_distance_scalar(d, a, b, length);
}

inline double window_distance_bounded_unchecked(const DistanceMatrix& d,
                                                const seq::Code* a,
                                                const seq::Code* b,
                                                std::size_t length,
                                                double bound) {
  if (const QuantizedDistance* q = d.quantized()) {
    return q->to_double(
        qkernels().distance_bounded(*q, a, b, length, q->threshold(bound)));
  }
  return detail::window_distance_bounded_scalar(d, a, b, length, bound);
}

// L1 window distance: sum of per-residue distances over two equal-length
// windows. Throws InvalidArgument on length mismatch.
inline double window_distance(const DistanceMatrix& d, seq::CodeSpan a,
                              seq::CodeSpan b) {
  require(a.size() == b.size(), "window_distance: length mismatch");
  return window_distance_unchecked(d, a.data(), b.data(), a.size());
}

// Early-exit variant: returns an arbitrary value > bound as soon as the
// running sum exceeds `bound`. Exact when the true distance <= bound. Used
// inside vp-tree searches where candidates beyond tau are discarded anyway.
inline double window_distance_bounded(const DistanceMatrix& d,
                                      seq::CodeSpan a, seq::CodeSpan b,
                                      double bound) {
  require(a.size() == b.size(), "window_distance_bounded: length mismatch");
  return window_distance_bounded_unchecked(d, a.data(), b.data(), a.size(),
                                           bound);
}

// Plain Hamming distance between equal-length windows (count of differing
// positions); the DNA metric of the paper.
std::size_t hamming_distance(seq::CodeSpan a, seq::CodeSpan b);

// Percent identity in [0,1]: 1 - hamming/len. Paper §V-B measure (1).
double percent_identity(seq::CodeSpan a, seq::CodeSpan b);

// Consecutivity score (paper §V-B measure (2), pinned down in DESIGN.md §7):
// a position matches iff codes are equal (DNA) or the scoring matrix gives a
// positive substitution score (protein). The c-score is the fraction of
// matching positions that sit in a run of >= 2 consecutive matches; 0 when
// nothing matches.
double consecutivity_score(seq::CodeSpan a, seq::CodeSpan b,
                           const ScoringMatrix& scores);

// Default distance for an alphabet: Hamming for DNA, repaired
// BLOSUM62-derived metric for protein.
const DistanceMatrix& default_distance(seq::Alphabet alphabet);

}  // namespace mendel::score
