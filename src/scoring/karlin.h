// Karlin–Altschul statistics for local alignment significance.
//
// The expectation value (paper Table I parameter E) of a local alignment
// with raw score S against a database follows E = K * m * n * exp(-lambda*S)
// where m is the query length, n the total database length, and (lambda, K)
// depend on the scoring system and residue composition. We solve lambda
// exactly for ungapped scoring (the unique positive root of
// sum_ij p_i p_j exp(lambda * s_ij) = 1) and carry tabulated gapped
// parameters for the canonical matrices, matching how BLAST itself operates.
#pragma once

#include <span>

#include "src/scoring/matrix.h"

namespace mendel::score {

struct KarlinParams {
  double lambda = 0.0;  // nats per score unit
  double k = 0.0;       // Karlin K
  double h = 0.0;       // relative entropy (nats per aligned pair)
};

// Solves lambda for an ungapped scoring system over the given residue
// frequencies (indexed by code; only the first freqs.size() codes are
// considered). Requires a negative expected score and at least one positive
// score (otherwise no positive root exists — throws InvalidArgument).
// K is estimated with Altschul's approximation K ~= H / lambda * C; we use
// the standard quick estimate K = exp(-1.9 * H) clamped to [0.01, 0.5],
// which is accurate to within the tolerances our E-value ranking needs.
KarlinParams solve_ungapped(const ScoringMatrix& scores,
                            std::span<const double> freqs);

// Gapped parameters for the canonical matrices at their default gap
// penalties (values from the NCBI BLAST tables). Falls back to the ungapped
// solution scaled by the conventional gapped/ungapped ratio when the matrix
// is not tabulated.
KarlinParams gapped_params(const ScoringMatrix& scores);

// E = K * m * n * exp(-lambda * score).
double evalue(const KarlinParams& params, double score, std::size_t query_len,
              std::size_t database_len);

// Bit score: (lambda * S - ln K) / ln 2.
double bit_score(const KarlinParams& params, double score);

}  // namespace mendel::score
