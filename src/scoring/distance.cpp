#include "src/scoring/distance.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"

namespace mendel::score {

DistanceMatrix::DistanceMatrix(seq::Alphabet alphabet) : alphabet_(alphabet) {
  cells_.fill(0.0);
}

DistanceMatrix DistanceMatrix::hamming(seq::Alphabet alphabet) {
  DistanceMatrix d(alphabet);
  const std::size_t n = seq::cardinality(alphabet);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      d.cells_[a * kMaxCodes + b] = a == b ? 0.0 : 1.0;
    }
  }
  d.requantize();
  return d;
}

DistanceMatrix DistanceMatrix::paper_from_scores(const ScoringMatrix& scores) {
  DistanceMatrix d(scores.alphabet());
  const std::size_t n = seq::cardinality(scores.alphabet());
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      d.cells_[a * kMaxCodes + b] = std::abs(
          static_cast<double>(scores.score(static_cast<seq::Code>(a),
                                           static_cast<seq::Code>(b)) -
                              scores.score(static_cast<seq::Code>(a),
                                           static_cast<seq::Code>(a))));
    }
  }
  d.requantize();
  return d;
}

DistanceMatrix DistanceMatrix::metric_from_scores(
    const ScoringMatrix& scores) {
  DistanceMatrix d(scores.alphabet());
  const std::size_t n = seq::cardinality(scores.alphabet());
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const auto ca = static_cast<seq::Code>(a);
      const auto cb = static_cast<seq::Code>(b);
      // Kernel-to-distance transform: d = (B(a,a) + B(b,b))/2 - B(a,b).
      // Symmetric and zero-diagonal by construction; clamp at zero in case a
      // matrix rewards a substitution above the self-match average.
      const double value =
          0.5 * (scores.score(ca, ca) + scores.score(cb, cb)) -
          scores.score(ca, cb);
      d.cells_[a * kMaxCodes + b] = std::max(0.0, value);
    }
  }
  d.repair_triangle_inequality();  // requantizes
  return d;
}

bool DistanceMatrix::zero_diagonal() const {
  const std::size_t n = seq::cardinality(alphabet_);
  for (std::size_t a = 0; a < n; ++a) {
    if (cells_[a * kMaxCodes + a] != 0.0) return false;
  }
  return true;
}

bool DistanceMatrix::is_symmetric() const {
  const std::size_t n = seq::cardinality(alphabet_);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (cells_[a * kMaxCodes + b] != cells_[b * kMaxCodes + a]) {
        return false;
      }
    }
  }
  return true;
}

bool DistanceMatrix::satisfies_triangle_inequality() const {
  const std::size_t n = seq::cardinality(alphabet_);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t c = 0; c < n; ++c) {
        if (cells_[a * kMaxCodes + c] >
            cells_[a * kMaxCodes + b] + cells_[b * kMaxCodes + c] + 1e-12) {
          return false;
        }
      }
    }
  }
  return true;
}

void DistanceMatrix::repair_triangle_inequality() {
  const std::size_t n = seq::cardinality(alphabet_);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        cells_[a * kMaxCodes + b] =
            std::min(cells_[a * kMaxCodes + b],
                     cells_[a * kMaxCodes + k] + cells_[k * kMaxCodes + b]);
      }
    }
  }
  requantize();
}

bool DistanceMatrix::requantize() {
  quantized_ = QuantizedDistance::build(cells_.data(),
                                        seq::cardinality(alphabet_));
  return quantized_ != nullptr;
}

double DistanceMatrix::max_entry() const {
  double worst = 0.0;
  const std::size_t n = seq::cardinality(alphabet_);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      worst = std::max(worst, cells_[a * kMaxCodes + b]);
    }
  }
  return worst;
}

std::size_t hamming_distance(seq::CodeSpan a, seq::CodeSpan b) {
  require(a.size() == b.size(), "hamming_distance: length mismatch");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mismatches += a[i] != b[i] ? 1 : 0;
  }
  return mismatches;
}

double percent_identity(seq::CodeSpan a, seq::CodeSpan b) {
  if (a.empty()) return 0.0;
  return 1.0 - static_cast<double>(hamming_distance(a, b)) /
                   static_cast<double>(a.size());
}

double consecutivity_score(seq::CodeSpan a, seq::CodeSpan b,
                           const ScoringMatrix& scores) {
  require(a.size() == b.size(), "consecutivity_score: length mismatch");
  const bool protein = scores.alphabet() == seq::Alphabet::kProtein;
  std::size_t matches = 0;
  std::size_t consecutive = 0;
  std::size_t run = 0;
  auto close_run = [&]() {
    if (run >= 2) consecutive += run;
    run = 0;
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool hit =
        protein ? scores.score(a[i], b[i]) > 0 : a[i] == b[i];
    if (hit) {
      ++matches;
      ++run;
    } else {
      close_run();
    }
  }
  close_run();
  if (matches == 0) return 0.0;
  return static_cast<double>(consecutive) / static_cast<double>(matches);
}

const DistanceMatrix& default_distance(seq::Alphabet alphabet) {
  if (alphabet == seq::Alphabet::kDna) {
    static const DistanceMatrix dna =
        DistanceMatrix::hamming(seq::Alphabet::kDna);
    return dna;
  }
  static const DistanceMatrix protein =
      DistanceMatrix::metric_from_scores(blosum62());
  return protein;
}

}  // namespace mendel::score
