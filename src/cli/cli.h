// The `mendel` command-line tool, as a testable library.
//
// Subcommands:
//   mendel generate --out db.fasta [workload flags]       synthetic FASTA
//   mendel index    --db db.fasta --out index.mnd [flags] build + save index
//   mendel query    --index index.mnd --queries q.fasta   similarity search
//   mendel balance  --db db.fasta [topology flags]        Fig-5-style report
//   mendel info     --index index.mnd                     snapshot summary
//   mendel help [command]
//
// `run_cli` takes argv-style tokens (program name excluded) and writes to
// the provided streams, so the full tool is unit-testable without spawning
// processes. Returns a process exit code (0 ok, 2 usage error).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mendel::cli {

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace mendel::cli
