// Minimal command-line flag parsing for the mendel CLI.
//
// Accepts `--key=value`, `--key value`, and boolean `--key`; everything
// else is a positional argument. Typed accessors validate on read so each
// command declares its contract where it consumes it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mendel::cli {

class Flags {
 public:
  // Parses argv-style tokens (program name NOT included). Throws
  // mendel::InvalidArgument on malformed tokens ("--" alone, "--=x").
  static Flags parse(const std::vector<std::string>& args);

  bool has(const std::string& key) const;

  // Typed accessors; the defaulted forms return the default when the flag
  // is absent, the required forms throw InvalidArgument when missing.
  // Value parsing failures always throw.
  std::string str(const std::string& key, const std::string& fallback) const;
  std::string str_required(const std::string& key) const;
  long long integer(const std::string& key, long long fallback) const;
  double real(const std::string& key, double fallback) const;
  // Boolean flag: present (with no value or "true"/"1") => true.
  bool boolean(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Keys that were provided but never read — commands call this last to
  // reject typos. Throws InvalidArgument listing the unknown flags.
  void reject_unconsumed() const;

 private:
  // value + consumed marker (mutable: reads mark consumption).
  mutable std::map<std::string, std::pair<std::string, bool>> values_;
  std::vector<std::string> positional_;
};

}  // namespace mendel::cli
