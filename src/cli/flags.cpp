#include "src/cli/flags.h"

#include <cstdlib>

#include "src/common/error.h"

namespace mendel::cli {

Flags Flags::parse(const std::vector<std::string>& args) {
  Flags flags;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (token.size() < 3 || token.substr(0, 2) != "--") {
      flags.positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const auto eq = body.find('=');
    if (eq == 0) throw InvalidArgument("malformed flag: " + token);
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = {body.substr(eq + 1), false};
      continue;
    }
    // `--key value` unless the next token is another flag or absent;
    // then it's a boolean `--key`.
    if (i + 1 < args.size() && args[i + 1].substr(0, 2) != "--") {
      flags.values_[body] = {args[i + 1], false};
      ++i;
    } else {
      flags.values_[body] = {"true", false};
    }
  }
  return flags;
}

bool Flags::has(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  it->second.second = true;
  return true;
}

std::string Flags::str(const std::string& key,
                       const std::string& fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  return it->second.first;
}

std::string Flags::str_required(const std::string& key) const {
  auto it = values_.find(key);
  require(it != values_.end(), "missing required flag --" + key);
  it->second.second = true;
  return it->second.first;
}

long long Flags::integer(const std::string& key, long long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.first.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !it->second.first.empty(),
          "flag --" + key + " expects an integer, got '" + it->second.first +
              "'");
  return value;
}

double Flags::real(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.first.c_str(), &end);
  require(end != nullptr && *end == '\0' && !it->second.first.empty(),
          "flag --" + key + " expects a number, got '" + it->second.first +
              "'");
  return value;
}

bool Flags::boolean(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  it->second.second = true;
  return it->second.first == "true" || it->second.first == "1";
}

void Flags::reject_unconsumed() const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    if (!value.second) unknown += " --" + key;
  }
  require(unknown.empty(), "unknown flag(s):" + unknown);
}

}  // namespace mendel::cli
