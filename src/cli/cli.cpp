#include "src/cli/cli.h"

#include <fstream>
#include <string_view>

#include "src/align/render.h"
#include "src/cli/flags.h"
#include "src/cluster/telemetry.h"
#include "src/common/error.h"
#include "src/common/stopwatch.h"
#include "src/common/table.h"
#include "src/mendel/client.h"
#include "src/net/socket_transport.h"
#include "src/scoring/matrix_io.h"
#include "src/sequence/fasta.h"
#include "src/workload/generator.h"

namespace mendel::cli {

namespace {

seq::Alphabet alphabet_from(const Flags& flags) {
  const std::string name = flags.str("alphabet", "protein");
  if (name == "protein") return seq::Alphabet::kProtein;
  if (name == "dna") return seq::Alphabet::kDna;
  throw InvalidArgument("--alphabet must be 'protein' or 'dna', got '" +
                        name + "'");
}

core::TransportMode transport_from(const Flags& flags) {
  const std::string name = flags.str("transport", "sim");
  if (name == "sim") return core::TransportMode::kSim;
  if (name == "threaded") return core::TransportMode::kThreaded;
  if (name == "socket") return core::TransportMode::kSocket;
  throw InvalidArgument(
      "--transport must be 'sim', 'threaded', or 'socket', got '" + name +
      "'");
}

// Transport selection shared by every command that builds a Client.
// --endpoints (or MENDEL_ENDPOINTS, read at Client construction) names the
// daemon listen addresses in node-id order for --transport=socket.
void apply_runtime_flags(const Flags& flags, core::ClientOptions& options) {
  options.runtime.transport_mode = transport_from(flags);
  const std::string endpoints = flags.str("endpoints", "");
  if (!endpoints.empty()) {
    options.runtime.socket.endpoints = net::parse_endpoint_list(endpoints);
  }
  options.runtime.socket.heartbeat_interval = flags.real(
      "heartbeat-interval", options.runtime.socket.heartbeat_interval);
  options.runtime.socket.heartbeat_timeout = flags.real(
      "heartbeat-timeout", options.runtime.socket.heartbeat_timeout);
}

core::ClientOptions client_options_from(const Flags& flags) {
  core::ClientOptions options;
  apply_runtime_flags(flags, options);
  options.topology.num_groups =
      static_cast<std::uint32_t>(flags.integer("groups", 10));
  options.topology.nodes_per_group =
      static_cast<std::uint32_t>(flags.integer("nodes-per-group", 5));
  options.topology.replication =
      static_cast<std::uint32_t>(flags.integer("replication", 1));
  options.topology.sequence_replication = static_cast<std::uint32_t>(
      flags.integer("sequence-replication", 1));
  options.indexing.window_length =
      static_cast<std::size_t>(flags.integer("window", 8));
  options.indexing.sample_size =
      static_cast<std::size_t>(flags.integer("sample", 4000));
  options.prefix_tree.cutoff_depth =
      static_cast<std::size_t>(flags.integer("cutoff-depth", 6));
  return options;
}

core::QueryParams query_params_from(const Flags& flags) {
  core::QueryParams params;
  params.k = static_cast<std::uint32_t>(flags.integer("k", params.k));
  params.n = static_cast<std::uint32_t>(flags.integer("n", params.n));
  params.identity = flags.real("identity", params.identity);
  params.c_score = flags.real("c-score", params.c_score);
  params.matrix = flags.str("matrix", params.matrix);
  params.gapped_trigger = flags.real("trigger", params.gapped_trigger);
  params.band =
      static_cast<std::uint32_t>(flags.integer("band", params.band));
  params.evalue = flags.real("evalue", params.evalue);
  params.branch_epsilon =
      flags.real("branch-epsilon", params.branch_epsilon);
  params.max_hits =
      static_cast<std::uint32_t>(flags.integer("max-hits", params.max_hits));
  params.min_anchor_span = static_cast<std::uint32_t>(
      flags.integer("min-anchor-span", params.min_anchor_span));
  return params;
}

// Shared by index/query: dump the unified metrics snapshot as JSON.
void write_metrics_json(const core::Client& client, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open metrics output: " + path);
  out << client.metrics().to_json() << "\n";
  if (!out) throw IoError("metrics write failed for " + path);
}

seq::SequenceStore load_store(const std::string& path,
                              seq::Alphabet alphabet) {
  seq::SequenceStore store(alphabet);
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  seq::load_fasta(in, store);
  require(!store.empty(), "FASTA file holds no sequences: " + path);
  return store;
}

// ---------------------------------------------------------------- generate

int run_generate(const Flags& flags, std::ostream& out) {
  const std::string db_path = flags.str_required("out");
  workload::DatabaseSpec spec;
  spec.alphabet = alphabet_from(flags);
  spec.families = static_cast<std::size_t>(flags.integer("families", 20));
  spec.members_per_family =
      static_cast<std::size_t>(flags.integer("members", 6));
  spec.background_sequences =
      static_cast<std::size_t>(flags.integer("background", 40));
  spec.min_length = static_cast<std::size_t>(flags.integer("min-len", 300));
  spec.max_length = static_cast<std::size_t>(flags.integer("max-len", 1200));
  spec.seed = static_cast<std::uint64_t>(flags.integer("seed", 42));

  const std::string query_path = flags.str("queries", "");
  const auto query_count =
      static_cast<std::size_t>(flags.integer("query-count", 10));
  const auto query_length =
      static_cast<std::size_t>(flags.integer("query-length", 500));
  const double query_noise = flags.real("query-noise", 0.05);
  flags.reject_unconsumed();

  const auto store = workload::generate_database(spec);
  std::vector<seq::Sequence> sequences(store.begin(), store.end());
  seq::write_fasta_file(db_path, sequences);
  out << "wrote " << store.size() << " sequences ("
      << store.total_residues() << " residues) to " << db_path << "\n";

  if (!query_path.empty()) {
    workload::QuerySetSpec query_spec;
    query_spec.count = query_count;
    query_spec.length = query_length;
    query_spec.noise = {query_noise, 0.0, 0.3};
    query_spec.seed = spec.seed ^ 0x71;
    const auto queries = workload::sample_queries(store, query_spec);
    seq::write_fasta_file(query_path, queries);
    out << "wrote " << queries.size() << " queries to " << query_path
        << "\n";
  }
  return 0;
}

// ------------------------------------------------------------------- index

int run_index(const Flags& flags, std::ostream& out) {
  const std::string db_path = flags.str_required("db");
  const std::string out_path = flags.str_required("out");
  const std::string metrics_path = flags.str("metrics-json", "");
  const auto alphabet = alphabet_from(flags);
  const auto options = client_options_from(flags);
  flags.reject_unconsumed();

  const auto store = load_store(db_path, alphabet);
  core::Client client(options);
  Stopwatch watch;
  const auto report = client.index(store);
  client.save_index(out_path);
  out << "indexed " << report.sequences << " sequences into "
      << report.blocks << " blocks over "
      << client.topology().total_nodes() << " nodes ("
      << options.topology.num_groups << " groups x "
      << options.topology.nodes_per_group << ") in "
      << TextTable::num(watch.seconds(), 2) << "s\n"
      << "index saved to " << out_path << "\n";
  if (!metrics_path.empty()) {
    write_metrics_json(client, metrics_path);
    out << "metrics written to " << metrics_path << "\n";
  }
  return 0;
}

// ------------------------------------------------------------------- query

int run_query(const Flags& flags, std::ostream& out) {
  const std::string index_path = flags.str_required("index");
  const std::string queries_path = flags.str_required("queries");
  const std::string format = flags.str("format", "summary");
  require(format == "summary" || format == "tabular" || format == "pairwise",
          "--format must be summary, tabular, or pairwise");
  const auto alphabet = alphabet_from(flags);
  auto params = query_params_from(flags);
  params.include_subject_segment = format == "pairwise";
  // A custom NCBI-format matrix file: loaded, registered under its file
  // name (or --matrix if given), and referenced by the query parameters.
  const std::string matrix_file = flags.str("matrix-file", "");
  if (!matrix_file.empty()) {
    const std::string matrix_name =
        flags.has("matrix") ? params.matrix : "CUSTOM:" + matrix_file;
    score::register_matrix(score::load_matrix_file(
        matrix_file, matrix_name, alphabet));
    params.matrix = matrix_name;
  }
  const std::string metrics_path = flags.str("metrics-json", "");
  // Name of the query whose distributed trace to dump after its result.
  const std::string trace_query = flags.str("trace", "");
  core::ClientOptions client_options;
  apply_runtime_flags(flags, client_options);
  flags.reject_unconsumed();

  client_options.runtime.enable_tracing = !trace_query.empty();
  core::Client client(client_options);
  client.load_index(index_path);

  const auto queries = seq::read_fasta_file(queries_path, alphabet);
  require(!queries.empty(), "query FASTA holds no sequences");
  bool traced_one = false;

  const auto& matrix = score::matrix_by_name(params.matrix);
  if (format == "tabular") {
    out << "# query\tsubject\tidentity%\tcolumns\tmismatches\tgaps\tqstart"
           "\tqend\tsstart\tsend\tevalue\tbits\n";
  }
  std::string trace_dump;
  for (const auto& query : queries) {
    const auto ticket = client.submit(query, params);
    const auto outcome = client.wait(ticket);
    // Match the full header or the FASTA id (up to the first space), so
    // `--trace query2` finds ">query2 from=20 at=155".
    const std::string_view query_id =
        std::string_view(query.name())
            .substr(0, query.name().find(' '));
    if (!trace_query.empty() &&
        (query.name() == trace_query || query_id == trace_query)) {
      traced_one = true;
      trace_dump = client.collect_trace(ticket.id).format();
    }
    if (format == "tabular") {
      for (const auto& hit : outcome.hits) {
        out << align::render_tabular(query.name(), hit) << "\n";
      }
      continue;
    }
    out << "Query: " << query.name() << " (" << query.size()
        << " residues) — " << outcome.hits.size() << " hits, "
        << TextTable::num(outcome.turnaround * 1e3, 2)
        << " ms simulated turnaround\n";
    if (format == "summary") {
      for (const auto& hit : outcome.hits) {
        out << "  " << hit.subject_name << "  bits "
            << TextTable::num(hit.bit_score, 1) << "  E " << hit.evalue
            << "  identity "
            << TextTable::percent(hit.alignment.percent_identity(), 1)
            << "  q[" << hit.alignment.hsp.q_begin + 1 << "-"
            << hit.alignment.hsp.q_end << "] s["
            << hit.alignment.hsp.s_begin + 1 << "-"
            << hit.alignment.hsp.s_end << "]\n";
      }
      out << "\n";
      continue;
    }
    // pairwise
    for (const auto& hit : outcome.hits) {
      out << align::render_alignment(hit, query.codes(),
                                     hit.subject_segment, alphabet, matrix);
    }
    out << "\n";
  }
  if (!trace_query.empty()) {
    if (traced_one) {
      out << "trace for query '" << trace_query << "':\n" << trace_dump;
    } else {
      out << "no query named '" << trace_query << "' in " << queries_path
          << "; nothing traced\n";
    }
  }
  if (!metrics_path.empty()) {
    write_metrics_json(client, metrics_path);
    out << "metrics written to " << metrics_path << "\n";
  }
  return 0;
}

// ------------------------------------------------------------------ search

// One-shot index + query without touching disk persistence — the only CLI
// path that works on every transport, including --transport=socket where
// the shards live in mendel-node daemons and save/load are unavailable.
int run_search(const Flags& flags, std::ostream& out) {
  const std::string db_path = flags.str_required("db");
  const std::string queries_path = flags.str_required("queries");
  const std::string metrics_path = flags.str("metrics-json", "");
  const auto alphabet = alphabet_from(flags);
  const auto options = client_options_from(flags);
  const auto params = query_params_from(flags);
  flags.reject_unconsumed();

  const auto store = load_store(db_path, alphabet);
  core::Client client(options);
  Stopwatch watch;
  const auto report = client.index(store);
  out << "indexed " << report.sequences << " sequences into "
      << report.blocks << " blocks over "
      << client.topology().total_nodes() << " nodes in "
      << TextTable::num(watch.seconds(), 2) << "s\n";

  const auto queries = seq::read_fasta_file(queries_path, alphabet);
  require(!queries.empty(), "query FASTA holds no sequences");
  for (const auto& query : queries) {
    const auto ticket = client.submit(query, params);
    const auto outcome = client.wait(ticket);
    out << "Query: " << query.name() << " (" << query.size()
        << " residues) — " << outcome.hits.size() << " hits\n";
    for (const auto& hit : outcome.hits) {
      out << "  " << hit.subject_name << "  bits "
          << TextTable::num(hit.bit_score, 1) << "  E " << hit.evalue
          << "  identity "
          << TextTable::percent(hit.alignment.percent_identity(), 1)
          << "\n";
    }
  }
  if (!metrics_path.empty()) {
    write_metrics_json(client, metrics_path);
    out << "metrics written to " << metrics_path << "\n";
  }
  return 0;
}

// --------------------------------------------------------------------- add

int run_add(const Flags& flags, std::ostream& out) {
  const std::string index_path = flags.str_required("index");
  const std::string db_path = flags.str_required("db");
  const std::string out_path = flags.str("out", index_path);
  const auto alphabet = alphabet_from(flags);
  flags.reject_unconsumed();

  core::Client client(core::ClientOptions{});
  client.load_index(index_path);
  const auto more = load_store(db_path, alphabet);
  const auto base = client.add_sequences(more);
  client.save_index(out_path);
  out << "added " << more.size() << " sequences (cluster ids " << base
      << ".." << base + more.size() - 1 << "); index saved to " << out_path
      << "\n";
  return 0;
}

// -------------------------------------------------------------------- grow

int run_grow(const Flags& flags, std::ostream& out) {
  const std::string index_path = flags.str_required("index");
  const std::string out_path = flags.str("out", index_path);
  const auto group = static_cast<std::uint32_t>(
      flags.integer("group", 0));
  const auto count = static_cast<std::uint32_t>(flags.integer("count", 1));
  flags.reject_unconsumed();

  core::Client client(core::ClientOptions{});
  client.load_index(index_path);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto id = client.add_node(group);
    const auto counts = client.block_counts();
    out << "added node " << id << " to group " << group << " (now holds "
        << counts[id] << " blocks after rebalance)\n";
  }
  client.save_index(out_path);
  out << "index saved to " << out_path << "\n";
  return 0;
}

// ----------------------------------------------------------------- balance

int run_balance(const Flags& flags, std::ostream& out) {
  const std::string db_path = flags.str_required("db");
  const auto alphabet = alphabet_from(flags);
  const auto options = client_options_from(flags);
  flags.reject_unconsumed();

  const auto store = load_store(db_path, alphabet);
  cluster::Topology topology(options.topology);
  const auto& distance = score::default_distance(alphabet);
  core::Indexer indexer(&topology, &distance, options.indexing);
  const auto tree =
      indexer.build_prefix_tree(store, options.prefix_tree);
  topology.bind_prefixes(tree.leaf_prefixes());

  const auto flat = indexer.flat_placement_counts(store);
  const auto two_tier = indexer.placement_counts(store, tree);
  TextTable table("Placement balance: " + db_path);
  table.set_header({"placement", "min share", "max share", "max spread",
                    "CoV"});
  auto row = [&](const char* name, const std::vector<std::uint64_t>& counts) {
    const auto report = cluster::analyze_load(counts);
    table.add_row({name, TextTable::percent(report.min_share, 2),
                   TextTable::percent(report.max_share, 2),
                   TextTable::percent(report.max_spread, 2),
                   TextTable::num(report.cov, 3)});
  };
  row("flat SHA-1", flat);
  row("two-tier vp-LSH", two_tier);
  table.print(out);
  return 0;
}

// -------------------------------------------------------------------- info

int run_info(const Flags& flags, std::ostream& out) {
  const std::string index_path = flags.str_required("index");
  flags.reject_unconsumed();
  core::Client client(core::ClientOptions{});
  client.load_index(index_path);
  const auto counts = client.block_counts();
  std::uint64_t blocks = 0;
  for (auto c : counts) blocks += c;
  const auto report = cluster::analyze_load(counts);
  out << "index: " << index_path << "\n"
      << "  topology: " << client.topology().num_groups() << " groups x "
      << client.topology().nodes_per_group() << " nodes = "
      << client.topology().total_nodes() << " nodes\n"
      << "  blocks: " << blocks << " (max node spread "
      << TextTable::percent(report.max_spread, 2) << ", CoV "
      << TextTable::num(report.cov, 3) << ")\n";
  return 0;
}

// -------------------------------------------------------------------- help

void print_help(std::ostream& out) {
  out << "mendel — distributed similarity search over sequencing data\n\n"
         "commands:\n"
         "  generate --out DB.fasta [--alphabet protein|dna] [--families N]\n"
         "           [--members N] [--background N] [--min-len N] [--max-len N]\n"
         "           [--seed N] [--queries Q.fasta --query-count N\n"
         "            --query-length N --query-noise F]\n"
         "  index    --db DB.fasta --out INDEX.mnd [--alphabet protein|dna]\n"
         "           [--groups N] [--nodes-per-group N] [--replication N]\n"
         "           [--sequence-replication N] [--window N] [--sample N]\n"
         "           [--cutoff-depth N] [--metrics-json METRICS.json]\n"
         "  query    --index INDEX.mnd --queries Q.fasta [--format summary|\n"
         "           tabular|pairwise] [--alphabet protein|dna]\n"
         "           [--metrics-json METRICS.json] dump the unified metrics\n"
         "           snapshot after the run; [--trace QUERY_NAME] trace that\n"
         "           query through the cluster and print its span timeline;\n"
         "           plus the paper's Table I parameters: [--k N] [--n N]\n"
         "           [--identity F] [--c-score F] [--matrix NAME]\n"
         "           [--trigger F] [--band N] [--evalue F]\n"
         "           [--branch-epsilon F] [--max-hits N] [--min-anchor-span N]\n"
         "  search   --db DB.fasta --queries Q.fasta one-shot index + query\n"
         "           (no index file); works on every transport, including\n"
         "           [--transport sim|threaded|socket] with\n"
         "           [--endpoints HOST:PORT,... or unix:PATH,...]\n"
         "           [--heartbeat-interval S] [--heartbeat-timeout S]\n"
         "           (socket mode needs running mendel-node daemons; see\n"
         "           docs/architecture.md \"Deployment\"); takes the index\n"
         "           and query flags above\n"
         "  add      --index INDEX.mnd --db MORE.fasta [--out NEW.mnd]\n"
         "           incrementally index additional sequences\n"
         "  grow     --index INDEX.mnd --group N [--count N] [--out NEW.mnd]\n"
         "           add storage nodes to a group and rebalance\n"
         "  balance  --db DB.fasta [topology flags as for index]\n"
         "  info     --index INDEX.mnd\n"
         "  help     [command]\n";
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    print_help(out);
    return 0;
  }
  const std::string command = args[0];
  const Flags flags =
      Flags::parse({args.begin() + 1, args.end()});
  try {
    if (command == "generate") return run_generate(flags, out);
    if (command == "index") return run_index(flags, out);
    if (command == "query") return run_query(flags, out);
    if (command == "search") return run_search(flags, out);
    if (command == "add") return run_add(flags, out);
    if (command == "grow") return run_grow(flags, out);
    if (command == "balance") return run_balance(flags, out);
    if (command == "info") return run_info(flags, out);
    err << "unknown command '" << command << "'\n\n";
    print_help(err);
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace mendel::cli
