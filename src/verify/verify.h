// Deep invariant verification for Mendel clusters and index snapshots.
//
// Three entry points, all returning human-readable violation lists
// (empty = sound):
//
//   * audit_client()    — audits a live cluster: every node's local
//                         vp-tree, bookkeeping, and two-tier DHT placement
//                         (StorageNode::audit), plus the cluster-wide
//                         orphan check (every inverted-index block must
//                         reference a sequence some shard stores).
//   * audit_snapshot*() — the same audit over a mendel-index-v3 snapshot
//                         file, without instantiating storage nodes. A
//                         corrupt or truncated snapshot is reported as a
//                         violation, never thrown out of the audit.
//   * protocol_roundtrip_check() — encode→decode→re-encode byte-equality
//                         self-check for every wire payload type (and the
//                         coordinator's split GroupQuery encoding).
//
// The MENDEL_CHECKED build mode runs the node-local audits automatically
// inside the storage nodes (after insert batches, rebalance, and load);
// this library adds the cluster/snapshot scope and the standalone
// tools/mendel_verify CLI on top.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/topology.h"
#include "src/mendel/block.h"
#include "src/mendel/client.h"
#include "src/scoring/distance.h"
#include "src/sequence/sequence.h"
#include "src/vptree/prefix_tree.h"

namespace mendel::verify {

struct AuditReport {
  std::vector<std::string> violations;
  std::size_t nodes_audited = 0;
  std::size_t blocks_audited = 0;
  std::size_t sequences_audited = 0;

  bool ok() const { return violations.empty(); }
};

// Caps the violations collected per audit so a systematically corrupt
// snapshot produces a readable report instead of one line per block.
inline constexpr std::size_t kMaxAuditViolations = 64;

// --- live cluster -----------------------------------------------------

AuditReport audit_client(const core::Client& client);

// --- snapshots --------------------------------------------------------

// Structural view of one node's shard inside a snapshot. v3 shards carry
// arena rows in their stored (possibly bit-packed) form; `blocks` keeps
// those raw payload rows so re-encoding is verbatim, and
// materialize_blocks() decodes them into full windows for audits.
struct NodeShardView {
  std::uint32_t id = 0;
  // Group section the shard is filed under (v3 groups shards by group).
  std::uint32_t group = 0;
  std::uint32_t window_length = 0;
  // 0 = one code per byte; 2/4 = bit-packed rows (see vpt::WindowArena).
  std::uint8_t packed_bits = 0;
  struct BlockRowView {
    seq::SequenceId sequence = 0;
    std::uint32_t start = 0;
    // payload_bytes(window_length, packed_bits) raw row bytes.
    std::vector<std::uint8_t> row;
  };
  std::vector<BlockRowView> blocks;
  struct SequenceView {
    seq::SequenceId id = 0;
    std::string name;
    std::vector<seq::Code> codes;
  };
  std::vector<SequenceView> sequences;

  // Decodes every stored row into a full-window core::Block.
  std::vector<core::Block> materialize_blocks() const;
};

// Decoded mendel-index-v3 snapshot. The distance matrix and prefix tree
// are heap-held so the view stays movable while the tree's internal
// matrix pointer stays valid.
struct SnapshotView {
  seq::Alphabet alphabet = seq::Alphabet::kProtein;
  std::uint64_t database_residues = 0;
  std::uint32_t num_groups = 0;
  std::uint32_t nodes_per_group = 0;
  // Groups of nodes added after the dense initial layout, in id order.
  std::vector<std::uint32_t> extra_groups;
  std::unique_ptr<score::DistanceMatrix> distance;
  std::unique_ptr<vpt::VpPrefixTree> prefix_tree;
  // Shards in file order (group sections ascending, members ascending).
  std::vector<NodeShardView> shards;
};

// Parses a snapshot byte stream. Throws mendel::Error (ParseError on a
// truncated stream, InvalidArgument on a bad magic) — audit_snapshot_file
// catches and reports instead.
SnapshotView read_snapshot(const std::vector<std::uint8_t>& bytes);

// Re-encodes a view byte-identically to Client::save_index (guarded by a
// round-trip test); lets tests and tooling build seeded-corruption
// snapshots without byte surgery.
std::vector<std::uint8_t> encode_snapshot(const SnapshotView& view);

// Audits a decoded snapshot. `base` supplies the topology parameters the
// snapshot does not record (ring_virtual_nodes, replication factors);
// num_groups / nodes_per_group are taken from the snapshot itself, like
// Client::load_index does.
AuditReport audit_snapshot(const SnapshotView& view,
                           const cluster::TopologyConfig& base = {});

// Reads + audits a snapshot file; I/O or parse failures become
// violations in the report rather than exceptions.
AuditReport audit_snapshot_file(const std::string& path,
                                const cluster::TopologyConfig& base = {});

// --- wire protocol ----------------------------------------------------

// Round-trips a representative instance of every protocol payload type
// through its codec and reports any byte mismatch, partially consumed
// buffer, or decode failure.
std::vector<std::string> protocol_roundtrip_check();

}  // namespace mendel::verify
