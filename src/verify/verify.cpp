#include "src/verify/verify.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <utility>

#include "src/common/codec.h"
#include "src/common/error.h"
#include "src/mendel/protocol.h"
#include "src/vptree/window_arena.h"

namespace mendel::verify {

namespace {

bool capped(const AuditReport& report) {
  return report.violations.size() >= kMaxAuditViolations;
}

void add(AuditReport& report, std::string violation) {
  if (!capped(report)) report.violations.push_back(std::move(violation));
}

std::string block_ident(std::uint32_t node, const core::Block& block) {
  return "node " + std::to_string(node) + ": block (seq " +
         std::to_string(block.sequence) + ", start " +
         std::to_string(block.start) + ")";
}

// Shared placement/orphan logic over any per-node (blocks, sequence ids)
// view — the live cluster and the snapshot audits both feed it.
struct ShardFacts {
  std::uint32_t id = 0;
  std::vector<core::Block> blocks;
  std::vector<seq::SequenceId> sequence_ids;
};

void audit_shards(const std::vector<ShardFacts>& shards,
                  const cluster::Topology& topology,
                  const vpt::VpPrefixTree& tree, AuditReport& report) {
  std::set<seq::SequenceId> stored_anywhere;
  for (const ShardFacts& shard : shards) {
    for (seq::SequenceId sid : shard.sequence_ids) {
      stored_anywhere.insert(sid);
    }
  }

  for (const ShardFacts& shard : shards) {
    ++report.nodes_audited;
    std::set<std::pair<seq::SequenceId, std::uint32_t>> seen;
    const std::uint32_t own_group = topology.address(shard.id).group;
    for (const core::Block& block : shard.blocks) {
      ++report.blocks_audited;
      if (capped(report)) return;
      if (!seen.insert({block.sequence, block.start}).second) {
        add(report, block_ident(shard.id, block) + " is stored twice");
        continue;
      }
      if (block.window.size() != tree.window_length()) {
        add(report, block_ident(shard.id, block) + " window length " +
                        std::to_string(block.window.size()) +
                        " != routing tree window length " +
                        std::to_string(tree.window_length()));
        continue;  // the placement hash needs a well-formed window
      }
      // Tier 1: the window must re-hash to the group that stores it.
      const std::uint64_t prefix = tree.hash(block.window);
      const std::uint32_t group = topology.group_for_prefix(prefix);
      if (group != own_group) {
        add(report, block_ident(shard.id, block) + " hashes to group " +
                        std::to_string(group) + " but is stored in group " +
                        std::to_string(own_group));
        continue;
      }
      // Tier 2: the intra-group ring owners must include the node.
      const auto owners =
          topology.nodes_for_key(group, core::block_placement_key(block));
      if (std::find(owners.begin(), owners.end(), shard.id) == owners.end()) {
        add(report, block_ident(shard.id, block) +
                        " is not among the ring owners of its placement key");
        continue;
      }
      // Orphan check: the referenced sequence must live on some shard.
      if (!stored_anywhere.contains(block.sequence)) {
        add(report, block_ident(shard.id, block) +
                        " references a sequence no shard stores");
      }
    }
    for (seq::SequenceId sid : shard.sequence_ids) {
      ++report.sequences_audited;
      if (capped(report)) return;
      const auto homes =
          topology.sequence_homes(core::sequence_placement_key(sid));
      if (std::find(homes.begin(), homes.end(), shard.id) == homes.end()) {
        add(report, "node " + std::to_string(shard.id) + ": sequence " +
                        std::to_string(sid) + " is stored off its home ring");
      }
    }
  }
}

}  // namespace

// --- live cluster -----------------------------------------------------

AuditReport audit_client(const core::Client& client) {
  AuditReport report;
  if (!client.indexed()) {
    report.violations.push_back("client is not indexed; nothing to audit");
    return report;
  }
  for (auto& violation : client.prefix_tree().validate()) {
    add(report, "prefix tree: " + std::move(violation));
  }
  if (client.node_count() != client.topology().total_nodes()) {
    add(report, "client hosts " + std::to_string(client.node_count()) +
                    " nodes but the topology lists " +
                    std::to_string(client.topology().total_nodes()));
  }

  // Node-local audits (vp-tree structure, bookkeeping, placement)...
  std::vector<ShardFacts> shards;
  shards.reserve(client.node_count());
  for (std::size_t id = 0; id < client.node_count(); ++id) {
    const core::StorageNode& node = client.node(static_cast<net::NodeId>(id));
    for (auto& violation : node.audit(kMaxAuditViolations)) {
      add(report, std::move(violation));
    }
    ShardFacts facts;
    facts.id = static_cast<std::uint32_t>(id);
    facts.blocks = node.blocks();
    facts.sequence_ids = node.stored_sequence_ids();
    shards.push_back(std::move(facts));
  }
  // ...then the cluster-wide pass (placement re-checked from materialized
  // blocks plus the orphan cross-check no single node can run).
  audit_shards(shards, client.topology(), client.prefix_tree(), report);
  return report;
}

// --- snapshots --------------------------------------------------------

std::vector<core::Block> NodeShardView::materialize_blocks() const {
  std::vector<core::Block> out;
  out.reserve(blocks.size());
  for (const BlockRowView& row : blocks) {
    core::Block block;
    block.sequence = row.sequence;
    block.start = row.start;
    block.window.resize(window_length);
    vpt::WindowArena::decode_row(row.row.data(), block.window.data(),
                                 window_length, packed_bits);
    out.push_back(std::move(block));
  }
  return out;
}

namespace {

// Snapshot bytes come off disk — a decode surface, not an API boundary —
// so malformed framing raises DecodeError like the wire decoders do.
void snap_require(bool cond, const std::string& what) {
  if (!cond) throw DecodeError(what);
}

// Mirrors StorageNode::load's parse of one mendel-node-v2 shard.
NodeShardView read_node_shard(CodecReader& reader, std::uint32_t group) {
  NodeShardView shard;
  shard.group = group;
  const std::string node_magic = reader.str();
  snap_require(node_magic == "mendel-node-v2",
               "read_snapshot: bad node shard magic '" + node_magic + "'");
  shard.id = reader.u32();
  shard.window_length = reader.u32();
  shard.packed_bits = reader.u8();
  snap_require(
      shard.packed_bits == 0 || shard.packed_bits == 2 ||
          shard.packed_bits == 4,
      "read_snapshot: node " + std::to_string(shard.id) +
          ": bad packed row width " + std::to_string(shard.packed_bits));
  const std::uint32_t block_count = reader.u32();
  // window_length 0 is how an empty arena saves itself; with blocks
  // present every row would be zero bytes and decode_row nonsensical.
  snap_require(shard.window_length > 0 || block_count == 0,
               "read_snapshot: node " + std::to_string(shard.id) +
                   ": zero window length with blocks");
  // Bound counts by the bytes that must back them BEFORE sizing any
  // container: a forged count must not become a multi-GB allocation.
  snap_require(block_count <= reader.remaining() / 8,
               "read_snapshot: node " + std::to_string(shard.id) +
                   ": block count " + std::to_string(block_count) +
                   " exceeds the remaining bytes");
  shard.blocks.resize(block_count);
  for (auto& block : shard.blocks) {
    block.sequence = reader.u32();
    block.start = reader.u32();
  }
  const std::size_t row_bytes =
      vpt::WindowArena::payload_bytes(shard.window_length, shard.packed_bits);
  const std::uint64_t blob = reader.u64();
  snap_require(blob == static_cast<std::uint64_t>(block_count) * row_bytes,
               "read_snapshot: node " + std::to_string(shard.id) +
                   ": row blob length mismatch");
  snap_require(blob <= reader.remaining(),
               "read_snapshot: node " + std::to_string(shard.id) +
                   ": row blob overruns the buffer");
  for (auto& block : shard.blocks) {
    const auto row = reader.raw(row_bytes);
    block.row.assign(row.begin(), row.end());
  }
  const std::uint32_t sequence_count = reader.u32();
  snap_require(sequence_count <= reader.remaining() / 12,
               "read_snapshot: node " + std::to_string(shard.id) +
                   ": sequence count " + std::to_string(sequence_count) +
                   " exceeds the remaining bytes");
  shard.sequences.reserve(sequence_count);
  for (std::uint32_t s = 0; s < sequence_count; ++s) {
    NodeShardView::SequenceView sequence;
    sequence.id = reader.u32();
    sequence.name = reader.str();
    sequence.codes = reader.bytes();
    shard.sequences.push_back(std::move(sequence));
  }
  return shard;
}

// Mirrors StorageNode::save for one shard.
void encode_node_shard(CodecWriter& writer, const NodeShardView& shard) {
  writer.str("mendel-node-v2");
  writer.u32(shard.id);
  writer.u32(shard.window_length);
  writer.u8(shard.packed_bits);
  writer.u32(static_cast<std::uint32_t>(shard.blocks.size()));
  for (const auto& block : shard.blocks) {
    writer.u32(block.sequence);
    writer.u32(block.start);
  }
  const std::size_t row_bytes =
      vpt::WindowArena::payload_bytes(shard.window_length, shard.packed_bits);
  writer.u64(static_cast<std::uint64_t>(shard.blocks.size()) * row_bytes);
  for (const auto& block : shard.blocks) {
    writer.raw(std::span<const std::uint8_t>(block.row.data(),
                                             block.row.size()));
  }
  writer.u32(static_cast<std::uint32_t>(shard.sequences.size()));
  for (const auto& sequence : shard.sequences) {
    writer.u32(sequence.id);
    writer.str(sequence.name);
    writer.bytes(std::span<const std::uint8_t>(sequence.codes.data(),
                                               sequence.codes.size()));
  }
}

}  // namespace

SnapshotView read_snapshot(const std::vector<std::uint8_t>& bytes) {
  CodecReader reader(bytes);
  SnapshotView view;

  const std::string magic = reader.str();
  snap_require(magic == "mendel-index-v3",
               "read_snapshot: bad snapshot magic '" + magic + "'");
  const std::uint8_t alphabet_byte = reader.u8();
  snap_require(alphabet_byte <= static_cast<std::uint8_t>(
                                    seq::Alphabet::kProtein),
               "read_snapshot: unknown alphabet " +
                   std::to_string(alphabet_byte));
  view.alphabet = static_cast<seq::Alphabet>(alphabet_byte);
  view.database_residues = reader.u64();
  view.num_groups = reader.u32();
  view.nodes_per_group = reader.u32();
  const std::uint32_t extra_nodes = reader.u32();
  snap_require(extra_nodes <= reader.remaining() / 4,
               "read_snapshot: extra node count " +
                   std::to_string(extra_nodes) +
                   " exceeds the remaining bytes");
  view.extra_groups.reserve(extra_nodes);
  for (std::uint32_t i = 0; i < extra_nodes; ++i) {
    view.extra_groups.push_back(reader.u32());
  }

  view.distance = std::make_unique<score::DistanceMatrix>(
      score::default_distance(view.alphabet));
  view.prefix_tree = std::make_unique<vpt::VpPrefixTree>(
      vpt::VpPrefixTree::decode(reader, view.distance.get()));

  // v3: one length-framed section per group, ascending, each holding its
  // member node shards.
  const std::uint32_t group_count = reader.u32();
  snap_require(group_count == view.num_groups,
               "read_snapshot: group section count mismatch");
  for (std::uint32_t g = 0; g < group_count; ++g) {
    const std::uint32_t group = reader.u32();
    snap_require(group == g, "read_snapshot: group sections out of order");
    const auto section = reader.bytes();
    CodecReader sub(section);
    const std::uint32_t members = sub.u32();
    for (std::uint32_t m = 0; m < members; ++m) {
      const std::uint32_t id = sub.u32();
      NodeShardView shard = read_node_shard(sub, group);
      snap_require(shard.id == id,
                   "read_snapshot: shard id " + std::to_string(shard.id) +
                       " filed under member id " + std::to_string(id));
      view.shards.push_back(std::move(shard));
    }
    snap_require(sub.done(),
                 "read_snapshot: trailing bytes in group section " +
                     std::to_string(group));
  }
  snap_require(reader.done(), "read_snapshot: " +
                                  std::to_string(reader.remaining()) +
                                  " trailing byte(s) after the last section");
  return view;
}

std::vector<std::uint8_t> encode_snapshot(const SnapshotView& view) {
  require(view.prefix_tree != nullptr,
          "encode_snapshot: view has no prefix tree");
  CodecWriter writer;
  writer.str("mendel-index-v3");
  writer.u8(static_cast<std::uint8_t>(view.alphabet));
  writer.u64(view.database_residues);
  writer.u32(view.num_groups);
  writer.u32(view.nodes_per_group);
  writer.u32(static_cast<std::uint32_t>(view.extra_groups.size()));
  for (std::uint32_t group : view.extra_groups) writer.u32(group);
  view.prefix_tree->encode(writer);
  writer.u32(view.num_groups);
  for (std::uint32_t group = 0; group < view.num_groups; ++group) {
    writer.u32(group);
    CodecWriter section;
    std::uint32_t members = 0;
    for (const NodeShardView& shard : view.shards) {
      if (shard.group == group) ++members;
    }
    section.u32(members);
    for (const NodeShardView& shard : view.shards) {
      if (shard.group != group) continue;
      section.u32(shard.id);
      encode_node_shard(section, shard);
    }
    writer.bytes(section.data());
  }
  return writer.take();
}

AuditReport audit_snapshot(const SnapshotView& view,
                           const cluster::TopologyConfig& base) {
  AuditReport report;
  if (view.prefix_tree == nullptr) {
    report.violations.push_back("snapshot view has no prefix tree");
    return report;
  }
  for (auto& violation : view.prefix_tree->validate()) {
    add(report, "prefix tree: " + std::move(violation));
  }

  // Rebuild the topology the way load_index() would: shape from the
  // snapshot, ring parameters from the caller's base config.
  cluster::TopologyConfig config = base;
  config.num_groups = view.num_groups;
  config.nodes_per_group = view.nodes_per_group;
  std::unique_ptr<cluster::Topology> topology;
  try {
    topology = std::make_unique<cluster::Topology>(config);
    for (std::uint32_t group : view.extra_groups) topology->add_node(group);
    topology->bind_prefixes(view.prefix_tree->leaf_prefixes());
  } catch (const Error& e) {
    add(report, std::string("snapshot topology is not constructible: ") +
                    e.what());
    return report;
  }

  if (view.shards.size() != topology->total_nodes()) {
    add(report, "snapshot holds " + std::to_string(view.shards.size()) +
                    " node shards but the topology lists " +
                    std::to_string(topology->total_nodes()) + " nodes");
    return report;  // per-shard placement below would misattribute ids
  }

  const std::size_t cardinality = seq::cardinality(view.alphabet);
  std::vector<ShardFacts> shards;
  shards.reserve(view.shards.size());
  for (const NodeShardView& shard : view.shards) {
    if (shard.id >= topology->total_nodes()) {
      add(report, "shard claims node id " + std::to_string(shard.id) +
                      " outside the topology");
      continue;
    }
    if (topology->address(shard.id).group != shard.group) {
      add(report, "shard for node " + std::to_string(shard.id) +
                      " is filed under group " + std::to_string(shard.group) +
                      " but the topology places the node in group " +
                      std::to_string(topology->address(shard.id).group));
    }
    ShardFacts facts;
    facts.id = shard.id;
    // Packed-row well-formedness: stray bits above the packed width (or
    // codes outside the alphabet) would desynchronize the fused packed
    // kernels from the scalar oracle, so they are placement-grade
    // corruption even though the framing parses.
    const auto materialized = shard.materialize_blocks();
    facts.blocks.reserve(materialized.size());
    for (std::size_t b = 0; b < materialized.size(); ++b) {
      if (capped(report)) return report;
      const core::Block& block = materialized[b];
      std::vector<std::uint8_t> reenc(shard.blocks[b].row.size(), 0);
      vpt::WindowArena::encode_row_to(
          reenc.data(), {block.window.data(), block.window.size()},
          shard.packed_bits);
      if (reenc != shard.blocks[b].row) {
        add(report, block_ident(shard.id, block) +
                        " has a malformed packed row (stray bits above the " +
                        std::to_string(unsigned{shard.packed_bits}) +
                        "-bit code width)");
      }
      bool in_alphabet = true;
      for (const seq::Code code : block.window) {
        if (code >= cardinality) {
          add(report, block_ident(shard.id, block) + " stores code " +
                          std::to_string(unsigned{code}) +
                          " outside the alphabet (cardinality " +
                          std::to_string(cardinality) + ")");
          in_alphabet = false;
          break;
        }
      }
      // A window with out-of-alphabet codes cannot be pushed through the
      // distance matrix, so the placement audit skips it (it is already
      // reported above).
      if (in_alphabet) facts.blocks.push_back(block);
    }
    for (const auto& sequence : shard.sequences) {
      facts.sequence_ids.push_back(sequence.id);
    }
    shards.push_back(std::move(facts));
  }
  audit_shards(shards, *topology, *view.prefix_tree, report);
  return report;
}

AuditReport audit_snapshot_file(const std::string& path,
                                const cluster::TopologyConfig& base) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    AuditReport report;
    report.violations.push_back("cannot open snapshot file " + path);
    return report;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  try {
    const SnapshotView view = read_snapshot(bytes);
    return audit_snapshot(view, base);
  } catch (const std::exception& e) {
    AuditReport report;
    report.violations.push_back("snapshot " + path +
                                " failed to parse: " + e.what());
    return report;
  }
}

// --- wire protocol ----------------------------------------------------

namespace {

template <typename Payload>
void roundtrip(const char* name, const Payload& payload,
               std::vector<std::string>& out) {
  try {
    CodecWriter first;
    payload.encode(first);
    const std::vector<std::uint8_t> original = first.data();
    CodecReader reader(original);
    const Payload decoded = Payload::decode(reader);
    if (!reader.done()) {
      out.push_back(std::string(name) + ": decode left " +
                    std::to_string(reader.remaining()) +
                    " trailing byte(s)");
      return;
    }
    CodecWriter second;
    decoded.encode(second);
    if (second.data() != original) {
      out.push_back(std::string(name) +
                    ": re-encoding the decoded payload changed the bytes");
    }
  } catch (const std::exception& e) {
    out.push_back(std::string(name) + ": codec round-trip threw: " +
                  e.what());
  }
}

core::Block sample_block(seq::SequenceId sequence, std::uint32_t start) {
  core::Block block;
  block.sequence = sequence;
  block.start = start;
  block.window = {1, 2, 3, 4, 5, 6, 7, 8};
  return block;
}

core::Seed sample_seed() {
  core::Seed seed;
  seed.sequence = 7;
  seed.subject_start = 120;
  seed.query_offset = 16;
  seed.length = 8;
  seed.identity = 0.75;
  seed.c_score = 0.5;
  return seed;
}

core::Anchor sample_anchor() {
  core::Anchor anchor;
  anchor.sequence = 9;
  anchor.q_begin = 4;
  anchor.q_end = 36;
  anchor.s_begin = 100;
  anchor.s_end = 132;
  anchor.score = 57;
  anchor.cert = 51;
  anchor.subject_len = 480;
  return anchor;
}

core::QueryParams sample_params() {
  core::QueryParams params;
  params.k = 4;
  params.n = 3;
  params.identity = 0.5;
  params.c_score = 0.25;
  params.matrix = "BLOSUM80";
  params.gapped_trigger = 1.5;
  params.band = 9;
  params.evalue = 0.01;
  params.branch_epsilon = 2.0;
  params.x_drop = 11;
  params.extension_margin = 64;
  params.max_hits = 17;
  params.max_gapped_per_bin = 3;
  params.include_subject_segment = true;
  params.min_anchor_span = 12;
  return params;
}

align::AlignmentHit sample_hit() {
  align::AlignmentHit hit;
  hit.subject_id = 11;
  hit.subject_name = "sp|TEST|SAMPLE";
  hit.alignment.hsp = {3, 40, 100, 139, 88};
  hit.alignment.columns = 39;
  hit.alignment.identities = 30;
  hit.alignment.gap_columns = 2;
  hit.alignment.cigar = "20M2D17M";
  hit.bit_score = 41.5;
  hit.evalue = 1e-6;
  hit.subject_segment = {9, 8, 7, 6};
  return hit;
}

}  // namespace

std::vector<std::string> protocol_roundtrip_check() {
  std::vector<std::string> out;

  core::StoreSequencePayload store;
  store.sequence = 3;
  store.name = "chr1";
  store.alphabet = 2;
  store.codes = {0, 1, 2, 3, 2, 1, 0};
  roundtrip("StoreSequencePayload", store, out);

  core::InsertBlocksPayload insert;
  insert.blocks = {sample_block(1, 0), sample_block(1, 8),
                   sample_block(2, 24)};
  roundtrip("InsertBlocksPayload", insert, out);

  core::Subquery subquery;
  subquery.query_offset = 24;
  subquery.window = {5, 4, 3, 2, 1, 0, 1, 2};
  roundtrip("Subquery", subquery, out);

  roundtrip("QueryParams", sample_params(), out);

  const obs::TraceContext sample_trace{1, (7ULL << 32) | 3};

  core::QueryRequestPayload request;
  request.params = sample_params();
  request.trace = sample_trace;
  request.query = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  roundtrip("QueryRequestPayload", request, out);

  core::GroupQueryPayload group_query;
  group_query.params = sample_params();
  group_query.trace = sample_trace;
  group_query.query = request.query;
  group_query.subqueries = {subquery};
  roundtrip("GroupQueryPayload", group_query, out);

  // The coordinator serializes GroupQuery through the split prefix+subs
  // path; it must stay byte-identical to the struct codec.
  {
    const auto prefix = core::encode_group_query_prefix(
        group_query.params, group_query.trace, group_query.query);
    const auto split =
        core::encode_group_query(prefix, group_query.subqueries);
    if (split != core::encode_payload(group_query)) {
      out.push_back(
          "encode_group_query: split encoding differs from "
          "GroupQueryPayload::encode");
    }
  }

  core::NodeSearchPayload node_search;
  node_search.params = sample_params();
  node_search.trace = sample_trace.child((2ULL << 32) | 1);
  node_search.subqueries = {subquery, subquery};
  roundtrip("NodeSearchPayload", node_search, out);

  roundtrip("Seed", sample_seed(), out);

  core::NodeSearchResultPayload search_result;
  search_result.seeds = {sample_seed(), sample_seed()};
  roundtrip("NodeSearchResultPayload", search_result, out);

  roundtrip("Anchor", sample_anchor(), out);

  core::GroupResultPayload group_result;
  group_result.anchors = {sample_anchor()};
  roundtrip("GroupResultPayload", group_result, out);

  core::FetchRangePayload fetch;
  fetch.purpose = 1;
  fetch.token = 42;
  fetch.sequence = 7;
  fetch.start = 96;
  fetch.length = 160;
  fetch.trace = sample_trace;
  roundtrip("FetchRangePayload", fetch, out);

  core::FetchRangeResultPayload fetched;
  fetched.purpose = 1;
  fetched.token = 42;
  fetched.sequence = 7;
  fetched.start = 96;
  fetched.sequence_length = 4096;
  fetched.sequence_name = "chr7";
  fetched.codes = {1, 1, 2, 3, 5, 8};
  roundtrip("FetchRangeResultPayload", fetched, out);

  core::QueryResultPayload result;
  result.hits = {sample_hit()};
  roundtrip("QueryResultPayload", result, out);

  core::TraceReportPayload trace_report;
  obs::SpanRecord span;
  span.name = "node.search";
  span.node = 7;
  span.query_id = 99;
  span.span_id = (7ULL << 32) | 3;
  span.parent_span = (2ULL << 32) | 1;
  span.start = 0.015625;  // exactly representable: byte-stable via f64
  span.duration_ns = 123456;
  span.value = 12;
  trace_report.spans = {span, span};
  roundtrip("TraceReportPayload", trace_report, out);

  return out;
}

}  // namespace mendel::verify
