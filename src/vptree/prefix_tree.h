// Vantage-point prefix tree: the locality-sensitive group hash (paper §III-E
// / §III-F).
//
// A vp-tree is built over a *sample* of inverted-index windows. Every vertex
// carries a binary prefix: the root's prefix is 1 and a child's prefix is
// its parent's shifted left by one, with the low bit set for right children.
// Hashing an arbitrary window traverses from the root — left when
// d(window, vantage) <= mu, right otherwise — and stops at the cutoff depth
// threshold; the prefix reached is the hash. Similar windows collide, which
// the two-tier DHT exploits to group similar data (Figure 2 of the paper).
//
// For queries, hash_multi() follows both children whenever the traversal
// cannot confidently pick a side (|d - mu| <= epsilon), reproducing the
// paper's "multiple groups can be selected from the vp-hash tree if the
// path branches" behaviour.
//
// The tree is immutable after build() and serializable, because every node
// of a Mendel cluster must hold an identical copy (it is part of the
// routing state of the zero-hop DHT).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/codec.h"
#include "src/common/rng.h"
#include "src/scoring/distance.h"
#include "src/sequence/sequence.h"

namespace mendel::vpt {

// A fixed-length residue window (one inverted-index block's payload).
using Window = std::vector<seq::Code>;

struct PrefixTreeOptions {
  // Depth threshold at which traversal stops and the prefix is emitted.
  // The paper sets this to half the (conceptual) full tree depth; Mendel
  // exposes it directly. Depth 1 is just the root; cutoff_depth d yields at
  // most 2^(d-1) distinct prefixes.
  std::size_t cutoff_depth = 6;
  // Partitions with fewer sample windows than this become leaves early
  // (their prefix is then shorter than the cutoff prefix).
  std::size_t min_partition = 4;
  std::uint64_t seed = 0x707265666978ULL;
};

class VpPrefixTree {
 public:
  // `distance` must outlive the tree (typically a default_distance()
  // singleton or a matrix owned by the cluster config).
  VpPrefixTree(const score::DistanceMatrix* distance,
               PrefixTreeOptions options);

  // Builds from a sample of windows; all must share one length. Throws
  // InvalidArgument on an empty or ragged sample.
  void build(std::vector<Window> sample);

  bool built() const { return built_; }
  std::size_t window_length() const { return window_length_; }
  std::size_t cutoff_depth() const { return options_.cutoff_depth; }

  // Single-path hash — used for data placement.
  std::uint64_t hash(seq::CodeSpan window) const;

  // Multi-path hash — used for query routing; follows both subtrees when
  // |d - mu| <= epsilon. Results are deduplicated, deterministic order.
  std::vector<std::uint64_t> hash_multi(seq::CodeSpan window,
                                        double epsilon) const;

  // Every prefix that hash() can emit (leaves at or above the cutoff),
  // sorted ascending. The cluster topology maps these onto storage groups.
  const std::vector<std::uint64_t>& leaf_prefixes() const {
    return leaf_prefixes_;
  }

  // Structural self-audit of the routing state. Re-walks the tree and
  // reports every violated invariant (vantage window length drift, depth
  // beyond the cutoff, non-finite radii, and a leaf_prefixes() table that
  // disagrees with the prefixes the traversal can actually emit — the
  // group-id consistency the two-tier DHT placement depends on). Empty
  // result = sound. Every cluster node holds an identical copy of this
  // tree, so a violation on any node means queries and data placement have
  // silently diverged.
  std::vector<std::string> validate() const;

  // Wire format for distribution to cluster nodes / index persistence.
  void encode(CodecWriter& writer) const;
  static VpPrefixTree decode(CodecReader& reader,
                             const score::DistanceMatrix* distance);

 private:
  struct Node {
    Window vantage;
    double mu = 0.0;
    std::unique_ptr<Node> left, right;

    bool is_leaf() const { return !left && !right; }
  };

  std::unique_ptr<Node> build_node(std::vector<Window> sample,
                                   std::size_t depth, std::uint64_t prefix,
                                   Rng& rng);
  void hash_multi_walk(const Node* node, seq::CodeSpan window,
                       std::uint64_t prefix, double epsilon,
                       std::vector<std::uint64_t>& out) const;

  static void encode_node(CodecWriter& writer, const Node* node);
  // Depth-bounded: a crafted snapshot chaining left children could
  // otherwise recurse the stack away (and the unique_ptr destructor chain
  // with it). Legitimate trees never exceed cutoff_depth plus the vp-tree
  // fan-out, far below the cap; deeper input is a DecodeError.
  static std::unique_ptr<Node> decode_node(CodecReader& reader,
                                           std::size_t depth = 0);

  const score::DistanceMatrix* distance_;
  PrefixTreeOptions options_;
  std::unique_ptr<Node> root_;
  bool built_ = false;
  std::size_t window_length_ = 0;
  std::vector<std::uint64_t> leaf_prefixes_;
};

}  // namespace mendel::vpt
