// Dynamically balanced vantage-point tree.
//
// The paper (§III-D) observes that the original vp-tree must be built over
// the whole dataset at once and that naive one-at-a-time insertion degrades
// toward a linear-time structure. Following Fu et al.'s dynamic vp-tree
// indexing, insertion is handled by four cases:
//
//   1. leaf bucket has room              -> append to bucket;
//   2. leaf full, sibling has room       -> redistribute under the parent;
//   3. leaf+sibling full, some ancestor  -> redistribute under the lowest
//      subtree has room                     such ancestor;
//   4. tree completely full              -> rebuild from the root with
//                                           grown capacity ("split root").
//
// Cases 2 and 3 are implemented uniformly as "rebuild the lowest ancestor
// whose subtree has spare capacity" (case 2 is the ancestor == parent
// special case). Each (re)build fixes per-subtree capacities, so lookups
// stay O(log n) amortized.
//
// insert_batch() is the paper's "middle ground": elements are admitted in
// bulk, leaves may temporarily overflow, and a single consolidation pass
// rebuilds only the subtrees that ended up over capacity.
//
// A `rebalance = false` mode implements the naive split-in-place insertion
// the paper warns about; bench/micro_vptree quantifies the difference.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/vptree/vptree.h"

namespace mendel::vpt {

struct DynamicVpTreeOptions {
  std::size_t bucket_capacity = 32;
  // When false, full leaves are split in place with no redistribution —
  // the naive scheme (paper §III-D) kept for the ablation benchmark.
  bool rebalance = true;
  // insert_batch() lets a leaf overflow to overflow_factor * bucket_capacity
  // before the consolidation pass rebuilds its subtree.
  double overflow_factor = 2.0;
  std::uint64_t seed = 0x64796e767074ULL;
};

// Telemetry for the micro benchmarks and tests.
struct DynamicVpTreeCounters {
  std::size_t inserts = 0;
  std::size_t subtree_rebuilds = 0;
  std::size_t root_rebuilds = 0;
  std::size_t rebuilt_elements = 0;
};

template <typename T, typename Metric>
class DynamicVpTree {
 public:
  explicit DynamicVpTree(Metric metric, DynamicVpTreeOptions options = {})
      : metric_(std::move(metric)), options_(options), rng_(options.seed) {
    require(options_.bucket_capacity > 0, "bucket_capacity must be > 0");
    require(options_.overflow_factor >= 1.0, "overflow_factor must be >= 1");
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t depth() const { return node_depth(root_.get()); }
  const DynamicVpTreeCounters& counters() const { return counters_; }

  // Case-directed single insertion.
  void insert(T item) {
    ++counters_.inserts;
    ++size_;
    if (!root_) {
      root_ = make_leaf();
      root_->bucket.push_back(std::move(item));
      root_->size = 1;
      return;
    }
    if (!options_.rebalance) {
      naive_insert(root_.get(), std::move(item));
      return;
    }
    // Walk to the destination leaf recording the path. Child distance
    // bounds are widened along the way so search pruning stays admissible
    // (bounds may only ever be loose, never tight, after mutation).
    std::vector<Node*> path;
    Node* node = root_.get();
    for (;;) {
      path.push_back(node);
      if (node->is_leaf()) break;
      const double d = metric_(item, node->vantage);
      if (d <= node->mu) {
        node->left_min = std::min(node->left_min, d);
        node->left_max = std::max(node->left_max, d);
        node = node->left.get();
      } else {
        node->right_min = std::min(node->right_min, d);
        node->right_max = std::max(node->right_max, d);
        node = node->right.get();
      }
    }
    Node* leaf = path.back();
    if (leaf->bucket.size() < options_.bucket_capacity) {
      leaf->bucket.push_back(std::move(item));  // case 1
      for (Node* p : path) ++p->size;
      return;
    }
    // Cases 2/3: lowest ancestor with spare capacity. Its rebuilt subtree
    // absorbs the new element.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      Node* ancestor = *it;
      if (ancestor->size < ancestor->capacity) {
        auto items = collect(ancestor);
        items.push_back(std::move(item));
        ++counters_.subtree_rebuilds;
        counters_.rebuilt_elements += items.size();
        rebuild_in_place(*ancestor, std::move(items));
        for (Node* p : path) {
          if (p == ancestor) break;
          ++p->size;
        }
        return;
      }
    }
    // Case 4: completely full tree — rebuild from the root; capacity grows
    // with the new structure.
    auto items = collect(root_.get());
    items.push_back(std::move(item));
    ++counters_.root_rebuilds;
    counters_.rebuilt_elements += items.size();
    root_ = build_node(items.begin(), items.end());
  }

  // Batched insertion: admit everything with temporary leaf overflow, then
  // consolidate over-capacity subtrees once.
  void insert_batch(std::vector<T> items) {
    if (items.empty()) return;
    counters_.inserts += items.size();
    if (!root_) {
      size_ = items.size();
      root_ = build_node(items.begin(), items.end());
      return;
    }
    size_ += items.size();
    if (!options_.rebalance) {
      for (auto& item : items) naive_insert(root_.get(), std::move(item));
      return;
    }
    const auto overflow_cap = static_cast<std::size_t>(
        options_.overflow_factor *
        static_cast<double>(options_.bucket_capacity));
    for (auto& item : items) admit_overflowing(root_.get(), std::move(item));
    consolidate(root_, overflow_cap);
  }

  // The n nearest neighbors of `target`. `max_distance` (optional) caps the
  // search radius from the start: neighbors beyond it are never reported,
  // and the cap tightens pruning before n candidates have been found.
  std::vector<Neighbor<T>> nearest(
      const T& target, std::size_t n,
      double max_distance = std::numeric_limits<double>::infinity()) const {
    return nearest_with(metric_, target, n, max_distance);
  }

  // Like nearest(), but evaluated through a caller-supplied metric instance.
  // The tree's own metric often routes probe elements through shared mutable
  // state (e.g. a per-node probe span); passing a per-search metric makes
  // concurrent searches over one (unchanging) tree safe — the structure is
  // only read, and every distance evaluation goes through `metric`.
  // `metric` must agree with the build metric on stored-element pairs, or
  // pruning bounds recorded at build time would be inadmissible.
  template <typename M>
  std::vector<Neighbor<T>> nearest_with(
      const M& metric, const T& target, std::size_t n,
      double max_distance = std::numeric_limits<double>::infinity()) const {
    std::vector<Neighbor<T>> out;
    if (n == 0 || !root_) return out;
    KnnState<M> state(metric, n, max_distance);
    search(metric, root_.get(), target, state);
    out.reserve(state.heap.size());
    while (!state.heap.empty()) {
      out.push_back(state.heap.top());
      state.heap.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_node(root_.get(), fn);
  }

  // Deep structural self-audit (paper §III-D / Fu et al.'s invariants).
  // Re-derives every invariant the four rebalancing cases are supposed to
  // maintain and reports each violation as one human-readable line; an
  // empty result means the tree is structurally sound. Checked per node:
  //
  //   * bookkeeping   — subtree size sums, root size == size(), internal
  //                     nodes hold no bucket, both children present;
  //   * balance       — size <= 2 * effective structural capacity, where
  //                     the effective capacity is re-derived bottom-up
  //                     from the leaves (stored ancestor capacities go
  //                     stale by design after a case-2/3 descendant
  //                     rebuild — they are a soft budget, not an
  //                     invariant). Only meaningful with rebalance =
  //                     true; skipped for the naive ablation mode;
  //   * occupancy     — leaf buckets within max(bucket_capacity,
  //                     overflow_factor * bucket_capacity);
  //   * admissibility — every left-subtree element within mu of its
  //                     node's vantage and inside [left_min, left_max]
  //                     (respectively > mu and inside the right interval),
  //                     re-evaluating the metric for every element.
  //
  // The admissibility pass costs O(n log n) metric evaluations — audit
  // scale, not hot-path scale. `metric` defaults to the build metric; pass
  // a fresh instance for concurrent audits of a shared tree (see
  // nearest_with).
  template <typename M>
  std::vector<std::string> validate_with(const M& metric,
                                         std::size_t max_violations = 32)
      const {
    std::vector<std::string> out;
    if (root_ == nullptr) {
      if (size_ != 0) {
        out.push_back("empty tree reports size " + std::to_string(size_));
      }
      return out;
    }
    if (root_->size != size_) {
      out.push_back("root subtree size " + std::to_string(root_->size) +
                    " != tree size " + std::to_string(size_));
    }
    validate_node(metric, root_.get(), "root", out, max_violations);
    return out;
  }

  std::vector<std::string> validate(std::size_t max_violations = 32) const {
    return validate_with(metric_, max_violations);
  }

  std::vector<T> collect_all() const {
    std::vector<T> items;
    items.reserve(size_);
    for_each([&items](const T& item) { items.push_back(item); });
    return items;
  }

  // Removes every element matching `pred` and returns them; the remaining
  // elements are rebuilt into a fresh balanced tree. O(n) — removal is a
  // rebalancing event (used by cluster rebalance, not hot paths).
  template <typename Pred>
  std::vector<T> remove_if(Pred&& pred) {
    auto all = collect_all();
    std::vector<T> removed, kept;
    for (auto& item : all) {
      if (pred(item)) {
        removed.push_back(std::move(item));
      } else {
        kept.push_back(std::move(item));
      }
    }
    if (removed.empty()) return removed;
    root_.reset();
    size_ = kept.size();
    if (!kept.empty()) root_ = build_node(kept.begin(), kept.end());
    return removed;
  }

 private:
  struct Node {
    bool has_vantage = false;
    T vantage;
    double mu = 0.0;
    double left_min = 0.0, left_max = 0.0;
    double right_min = 0.0, right_max = 0.0;
    std::unique_ptr<Node> left, right;
    std::vector<T> bucket;
    std::size_t size = 0;      // elements in this subtree
    std::size_t capacity = 0;  // structural capacity fixed at (re)build

    bool is_leaf() const { return !has_vantage; }
  };

  // Detects a Metric that defines a total tie order over stored elements:
  // tie_before(a, b) == true when `a` precedes `b` among equidistant
  // candidates. With it, the n-NN result is the unique n smallest under the
  // lexicographic (distance, tie order) — independent of tree shape and
  // therefore of insertion order. Without it, equidistant candidates at the
  // n-th-neighbor boundary are admitted in traversal order (fine for
  // metrics whose real-valued distances make exact ties negligible; wrong
  // for small-alphabet workloads like DNA where ties are pervasive).
  template <typename M>
  static constexpr bool has_tie_break =
      requires(const M& m, const T& a, const T& b) {
        { m.tie_before(a, b) } -> std::convertible_to<bool>;
      };

  template <typename M>
  struct KnnState {
    const M* metric;
    std::size_t n;
    double cap;  // hard search-radius ceiling (inclusive)
    struct Farther {
      const M* metric;
      bool operator()(const Neighbor<T>& a, const Neighbor<T>& b) const {
        if (a.distance != b.distance) return a.distance < b.distance;
        if constexpr (has_tie_break<M>) {
          return metric->tie_before(*a.item, *b.item);
        } else {
          return false;
        }
      }
    };
    std::priority_queue<Neighbor<T>, std::vector<Neighbor<T>>, Farther> heap;

    KnnState(const M& m, std::size_t n_, double cap_)
        : metric(&m), n(n_), cap(cap_), heap(Farther{&m}) {}

    double tau() const {
      return heap.size() < n ? cap : std::min(cap, heap.top().distance);
    }
    void offer(const T* item, double distance) {
      if (distance > cap) return;
      if (heap.size() < n) {
        heap.push({item, distance});
        return;
      }
      const Neighbor<T>& worst = heap.top();
      bool better;
      if (distance != worst.distance) {
        better = distance < worst.distance;
      } else if constexpr (has_tie_break<M>) {
        // Both distances were admitted under tau, so both are exact and the
        // equality is real — break it with the metric's total order.
        better = metric->tie_before(*item, *worst.item);
      } else {
        better = false;
      }
      if (better) {
        heap.pop();
        heap.push({item, distance});
      }
    }
  };

  // Detects a Metric that offers an early-abandoning variant:
  // bounded(a, b, bound) returning a value > bound as soon as the running
  // distance exceeds `bound` (exact when <= bound). Used for bucket scans,
  // where the returned distance only gates admission into the heap.
  template <typename M>
  static constexpr bool has_bounded_metric =
      requires(const M& m, const T& a, const T& b, double bound) {
        { m.bounded(a, b, bound) } -> std::convertible_to<double>;
      };

  // Detects a Metric that can score a whole run of contiguous items against
  // one target per call (the SIMD batched leaf scan): out[j] must be exact
  // whenever it is <= bound, and any value > bound otherwise — the same
  // contract as bounded(), item-wise. Bucket scans hand the metric chunks
  // of the leaf's contiguous item array.
  template <typename M>
  static constexpr bool has_batched_metric =
      requires(const M& m, const T& a, const T* items, std::size_t count,
               double bound, double* out) {
        { m.bounded_batch(a, items, count, bound, out) };
      };

  using Iter = typename std::vector<T>::iterator;

  std::unique_ptr<Node> make_leaf() {
    auto node = std::make_unique<Node>();
    node->capacity = options_.bucket_capacity;
    return node;
  }

  std::unique_ptr<Node> build_node(Iter first, Iter last) {
    auto node = std::make_unique<Node>();
    const auto count = static_cast<std::size_t>(last - first);
    node->size = count;
    if (count <= options_.bucket_capacity) {
      node->bucket.assign(std::make_move_iterator(first),
                          std::make_move_iterator(last));
      node->capacity = options_.bucket_capacity;
      return node;
    }
    const std::size_t vp_index = rng_.below(count);
    std::iter_swap(first, first + static_cast<std::ptrdiff_t>(vp_index));
    node->has_vantage = true;
    node->vantage = std::move(*first);
    ++first;

    std::vector<std::pair<double, T>> tagged;
    tagged.reserve(static_cast<std::size_t>(last - first));
    for (auto it = first; it != last; ++it) {
      tagged.emplace_back(metric_(node->vantage, *it), std::move(*it));
    }
    const std::size_t mid = tagged.size() / 2;
    std::nth_element(
        tagged.begin(), tagged.begin() + static_cast<std::ptrdiff_t>(mid),
        tagged.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    node->mu = tagged[mid].first;

    std::vector<T> left_items, right_items;
    double lmin = std::numeric_limits<double>::infinity(), lmax = 0.0;
    double rmin = std::numeric_limits<double>::infinity(), rmax = 0.0;
    for (auto& [d, item] : tagged) {
      if (d <= node->mu) {
        lmin = std::min(lmin, d);
        lmax = std::max(lmax, d);
        left_items.push_back(std::move(item));
      } else {
        rmin = std::min(rmin, d);
        rmax = std::max(rmax, d);
        right_items.push_back(std::move(item));
      }
    }
    node->left_min = left_items.empty() ? 0.0 : lmin;
    node->left_max = left_items.empty() ? 0.0 : lmax;
    node->right_min = right_items.empty() ? 0.0 : rmin;
    node->right_max = right_items.empty() ? 0.0 : rmax;

    node->left = left_items.empty()
                     ? make_leaf()
                     : build_node(left_items.begin(), left_items.end());
    node->right = right_items.empty()
                      ? make_leaf()
                      : build_node(right_items.begin(), right_items.end());
    node->capacity = node->left->capacity + node->right->capacity + 1;
    return node;
  }

  void rebuild_in_place(Node& node, std::vector<T> items) {
    auto fresh = build_node(items.begin(), items.end());
    node = std::move(*fresh);
  }

  // Naive split-in-place insertion (no redistribution): walk to the leaf;
  // if full, promote the leaf to an internal node using its first element
  // as vantage point and re-split the bucket. Similar elements inserted
  // consecutively yield highly skewed trees — exactly the pathology the
  // paper describes.
  void naive_insert(Node* node, T item) {
    for (;;) {
      ++node->size;
      if (node->is_leaf()) {
        if (node->bucket.size() < options_.bucket_capacity) {
          node->bucket.push_back(std::move(item));
          return;
        }
        // Split: first bucket element becomes the vantage point; mu is its
        // median distance to the rest (no sampling, no balance guarantee).
        node->has_vantage = true;
        node->vantage = std::move(node->bucket.front());
        std::vector<T> rest(std::make_move_iterator(node->bucket.begin() + 1),
                            std::make_move_iterator(node->bucket.end()));
        rest.push_back(std::move(item));
        node->bucket.clear();
        std::vector<double> dists;
        dists.reserve(rest.size());
        for (const T& r : rest) dists.push_back(metric_(node->vantage, r));
        std::vector<double> sorted = dists;
        std::nth_element(sorted.begin(),
                         sorted.begin() +
                             static_cast<std::ptrdiff_t>(sorted.size() / 2),
                         sorted.end());
        node->mu = sorted[sorted.size() / 2];
        node->left = make_leaf();
        node->right = make_leaf();
        double lmin = std::numeric_limits<double>::infinity(), lmax = 0.0;
        double rmin = std::numeric_limits<double>::infinity(), rmax = 0.0;
        for (std::size_t i = 0; i < rest.size(); ++i) {
          Node* child =
              dists[i] <= node->mu ? node->left.get() : node->right.get();
          if (dists[i] <= node->mu) {
            lmin = std::min(lmin, dists[i]);
            lmax = std::max(lmax, dists[i]);
          } else {
            rmin = std::min(rmin, dists[i]);
            rmax = std::max(rmax, dists[i]);
          }
          child->bucket.push_back(std::move(rest[i]));
          ++child->size;
        }
        node->left_min = node->left->size != 0 ? lmin : 0.0;
        node->left_max = node->left->size != 0 ? lmax : 0.0;
        node->right_min = node->right->size != 0 ? rmin : 0.0;
        node->right_max = node->right->size != 0 ? rmax : 0.0;
        node->capacity = node->left->capacity + node->right->capacity + 1;
        return;
      }
      const double d = metric_(item, node->vantage);
      // Keep the bounds admissible as the tree mutates.
      if (d <= node->mu) {
        node->left_min = std::min(node->left_min, d);
        node->left_max = std::max(node->left_max, d);
        node = node->left.get();
      } else {
        node->right_min = std::min(node->right_min, d);
        node->right_max = std::max(node->right_max, d);
        node = node->right.get();
      }
    }
  }

  // Batch admission: like case 1 but a leaf may exceed bucket_capacity.
  void admit_overflowing(Node* node, T item) {
    for (;;) {
      ++node->size;
      if (node->is_leaf()) {
        node->bucket.push_back(std::move(item));
        return;
      }
      const double d = metric_(item, node->vantage);
      if (d <= node->mu) {
        node->left_min = std::min(node->left_min, d);
        node->left_max = std::max(node->left_max, d);
        node = node->left.get();
      } else {
        node->right_min = std::min(node->right_min, d);
        node->right_max = std::max(node->right_max, d);
        node = node->right.get();
      }
    }
  }

  // Rebuilds the smallest over-capacity subtrees after a batch.
  void consolidate(std::unique_ptr<Node>& node, std::size_t overflow_cap) {
    if (!node) return;
    if (node->is_leaf()) {
      if (node->bucket.size() > overflow_cap) {
        auto items = collect(node.get());
        ++counters_.subtree_rebuilds;
        counters_.rebuilt_elements += items.size();
        rebuild_in_place(*node, std::move(items));
      }
      return;
    }
    if (node->size > 2 * node->capacity) {
      // Subtree badly over structural capacity: rebuild it whole rather
      // than descending.
      auto items = collect(node.get());
      ++counters_.subtree_rebuilds;
      counters_.rebuilt_elements += items.size();
      rebuild_in_place(*node, std::move(items));
      return;
    }
    consolidate(node->left, overflow_cap);
    consolidate(node->right, overflow_cap);
    if (node->has_vantage) {
      node->capacity = node->left->capacity + node->right->capacity + 1;
    }
  }

  std::vector<T> collect(const Node* node) const {
    std::vector<T> items;
    auto push = [&items](const T& item) { items.push_back(item); };
    for_each_node(node, push);
    MENDEL_DCHECK(items.size() == node->size,
                  "vp-tree subtree bookkeeping: collected " << items.size()
                      << " elements from a subtree recording size "
                      << node->size);
    return items;
  }

  template <typename Fn>
  void for_each_node(const Node* node, Fn& fn) const {
    if (node == nullptr) return;
    if (node->has_vantage) fn(node->vantage);
    for (const T& item : node->bucket) fn(item);
    for_each_node(node->left.get(), fn);
    for_each_node(node->right.get(), fn);
  }

  // Returns the subtree's effective structural capacity (leaf capacities
  // plus vantage slots, re-derived bottom-up) so the balance check can
  // ignore the stored capacities that case-2/3 rebuilds leave stale on
  // ancestors.
  template <typename M>
  std::size_t validate_node(const M& metric, const Node* node,
                            const std::string& path,
                            std::vector<std::string>& out,
                            std::size_t max_violations) const {
    if (out.size() >= max_violations) return node->capacity;
    auto report = [&](const std::string& what) {
      if (out.size() < max_violations) out.push_back(path + ": " + what);
    };

    if (node->is_leaf()) {
      if (node->left || node->right) {
        report("leaf with children");
        return node->capacity;
      }
      if (node->size != node->bucket.size()) {
        report("leaf size " + std::to_string(node->size) + " != bucket " +
               std::to_string(node->bucket.size()));
      }
      const auto occupancy_cap = static_cast<std::size_t>(
          options_.overflow_factor *
          static_cast<double>(options_.bucket_capacity));
      if (options_.rebalance &&
          node->bucket.size() >
              std::max(options_.bucket_capacity, occupancy_cap)) {
        report("leaf bucket " + std::to_string(node->bucket.size()) +
               " exceeds overflow cap " +
               std::to_string(std::max(options_.bucket_capacity,
                                       occupancy_cap)));
      }
      if (node->capacity != options_.bucket_capacity) {
        report("leaf capacity " + std::to_string(node->capacity) +
               " != bucket_capacity " +
               std::to_string(options_.bucket_capacity));
      }
      return options_.bucket_capacity;
    }

    if (!node->left || !node->right) {
      report("internal node missing a child");
      return node->capacity;
    }
    if (!node->bucket.empty()) {
      report("internal node holds a bucket of " +
             std::to_string(node->bucket.size()));
    }
    if (node->size != node->left->size + node->right->size + 1) {
      report("subtree size " + std::to_string(node->size) +
             " != left " + std::to_string(node->left->size) + " + right " +
             std::to_string(node->right->size) + " + vantage");
    }
    if (!(node->mu >= 0.0) || !std::isfinite(node->mu)) {
      report("mu " + std::to_string(node->mu) + " not a finite radius");
    }
    if (node->left_min > node->left_max || node->right_min > node->right_max) {
      report("inverted child distance interval");
    }

    // Admissibility: the recorded mu and child intervals must contain the
    // true vantage distance of every element routed below them; search
    // pruning silently drops results otherwise.
    auto check_side = [&](const Node* child, bool left_side) {
      const double lo = left_side ? node->left_min : node->right_min;
      const double hi = left_side ? node->left_max : node->right_max;
      auto probe = [&](const T& item) {
        if (out.size() >= max_violations) return;
        const double d = metric(node->vantage, item);
        const bool in_half = left_side ? d <= node->mu : d > node->mu;
        if (!in_half) {
          report(std::string(left_side ? "left" : "right") +
                 "-subtree element at vantage distance " +
                 std::to_string(d) + " violates mu " +
                 std::to_string(node->mu));
        } else if (d < lo || d > hi) {
          report(std::string(left_side ? "left" : "right") +
                 "-subtree element distance " + std::to_string(d) +
                 " outside recorded [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "]");
        }
      };
      for_each_node(child, probe);
    };
    check_side(node->left.get(), true);
    check_side(node->right.get(), false);

    const std::size_t effective =
        validate_node(metric, node->left.get(), path + "/L", out,
                      max_violations) +
        validate_node(metric, node->right.get(), path + "/R", out,
                      max_violations) +
        1;
    // The consolidation guarantee: a subtree more than 2x over its
    // structural capacity would have been rebuilt (leaves may individually
    // overflow to overflow_factor * bucket_capacity between batches, which
    // the occupancy check above bounds).
    if (options_.rebalance && node->size > 2 * effective) {
      report("unbalanced: size " + std::to_string(node->size) +
             " > 2 * effective capacity " + std::to_string(effective));
    }
    return effective;
  }

  template <typename M>
  void search(const M& metric, const Node* node, const T& target,
              KnnState<M>& state) const {
    if (node == nullptr) return;
    if (node->is_leaf()) {
      if constexpr (has_batched_metric<M>) {
        // Chunked batch scan. The abandon bound is tau at chunk entry;
        // admission re-reads tau per item, so the heap evolves exactly as
        // in the item-at-a-time path (tau only shrinks, and a distance
        // admitted under the current tau was necessarily <= the entry tau
        // and therefore exact).
        constexpr std::size_t kChunk = 64;
        std::array<double, kChunk> dists;
        const T* items = node->bucket.data();
        const std::size_t total = node->bucket.size();
        for (std::size_t offset = 0; offset < total;) {
          const std::size_t run = std::min(total - offset, kChunk);
          metric.bounded_batch(target, items + offset, run, state.tau(),
                               dists.data());
          for (std::size_t j = 0; j < run; ++j) {
            if (dists[j] <= state.tau()) {
              state.offer(&items[offset + j], dists[j]);
            }
          }
          offset += run;
        }
      } else {
        for (const T& item : node->bucket) {
          if constexpr (has_bounded_metric<M>) {
            const double tau = state.tau();
            const double d = metric.bounded(target, item, tau);
            if (d <= tau) state.offer(&item, d);
          } else {
            state.offer(&item, metric(target, item));
          }
        }
      }
      return;
    }
    double d;
    if constexpr (has_bounded_metric<M>) {
      // A vantage point farther than max(mu, child maxima) + tau offers
      // nothing: it is outside tau itself and the tau-ball cannot reach
      // either child's [*, max] interval, so the whole subtree is pruned
      // and the bounded metric may abandon mid-window.
      const double bound =
          std::max(node->mu, std::max(node->left_max, node->right_max)) +
          state.tau();
      d = metric.bounded(target, node->vantage, bound);
      if (d > bound) return;
    } else {
      d = metric(target, node->vantage);
    }
    state.offer(&node->vantage, d);
    const Node* near = d <= node->mu ? node->left.get() : node->right.get();
    const Node* far = d <= node->mu ? node->right.get() : node->left.get();
    const bool near_is_left = d <= node->mu;
    auto may_contain = [&](bool left_child) {
      const double tau = state.tau();
      const double lo = left_child ? node->left_min : node->right_min;
      const double hi = left_child ? node->left_max : node->right_max;
      return d - tau <= hi && d + tau >= lo;
    };
    if (near != nullptr && near->size > 0 && may_contain(near_is_left)) {
      search(metric, near, target, state);
    }
    if (far != nullptr && far->size > 0 && may_contain(!near_is_left)) {
      search(metric, far, target, state);
    }
  }

  std::size_t node_depth(const Node* node) const {
    if (node == nullptr) return 0;
    return 1 + std::max(node_depth(node->left.get()),
                        node_depth(node->right.get()));
  }

  Metric metric_;
  DynamicVpTreeOptions options_;
  Rng rng_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  DynamicVpTreeCounters counters_;
};

}  // namespace mendel::vpt
