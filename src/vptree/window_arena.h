// Structure-of-arrays storage for fixed-length residue windows.
//
// Every inverted-index block a storage node holds has the same window
// length (the cluster-wide block length k), so the node keeps all window
// payloads in one contiguous row buffer and the vp-tree stores 4-byte
// slot indices instead of per-block heap vectors. Leaf bucket scans then
// walk sequential memory — the hot path the paper's n-NN searches spend
// their time in — instead of chasing a pointer per candidate.
//
// Two orthogonal axes extend the original all-resident byte-per-code
// arena:
//
//   Encoding. Rows are either plain codes (one byte per residue) or
//   bit-packed at 2 bits (DNA core: A C G T) or 4 bits (any alphabet with
//   <= 16 codes, e.g. reduced-alphabet protein). Packing is lossless, so
//   decode feeds the very same codes into the same LUT sums and results
//   stay bit-identical; the batched kernels fuse the unpack into the scan
//   (QKernelTable::distance_batch_packed). The arena starts at the
//   configured width and *widens automatically* (full repack) the first
//   time a code does not fit — e.g. a 2-bit DNA arena that meets an
//   ambiguity base N (code 4) repacks itself to 4 bits.
//
//   Storage. Rows live either in one heap buffer (default: zero overhead
//   versus the original arena) or in a memory-mapped BlockStore with an
//   LRU-pinned resident set bounded by a byte budget. In spill mode raw
//   pointers are only safe for *pinned* ranges: batched scans take a
//   ScanPin over their slot run, and every other access copies through
//   copy_row()/copy_row_bytes(), which fault transparently under the
//   store lock. at()/span() remain valid only for the all-resident
//   unpacked configuration (the original contract).
//
// Layout contract for the batched SIMD leaf scans (src/scoring/quantized):
//   * the buffer base is 32-byte aligned (heap: aligned new; spill: page
//     alignment);
//   * each slot row starts at slot * stride(); unpacked stride is
//     window_length() rounded up to kRowAlignment, packed stride is the
//     payload rounded up to kPackedRowAlignment (2) so short DNA windows
//     actually shrink 4x instead of re-padding to 8 bytes;
//   * a zeroed kGuardTail-byte tail follows the last row, so a 4-byte
//     gather at the final word of the final row stays in bounds;
//   * padding bytes — row padding up to stride() and unused high bits in
//     the last packed byte — are always zero. row_roundtrip_ok() checks
//     this per row for audits.
// StorageNode::audit() asserts the alignment half of this contract.
//
// kRowAlignment stays 8 for unpacked rows, not the 32-byte vector width:
// the batched kernels address rows through *indexed gathers*
// (slot * stride), which need rows not to straddle the buffer, not to
// start 32-byte aligned — and padding k=8 windows to 32 bytes would
// quadruple the resident set of the very scans this layout exists to
// speed up.
//
// Slots are append-only and stable; compaction (after rebalance evicts
// blocks) is a rebuild into a fresh arena.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include "src/common/error.h"
#include "src/sequence/sequence.h"
#include "src/vptree/block_store.h"

namespace mendel::vpt {

class WindowArena {
 public:
  static constexpr std::size_t kRowAlignment = 8;
  static constexpr std::size_t kPackedRowAlignment = 2;
  static constexpr std::size_t kBaseAlignment = 32;
  static constexpr std::size_t kGuardTail = 32;
  // Windows longer than this fall back to unpacked storage (decode scratch
  // buffers are bounded by it; cluster block lengths are tiny in practice).
  static constexpr std::size_t kMaxPackedWindow = 4096;

  struct Config {
    // 0 = one byte per code; 2 or 4 = bit-packed rows (auto-widening).
    unsigned packed_bits = 0;
    // 0 = all-resident heap buffer; > 0 = mmap BlockStore with this
    // resident-byte budget. Falls back to heap storage where the platform
    // lacks mmap (BlockStore::supported()).
    std::size_t resident_budget = 0;
    std::size_t segment_bytes = BlockStore::kDefaultSegmentBytes;
  };

  struct Stats {
    std::size_t resident_bytes = 0;  // bytes of row storage currently in RAM
    std::size_t packed_bytes = 0;    // bytes of bit-packed rows (0 unpacked)
    BlockStoreStats store;           // zeros in heap mode
  };

  WindowArena() = default;

  // Picks encoding and storage; must run before the first append.
  void configure(const Config& cfg) {
    require(count_ == 0, "WindowArena: configure on a non-empty arena");
    require(cfg.packed_bits == 0 || cfg.packed_bits == 2 || cfg.packed_bits == 4,
            "WindowArena: packed_bits must be 0, 2 or 4");
    packed_bits_ = cfg.packed_bits;
    buffer_.reset();
    capacity_ = 0;
    window_length_ = 0;
    stride_ = 0;
    row_bytes_ = 0;
    if (cfg.resident_budget > 0 && BlockStore::supported()) {
      store_ = std::make_unique<BlockStore>(cfg.resident_budget,
                                            cfg.segment_bytes);
    } else {
      store_.reset();
    }
  }

  // Window length is fixed by the first appended window; every later
  // append must match. 0 means "no windows yet".
  std::size_t window_length() const { return window_length_; }
  // Bytes between consecutive slot rows.
  std::size_t stride() const { return stride_; }
  // Meaningful payload bytes per row (<= stride(); the rest is zero pad).
  std::size_t row_bytes() const { return row_bytes_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  // 0 when rows are plain codes; 2 or 4 when bit-packed.
  unsigned packed_bits() const { return packed_bits_; }
  bool packed() const { return packed_bits_ != 0; }
  bool spilled() const { return store_ != nullptr; }

  // Appends a window and returns its slot index. Widens the packed
  // encoding first if any code does not fit the current width.
  std::uint32_t append(seq::CodeSpan window) {
    require(!window.empty(), "WindowArena: empty window");
    if (window_length_ == 0) {
      window_length_ = window.size();
      if (packed_bits_ != 0 && window_length_ > kMaxPackedWindow) {
        packed_bits_ = 0;
      }
      set_geometry();
    } else {
      require(window.size() == window_length_,
              "WindowArena: window length mismatch");
    }
    while (packed_bits_ != 0 && !fits(window)) widen();
    if (count_ == capacity_) grow();
    const auto slot = static_cast<std::uint32_t>(count_++);
    if (store_ != nullptr) {
      row_scratch_.assign(stride_, 0);
      encode_row(row_scratch_.data(), window);
      store_->write(static_cast<std::size_t>(slot) * stride_,
                    row_scratch_.data(), stride_);
    } else {
      encode_row(buffer_.get() + static_cast<std::size_t>(slot) * stride_,
                 window);
    }
    return slot;
  }

  // Snapshot-load fast path: appends a row from its serialized payload
  // (row_len bytes of `bits`-packed codes). When the encodings match the
  // bytes go in verbatim; otherwise the row is decoded and re-appended,
  // letting the arena widen or re-pack as configured.
  std::uint32_t append_row(const std::uint8_t* row, std::size_t row_len,
                           std::size_t window_len, unsigned bits) {
    require(window_len > 0 && row_len >= payload_bytes(window_len, bits),
            "WindowArena: short packed row");
    if (window_length_ != 0 && bits == packed_bits_ &&
        window_len == window_length_) {
      if (count_ == capacity_) grow();
      const auto slot = static_cast<std::uint32_t>(count_++);
      row_scratch_.assign(stride_, 0);
      std::memcpy(row_scratch_.data(), row, row_bytes_);
      if (store_ != nullptr) {
        store_->write(static_cast<std::size_t>(slot) * stride_,
                      row_scratch_.data(), stride_);
      } else {
        std::memcpy(buffer_.get() + static_cast<std::size_t>(slot) * stride_,
                    row_scratch_.data(), stride_);
      }
      return slot;
    }
    std::vector<seq::Code> decoded(window_len);
    decode_payload(row, decoded.data(), window_len, bits);
    return append({decoded.data(), decoded.size()});
  }

  // Direct views are only safe for the original all-resident unpacked
  // configuration; packed or spilled arenas must copy (copy_row) or pin
  // (ScanPin + base()).
  const seq::Code* at(std::uint32_t slot) const {
    require(packed_bits_ == 0 && store_ == nullptr,
            "WindowArena: direct row view on a packed or spilled arena");
    return buffer_.get() + static_cast<std::size_t>(slot) * stride_;
  }
  seq::CodeSpan span(std::uint32_t slot) const {
    return {at(slot), window_length_};
  }

  // Decodes row `slot` into out[0 .. window_length()). Valid in every
  // mode and safe under concurrent searches (spill reads copy under the
  // store lock).
  void copy_row(std::uint32_t slot, seq::Code* out) const {
    const std::uint8_t* row = raw_row(slot);
    decode_payload(row, out, window_length_, packed_bits_);
  }

  // Copies the raw stored row — payload plus zero padding, stride() bytes
  // — for snapshots and round-trip audits.
  void copy_row_bytes(std::uint32_t slot, std::uint8_t* out) const {
    const std::uint8_t* row = raw_row(slot);
    std::memcpy(out, row, stride_);
  }

  // Buffer base for the batched kernels (slot row j = base() + j *
  // stride()); null while empty in heap mode. In spill mode only pinned
  // ranges may be dereferenced.
  const seq::Code* base() const {
    if (store_ != nullptr) return store_->data();
    return buffer_.get();
  }

  // Pins every segment covering the given slot rows (plus the 3-byte
  // gather overread) for the lifetime of the guard; no-op in heap mode.
  class ScanPin {
   public:
    ScanPin() = default;
    ScanPin(BlockStore* store, std::vector<std::uint32_t> segs)
        : store_(store), segs_(std::move(segs)) {
      if (store_ != nullptr) {
        for (const auto seg : segs_) store_->pin_segment(seg);
      }
    }
    ~ScanPin() {
      if (store_ != nullptr) {
        for (const auto seg : segs_) store_->unpin_segment(seg);
      }
    }
    ScanPin(ScanPin&& other) noexcept
        : store_(other.store_), segs_(std::move(other.segs_)) {
      other.store_ = nullptr;
    }
    ScanPin& operator=(ScanPin&&) = delete;
    ScanPin(const ScanPin&) = delete;
    ScanPin& operator=(const ScanPin&) = delete;

   private:
    BlockStore* store_ = nullptr;
    std::vector<std::uint32_t> segs_;
  };

  ScanPin pin_scan(const std::uint32_t* slots, std::size_t count) const {
    if (store_ == nullptr || count == 0) return {};
    std::vector<std::uint32_t> segs;
    segs.reserve(count * 2);
    const std::size_t seg_bytes = store_->segment_bytes();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t first = static_cast<std::size_t>(slots[i]) * stride_;
      // +3: the vector kernels gather 4-byte words whose last word may
      // start at the final row byte.
      const std::size_t last = first + stride_ + 3;
      for (std::size_t s = first / seg_bytes; s <= last / seg_bytes; ++s) {
        segs.push_back(static_cast<std::uint32_t>(s));
      }
    }
    std::sort(segs.begin(), segs.end());
    segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
    return {store_.get(), std::move(segs)};
  }

  // Layout-contract check for audits: base alignment and row padding
  // geometry (content-level padding is row_roundtrip_ok()).
  bool layout_ok() const {
    if (store_ == nullptr && buffer_ == nullptr) return count_ == 0;
    const bool aligned =
        reinterpret_cast<std::uintptr_t>(base()) % kBaseAlignment == 0;
    const std::size_t align =
        packed_bits_ != 0 ? kPackedRowAlignment : kRowAlignment;
    return aligned && stride_ % align == 0 && stride_ >= row_bytes_ &&
           row_bytes_ == payload_bytes(window_length_, packed_bits_);
  }

  // Content half of the layout contract: decoding the row and re-encoding
  // it reproduces the stored bytes exactly — catching stray high bits in
  // packed bytes and nonzero padding that would desynchronize packed
  // kernels from the scalar oracle.
  bool row_roundtrip_ok(std::uint32_t slot) const {
    if (slot >= count_) return false;
    std::vector<std::uint8_t> raw(stride_);
    copy_row_bytes(slot, raw.data());
    std::vector<seq::Code> codes(window_length_);
    decode_payload(raw.data(), codes.data(), window_length_, packed_bits_);
    std::vector<std::uint8_t> reenc(stride_, 0);
    encode_row(reenc.data(), {codes.data(), codes.size()});
    return std::memcmp(raw.data(), reenc.data(), stride_) == 0;
  }

  // Store residency invariants (always true in heap mode).
  bool store_audit(std::string* why) const {
    return store_ == nullptr || store_->audit(why);
  }

  Stats stats() const {
    Stats s;
    if (store_ != nullptr) {
      s.resident_bytes = store_->resident_bytes();
      s.store = store_->stats();
    } else if (buffer_ != nullptr) {
      s.resident_bytes = capacity_ * stride_ + kGuardTail;
    }
    if (packed_bits_ != 0) s.packed_bytes = count_ * stride_;
    return s;
  }

  // Drops all windows; the geometry (window length, encoding, stride)
  // stays fixed so in-flight searches keep a consistent view across a
  // rebuild. Storage is retained — rebuilds refill to a similar size —
  // and re-zeroed so the padding/guard contract holds for the next epoch.
  void clear() {
    if (store_ != nullptr) {
      store_->reset();
    } else if (buffer_ != nullptr && count_ > 0) {
      std::memset(buffer_.get(), 0, capacity_ * stride_ + kGuardTail);
    }
    count_ = 0;
  }

  // Bytes a `bits`-packed row of `len` residues occupies before padding.
  static constexpr std::size_t payload_bytes(std::size_t len, unsigned bits) {
    return bits == 0 ? len : (len * bits + 7) / 8;
  }

  // Stateless row codec for snapshot tooling (src/verify) — the same
  // transform the arena applies internally. decode_row reads a serialized
  // payload row; encode_row_to writes one (zeroing payload_bytes first).
  static void decode_row(const std::uint8_t* src, seq::Code* out,
                         std::size_t len, unsigned bits) {
    decode_payload(src, out, len, bits);
  }
  static void encode_row_to(std::uint8_t* dst, seq::CodeSpan window,
                            unsigned bits) {
    if (bits == 0) {
      std::memcpy(dst, window.data(), window.size());
      return;
    }
    std::memset(dst, 0, payload_bytes(window.size(), bits));
    for (std::size_t i = 0; i < window.size(); ++i) {
      const std::size_t bit = i * bits;
      dst[bit >> 3] = static_cast<std::uint8_t>(
          dst[bit >> 3] | (window[i] << (bit & 7)));
    }
  }

 private:
  struct AlignedDelete {
    void operator()(std::uint8_t* p) const {
      ::operator delete[](p, std::align_val_t{kBaseAlignment});
    }
  };
  using Buffer = std::unique_ptr<std::uint8_t[], AlignedDelete>;

  static constexpr std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
  }

  void set_geometry() {
    row_bytes_ = payload_bytes(window_length_, packed_bits_);
    stride_ = round_up(row_bytes_,
                       packed_bits_ != 0 ? kPackedRowAlignment : kRowAlignment);
  }

  bool fits(seq::CodeSpan window) const {
    const seq::Code limit = static_cast<seq::Code>(1u << packed_bits_);
    for (const seq::Code c : window) {
      if (c >= limit) return false;
    }
    return true;
  }

  void encode_row(std::uint8_t* dst, seq::CodeSpan window) const {
    encode_row_to(dst, window, packed_bits_);
  }

  static void decode_payload(const std::uint8_t* src, seq::Code* out,
                             std::size_t len, unsigned bits) {
    if (bits == 0) {
      std::memcpy(out, src, len);
      return;
    }
    const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits) - 1);
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t bit = i * bits;
      out[i] = static_cast<seq::Code>((src[bit >> 3] >> (bit & 7)) & mask);
    }
  }

  // Raw row pointer for copy-out. Heap mode: direct. Spill mode: copy
  // into the mutable scratch via the locked store read (the returned
  // pointer aliases thread-local scratch, so callers memcpy immediately).
  const std::uint8_t* raw_row(std::uint32_t slot) const {
    require(slot < count_, "WindowArena: slot out of range");
    if (store_ == nullptr) {
      return buffer_.get() + static_cast<std::size_t>(slot) * stride_;
    }
    thread_local std::vector<std::uint8_t> scratch;
    scratch.resize(stride_);
    store_->read(static_cast<std::size_t>(slot) * stride_, scratch.data(),
                 stride_);
    return scratch.data();
  }

  // Repacks every row one width up (2 -> 4 -> unpacked). Heap mode copies
  // into a fresh buffer; spill mode relocates rows back-to-front in place
  // (new offsets are >= old offsets, so unprocessed rows are never
  // clobbered).
  void widen() {
    const unsigned old_bits = packed_bits_;
    const std::size_t old_stride = stride_;
    packed_bits_ = old_bits == 2 ? 4 : 0;
    set_geometry();
    if (count_ == 0) {
      if (store_ == nullptr) {
        buffer_.reset();
        capacity_ = 0;
      } else {
        store_->ensure_capacity(capacity_ * stride_ + kGuardTail);
      }
      return;
    }
    std::vector<seq::Code> codes(window_length_);
    if (store_ == nullptr) {
      const std::size_t bytes = capacity_ * stride_ + kGuardTail;
      auto* raw = static_cast<std::uint8_t*>(
          ::operator new[](bytes, std::align_val_t{kBaseAlignment}));
      std::memset(raw, 0, bytes);
      for (std::size_t j = 0; j < count_; ++j) {
        decode_payload(buffer_.get() + j * old_stride, codes.data(),
                       window_length_, old_bits);
        encode_row(raw + j * stride_, {codes.data(), codes.size()});
      }
      buffer_.reset(raw);
    } else {
      store_->ensure_capacity(capacity_ * stride_ + kGuardTail);
      std::vector<std::uint8_t> row(stride_, 0);
      std::vector<std::uint8_t> old_row(old_stride);
      for (std::size_t j = count_; j-- > 0;) {
        store_->read(j * old_stride, old_row.data(), old_stride);
        decode_payload(old_row.data(), codes.data(), window_length_, old_bits);
        std::fill(row.begin(), row.end(), 0);
        encode_row(row.data(), {codes.data(), codes.size()});
        store_->write(j * stride_, row.data(), stride_);
      }
    }
  }

  // Geometric growth (slot indices are stable; heap addresses are not —
  // the tree only ever stores slots. Spill addresses *are* stable: growth
  // just extends the backing file).
  void grow() {
    const std::size_t next = capacity_ == 0 ? 1024 : capacity_ * 2;
    if (store_ != nullptr) {
      store_->ensure_capacity(next * stride_ + kGuardTail);
      capacity_ = next;
      return;
    }
    const std::size_t bytes = next * stride_ + kGuardTail;
    auto* raw = static_cast<std::uint8_t*>(
        ::operator new[](bytes, std::align_val_t{kBaseAlignment}));
    std::memset(raw, 0, bytes);
    if (count_ > 0) std::memcpy(raw, buffer_.get(), count_ * stride_);
    buffer_.reset(raw);
    capacity_ = next;
  }

  std::size_t window_length_ = 0;
  std::size_t stride_ = 0;
  std::size_t row_bytes_ = 0;
  std::size_t count_ = 0;
  std::size_t capacity_ = 0;
  unsigned packed_bits_ = 0;
  Buffer buffer_;
  std::unique_ptr<BlockStore> store_;
  std::vector<std::uint8_t> row_scratch_;
};

}  // namespace mendel::vpt
