// Structure-of-arrays storage for fixed-length residue windows.
//
// Every inverted-index block a storage node holds has the same window
// length (the cluster-wide block length k), so the node keeps all window
// payloads in one contiguous code buffer and the vp-tree stores 4-byte
// slot indices instead of per-block heap vectors. Leaf bucket scans then
// walk sequential memory — the hot path the paper's n-NN searches spend
// their time in — instead of chasing a pointer per candidate.
//
// Slots are append-only and stable; compaction (after rebalance evicts
// blocks) is a rebuild into a fresh arena.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/error.h"
#include "src/sequence/sequence.h"

namespace mendel::vpt {

class WindowArena {
 public:
  // Window length is fixed by the first appended window; every later
  // append must match. 0 means "no windows yet".
  std::size_t window_length() const { return window_length_; }
  std::size_t size() const {
    return window_length_ == 0 ? 0 : codes_.size() / window_length_;
  }
  bool empty() const { return codes_.empty(); }

  // Appends a window and returns its slot index.
  std::uint32_t append(seq::CodeSpan window) {
    require(!window.empty(), "WindowArena: empty window");
    if (window_length_ == 0) {
      window_length_ = window.size();
    } else {
      require(window.size() == window_length_,
              "WindowArena: window length mismatch");
    }
    const auto slot = static_cast<std::uint32_t>(size());
    codes_.insert(codes_.end(), window.begin(), window.end());
    return slot;
  }

  const seq::Code* at(std::uint32_t slot) const {
    return codes_.data() + static_cast<std::size_t>(slot) * window_length_;
  }
  seq::CodeSpan span(std::uint32_t slot) const {
    return {at(slot), window_length_};
  }

  // Drops all windows; the length stays fixed so in-flight searches keep a
  // consistent geometry across a rebuild.
  void clear() { codes_.clear(); }

 private:
  std::size_t window_length_ = 0;
  std::vector<seq::Code> codes_;
};

}  // namespace mendel::vpt
