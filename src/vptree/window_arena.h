// Structure-of-arrays storage for fixed-length residue windows.
//
// Every inverted-index block a storage node holds has the same window
// length (the cluster-wide block length k), so the node keeps all window
// payloads in one contiguous code buffer and the vp-tree stores 4-byte
// slot indices instead of per-block heap vectors. Leaf bucket scans then
// walk sequential memory — the hot path the paper's n-NN searches spend
// their time in — instead of chasing a pointer per candidate.
//
// Layout contract for the batched SIMD leaf scans (src/scoring/quantized):
//   * the buffer base is 32-byte aligned;
//   * each slot row starts at slot * stride(), stride() = window_length()
//     rounded up to kRowAlignment, so rows never straddle a growth
//     boundary (growth reallocates the whole buffer geometrically and
//     slots stay index-stable);
//   * a zeroed kGuardTail-byte tail follows the last row, so a 4-byte
//     gather at the final residue of the final row stays in bounds;
//   * padding bytes are always zero (rows are written once, on append).
// StorageNode::audit() asserts the alignment half of this contract.
//
// kRowAlignment is deliberately 8, not the 32-byte vector width: the
// batched kernels address rows through *indexed gathers* (slot * stride),
// which need rows not to straddle the buffer, not to start 32-byte
// aligned — and padding k=8 windows to 32 bytes would quadruple the
// resident set of the very scans this layout exists to speed up.
//
// Slots are append-only and stable; compaction (after rebalance evicts
// blocks) is a rebuild into a fresh arena.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#include "src/common/error.h"
#include "src/sequence/sequence.h"

namespace mendel::vpt {

class WindowArena {
 public:
  static constexpr std::size_t kRowAlignment = 8;
  static constexpr std::size_t kBaseAlignment = 32;
  static constexpr std::size_t kGuardTail = 32;

  // Window length is fixed by the first appended window; every later
  // append must match. 0 means "no windows yet".
  std::size_t window_length() const { return window_length_; }
  // Bytes between consecutive slot rows (window_length() padded up to
  // kRowAlignment).
  std::size_t stride() const { return stride_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Appends a window and returns its slot index.
  std::uint32_t append(seq::CodeSpan window) {
    require(!window.empty(), "WindowArena: empty window");
    if (window_length_ == 0) {
      window_length_ = window.size();
      stride_ = round_up(window_length_, kRowAlignment);
    } else {
      require(window.size() == window_length_,
              "WindowArena: window length mismatch");
    }
    if (count_ == capacity_) grow();
    const auto slot = static_cast<std::uint32_t>(count_++);
    std::memcpy(buffer_.get() + slot * stride_, window.data(),
                window_length_);
    return slot;
  }

  const seq::Code* at(std::uint32_t slot) const {
    return buffer_.get() + static_cast<std::size_t>(slot) * stride_;
  }
  seq::CodeSpan span(std::uint32_t slot) const {
    return {at(slot), window_length_};
  }

  // Buffer base for the batched kernels (slot row j = base() + j *
  // stride()); null while empty.
  const seq::Code* base() const { return buffer_.get(); }

  // Layout-contract check for audits: base alignment and row padding.
  bool layout_ok() const {
    if (buffer_ == nullptr) return count_ == 0;
    const bool aligned =
        reinterpret_cast<std::uintptr_t>(buffer_.get()) % kBaseAlignment == 0;
    return aligned && stride_ % kRowAlignment == 0 &&
           stride_ >= window_length_;
  }

  // Drops all windows; the length stays fixed so in-flight searches keep a
  // consistent geometry across a rebuild. The buffer is retained — rebuilds
  // refill to a similar size — and its padding re-zeroed so the guard
  // contract holds for the next epoch.
  void clear() {
    if (buffer_ != nullptr && count_ > 0) {
      std::memset(buffer_.get(), 0, capacity_ * stride_ + kGuardTail);
    }
    count_ = 0;
  }

 private:
  struct AlignedDelete {
    void operator()(seq::Code* p) const {
      ::operator delete[](p, std::align_val_t{kBaseAlignment});
    }
  };
  using Buffer = std::unique_ptr<seq::Code[], AlignedDelete>;

  static constexpr std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
  }

  // Geometric growth (slot indices are stable, addresses are not — the
  // tree only ever stores slots).
  void grow() {
    const std::size_t next = capacity_ == 0 ? 1024 : capacity_ * 2;
    const std::size_t bytes = next * stride_ + kGuardTail;
    auto* raw = static_cast<seq::Code*>(
        ::operator new[](bytes, std::align_val_t{kBaseAlignment}));
    std::memset(raw, 0, bytes);
    if (count_ > 0) std::memcpy(raw, buffer_.get(), count_ * stride_);
    buffer_.reset(raw);
    capacity_ = next;
  }

  std::size_t window_length_ = 0;
  std::size_t stride_ = 0;
  std::size_t count_ = 0;
  std::size_t capacity_ = 0;
  Buffer buffer_;
};

}  // namespace mendel::vpt
