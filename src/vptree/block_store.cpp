#include "src/vptree/block_store.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/common/error.h"

#if defined(__unix__) || defined(__linux__) || defined(__APPLE__)
#define MENDEL_BLOCK_STORE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#ifndef MAP_NORESERVE
#define MAP_NORESERVE 0
#endif
#endif

namespace mendel::vpt {

#ifdef MENDEL_BLOCK_STORE_MMAP

namespace {

std::size_t page_size() {
  const long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? static_cast<std::size_t>(ps) : 4096;
}

constexpr std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

// An unlinked temporary file: the bytes vanish with the last descriptor,
// so crashed processes leave nothing behind.
int open_backing_file() {
  const char* dir = std::getenv("TMPDIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  path += "/mendel-arena-XXXXXX";
  std::vector<char> tmpl(path.begin(), path.end());
  tmpl.push_back('\0');
  const int fd = ::mkstemp(tmpl.data());
  require(fd >= 0, "BlockStore: cannot create spill file in " + path);
  ::unlink(tmpl.data());
  return fd;
}

}  // namespace

bool BlockStore::supported() { return true; }

BlockStore::BlockStore(std::size_t budget_bytes, std::size_t segment_bytes) {
  require(segment_bytes > 0, "BlockStore: zero segment size");
  segment_bytes_ = round_up(segment_bytes, page_size());
  budget_segments_ =
      std::max<std::size_t>(kMinResidentSegments,
                            (budget_bytes + segment_bytes_ - 1) / segment_bytes_);
  fd_ = open_backing_file();

  // One contiguous PROT_NONE reservation keeps data() stable for the life
  // of the store; segments are later mapped into it with MAP_FIXED. Virtual
  // address space is cheap — halve on failure down to a floor.
  std::size_t want = std::size_t{1} << 36;  // 64 GiB
  const std::size_t floor = std::size_t{64} << 20;
  void* base = MAP_FAILED;
  while (true) {
    base = ::mmap(nullptr, want, PROT_NONE,
                  MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (base != MAP_FAILED || want <= floor) break;
    want /= 2;
  }
  if (base == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("BlockStore: cannot reserve spill address space");
  }
  base_ = static_cast<std::uint8_t*>(base);
  reserved_ = want;
}

BlockStore::~BlockStore() {
  if (base_ != nullptr) ::munmap(base_, reserved_);
  if (fd_ >= 0) ::close(fd_);
}

std::size_t BlockStore::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::size_t BlockStore::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

std::size_t BlockStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_segments_ * segment_bytes_;
}

void BlockStore::ensure_capacity(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t want = round_up(bytes, segment_bytes_);
  if (want <= capacity_) return;
  require(want <= reserved_, "BlockStore: spill reservation exhausted");
  if (::ftruncate(fd_, static_cast<off_t>(want)) != 0) {
    throw IoError("BlockStore: cannot grow spill file to " +
                  std::to_string(want) + " bytes");
  }
  capacity_ = want;
  segments_.resize(capacity_ / segment_bytes_);
}

void BlockStore::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Segment& s : segments_) {
    require(s.pin_count == 0, "BlockStore: reset with pinned segments");
  }
  // Dropping the file to zero length discards every page (resident mappings
  // included); regrowing restores the zero-filled extent, so already-mapped
  // segments simply read zeros afterwards.
  if (capacity_ > 0) {
    if (::ftruncate(fd_, 0) != 0 ||
        ::ftruncate(fd_, static_cast<off_t>(capacity_)) != 0) {
      throw IoError("BlockStore: cannot reset spill file");
    }
  }
}

void BlockStore::fault_in_locked(std::size_t seg) {
  void* addr = base_ + seg * segment_bytes_;
  void* mapped = ::mmap(addr, segment_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_FIXED, fd_,
                        static_cast<off_t>(seg * segment_bytes_));
  if (mapped == MAP_FAILED) {
    throw IoError("BlockStore: cannot map segment " + std::to_string(seg));
  }
  segments_[seg].resident = true;
  ++resident_segments_;
  ++stats_.faults;
}

void BlockStore::evict_locked(std::size_t seg) {
  void* addr = base_ + seg * segment_bytes_;
  // Replacing the MAP_SHARED pages with a PROT_NONE hole writes dirty pages
  // back to the file first, so nothing is lost; touching the hole would
  // fault loudly, which is exactly what the pin protocol exists to prevent.
  void* mapped = ::mmap(addr, segment_bytes_, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED,
                        -1, 0);
  if (mapped == MAP_FAILED) {
    throw IoError("BlockStore: cannot evict segment " + std::to_string(seg));
  }
  segments_[seg].resident = false;
  --resident_segments_;
  ++stats_.evictions;
}

void BlockStore::make_room_locked() {
  while (resident_segments_ >= budget_segments_) {
    std::size_t victim = segments_.size();
    std::uint64_t oldest = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const Segment& s = segments_[i];
      if (!s.resident || s.pin_count > 0) continue;
      if (victim == segments_.size() || s.last_use < oldest) {
        victim = i;
        oldest = s.last_use;
      }
    }
    if (victim == segments_.size()) return;  // everything pinned: run over
    evict_locked(victim);
  }
}

void BlockStore::ensure_resident_locked(std::size_t seg) {
  require(seg < segments_.size(), "BlockStore: segment out of range");
  Segment& s = segments_[seg];
  if (s.resident) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    make_room_locked();
    fault_in_locked(seg);
  }
  s.last_use = ++tick_;
}

void BlockStore::pin_segment(std::size_t seg) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_resident_locked(seg);
  ++segments_[seg].pin_count;
}

void BlockStore::unpin_segment(std::size_t seg) {
  std::lock_guard<std::mutex> lock(mu_);
  require(seg < segments_.size() && segments_[seg].pin_count > 0,
          "BlockStore: unbalanced unpin");
  --segments_[seg].pin_count;
  segments_[seg].last_use = ++tick_;
  // A pinned working set may legitimately run over the budget; once pins
  // drop, trim the excess so the resident set honours it again.
  if (segments_[seg].pin_count == 0) trim_locked();
}

void BlockStore::trim_locked() {
  while (resident_segments_ > budget_segments_) {
    std::size_t victim = segments_.size();
    std::uint64_t oldest = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const Segment& s = segments_[i];
      if (!s.resident || s.pin_count > 0) continue;
      if (victim == segments_.size() || s.last_use < oldest) {
        victim = i;
        oldest = s.last_use;
      }
    }
    if (victim == segments_.size()) return;  // the excess is still pinned
    evict_locked(victim);
  }
}

void BlockStore::read(std::size_t offset, void* dst, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  require(offset + n <= capacity_, "BlockStore: read past capacity");
  auto* out = static_cast<std::uint8_t*>(dst);
  while (n > 0) {
    const std::size_t seg = offset / segment_bytes_;
    const std::size_t within = offset - seg * segment_bytes_;
    const std::size_t chunk = std::min(n, segment_bytes_ - within);
    ensure_resident_locked(seg);
    std::memcpy(out, base_ + offset, chunk);
    offset += chunk;
    out += chunk;
    n -= chunk;
  }
}

void BlockStore::write(std::size_t offset, const void* src, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  require(offset + n <= capacity_, "BlockStore: write past capacity");
  const auto* in = static_cast<const std::uint8_t*>(src);
  while (n > 0) {
    const std::size_t seg = offset / segment_bytes_;
    const std::size_t within = offset - seg * segment_bytes_;
    const std::size_t chunk = std::min(n, segment_bytes_ - within);
    ensure_resident_locked(seg);
    std::memcpy(base_ + offset, in, chunk);
    offset += chunk;
    in += chunk;
    n -= chunk;
  }
}

BlockStoreStats BlockStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool BlockStore::audit(std::string* why) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t resident = 0;
  std::size_t pinned = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    if (s.resident) ++resident;
    if (s.pin_count > 0) {
      ++pinned;
      if (!s.resident) {
        if (why != nullptr) {
          *why += "segment " + std::to_string(i) + " pinned but not resident; ";
        }
        return false;
      }
    }
  }
  if (resident != resident_segments_) {
    if (why != nullptr) {
      *why += "resident account " + std::to_string(resident_segments_) +
              " != mapped " + std::to_string(resident) + "; ";
    }
    return false;
  }
  if (resident > budget_segments_ + pinned) {
    if (why != nullptr) {
      *why += "residency " + std::to_string(resident) + " over budget " +
              std::to_string(budget_segments_) + " without pins; ";
    }
    return false;
  }
  return true;
}

#else  // !MENDEL_BLOCK_STORE_MMAP

// Platforms without POSIX mmap never construct a BlockStore — WindowArena
// checks supported() and stays on all-resident heap storage instead.
bool BlockStore::supported() { return false; }

BlockStore::BlockStore(std::size_t, std::size_t) {
  throw IoError("BlockStore: mmap spill storage is unavailable on this platform");
}

BlockStore::~BlockStore() = default;

std::size_t BlockStore::capacity() const { return 0; }
std::size_t BlockStore::segment_count() const { return 0; }
std::size_t BlockStore::resident_bytes() const { return 0; }
void BlockStore::ensure_capacity(std::size_t) {}
void BlockStore::reset() {}
void BlockStore::pin_segment(std::size_t) {}
void BlockStore::unpin_segment(std::size_t) {}
void BlockStore::read(std::size_t, void*, std::size_t) {}
void BlockStore::write(std::size_t, const void*, std::size_t) {}
BlockStoreStats BlockStore::stats() const { return {}; }
bool BlockStore::audit(std::string*) const { return true; }

#endif  // MENDEL_BLOCK_STORE_MMAP

}  // namespace mendel::vpt
