#include "src/vptree/prefix_tree.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"
#include "src/common/rng.h"

namespace mendel::vpt {

VpPrefixTree::VpPrefixTree(const score::DistanceMatrix* distance,
                           PrefixTreeOptions options)
    : distance_(distance), options_(options) {
  require(distance_ != nullptr, "VpPrefixTree requires a distance matrix");
  require(options_.cutoff_depth >= 1, "cutoff_depth must be >= 1");
  require(options_.cutoff_depth <= 40,
          "cutoff_depth too deep for 64-bit prefixes");
  require(options_.min_partition >= 2, "min_partition must be >= 2");
}

void VpPrefixTree::build(std::vector<Window> sample) {
  require(!sample.empty(), "VpPrefixTree: empty build sample");
  window_length_ = sample.front().size();
  require(window_length_ > 0, "VpPrefixTree: zero-length windows");
  for (const auto& w : sample) {
    require(w.size() == window_length_, "VpPrefixTree: ragged sample");
  }
  Rng rng(options_.seed);
  leaf_prefixes_.clear();
  root_ = build_node(std::move(sample), 1, 1, rng);
  built_ = true;
  std::sort(leaf_prefixes_.begin(), leaf_prefixes_.end());
  leaf_prefixes_.erase(
      std::unique(leaf_prefixes_.begin(), leaf_prefixes_.end()),
      leaf_prefixes_.end());
}

std::unique_ptr<VpPrefixTree::Node> VpPrefixTree::build_node(
    std::vector<Window> sample, std::size_t depth, std::uint64_t prefix,
    Rng& rng) {
  // Stop descending at the cutoff or when the partition is too small to
  // estimate a meaningful median radius.
  if (depth >= options_.cutoff_depth || sample.size() < options_.min_partition) {
    leaf_prefixes_.push_back(prefix);
    return nullptr;
  }

  auto node = std::make_unique<Node>();
  const std::size_t vp_index = rng.below(sample.size());
  std::swap(sample[vp_index], sample.back());
  node->vantage = std::move(sample.back());
  sample.pop_back();

  std::vector<std::pair<double, Window>> tagged;
  tagged.reserve(sample.size());
  for (auto& w : sample) {
    tagged.emplace_back(score::window_distance(*distance_, node->vantage, w),
                        std::move(w));
  }
  const std::size_t mid = tagged.size() / 2;
  std::nth_element(
      tagged.begin(), tagged.begin() + static_cast<std::ptrdiff_t>(mid),
      tagged.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  node->mu = tagged[mid].first;

  std::vector<Window> left_sample, right_sample;
  for (auto& [d, w] : tagged) {
    (d <= node->mu ? left_sample : right_sample).push_back(std::move(w));
  }

  node->left =
      build_node(std::move(left_sample), depth + 1, prefix << 1, rng);
  node->right =
      build_node(std::move(right_sample), depth + 1, (prefix << 1) | 1, rng);
  return node;
}

std::uint64_t VpPrefixTree::hash(seq::CodeSpan window) const {
  require(built(), "VpPrefixTree::hash before build()");
  require(window.size() == window_length_,
          "VpPrefixTree::hash window length mismatch");
  const Node* node = root_.get();  // may be null: degenerate one-prefix tree
  std::uint64_t prefix = 1;
  while (node != nullptr) {
    // Lengths were validated above; vantage windows share window_length_.
    const double d = score::window_distance_unchecked(
        *distance_, window.data(), node->vantage.data(), window.size());
    if (d <= node->mu) {
      prefix = prefix << 1;
      node = node->left.get();
    } else {
      prefix = (prefix << 1) | 1;
      node = node->right.get();
    }
  }
  return prefix;
}

std::vector<std::uint64_t> VpPrefixTree::hash_multi(seq::CodeSpan window,
                                                    double epsilon) const {
  require(built(), "VpPrefixTree::hash_multi before build()");
  require(window.size() == window_length_,
          "VpPrefixTree::hash_multi window length mismatch");
  std::vector<std::uint64_t> out;
  hash_multi_walk(root_.get(), window, 1, epsilon, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void VpPrefixTree::hash_multi_walk(const Node* node, seq::CodeSpan window,
                                   std::uint64_t prefix, double epsilon,
                                   std::vector<std::uint64_t>& out) const {
  if (node == nullptr) {
    out.push_back(prefix);
    return;
  }
  const double d = score::window_distance_unchecked(
      *distance_, window.data(), node->vantage.data(), window.size());
  const bool go_left = d <= node->mu;
  // Strict comparison: epsilon = 0 reproduces exactly the single hash()
  // path (window distances are integer-valued, so ties are common).
  const bool branch = std::abs(d - node->mu) < epsilon;
  if (go_left || branch) {
    hash_multi_walk(node->left.get(), window, prefix << 1, epsilon, out);
  }
  if (!go_left || branch) {
    hash_multi_walk(node->right.get(), window, (prefix << 1) | 1, epsilon,
                    out);
  }
}

std::vector<std::string> VpPrefixTree::validate() const {
  std::vector<std::string> out;
  if (!built_) {
    out.push_back("prefix tree not built");
    return out;
  }
  if (window_length_ == 0) {
    out.push_back("window_length is 0 on a built tree");
    return out;
  }

  // Re-walk the tree exactly as hash() would, collecting every emittable
  // prefix and checking per-node invariants along the way.
  std::vector<std::uint64_t> emitted;
  struct Frame {
    const Node* node;
    std::size_t depth;
    std::uint64_t prefix;
  };
  std::vector<Frame> stack{{root_.get(), 1, 1}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.node == nullptr) {
      emitted.push_back(frame.prefix);
      continue;
    }
    if (frame.depth >= options_.cutoff_depth) {
      out.push_back("vantage node at depth " + std::to_string(frame.depth) +
                    " beyond cutoff " +
                    std::to_string(options_.cutoff_depth));
      continue;  // children would only repeat the violation
    }
    if (frame.node->vantage.size() != window_length_) {
      out.push_back("vantage window length " +
                    std::to_string(frame.node->vantage.size()) + " != " +
                    std::to_string(window_length_) + " at prefix " +
                    std::to_string(frame.prefix));
    }
    if (!(frame.node->mu >= 0.0) || !std::isfinite(frame.node->mu)) {
      out.push_back("non-finite or negative mu at prefix " +
                    std::to_string(frame.prefix));
    }
    stack.push_back({frame.node->left.get(), frame.depth + 1,
                     frame.prefix << 1});
    stack.push_back({frame.node->right.get(), frame.depth + 1,
                     (frame.prefix << 1) | 1});
  }
  std::sort(emitted.begin(), emitted.end());
  emitted.erase(std::unique(emitted.begin(), emitted.end()), emitted.end());

  if (!std::is_sorted(leaf_prefixes_.begin(), leaf_prefixes_.end())) {
    out.push_back("leaf_prefixes not sorted");
  }
  if (emitted != leaf_prefixes_) {
    out.push_back("leaf_prefixes table (" +
                  std::to_string(leaf_prefixes_.size()) +
                  " entries) disagrees with the " +
                  std::to_string(emitted.size()) +
                  " prefixes the traversal emits");
  }
  return out;
}

void VpPrefixTree::encode(CodecWriter& writer) const {
  require(built(), "VpPrefixTree::encode before build()");
  writer.u32(static_cast<std::uint32_t>(options_.cutoff_depth));
  writer.u32(static_cast<std::uint32_t>(options_.min_partition));
  writer.u64(options_.seed);
  writer.u32(static_cast<std::uint32_t>(window_length_));
  writer.vec(leaf_prefixes_,
             [](CodecWriter& w, std::uint64_t p) { w.u64(p); });
  encode_node(writer, root_.get());
}

void VpPrefixTree::encode_node(CodecWriter& writer, const Node* node) {
  if (node == nullptr) {
    writer.boolean(false);
    return;
  }
  writer.boolean(true);
  writer.bytes(std::span<const std::uint8_t>(node->vantage.data(),
                                             node->vantage.size()));
  writer.f64(node->mu);
  encode_node(writer, node->left.get());
  encode_node(writer, node->right.get());
}

VpPrefixTree VpPrefixTree::decode(CodecReader& reader,
                                  const score::DistanceMatrix* distance) {
  PrefixTreeOptions options;
  options.cutoff_depth = reader.u32();
  options.min_partition = reader.u32();
  options.seed = reader.u64();
  VpPrefixTree tree(distance, options);
  tree.window_length_ = reader.u32();
  tree.leaf_prefixes_ = reader.vec<std::uint64_t>(
      [](CodecReader& r) { return r.u64(); });
  tree.root_ = decode_node(reader);
  tree.built_ = true;
  return tree;
}

std::unique_ptr<VpPrefixTree::Node> VpPrefixTree::decode_node(
    CodecReader& reader, std::size_t depth) {
  constexpr std::size_t kMaxDecodeDepth = 512;
  if (depth > kMaxDecodeDepth) {
    throw DecodeError("VpPrefixTree: encoded tree deeper than " +
                      std::to_string(kMaxDecodeDepth) + " levels");
  }
  if (!reader.boolean()) return nullptr;
  auto node = std::make_unique<Node>();
  node->vantage = reader.bytes();
  node->mu = reader.f64();
  node->left = decode_node(reader, depth + 1);
  node->right = decode_node(reader, depth + 1);
  return node;
}

}  // namespace mendel::vpt
