// Bucketed vantage-point tree (Yianilos 1993) with the two optimizations the
// paper adopts in §III-D: leaf buckets and per-child distance bounds.
//
// The tree is a binary partition over a metric space: each internal node
// holds a vantage point and a radius mu; elements closer than mu to the
// vantage point go left, the rest go right. k-NN search walks root to leaf
// shrinking a candidate radius tau and prunes subtrees whose stored
// [min,max] distance interval cannot intersect the tau-ball.
//
// This class is the *bulk-built* tree; see dynamic_vptree.h for the
// insertion-capable wrapper used by storage nodes.
//
// Metric must be callable as double(const T&, const T&) and satisfy the
// metric axioms for search to be exact (tests/vptree_test.cpp checks
// exactness against brute force).
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/common/stats.h"

namespace mendel::vpt {

struct VpTreeOptions {
  // Max elements stored in one leaf bucket (paper §III-D optimization (1)).
  std::size_t bucket_capacity = 32;
  // Vantage-point selection samples this many candidates and keeps the one
  // with the widest distance spread (variance) over a probe sample; 1 means
  // "pick the first", which is cheaper but yields worse balance.
  std::size_t vantage_candidates = 5;
  std::size_t vantage_probes = 24;
  std::uint64_t seed = 0x76707472656531ULL;
};

template <typename T>
struct Neighbor {
  const T* item = nullptr;
  double distance = 0.0;
};

template <typename T, typename Metric>
class VpTree {
 public:
  explicit VpTree(Metric metric, VpTreeOptions options = {})
      : metric_(std::move(metric)), options_(options) {
    require(options_.bucket_capacity > 0, "bucket_capacity must be > 0");
  }

  // Builds the tree over `items` (replacing any previous contents).
  void build(std::vector<T> items) {
    root_.reset();
    size_ = items.size();
    Rng rng(options_.seed);
    if (!items.empty()) {
      root_ = build_node(items.begin(), items.end(), rng);
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Number of tree vertices (internal + leaf).
  std::size_t node_count() const { return count_nodes(root_.get()); }
  std::size_t depth() const { return node_depth(root_.get()); }

  // The n nearest neighbors of `target`, closest first. Fewer than n are
  // returned when the tree holds fewer elements.
  std::vector<Neighbor<T>> nearest(const T& target, std::size_t n) const {
    std::vector<Neighbor<T>> out;
    if (n == 0 || !root_) return out;
    KnnState state{n, {}};
    search(root_.get(), target, state);
    out.reserve(state.heap.size());
    while (!state.heap.empty()) {
      out.push_back(state.heap.top());
      state.heap.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  // All elements within `radius` of target (inclusive), closest first.
  std::vector<Neighbor<T>> within(const T& target, double radius) const {
    std::vector<Neighbor<T>> out;
    if (root_) range_search(root_.get(), target, radius, out);
    std::sort(out.begin(), out.end(),
              [](const Neighbor<T>& a, const Neighbor<T>& b) {
                return a.distance < b.distance;
              });
    return out;
  }

  // Visits every stored element (vantage points and bucket members).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_node(root_.get(), fn);
  }

  // Collects copies of all elements (used by the dynamic tree's rebuilds).
  std::vector<T> collect() const {
    std::vector<T> items;
    items.reserve(size_);
    for_each([&items](const T& item) { items.push_back(item); });
    return items;
  }

 private:
  struct Node {
    // Internal nodes: vantage point + mu + children. Leaves: bucket only
    // (has_vantage false).
    bool has_vantage = false;
    T vantage;
    double mu = 0.0;
    // Distance bounds of each child's elements to *this* vantage point
    // (paper §III-D optimization (2)).
    double left_min = 0.0, left_max = 0.0;
    double right_min = 0.0, right_max = 0.0;
    std::unique_ptr<Node> left, right;
    std::vector<T> bucket;
  };

  struct KnnState {
    std::size_t n;
    struct Farther {
      bool operator()(const Neighbor<T>& a, const Neighbor<T>& b) const {
        return a.distance < b.distance;
      }
    };
    std::priority_queue<Neighbor<T>, std::vector<Neighbor<T>>, Farther> heap;

    double tau() const {
      return heap.size() < n ? std::numeric_limits<double>::infinity()
                             : heap.top().distance;
    }
    void offer(const T* item, double distance) {
      if (heap.size() < n) {
        heap.push({item, distance});
      } else if (distance < heap.top().distance) {
        heap.pop();
        heap.push({item, distance});
      }
    }
  };

  // Detects a Metric with an early-abandoning variant bounded(a, b, bound):
  // it may return any value > bound once the running distance exceeds
  // `bound`, and is exact whenever the true distance is <= bound.
  template <typename M>
  static constexpr bool has_bounded_metric =
      requires(const M& m, const T& a, const T& b, double bound) {
        { m.bounded(a, b, bound) } -> std::convertible_to<double>;
      };

  // Largest distance-to-vantage at which `node` still has anything to
  // offer a search with radius `tau`: the vantage itself matters up to
  // tau, and a child can intersect the tau-ball only while
  // d(target, vantage) <= child_max + tau. Beyond this bound the exact
  // distance is irrelevant — the node and both subtrees are pruned — so
  // the bounded metric may abandon mid-window.
  static double vantage_abandon_bound(const Node& node, double tau) {
    return std::max(node.mu, std::max(node.left_max, node.right_max)) + tau;
  }

  using Iter = typename std::vector<T>::iterator;

  std::unique_ptr<Node> build_node(Iter first, Iter last, Rng& rng) {
    auto node = std::make_unique<Node>();
    const auto count = static_cast<std::size_t>(last - first);
    if (count <= options_.bucket_capacity) {
      node->bucket.assign(std::make_move_iterator(first),
                          std::make_move_iterator(last));
      return node;
    }

    // Select the vantage point: sample candidates, keep the one whose
    // distances to a probe subset have the largest spread.
    const std::size_t vp_index = select_vantage(first, last, rng);
    std::iter_swap(first, first + static_cast<std::ptrdiff_t>(vp_index));
    node->has_vantage = true;
    node->vantage = std::move(*first);
    ++first;

    // Order the remainder by distance to the vantage point; mu = median.
    std::vector<std::pair<double, T>> tagged;
    tagged.reserve(static_cast<std::size_t>(last - first));
    for (auto it = first; it != last; ++it) {
      tagged.emplace_back(metric_(node->vantage, *it), std::move(*it));
    }
    const std::size_t mid = tagged.size() / 2;
    std::nth_element(tagged.begin(),
                     tagged.begin() + static_cast<std::ptrdiff_t>(mid),
                     tagged.end(), [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    node->mu = tagged[mid].first;

    std::vector<T> left_items, right_items;
    left_items.reserve(mid + 1);
    right_items.reserve(tagged.size() - mid);
    double lmin = std::numeric_limits<double>::infinity(), lmax = 0.0;
    double rmin = std::numeric_limits<double>::infinity(), rmax = 0.0;
    for (auto& [d, item] : tagged) {
      if (d <= node->mu) {
        lmin = std::min(lmin, d);
        lmax = std::max(lmax, d);
        left_items.push_back(std::move(item));
      } else {
        rmin = std::min(rmin, d);
        rmax = std::max(rmax, d);
        right_items.push_back(std::move(item));
      }
    }
    node->left_min = left_items.empty() ? 0.0 : lmin;
    node->left_max = left_items.empty() ? 0.0 : lmax;
    node->right_min = right_items.empty() ? 0.0 : rmin;
    node->right_max = right_items.empty() ? 0.0 : rmax;

    if (!left_items.empty()) {
      node->left = build_node(left_items.begin(), left_items.end(), rng);
    }
    if (!right_items.empty()) {
      node->right = build_node(right_items.begin(), right_items.end(), rng);
    }
    return node;
  }

  std::size_t select_vantage(Iter first, Iter last, Rng& rng) {
    const auto count = static_cast<std::size_t>(last - first);
    if (options_.vantage_candidates <= 1) return rng.below(count);
    double best_spread = -1.0;
    std::size_t best_index = 0;
    const std::size_t probes = std::min(options_.vantage_probes, count);
    for (std::size_t c = 0; c < options_.vantage_candidates; ++c) {
      const std::size_t candidate = rng.below(count);
      RunningStats spread;
      for (std::size_t p = 0; p < probes; ++p) {
        const std::size_t probe = rng.below(count);
        spread.add(metric_(*(first + static_cast<std::ptrdiff_t>(candidate)),
                           *(first + static_cast<std::ptrdiff_t>(probe))));
      }
      if (spread.variance() > best_spread) {
        best_spread = spread.variance();
        best_index = candidate;
      }
    }
    return best_index;
  }

  void search(const Node* node, const T& target, KnnState& state) const {
    if (node == nullptr) return;
    if (!node->has_vantage) {
      for (const T& item : node->bucket) {
        if constexpr (has_bounded_metric<Metric>) {
          const double tau = state.tau();
          const double d = metric_.bounded(target, item, tau);
          if (d <= tau) state.offer(&item, d);
        } else {
          state.offer(&item, metric_(target, item));
        }
      }
      return;
    }
    double d;
    if constexpr (has_bounded_metric<Metric>) {
      const double bound = vantage_abandon_bound(*node, state.tau());
      d = metric_.bounded(target, node->vantage, bound);
      // Abandoned: the true distance exceeds the bound, so the vantage is
      // outside tau and the tau-ball clears both children's [*, max]
      // intervals — nothing below this node can be a result.
      if (d > bound) return;
    } else {
      d = metric_(target, node->vantage);
    }
    state.offer(&node->vantage, d);

    // Visit the child on the target's side of mu first; it is more likely
    // to shrink tau before the other side is considered.
    const Node* near = d <= node->mu ? node->left.get() : node->right.get();
    const Node* far = d <= node->mu ? node->right.get() : node->left.get();
    const bool near_is_left = d <= node->mu;

    auto child_may_contain = [&](bool left_child) {
      const double tau = state.tau();
      const double lo = left_child ? node->left_min : node->right_min;
      const double hi = left_child ? node->left_max : node->right_max;
      // The tau-ball around the target, seen from the vantage point, spans
      // [d - tau, d + tau]; the child's elements span [lo, hi].
      return d - tau <= hi && d + tau >= lo;
    };

    if (near != nullptr && child_may_contain(near_is_left)) {
      search(near, target, state);
    }
    if (far != nullptr && child_may_contain(!near_is_left)) {
      search(far, target, state);
    }
  }

  void range_search(const Node* node, const T& target, double radius,
                    std::vector<Neighbor<T>>& out) const {
    if (node == nullptr) return;
    if (!node->has_vantage) {
      for (const T& item : node->bucket) {
        const double d = bucket_distance(target, item, radius);
        if (d <= radius) out.push_back({&item, d});
      }
      return;
    }
    double d;
    if constexpr (has_bounded_metric<Metric>) {
      const double bound = vantage_abandon_bound(*node, radius);
      d = metric_.bounded(target, node->vantage, bound);
      if (d > bound) return;
    } else {
      d = metric_(target, node->vantage);
    }
    if (d <= radius) out.push_back({&node->vantage, d});
    if (node->left != nullptr && d - radius <= node->left_max &&
        d + radius >= node->left_min) {
      range_search(node->left.get(), target, radius, out);
    }
    if (node->right != nullptr && d - radius <= node->right_max &&
        d + radius >= node->right_min) {
      range_search(node->right.get(), target, radius, out);
    }
  }

  double bucket_distance(const T& target, const T& item, double bound) const {
    if constexpr (has_bounded_metric<Metric>) {
      return metric_.bounded(target, item, bound);
    } else {
      return metric_(target, item);
    }
  }

  template <typename Fn>
  void for_each_node(const Node* node, Fn& fn) const {
    if (node == nullptr) return;
    if (node->has_vantage) fn(node->vantage);
    for (const T& item : node->bucket) fn(item);
    for_each_node(node->left.get(), fn);
    for_each_node(node->right.get(), fn);
  }

  std::size_t count_nodes(const Node* node) const {
    if (node == nullptr) return 0;
    return 1 + count_nodes(node->left.get()) + count_nodes(node->right.get());
  }

  std::size_t node_depth(const Node* node) const {
    if (node == nullptr) return 0;
    return 1 + std::max(node_depth(node->left.get()),
                        node_depth(node->right.get()));
  }

  Metric metric_;
  VpTreeOptions options_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace mendel::vpt
