// Memory-mapped segment store backing out-of-core WindowArenas.
//
// A BlockStore is a flat byte array addressed exactly like the arena's heap
// buffer (row j lives at data() + j * stride), but only a bounded "hot set"
// of fixed-size segments is resident at any time. The full contents live in
// an unlinked temporary file; segments are mapped into a single contiguous
// PROT_NONE virtual reservation with MAP_FIXED, so data() never moves and
// slot * stride addressing stays valid across faults and evictions.
//
// Residency protocol:
//   * pin_segment() faults a segment in (if needed) and marks it
//     unevictable; batched leaf-scan kernels only ever touch pinned
//     segments, so they cannot fault — or worse, hit a PROT_NONE hole —
//     mid-scan.
//   * read()/write() fault segments in transparently and copy under the
//     store lock, so item-wise callers never hold raw pointers into
//     evictable memory.
//   * When residency would exceed the byte budget, the least-recently-used
//     unpinned segment is evicted: its pages are replaced by a PROT_NONE
//     anonymous mapping (the file keeps the bytes; MAP_SHARED writeback
//     makes eviction lossless). If every resident segment is pinned the
//     store runs over budget rather than stalling — audits allow
//     resident <= budget + pinned.
//
// The reservation base is page-aligned, which satisfies (and exceeds) the
// arena's 32-byte base-alignment contract; ftruncate() zero-fills new file
// extents, which preserves the zeroed-padding/guard-tail contract without
// explicit memsets. Capacity is always rounded up to a whole segment so the
// guard tail past the last row is mappable and pinnable.
//
// All state transitions happen under one mutex; concurrent searcher threads
// may pin/read simultaneously. Pinned segment memory may be read without
// the lock — eviction never selects a pinned segment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mendel::vpt {

struct BlockStoreStats {
  std::uint64_t hits = 0;       // pin/fault requests served by a resident segment
  std::uint64_t misses = 0;     // requests that found the segment evicted
  std::uint64_t evictions = 0;  // segments dropped to respect the budget
  std::uint64_t faults = 0;     // file segments mapped in (initial or re-fault)
};

class BlockStore {
 public:
  static constexpr std::size_t kDefaultSegmentBytes = 256 * 1024;
  // Floor on the hot set: item-wise distance calls hold decoded copies of
  // at most two rows plus bookkeeping, but keeping a handful of segments
  // resident avoids pathological thrash when the configured budget is
  // smaller than a single working set.
  static constexpr std::size_t kMinResidentSegments = 8;

  // True when the platform has the mmap machinery this store needs;
  // callers fall back to all-resident heap storage when false.
  static bool supported();

  // budget_bytes: target resident size (clamped up to kMinResidentSegments
  // whole segments). segment_bytes is rounded up to the page size.
  explicit BlockStore(std::size_t budget_bytes,
                      std::size_t segment_bytes = kDefaultSegmentBytes);
  ~BlockStore();
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  // Stable base of the reservation; byte i of the store is data() + i.
  std::uint8_t* data() const { return base_; }

  std::size_t segment_bytes() const { return segment_bytes_; }
  std::size_t capacity() const;
  std::size_t budget_bytes() const { return budget_segments_ * segment_bytes_; }
  std::size_t resident_bytes() const;

  // Grows the backing file (zero-filled) so bytes [0, bytes) are
  // addressable. Rounded up to a whole segment. Never shrinks.
  void ensure_capacity(std::size_t bytes);

  // Drops all contents back to zero bytes (the capacity and mappings are
  // kept). Requires no segment be pinned.
  void reset();

  std::size_t segment_of(std::size_t offset) const {
    return offset / segment_bytes_;
  }
  std::size_t segment_count() const;

  // Faults the segment in if needed and makes it unevictable until the
  // matching unpin_segment(). Pins nest.
  void pin_segment(std::size_t seg);
  void unpin_segment(std::size_t seg);

  // Copy in/out with transparent fault-in; the copy runs under the store
  // lock so the bytes cannot be evicted mid-copy.
  void read(std::size_t offset, void* dst, std::size_t n);
  void write(std::size_t offset, const void* src, std::size_t n);

  BlockStoreStats stats() const;

  // Residency invariants: the resident-segment account matches the mapping
  // flags, no pinned segment is evicted, and residency only exceeds the
  // budget by pinned segments. Appends a reason to *why on failure.
  bool audit(std::string* why) const;

 private:
  struct Segment {
    std::uint32_t pin_count = 0;
    bool resident = false;
    std::uint64_t last_use = 0;
  };

  void fault_in_locked(std::size_t seg);
  void evict_locked(std::size_t seg);
  void make_room_locked();
  void trim_locked();
  void ensure_resident_locked(std::size_t seg);

  std::size_t segment_bytes_ = 0;
  std::size_t budget_segments_ = 0;
  int fd_ = -1;
  std::uint8_t* base_ = nullptr;
  std::size_t reserved_ = 0;

  mutable std::mutex mu_;
  std::size_t capacity_ = 0;  // bytes backed by the file (segment multiple)
  std::vector<Segment> segments_;
  std::size_t resident_segments_ = 0;
  std::uint64_t tick_ = 0;
  BlockStoreStats stats_;
};

}  // namespace mendel::vpt
