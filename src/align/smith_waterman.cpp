#include "src/align/smith_waterman.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <vector>

namespace mendel::align {

namespace {

// Traceback directions, 2 bits per DP matrix packed in one byte per cell.
enum : std::uint8_t {
  kStop = 0,
  kFromM = 1,
  kFromIx = 2,  // gap in subject (moving along query)
  kFromIy = 3,  // gap in query (moving along subject)
};

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

struct Cell {
  int m = 0;
  int ix = kNegInf;
  int iy = kNegInf;
};

// Appends run-length-encoded op to a CIGAR string being built backwards;
// caller reverses runs at the end.
void append_run(std::string& cigar, char op, std::size_t count) {
  cigar += std::to_string(count);
  cigar += op;
}

}  // namespace

GappedAlignment smith_waterman(seq::CodeSpan query, seq::CodeSpan subject,
                               const score::ScoringMatrix& scores,
                               score::GapPenalties gaps) {
  GappedAlignment result;
  const std::size_t m = query.size();
  const std::size_t n = subject.size();
  if (m == 0 || n == 0) return result;

  const int open = gaps.open + gaps.extend;  // cost of the first gap column
  const int extend = gaps.extend;

  std::vector<Cell> prev(n + 1), curr(n + 1);
  // tb[q][s] packs (M-source << 0) | (Ix-source << 2) | (Iy-source << 4);
  // sources use the enum above. M-source kStop means the alignment starts
  // here (the local-alignment zero).
  std::vector<std::uint8_t> tb((m + 1) * (n + 1), 0);

  int best = 0;
  std::size_t best_q = 0, best_s = 0;

  for (std::size_t q = 1; q <= m; ++q) {
    curr[0] = Cell{};
    for (std::size_t s = 1; s <= n; ++s) {
      const int sub = scores.score(query[q - 1], subject[s - 1]);
      std::uint8_t packed = 0;

      // Ix: gap in subject — came from row above (q-1, s).
      const int ix_open = prev[s].m - open;
      const int ix_ext = prev[s].ix - extend;
      int ix;
      if (ix_ext >= ix_open) {
        ix = ix_ext;
        packed |= kFromIx << 2;
      } else {
        ix = ix_open;
        packed |= kFromM << 2;
      }

      // Iy: gap in query — came from column left (q, s-1).
      const int iy_open = curr[s - 1].m - open;
      const int iy_ext = curr[s - 1].iy - extend;
      int iy;
      if (iy_ext >= iy_open) {
        iy = iy_ext;
        packed |= kFromIy << 4;
      } else {
        iy = iy_open;
        packed |= kFromM << 4;
      }

      // M: diagonal move from any of the three states, or fresh start.
      // diag.m is always >= 0 (local alignment clamp), so the fresh-start
      // option max(0, sub) is subsumed by best_prev + sub with kStop marking
      // where the alignment begins.
      const Cell& diag = prev[s - 1];
      int best_prev = diag.m;
      std::uint8_t m_src = kFromM;
      if (diag.ix > best_prev) {
        best_prev = diag.ix;
        m_src = kFromIx;
      }
      if (diag.iy > best_prev) {
        best_prev = diag.iy;
        m_src = kFromIy;
      }
      int mm = best_prev + sub;
      if (mm <= 0) {
        mm = 0;
        m_src = kStop;  // dead cell
      } else if (m_src == kFromM && diag.m == 0) {
        m_src = kStop;  // local alignment starts at this residue pair
      }
      packed |= m_src;

      curr[s] = Cell{mm, ix, iy};
      tb[q * (n + 1) + s] = packed;

      if (mm > best) {
        best = mm;
        best_q = q;
        best_s = s;
      }
    }
    std::swap(prev, curr);
  }

  if (best == 0) return result;

  // Traceback from the best M cell.
  std::size_t q = best_q, s = best_s;
  std::uint8_t state = kFromM;
  std::string rev_cigar;
  char run_op = 0;
  std::size_t run_len = 0;
  auto push_op = [&](char op) {
    if (op == run_op) {
      ++run_len;
      return;
    }
    if (run_len > 0) append_run(rev_cigar, run_op, run_len);
    run_op = op;
    run_len = 1;
  };

  std::size_t identities = 0, columns = 0, gap_columns = 0;
  while (q > 0 && s > 0) {
    const std::uint8_t packed = tb[q * (n + 1) + s];
    if (state == kFromM) {
      const std::uint8_t src = packed & 0x3;
      ++columns;
      if (query[q - 1] == subject[s - 1]) ++identities;
      push_op('M');
      --q;
      --s;
      if (src == kStop) break;
      state = src;
    } else if (state == kFromIx) {
      const std::uint8_t src = (packed >> 2) & 0x3;
      ++columns;
      ++gap_columns;
      push_op('D');  // gap in subject: query residue consumed
      --q;
      state = src == kFromIx ? kFromIx : kFromM;
    } else {  // kFromIy
      const std::uint8_t src = (packed >> 4) & 0x3;
      ++columns;
      ++gap_columns;
      push_op('I');  // gap in query: subject residue consumed
      --s;
      state = src == kFromIy ? kFromIy : kFromM;
    }
  }
  if (run_len > 0) append_run(rev_cigar, run_op, run_len);

  // rev_cigar holds runs emitted end-to-start; rebuild forward order.
  std::string cigar;
  {
    // Parse runs from rev_cigar (count then op, already per-run) and
    // reverse the run sequence.
    std::vector<std::pair<std::size_t, char>> runs;
    std::size_t i = 0;
    while (i < rev_cigar.size()) {
      std::size_t count = 0;
      while (i < rev_cigar.size() &&
             std::isdigit(static_cast<unsigned char>(rev_cigar[i])) != 0) {
        count = count * 10 + static_cast<std::size_t>(rev_cigar[i] - '0');
        ++i;
      }
      runs.emplace_back(count, rev_cigar[i]);
      ++i;
    }
    for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
      cigar += std::to_string(it->first);
      cigar += it->second;
    }
  }

  result.hsp.q_begin = q;
  result.hsp.q_end = best_q;
  result.hsp.s_begin = s;
  result.hsp.s_end = best_s;
  result.hsp.score = best;
  result.columns = columns;
  result.identities = identities;
  result.gap_columns = gap_columns;
  result.cigar = std::move(cigar);
  return result;
}

}  // namespace mendel::align
