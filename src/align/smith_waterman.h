// Full Smith–Waterman local alignment with affine gaps and traceback.
//
// O(m*n) time and memory — this is the exact reference aligner. The Mendel
// pipeline and the BLAST baseline use the banded variant (banded.h) on their
// hot paths; this one serves as (a) the correctness oracle in tests
// (banded(band = max) must equal SW) and (b) the final rescoring pass for
// reported alignments when callers ask for exact results.
#pragma once

#include "src/align/alignment.h"
#include "src/scoring/matrix.h"

namespace mendel::align {

// Best-scoring local alignment of `query` vs `subject`. Empty inputs yield
// a zero-score, zero-length alignment.
GappedAlignment smith_waterman(seq::CodeSpan query, seq::CodeSpan subject,
                               const score::ScoringMatrix& scores,
                               score::GapPenalties gaps);

}  // namespace mendel::align
