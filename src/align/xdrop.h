// X-drop gapped extension (Zhang et al. / Gapped BLAST style).
//
// Unlike the fixed-band aligner (banded.h), the X-drop DP lets the explored
// region grow and shrink adaptively: per anti-diagonal, cells whose score
// falls more than X below the best score seen so far are pruned, so the
// band follows the alignment instead of being fixed around a seed diagonal.
// This is what NCBI BLAST's gapped stage actually does; the fixed band is
// the paper's simpler parameterization (Table I parameter l).
//
// The extension is *seeded*: it grows from an anchor pair (q0, s0) in both
// directions and reports the best local alignment through that pair. Score
// is exact for alignments that never leave the explored region (guaranteed
// when their score never dips more than X below the running best — the
// same guarantee BLAST gives). bench/micro_pipeline compares its cost and
// tests/xdrop_test.cpp pins it against full Smith–Waterman.
#pragma once

#include "src/align/alignment.h"
#include "src/scoring/matrix.h"

namespace mendel::align {

struct XDropParams {
  // Prune cells scoring more than this below the best-so-far.
  int x_drop = 40;
};

// Best gapped alignment through the anchor pair (query[q0], subject[s0]).
// The anchor residues themselves are always part of the alignment. Returns
// score and spans; no traceback/CIGAR (the callers that need column detail
// re-run the banded aligner on the found spans).
Hsp xdrop_gapped_extend(seq::CodeSpan query, seq::CodeSpan subject,
                        std::size_t q0, std::size_t s0,
                        const score::ScoringMatrix& scores,
                        score::GapPenalties gaps,
                        const XDropParams& params = {});

}  // namespace mendel::align
