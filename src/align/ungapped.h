// X-drop ungapped extension (the seed-and-extend inner loop of BLAST and of
// Mendel's anchor expansion).
//
// From a seed match of `seed_len` residues at (q_seed, s_seed) the extension
// walks outward in both directions accumulating substitution scores and
// stops in a direction once the running score falls more than `x_drop`
// below the best seen ("until the accumulated score begins to decrease",
// paper §II-B; the x_drop slack is the standard BLAST refinement).
#pragma once

#include "src/align/alignment.h"
#include "src/scoring/matrix.h"

namespace mendel::align {

struct UngappedParams {
  int x_drop = 20;
};

// Returns the maximal-scoring ungapped HSP containing the seed. The seed
// itself must lie within both spans; throws InvalidArgument otherwise.
Hsp extend_ungapped(seq::CodeSpan query, seq::CodeSpan subject,
                    std::size_t q_seed, std::size_t s_seed,
                    std::size_t seed_len, const score::ScoringMatrix& scores,
                    const UngappedParams& params = {});

// Score of an ungapped pairing of two equal-length windows.
int window_score(seq::CodeSpan a, seq::CodeSpan b,
                 const score::ScoringMatrix& scores);

}  // namespace mendel::align
