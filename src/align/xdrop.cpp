#include "src/align/xdrop.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "src/common/error.h"

namespace mendel::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

struct Extension {
  int score = 0;       // best alignment score of the extension
  std::size_t q = 0;   // query residues consumed at the best end
  std::size_t s = 0;   // subject residues consumed at the best end
};

// One-sided X-drop extension: global start at the spans' origin, free end.
// Returns the best score over all cells ending in an aligned pair, with the
// per-anti-diagonal X-drop pruning adapting the explored window.
Extension one_sided(seq::CodeSpan query, seq::CodeSpan subject,
                    const score::ScoringMatrix& scores,
                    score::GapPenalties gaps, int x_drop) {
  Extension best;
  if (query.empty() || subject.empty()) return best;

  const int open = gaps.open + gaps.extend;
  const int extend = gaps.extend;

  // Row-indexed DP with an active column window [lo, hi]; columns outside
  // the window are pruned (score < best - X). Rows consume query residues.
  struct Cell {
    int m = kNegInf;
    int ix = kNegInf;  // gap in subject (consumed query residue last)
    int iy = kNegInf;  // gap in query (consumed subject residue last)
    int value() const { return std::max({m, ix, iy}); }
  };

  std::size_t lo = 0;
  std::size_t hi = std::min<std::size_t>(subject.size(), 1);
  // prev[j - prev_lo] is row i-1. Row 0: M(0,0)=0, leading gaps open Iy.
  std::size_t prev_lo = 0;
  std::vector<Cell> prev;
  prev.reserve(64);
  {
    Cell origin;
    origin.m = 0;
    prev.push_back(origin);
    // Row 0 leading gaps (gap in query): prune by X as we go.
    for (std::size_t j = 1; j <= subject.size(); ++j) {
      Cell cell;
      cell.iy = -open - static_cast<int>(j - 1) * extend;
      if (cell.iy < -x_drop) break;
      prev.push_back(cell);
    }
  }
  std::size_t prev_hi = prev.size();  // exclusive, columns [0, prev_hi)

  for (std::size_t i = 1; i <= query.size(); ++i) {
    // This row's candidate window: one wider than the previous row's on
    // both sides (a row can extend past the previous row's survivors by at
    // most one aligned/gapped step on each edge).
    lo = prev_lo;
    hi = std::min(subject.size() + 1, prev_hi + 1);
    if (lo >= hi) break;

    std::vector<Cell> curr(hi - lo);
    bool any_alive = false;
    std::size_t first_alive = hi, last_alive = lo;

    for (std::size_t j = lo; j < hi; ++j) {
      Cell cell;
      const auto at_prev = [&](std::size_t col) -> const Cell* {
        if (col < prev_lo || col >= prev_hi) return nullptr;
        return &prev[col - prev_lo];
      };
      // Ix: from (i-1, j).
      if (const Cell* up = at_prev(j)) {
        const int from_m = up->m == kNegInf ? kNegInf : up->m - open;
        const int from_ix = up->ix == kNegInf ? kNegInf : up->ix - extend;
        cell.ix = std::max(from_m, from_ix);
      }
      // Iy: from (i, j-1).
      if (j > lo) {
        const Cell& left = curr[j - lo - 1];
        const int from_m = left.m == kNegInf ? kNegInf : left.m - open;
        const int from_iy = left.iy == kNegInf ? kNegInf : left.iy - extend;
        cell.iy = std::max(from_m, from_iy);
      }
      // M: from (i-1, j-1) plus the substitution (j = 0 column has no
      // aligned pair).
      if (j > 0) {
        if (const Cell* diag = at_prev(j - 1)) {
          const int prev_best = diag->value();
          if (prev_best != kNegInf) {
            cell.m = prev_best + scores.score(query[i - 1], subject[j - 1]);
          }
        }
      }

      if (cell.m > best.score) {
        best.score = cell.m;
        best.q = i;
        best.s = j;
      }
      // X-drop prune against the global best.
      if (cell.value() < best.score - x_drop) {
        cell = Cell{};  // dead
      } else if (cell.value() != kNegInf) {
        any_alive = true;
        first_alive = std::min(first_alive, j);
        last_alive = std::max(last_alive, j);
      }
      curr[j - lo] = cell;
    }
    if (!any_alive) break;

    // Shrink the window to the surviving cells.
    prev_lo = first_alive;
    prev_hi = last_alive + 1;
    prev.assign(curr.begin() + static_cast<std::ptrdiff_t>(first_alive - lo),
                curr.begin() + static_cast<std::ptrdiff_t>(last_alive + 1 -
                                                           lo));
  }
  return best;
}

}  // namespace

Hsp xdrop_gapped_extend(seq::CodeSpan query, seq::CodeSpan subject,
                        std::size_t q0, std::size_t s0,
                        const score::ScoringMatrix& scores,
                        score::GapPenalties gaps, const XDropParams& params) {
  require(q0 < query.size() && s0 < subject.size(),
          "xdrop_gapped_extend: anchor out of range");
  require(params.x_drop > 0, "xdrop_gapped_extend: x_drop must be > 0");

  const int anchor_score = scores.score(query[q0], subject[s0]);

  // Forward: residues strictly after the anchor.
  const Extension forward =
      one_sided(query.subspan(q0 + 1), subject.subspan(s0 + 1), scores,
                gaps, params.x_drop);

  // Backward: residues strictly before the anchor, reversed.
  std::vector<seq::Code> q_rev(query.begin(),
                               query.begin() + static_cast<std::ptrdiff_t>(q0));
  std::vector<seq::Code> s_rev(
      subject.begin(), subject.begin() + static_cast<std::ptrdiff_t>(s0));
  std::reverse(q_rev.begin(), q_rev.end());
  std::reverse(s_rev.begin(), s_rev.end());
  const Extension backward =
      one_sided(q_rev, s_rev, scores, gaps, params.x_drop);

  Hsp hsp;
  hsp.q_begin = q0 - backward.q;
  hsp.q_end = q0 + 1 + forward.q;
  hsp.s_begin = s0 - backward.s;
  hsp.s_end = s0 + 1 + forward.s;
  hsp.score = anchor_score + forward.score + backward.score;
  return hsp;
}

}  // namespace mendel::align
