#include "src/align/banded.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "src/align/banded_detail.h"
#include "src/common/simd.h"

namespace mendel::align {

using detail::kFromIx;
using detail::kFromIy;
using detail::kFromM;
using detail::kNegInf;
using detail::kStop;

namespace {

struct Cell {
  int m = kNegInf;
  int ix = kNegInf;
  int iy = kNegInf;
};

}  // namespace

GappedAlignment banded_local_align(seq::CodeSpan query, seq::CodeSpan subject,
                                   const score::ScoringMatrix& scores,
                                   score::GapPenalties gaps,
                                   const BandedParams& params) {
  if (detail::banded_simd_compiled() &&
      simd::active_level() == simd::Level::kAVX2) {
    return detail::banded_local_align_simd(query, subject, scores, gaps,
                                           params);
  }
  return banded_local_align_reference(query, subject, scores, gaps, params);
}

GappedAlignment banded_local_align_reference(seq::CodeSpan query,
                                             seq::CodeSpan subject,
                                             const score::ScoringMatrix& scores,
                                             score::GapPenalties gaps,
                                             const BandedParams& params) {
  GappedAlignment result;
  const std::size_t m = query.size();
  const std::size_t n = subject.size();
  if (m == 0 || n == 0) return result;

  const int open = gaps.open + gaps.extend;
  const int extend = gaps.extend;
  const auto radius = static_cast<std::ptrdiff_t>(params.band_radius);
  // Band width in cells per row. Index b maps to subject position
  // s = q + center - radius + b (1-based DP coordinates).
  const std::size_t width = static_cast<std::size_t>(2 * radius + 1);

  std::vector<Cell> prev(width), curr(width);
  std::vector<std::uint8_t> tb((m + 1) * width, 0);

  auto band_start = [&](std::ptrdiff_t q) {
    return q + params.center_diag - radius;
  };

  int best = 0;
  std::size_t best_q = 0;
  std::ptrdiff_t best_s = 0;

  // Row 0: only matters as the diagonal source for row 1, where the
  // fresh-start rule already covers it; keep all cells dead.
  for (auto& c : prev) c = Cell{};

  for (std::size_t q = 1; q <= m; ++q) {
    const std::ptrdiff_t s_lo = band_start(static_cast<std::ptrdiff_t>(q));
    for (std::size_t b = 0; b < width; ++b) {
      curr[b] = Cell{};
      const std::ptrdiff_t s = s_lo + static_cast<std::ptrdiff_t>(b);
      if (s < 1 || s > static_cast<std::ptrdiff_t>(n)) continue;

      const int sub = scores.score(
          query[q - 1], subject[static_cast<std::size_t>(s - 1)]);
      std::uint8_t packed = 0;

      // Ix from (q-1, s): previous row, band index b+1 (offset shifts by 1).
      int ix = kNegInf;
      if (b + 1 < width) {
        const Cell& up = prev[b + 1];
        const int ix_open = up.m == kNegInf ? kNegInf : up.m - open;
        const int ix_ext = up.ix == kNegInf ? kNegInf : up.ix - extend;
        if (ix_ext >= ix_open) {
          ix = ix_ext;
          packed |= kFromIx << 2;
        } else {
          ix = ix_open;
          packed |= kFromM << 2;
        }
      }

      // Iy from (q, s-1): same row, band index b-1.
      int iy = kNegInf;
      if (b >= 1) {
        const Cell& left = curr[b - 1];
        const int iy_open = left.m == kNegInf ? kNegInf : left.m - open;
        const int iy_ext = left.iy == kNegInf ? kNegInf : left.iy - extend;
        if (iy_ext >= iy_open) {
          iy = iy_ext;
          packed |= kFromIy << 4;
        } else {
          iy = iy_open;
          packed |= kFromM << 4;
        }
      }

      // M from (q-1, s-1): previous row, same band index b. Out-of-band or
      // dead diagonal means a fresh start (contribution 0, kStop).
      const Cell& diag = prev[b];
      int best_prev = 0;
      std::uint8_t m_src = kStop;
      const std::ptrdiff_t diag_s = s - 1;
      const bool diag_in_range =
          diag_s >= 0 && diag_s <= static_cast<std::ptrdiff_t>(n);
      if (diag_in_range) {
        if (diag.m != kNegInf && diag.m > best_prev) {
          best_prev = diag.m;
          m_src = kFromM;
        }
        if (diag.ix != kNegInf && diag.ix > best_prev) {
          best_prev = diag.ix;
          m_src = kFromIx;
        }
        if (diag.iy != kNegInf && diag.iy > best_prev) {
          best_prev = diag.iy;
          m_src = kFromIy;
        }
      }
      int mm = best_prev + sub;
      if (mm <= 0) {
        mm = kNegInf;  // dead: local alignments never keep negative prefixes
        m_src = kStop;
        packed &= ~0x3u;
      }
      packed |= m_src;

      curr[b] = Cell{mm, ix, iy};
      tb[q * width + b] = packed;

      if (mm != kNegInf && mm > best) {
        best = mm;
        best_q = q;
        best_s = s;
      }
    }
    std::swap(prev, curr);
  }

  return detail::banded_traceback(query, subject, tb, width,
                                  params.center_diag, radius, best, best_q,
                                  best_s);
}

}  // namespace mendel::align
