#include "src/align/render.h"

#include <cctype>
#include <iomanip>
#include <sstream>
#include <vector>

#include "src/common/error.h"

namespace mendel::align {

namespace {

// Fixed one-decimal rendering for scores/identities.
std::string fixed1(double v) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1) << v;
  return out.str();
}

struct Column {
  char query = '-';
  char match = ' ';
  char subject = '-';
  bool consumes_q = false;
  bool consumes_s = false;
};

std::vector<Column> walk_cigar(const AlignmentHit& hit, seq::CodeSpan query,
                               seq::CodeSpan subject_segment,
                               seq::Alphabet alphabet,
                               const score::ScoringMatrix& scores) {
  std::vector<Column> columns;
  std::size_t q = hit.alignment.hsp.q_begin;
  std::size_t s = 0;  // offset into subject_segment
  const std::string& cigar = hit.alignment.cigar;
  std::size_t i = 0;
  while (i < cigar.size()) {
    std::size_t count = 0;
    while (i < cigar.size() &&
           std::isdigit(static_cast<unsigned char>(cigar[i])) != 0) {
      count = count * 10 + static_cast<std::size_t>(cigar[i] - '0');
      ++i;
    }
    require(i < cigar.size(), "render_alignment: malformed CIGAR");
    const char op = cigar[i++];
    for (std::size_t c = 0; c < count; ++c) {
      Column column;
      if (op == 'M') {
        require(q < query.size() && s < subject_segment.size(),
                "render_alignment: CIGAR exceeds provided residues");
        const seq::Code qc = query[q], sc = subject_segment[s];
        column.query = seq::decode(alphabet, qc);
        column.subject = seq::decode(alphabet, sc);
        if (qc == sc) {
          column.match = column.query;
        } else if (scores.score(qc, sc) > 0) {
          column.match = '+';
        }
        column.consumes_q = column.consumes_s = true;
      } else if (op == 'D') {  // gap in subject
        require(q < query.size(), "render_alignment: CIGAR exceeds query");
        column.query = seq::decode(alphabet, query[q]);
        column.subject = '-';
        column.consumes_q = true;
      } else if (op == 'I') {  // gap in query
        require(s < subject_segment.size(),
                "render_alignment: CIGAR exceeds subject segment");
        column.query = '-';
        column.subject = seq::decode(alphabet, subject_segment[s]);
        column.consumes_s = true;
      } else {
        throw InvalidArgument(std::string("render_alignment: unknown CIGAR "
                                          "op '") +
                              op + "'");
      }
      if (column.consumes_q) ++q;
      if (column.consumes_s) ++s;
      columns.push_back(column);
    }
  }
  return columns;
}

}  // namespace

std::string render_alignment(const AlignmentHit& hit, seq::CodeSpan query,
                             seq::CodeSpan subject_segment,
                             seq::Alphabet alphabet,
                             const score::ScoringMatrix& scores,
                             const RenderOptions& options) {
  require(options.width > 0, "render_alignment: zero width");
  require(subject_segment.size() == hit.alignment.hsp.s_len(),
          "render_alignment: subject segment must cover [s_begin, s_end)");
  const auto columns =
      walk_cigar(hit, query, subject_segment, alphabet, scores);

  std::ostringstream out;
  if (options.show_header) {
    out << "> " << hit.subject_name << "\n"
        << "  score " << hit.alignment.hsp.score << ", bits "
        << fixed1(hit.bit_score) << ", E " << hit.evalue << ", identity "
        << hit.alignment.identities << "/" << hit.alignment.columns << ", "
        << "gaps " << hit.alignment.gap_columns << "\n\n";
  }

  std::size_t q_pos = hit.alignment.hsp.q_begin;
  std::size_t s_pos = hit.alignment.hsp.s_begin;
  for (std::size_t start = 0; start < columns.size();
       start += options.width) {
    const std::size_t end =
        std::min(columns.size(), start + options.width);
    std::string q_line, m_line, s_line;
    std::size_t q_consumed = 0, s_consumed = 0;
    for (std::size_t c = start; c < end; ++c) {
      q_line += columns[c].query;
      m_line += columns[c].match;
      s_line += columns[c].subject;
      q_consumed += columns[c].consumes_q ? 1 : 0;
      s_consumed += columns[c].consumes_s ? 1 : 0;
    }
    // 1-based inclusive coordinates, NCBI style.
    out << "Query  " << q_pos + 1 << "\t" << q_line << "\t"
        << q_pos + q_consumed << "\n";
    out << "       "
        << "\t" << m_line << "\n";
    out << "Sbjct  " << s_pos + 1 << "\t" << s_line << "\t"
        << s_pos + s_consumed << "\n\n";
    q_pos += q_consumed;
    s_pos += s_consumed;
  }
  return out.str();
}

std::string render_tabular(const std::string& query_name,
                           const AlignmentHit& hit) {
  const auto& a = hit.alignment;
  const std::size_t mismatches =
      a.columns - a.identities - a.gap_columns;
  std::ostringstream out;
  out << query_name << '\t' << hit.subject_name << '\t'
      << fixed1(a.percent_identity() * 100.0) << '\t' << a.columns << '\t'
      << mismatches << '\t' << a.gap_columns << '\t' << a.hsp.q_begin + 1
      << '\t' << a.hsp.q_end << '\t' << a.hsp.s_begin + 1 << '\t'
      << a.hsp.s_end << '\t' << hit.evalue << '\t'
      << fixed1(hit.bit_score);
  return out.str();
}

}  // namespace mendel::align
