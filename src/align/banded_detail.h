// Shared internals of the banded local aligner: the packed traceback cell
// encoding and the traceback walk itself. Both the scalar reference
// (banded.cpp) and the striped SIMD row fill (banded_simd.cpp) produce the
// same (m + 1) * width traceback matrix layout, so they share one decoder —
// and the exactness fuzz test can compare their outputs cell for cell.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/align/alignment.h"
#include "src/sequence/sequence.h"

namespace mendel::align::detail {

enum : std::uint8_t {
  kStop = 0,
  kFromM = 1,
  kFromIx = 2,  // gap in subject (consumes query residue)
  kFromIy = 3,  // gap in query (consumes subject residue)
};

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Traceback over the packed band matrix: bits 0-1 are the M source, bits
// 2-3 the Ix source, bits 4-5 the Iy source. `band_start_of(q)` = q +
// center_diag - radius maps band index b to subject position s =
// band_start_of(q) + b (1-based DP coordinates).
inline GappedAlignment banded_traceback(
    seq::CodeSpan query, seq::CodeSpan subject,
    const std::vector<std::uint8_t>& tb, std::size_t width,
    std::ptrdiff_t center_diag, std::ptrdiff_t radius, int best,
    std::size_t best_q, std::ptrdiff_t best_s) {
  GappedAlignment result;
  if (best == 0) return result;

  auto band_start = [&](std::ptrdiff_t q) { return q + center_diag - radius; };

  std::size_t q = best_q;
  std::ptrdiff_t s = best_s;
  std::uint8_t state = kFromM;
  std::vector<std::pair<std::size_t, char>> rev_runs;
  auto push_op = [&](char op) {
    if (!rev_runs.empty() && rev_runs.back().second == op) {
      ++rev_runs.back().first;
    } else {
      rev_runs.emplace_back(1, op);
    }
  };

  std::size_t identities = 0, columns = 0, gap_columns = 0;
  while (q > 0 && s > 0) {
    const std::ptrdiff_t b = s - band_start(static_cast<std::ptrdiff_t>(q));
    const std::uint8_t packed = tb[q * width + static_cast<std::size_t>(b)];
    if (state == kFromM) {
      const std::uint8_t src = packed & 0x3;
      ++columns;
      if (query[q - 1] == subject[static_cast<std::size_t>(s - 1)]) {
        ++identities;
      }
      push_op('M');
      --q;
      --s;
      if (src == kStop) break;
      state = src;
    } else if (state == kFromIx) {
      const std::uint8_t src = (packed >> 2) & 0x3;
      ++columns;
      ++gap_columns;
      push_op('D');
      --q;
      state = src == kFromIx ? kFromIx : kFromM;
    } else {
      const std::uint8_t src = (packed >> 4) & 0x3;
      ++columns;
      ++gap_columns;
      push_op('I');
      --s;
      state = src == kFromIy ? kFromIy : kFromM;
    }
  }

  std::string cigar;
  for (auto it = rev_runs.rbegin(); it != rev_runs.rend(); ++it) {
    cigar += std::to_string(it->first);
    cigar += it->second;
  }

  result.hsp.q_begin = q;
  result.hsp.q_end = best_q;
  result.hsp.s_begin = static_cast<std::size_t>(s);
  result.hsp.s_end = static_cast<std::size_t>(best_s);
  result.hsp.score = best;
  result.columns = columns;
  result.identities = identities;
  result.gap_columns = gap_columns;
  result.cigar = std::move(cigar);
  return result;
}

}  // namespace mendel::align::detail
