// Striped SIMD row fill for the banded affine-gap local aligner.
//
// Per DP row, the M and Ix lanes depend only on the previous row, so they
// vectorize cleanly: 8 band cells per AVX2 pass, substitution scores
// gathered from the ScoringMatrix row of the current query residue, dead
// cells kept at *exactly* kNegInf via saturating maxes so every stored
// value — and every traceback bit — matches the scalar reference cell for
// cell. Iy has a within-row serial dependency (affine gaps extend
// leftward), so a scalar sweep finishes each row: it resolves Iy, fixes up
// out-of-band lanes, writes the packed traceback byte, and tracks the best
// cell in the reference's exact first-occurrence order.
//
// The band never moves more than one subject position per query row, so
// the previous row's cell (q-1, s-1) sits at the same band index b and
// (q-1, s) at b+1 — one aligned and one unaligned load per chunk, no
// shuffles. A zero-padded subject copy keeps the per-lane code loads in
// bounds for rows whose band hangs off either end of the subject.
#include <algorithm>
#include <cstring>
#include <vector>

#include "src/align/banded.h"
#include "src/align/banded_detail.h"
#include "src/common/simd.h"

#if defined(MENDEL_SIMD_X86)
#include <immintrin.h>
#endif

namespace mendel::align::detail {

bool banded_simd_compiled() {
#if defined(MENDEL_SIMD_X86)
  return true;
#else
  return false;
#endif
}

#if !defined(MENDEL_SIMD_X86)

GappedAlignment banded_local_align_simd(seq::CodeSpan query,
                                        seq::CodeSpan subject,
                                        const score::ScoringMatrix& scores,
                                        score::GapPenalties gaps,
                                        const BandedParams& params) {
  return banded_local_align_reference(query, subject, scores, gaps, params);
}

#else

namespace {

// Fills curr_m / curr_ix and the packed M|Ix traceback bits for one row,
// lanes [0, padded). prev arrays must be readable through index padded
// (the Ix shift) and hold exact kNegInf in every dead lane.
__attribute__((target("avx2"))) void fill_row_avx2(
    const int* prev_m, const int* prev_ix, const int* prev_iy,
    const int* score_row, const seq::Code* row_codes, std::size_t padded,
    int open, int extend, int* curr_m, int* curr_ix, int* packed_row) {
  const __m256i neginf = _mm256_set1_epi32(kNegInf);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i open_v = _mm256_set1_epi32(open);
  const __m256i extend_v = _mm256_set1_epi32(extend);
  const __m256i from_m_ix = _mm256_set1_epi32(kFromM << 2);
  const __m256i from_ix_ix = _mm256_set1_epi32(kFromIx << 2);
  const __m256i from_m_v = _mm256_set1_epi32(kFromM);
  const __m256i from_ix_v = _mm256_set1_epi32(kFromIx);
  const __m256i from_iy_v = _mm256_set1_epi32(kFromIy);

  for (std::size_t b = 0; b < padded; b += 8) {
    const __m256i diag_m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev_m + b));
    const __m256i diag_ix =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev_ix + b));
    const __m256i diag_iy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev_iy + b));
    const __m256i up_m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev_m + b + 1));
    const __m256i up_ix =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev_ix + b + 1));

    // Ix: open from up.m or extend from up.ix; the saturating max pins
    // dead inputs at exactly kNegInf (kNegInf - open > INT_MIN, no wrap).
    const __m256i ix_open =
        _mm256_max_epi32(_mm256_sub_epi32(up_m, open_v), neginf);
    const __m256i ix_ext =
        _mm256_max_epi32(_mm256_sub_epi32(up_ix, extend_v), neginf);
    const __m256i ix = _mm256_max_epi32(ix_ext, ix_open);
    // Reference rule: ix_ext >= ix_open takes the extension.
    const __m256i open_wins = _mm256_cmpgt_epi32(ix_open, ix_ext);
    const __m256i ix_bits =
        _mm256_blendv_epi8(from_ix_ix, from_m_ix, open_wins);

    // M: best of {0, diag.m, diag.ix, diag.iy} with the reference's
    // strictly-greater source chain (m, then ix, then iy).
    __m256i bp = _mm256_max_epi32(diag_m, zero);
    __m256i src =
        _mm256_and_si256(_mm256_cmpgt_epi32(diag_m, zero), from_m_v);
    const __m256i take_ix = _mm256_cmpgt_epi32(diag_ix, bp);
    bp = _mm256_max_epi32(bp, diag_ix);
    src = _mm256_blendv_epi8(src, from_ix_v, take_ix);
    const __m256i take_iy = _mm256_cmpgt_epi32(diag_iy, bp);
    bp = _mm256_max_epi32(bp, diag_iy);
    src = _mm256_blendv_epi8(src, from_iy_v, take_iy);

    const __m256i codes = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row_codes + b)));
    const __m256i sub = _mm256_i32gather_epi32(score_row, codes, 4);
    const __m256i mm = _mm256_add_epi32(bp, sub);
    const __m256i alive = _mm256_cmpgt_epi32(mm, zero);
    const __m256i m = _mm256_blendv_epi8(neginf, mm, alive);
    src = _mm256_and_si256(src, alive);  // dead M keeps kStop bits

    _mm256_storeu_si256(reinterpret_cast<__m256i*>(curr_m + b), m);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(curr_ix + b), ix);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(packed_row + b),
                        _mm256_or_si256(src, ix_bits));
  }
}

}  // namespace

GappedAlignment banded_local_align_simd(seq::CodeSpan query,
                                        seq::CodeSpan subject,
                                        const score::ScoringMatrix& scores,
                                        score::GapPenalties gaps,
                                        const BandedParams& params) {
  GappedAlignment result;
  const std::size_t m = query.size();
  const std::size_t n = subject.size();
  if (m == 0 || n == 0) return result;

  const int open = gaps.open + gaps.extend;
  const int extend = gaps.extend;
  const auto radius = static_cast<std::ptrdiff_t>(params.band_radius);
  const std::size_t width = static_cast<std::size_t>(2 * radius + 1);
  const std::size_t padded = (width + 7) / 8 * 8;

  // State rows, one extra lane past `padded` for the Ix shift load; every
  // lane not holding a live cell stays at exact kNegInf.
  std::vector<int> prev_m(padded + 8, kNegInf), prev_ix(padded + 8, kNegInf),
      prev_iy(padded + 8, kNegInf);
  std::vector<int> curr_m(padded + 8, kNegInf), curr_ix(padded + 8, kNegInf),
      curr_iy(padded + 8, kNegInf);
  std::vector<int> packed_row(padded + 8, 0);
  std::vector<std::uint8_t> tb((m + 1) * width, 0);

  // Zero-padded subject: row q lane b reads code spad[q - 1 + b] for
  // subject position s - 1 = (center - radius) + (q - 1 + b). Out-of-range
  // lanes read pad zeros and are overwritten dead in the scalar sweep.
  const std::ptrdiff_t offset = params.center_diag - radius;
  std::vector<seq::Code> spad(m + padded + 8, 0);
  {
    const std::ptrdiff_t lo =
        std::max<std::ptrdiff_t>(0, -offset);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(spad.size()),
        static_cast<std::ptrdiff_t>(n) - offset);
    for (std::ptrdiff_t j = lo; j < hi; ++j) {
      spad[static_cast<std::size_t>(j)] =
          subject[static_cast<std::size_t>(offset + j)];
    }
  }

  int best = 0;
  std::size_t best_q = 0;
  std::ptrdiff_t best_s = 0;

  for (std::size_t q = 1; q <= m; ++q) {
    const std::ptrdiff_t s_lo =
        static_cast<std::ptrdiff_t>(q) + params.center_diag - radius;
    fill_row_avx2(prev_m.data(), prev_ix.data(), prev_iy.data(),
                  scores.row(query[q - 1]), spad.data() + (q - 1), padded,
                  open, extend, curr_m.data(), curr_ix.data(),
                  packed_row.data());

    // Scalar sweep: out-of-band fixup, the serial Iy lane, traceback bytes,
    // and best-cell tracking — all in the reference's ascending-b order.
    for (std::size_t b = 0; b < width; ++b) {
      const std::ptrdiff_t s = s_lo + static_cast<std::ptrdiff_t>(b);
      if (s < 1 || s > static_cast<std::ptrdiff_t>(n)) {
        curr_m[b] = kNegInf;
        curr_ix[b] = kNegInf;
        curr_iy[b] = kNegInf;
        continue;  // tb row is pre-zeroed
      }
      int packed = packed_row[b];
      if (b + 1 == width) {
        packed &= ~(0x3 << 2);  // reference leaves Ix bits clear at the rim
      }
      int iy = kNegInf;
      if (b >= 1) {
        const int lm = curr_m[b - 1];
        const int liy = curr_iy[b - 1];
        const int iy_open = lm == kNegInf ? kNegInf : lm - open;
        const int iy_ext = liy == kNegInf ? kNegInf : liy - extend;
        if (iy_ext >= iy_open) {
          iy = iy_ext;
          packed |= kFromIy << 4;
        } else {
          iy = iy_open;
          packed |= kFromM << 4;
        }
      }
      curr_iy[b] = iy;
      tb[q * width + b] = static_cast<std::uint8_t>(packed);
      const int mm = curr_m[b];
      if (mm != kNegInf && mm > best) {
        best = mm;
        best_q = q;
        best_s = s;
      }
    }
    // Padding lanes were vector-scribbled; the next row's shift loads need
    // them dead again.
    for (std::size_t b = width; b < padded + 8; ++b) {
      curr_m[b] = kNegInf;
      curr_ix[b] = kNegInf;
      curr_iy[b] = kNegInf;
    }
    std::swap(prev_m, curr_m);
    std::swap(prev_ix, curr_ix);
    std::swap(prev_iy, curr_iy);
  }

  return banded_traceback(query, subject, tb, width, params.center_diag,
                          radius, best, best_q, best_s);
}

#endif  // MENDEL_SIMD_X86

}  // namespace mendel::align::detail
