// Alignment result records shared by the BLAST baseline and the Mendel
// query pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sequence/sequence.h"

namespace mendel::align {

// High-scoring segment pair: an ungapped or gapped local alignment region.
// Coordinates are half-open [begin, end) offsets into the query and subject
// residue arrays.
struct Hsp {
  std::size_t q_begin = 0;
  std::size_t q_end = 0;
  std::size_t s_begin = 0;
  std::size_t s_end = 0;
  int score = 0;

  std::size_t q_len() const { return q_end - q_begin; }
  std::size_t s_len() const { return s_end - s_begin; }

  // Diagonal of the starting cell (paper §V-B: difference between subject
  // and query start positions). Gapped HSPs span several diagonals; this is
  // the anchor diagonal.
  std::ptrdiff_t diagonal() const {
    return static_cast<std::ptrdiff_t>(s_begin) -
           static_cast<std::ptrdiff_t>(q_begin);
  }

  bool operator==(const Hsp&) const = default;
};

// A gapped alignment with column statistics (filled by traceback).
struct GappedAlignment {
  Hsp hsp;
  std::size_t columns = 0;     // aligned columns incl. gap columns
  std::size_t identities = 0;  // exact residue matches
  std::size_t gap_columns = 0;

  // Compact CIGAR-style operations ("12M2D30M1I8M"): M = aligned pair,
  // I = gap in subject (insertion in query), D = gap in query.
  std::string cigar;

  double percent_identity() const {
    return columns == 0
               ? 0.0
               : static_cast<double>(identities) / static_cast<double>(columns);
  }
};

// Final ranked hit returned to clients (both Mendel and the baseline).
struct AlignmentHit {
  seq::SequenceId subject_id = seq::kInvalidSequenceId;
  std::string subject_name;
  GappedAlignment alignment;
  double bit_score = 0.0;
  double evalue = 0.0;
  // The aligned subject residues [hsp.s_begin, hsp.s_end). Filled only
  // when the query ran with QueryParams::include_subject_segment (clients
  // need it to render pairwise alignments without holding the database).
  std::vector<seq::Code> subject_segment;
};

}  // namespace mendel::align
