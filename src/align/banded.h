// Banded local alignment with affine gaps.
//
// The gapped-extension stage of both the BLAST baseline and Mendel's query
// pipeline (paper §V-B: "The gapped extension considers all anchors from the
// same sequence within l diagonals in either direction"). The DP is
// restricted to diagonals within `band_radius` of `center_diag`; paths
// cannot leave the band, which bounds work at O(query_len * band_width)
// instead of O(m*n).
//
// With a band that covers the whole rectangle this is exactly
// smith_waterman() — the property test in tests/align_test.cpp pins that.
#pragma once

#include "src/align/alignment.h"
#include "src/scoring/matrix.h"

namespace mendel::align {

struct BandedParams {
  // Diagonal (s_pos - q_pos) at the band's center.
  std::ptrdiff_t center_diag = 0;
  // Paper Table I parameter l: how many diagonals either side of the center
  // the alignment may wander.
  std::size_t band_radius = 16;
};

GappedAlignment banded_local_align(seq::CodeSpan query, seq::CodeSpan subject,
                                   const score::ScoringMatrix& scores,
                                   score::GapPenalties gaps,
                                   const BandedParams& params);

}  // namespace mendel::align
