// Banded local alignment with affine gaps.
//
// The gapped-extension stage of both the BLAST baseline and Mendel's query
// pipeline (paper §V-B: "The gapped extension considers all anchors from the
// same sequence within l diagonals in either direction"). The DP is
// restricted to diagonals within `band_radius` of `center_diag`; paths
// cannot leave the band, which bounds work at O(query_len * band_width)
// instead of O(m*n).
//
// With a band that covers the whole rectangle this is exactly
// smith_waterman() — the property test in tests/align_test.cpp pins that.
#pragma once

#include "src/align/alignment.h"
#include "src/scoring/matrix.h"

namespace mendel::align {

struct BandedParams {
  // Diagonal (s_pos - q_pos) at the band's center.
  std::ptrdiff_t center_diag = 0;
  // Paper Table I parameter l: how many diagonals either side of the center
  // the alignment may wander.
  std::size_t band_radius = 16;
};

// Dispatched entry point: runs the striped SIMD row fill when the active
// dispatch level supports it, the scalar reference otherwise. Both produce
// identical alignments (score, coordinates, CIGAR) — the SIMD fill keeps
// exact kNegInf dead-cell discipline and replicates the reference's
// tie-break order bit for bit; tests/simd_kernel_test.cpp pins this.
GappedAlignment banded_local_align(seq::CodeSpan query, seq::CodeSpan subject,
                                   const score::ScoringMatrix& scores,
                                   score::GapPenalties gaps,
                                   const BandedParams& params);

// The scalar oracle: cell-at-a-time affine band DP. This defines the
// semantics; keep it boring.
GappedAlignment banded_local_align_reference(seq::CodeSpan query,
                                             seq::CodeSpan subject,
                                             const score::ScoringMatrix& scores,
                                             score::GapPenalties gaps,
                                             const BandedParams& params);

namespace detail {

// True when this binary carries the vectorized banded fill (x86 with the
// MENDEL_SIMD option on). Defined in banded_simd.cpp.
bool banded_simd_compiled();

// The striped implementation; falls back to the reference when not
// compiled in. Callers normally go through banded_local_align(); the fuzz
// test calls this directly to pin SIMD == reference.
GappedAlignment banded_local_align_simd(seq::CodeSpan query,
                                        seq::CodeSpan subject,
                                        const score::ScoringMatrix& scores,
                                        score::GapPenalties gaps,
                                        const BandedParams& params);

}  // namespace detail

}  // namespace mendel::align
