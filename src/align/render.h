// Human-readable pairwise alignment rendering (BLAST-report style).
//
// Produces the classic three-line blocks:
//
//   Query    1   MKVLAWHH...  60
//                MKV+AW H
//   Sbjct   12   MKVIAWQH...  71
//
// from an AlignmentHit whose CIGAR and coordinates came out of the banded
// or full aligner, plus the query residues and the aligned subject
// segment. The middle line marks identities with the residue letter,
// positive substitutions with '+', and everything else with a space — the
// NCBI convention.
#pragma once

#include <string>

#include "src/align/alignment.h"
#include "src/scoring/matrix.h"

namespace mendel::align {

struct RenderOptions {
  std::size_t width = 60;   // residues per block line
  bool show_header = true;  // subject name / score / E-value banner
};

// `subject_segment` must cover exactly [hsp.s_begin, hsp.s_end) of the
// subject (AlignmentHit::subject_segment when the query ran with
// include_subject_segment). Throws InvalidArgument when the CIGAR walks
// outside the provided residues.
std::string render_alignment(const AlignmentHit& hit, seq::CodeSpan query,
                             seq::CodeSpan subject_segment,
                             seq::Alphabet alphabet,
                             const score::ScoringMatrix& scores,
                             const RenderOptions& options = {});

// One-line tabular rendering (BLAST outfmt-6 style):
// query_name subject_name identity% columns mismatches gaps qstart qend
// sstart send evalue bitscore   (tab separated, 1-based inclusive coords).
std::string render_tabular(const std::string& query_name,
                           const AlignmentHit& hit);

}  // namespace mendel::align
