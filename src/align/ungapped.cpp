#include "src/align/ungapped.h"

#include <algorithm>

#include "src/common/error.h"

namespace mendel::align {

int window_score(seq::CodeSpan a, seq::CodeSpan b,
                 const score::ScoringMatrix& scores) {
  require(a.size() == b.size(), "window_score: length mismatch");
  int total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) total += scores.score(a[i], b[i]);
  return total;
}

Hsp extend_ungapped(seq::CodeSpan query, seq::CodeSpan subject,
                    std::size_t q_seed, std::size_t s_seed,
                    std::size_t seed_len, const score::ScoringMatrix& scores,
                    const UngappedParams& params) {
  require(q_seed + seed_len <= query.size(),
          "extend_ungapped: seed exceeds query");
  require(s_seed + seed_len <= subject.size(),
          "extend_ungapped: seed exceeds subject");
  require(seed_len > 0, "extend_ungapped: empty seed");

  const int seed_score = window_score(query.subspan(q_seed, seed_len),
                                      subject.subspan(s_seed, seed_len),
                                      scores);

  // Right extension: walk i = 0, 1, ... past the seed end, keeping the
  // best prefix. Stop when the running score drops x_drop below the best.
  int best_right = 0;
  std::size_t right_len = 0;
  {
    int running = 0;
    const std::size_t limit = std::min(query.size() - (q_seed + seed_len),
                                       subject.size() - (s_seed + seed_len));
    for (std::size_t i = 0; i < limit; ++i) {
      running += scores.score(query[q_seed + seed_len + i],
                              subject[s_seed + seed_len + i]);
      if (running > best_right) {
        best_right = running;
        right_len = i + 1;
      }
      if (running < best_right - params.x_drop) break;
    }
  }

  // Left extension, mirrored.
  int best_left = 0;
  std::size_t left_len = 0;
  {
    int running = 0;
    const std::size_t limit = std::min(q_seed, s_seed);
    for (std::size_t i = 1; i <= limit; ++i) {
      running += scores.score(query[q_seed - i], subject[s_seed - i]);
      if (running > best_left) {
        best_left = running;
        left_len = i;
      }
      if (running < best_left - params.x_drop) break;
    }
  }

  Hsp hsp;
  hsp.q_begin = q_seed - left_len;
  hsp.q_end = q_seed + seed_len + right_len;
  hsp.s_begin = s_seed - left_len;
  hsp.s_end = s_seed + seed_len + right_len;
  hsp.score = seed_score + best_left + best_right;
  return hsp;
}

}  // namespace mendel::align
