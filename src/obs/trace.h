// Per-query distributed tracing.
//
// A TraceContext (enabled flag + parent span id) rides inside the query
// dataflow payloads — kQueryRequest, kGroupQuery, kNodeSearch, kFetchRange
// — so every node that does work on behalf of a query knows the query id
// (the message's request_id) and which upstream span caused the work. Each
// node appends SpanRecords into its local SpanBuffer; the client collects
// them after the reply with a kCollectTrace broadcast and reassembles the
// QueryTrace timeline.
//
// Determinism contract: span start timestamps come from Context::now(),
// which is virtual under the simulator, and duration_ns is only measured
// when the transport reports wall-clock time (Context::virtual_time() is
// false). Under TransportMode::kSim with CostModel::measured_cpu disabled,
// two identical runs therefore produce byte-identical QueryTrace::format()
// output — the property tests/obs_test.cpp pins.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/codec.h"
#include "src/common/thread_annotations.h"

namespace mendel::obs {

// Carried inside query-dataflow payloads (not the Message envelope, which
// stays at its pinned 24-byte wire size). The query id itself is not
// repeated here: it is always the carrying message's request_id.
struct TraceContext {
  std::uint8_t enabled = 0;      // 0 = tracing off, spans are not recorded
  std::uint64_t parent_span = 0; // span id of the upstream cause, 0 at root

  void encode(CodecWriter& w) const {
    w.u8(enabled);
    w.u64(parent_span);
  }
  static TraceContext decode(CodecReader& r) {
    TraceContext t;
    t.enabled = r.u8();
    t.parent_span = r.u64();
    return t;
  }

  bool on() const { return enabled != 0; }
  // Derived context for fanned-out work caused by span `span_id`.
  TraceContext child(std::uint64_t span_id) const {
    return TraceContext{enabled, span_id};
  }
};

// One timed unit of pipeline work on one node.
struct SpanRecord {
  std::string name;              // stage name, e.g. "node.search"
  std::uint32_t node = 0;        // node id (client spans use the entry id)
  std::uint64_t query_id = 0;
  std::uint64_t span_id = 0;     // (node << 32) | per-node sequence
  std::uint64_t parent_span = 0; // 0 for the root span
  double start = 0.0;            // Context::now(): virtual (sim) or wall (s)
  std::uint64_t duration_ns = 0; // 0 under virtual time
  std::uint64_t value = 0;       // stage-specific count (subqueries, hits…)

  void encode(CodecWriter& w) const;
  static SpanRecord decode(CodecReader& r);
};

// Per-node accumulation of spans, drained by query id when the client's
// kCollectTrace broadcast arrives. Bounded: once `capacity` spans are held,
// new spans are counted in dropped() and discarded — a slow collector must
// not grow node memory without bound.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  void add(SpanRecord span) MENDEL_EXCLUDES(mu_);
  // Removes and returns this query's spans, in recording order.
  std::vector<SpanRecord> take(std::uint64_t query_id) MENDEL_EXCLUDES(mu_);

  // Allocates the next span id for `node`: (node << 32) | sequence. The
  // sequence is per-buffer, so ids are unique per node and deterministic
  // given a deterministic event order.
  std::uint64_t next_span_id(std::uint32_t node) MENDEL_EXCLUDES(mu_);

  std::size_t size() const MENDEL_EXCLUDES(mu_);
  std::uint64_t dropped() const MENDEL_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_ MENDEL_GUARDED_BY(mu_);
  std::uint32_t next_seq_ MENDEL_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ MENDEL_GUARDED_BY(mu_) = 0;
};

// Client-side reassembly of one query's spans from every node plus the
// client's own admit/reply spans.
struct QueryTrace {
  std::uint64_t query_id = 0;
  std::vector<SpanRecord> spans;

  // Orders spans by (start, node, span_id) — a total order that is stable
  // across runs whenever the inputs are (virtual time + deterministic ids).
  void sort();

  bool has_span(std::string_view name) const;

  // Human-readable timeline, one line per span, indented by parent depth.
  // Byte-stable under the determinism contract above.
  std::string format() const;
  std::string to_json() const;
};

}  // namespace mendel::obs
