#include "src/obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/common/error.h"

namespace mendel::obs {

class Json::Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("Json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    // Nesting bound: the parser recurses per container level, so an
    // adversarial document of a few hundred KB of '[' would otherwise
    // overflow the stack. Real exports nest < 10 deep.
    if (depth_ >= kMaxDepth) fail("nesting deeper than 256 levels");
    ++depth_;
    Json v = parse_value_inner();
    --depth_;
    return v;
  }

  Json parse_value_inner() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Json v;
        v.type_ = Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default:
        return parse_number();
    }
  }

  static Json make_bool(bool b) {
    Json v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.type_ = Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.type_ = Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // The exports only escape control characters, so a plain UTF-8
          // encoding of the BMP code point suffices here.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto* first = text_.data() + begin;
    const auto* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || end != last || begin == pos_) {
      fail("malformed number");
    }
    // from_chars reports overflow as result_out_of_range, caught above;
    // this backstops any implementation that folds to ±inf instead.
    // Consumers hold metrics in doubles and must never see non-finite
    // values sneak in through a literal like 1e999.
    if (!std::isfinite(value)) fail("non-finite number");
    Json v;
    v.type_ = Type::kNumber;
    v.number_ = value;
    return v;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

Json Json::parse(std::string_view text) { return Parser(text).document(); }

bool Json::boolean() const {
  if (type_ != Type::kBool) throw ParseError("Json: not a boolean");
  return bool_;
}

double Json::number() const {
  if (type_ != Type::kNumber) throw ParseError("Json: not a number");
  return number_;
}

const std::string& Json::str() const {
  if (type_ != Type::kString) throw ParseError("Json: not a string");
  return string_;
}

const std::vector<Json>& Json::array() const {
  if (type_ != Type::kArray) throw ParseError("Json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::object() const {
  if (type_ != Type::kObject) throw ParseError("Json: not an object");
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace mendel::obs
