// Minimal JSON document model + recursive-descent parser.
//
// The observability exports (MetricsSnapshot::to_json, QueryTrace::to_json)
// are produced by hand-rolled writers; this parser is the other half of the
// round trip, used by the export-format tests and by the
// tools/check_metrics_schema validator. It covers the full JSON grammar
// (objects, arrays, strings with escapes, numbers, booleans, null) but is
// deliberately not a general-purpose library: documents are parsed eagerly
// into a tree of value nodes, and numbers are held as doubles (metric
// counters fit a double's 53-bit mantissa comfortably; exports clamp there).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mendel::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses a complete document; throws mendel::ParseError on malformed
  // input or trailing garbage.
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw ParseError when the type does not match (the
  // callers are validators, so a mismatch is a diagnosable input error).
  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const std::vector<Json>& array() const;
  const std::vector<std::pair<std::string, Json>>& object() const;

  // Object member lookup (first match); nullptr when absent or not an
  // object.
  const Json* find(std::string_view key) const;

  // Serializes a string with JSON escaping (shared with the writers).
  static void escape(std::string_view s, std::string& out);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  class Parser;
};

}  // namespace mendel::obs
