#include "src/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "src/obs/json.h"

namespace mendel::obs {

void SpanRecord::encode(CodecWriter& w) const {
  w.str(name);
  w.u32(node);
  w.u64(query_id);
  w.u64(span_id);
  w.u64(parent_span);
  w.f64(start);
  w.u64(duration_ns);
  w.u64(value);
}

SpanRecord SpanRecord::decode(CodecReader& r) {
  SpanRecord s;
  s.name = r.str();
  s.node = r.u32();
  s.query_id = r.u64();
  s.span_id = r.u64();
  s.parent_span = r.u64();
  s.start = r.f64();
  s.duration_ns = r.u64();
  s.value = r.u64();
  return s;
}

void SpanBuffer::add(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> SpanBuffer::take(std::uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  auto keep = spans_.begin();
  for (auto it = spans_.begin(); it != spans_.end(); ++it) {
    if (it->query_id == query_id) {
      out.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  spans_.erase(keep, spans_.end());
  return out;
}

std::uint64_t SpanBuffer::next_span_id(std::uint32_t node) {
  std::lock_guard<std::mutex> lock(mu_);
  return (static_cast<std::uint64_t>(node) << 32) | ++next_seq_;
}

std::size_t SpanBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::uint64_t SpanBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void QueryTrace::sort() {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.node != b.node) return a.node < b.node;
              return a.span_id < b.span_id;
            });
}

bool QueryTrace::has_span(std::string_view name) const {
  return std::any_of(spans.begin(), spans.end(),
                     [&](const SpanRecord& s) { return s.name == name; });
}

namespace {

// Fixed-precision start time: microsecond resolution is enough for both
// the simulator's virtual clock and wall time, and a pinned precision is
// what makes format() byte-stable.
std::string format_start(double start) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", start);
  return buf;
}

}  // namespace

std::string QueryTrace::format() const {
  // Depth via parent links; orphaned parents (span on a node whose buffer
  // overflowed) render at depth 0 rather than failing.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const auto& s : spans) by_id.emplace(s.span_id, &s);
  auto depth_of = [&](const SpanRecord& s) {
    int depth = 0;
    std::uint64_t parent = s.parent_span;
    while (parent != 0 && depth < 16) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      ++depth;
      parent = it->second->parent_span;
    }
    return depth;
  };

  char buf[64];
  std::string out;
  std::snprintf(buf, sizeof(buf), "query %" PRIu64 ": %zu spans\n", query_id,
                spans.size());
  out += buf;
  for (const auto& s : spans) {
    out += "  ";
    out.append(static_cast<std::size_t>(depth_of(s)) * 2, ' ');
    out += '[';
    out += format_start(s.start);
    out += "] ";
    out += s.name;
    std::snprintf(buf, sizeof(buf), " node=%u", s.node);
    out += buf;
    if (s.value != 0) {
      std::snprintf(buf, sizeof(buf), " value=%" PRIu64, s.value);
      out += buf;
    }
    if (s.duration_ns != 0) {
      std::snprintf(buf, sizeof(buf), " dur=%.3fms",
                    static_cast<double>(s.duration_ns) * 1e-6);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string QueryTrace::to_json() const {
  char buf[64];
  std::string out = "{\n  \"query_id\": ";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, query_id);
  out += buf;
  out += ",\n  \"spans\": [";
  bool first = true;
  for (const auto& s : spans) {
    out += first ? "\n    {\"name\": \"" : ",\n    {\"name\": \"";
    first = false;
    Json::escape(s.name, out);
    std::snprintf(buf, sizeof(buf), "\", \"node\": %u", s.node);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"span_id\": %" PRIu64, s.span_id);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"parent_span\": %" PRIu64,
                  s.parent_span);
    out += buf;
    out += ", \"start\": " + format_start(s.start);
    std::snprintf(buf, sizeof(buf), ", \"duration_ns\": %" PRIu64,
                  s.duration_ns);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"value\": %" PRIu64 "}", s.value);
    out += buf;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mendel::obs
