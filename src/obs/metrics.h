// Cluster-wide metrics registry: named counters, gauges, and log-scale
// latency histograms behind one snapshot/export surface.
//
// Design constraints, in order:
//   1. Hot-path writes must stay within noise of the uninstrumented
//      benchmarks (BENCH_hotpath.json / BENCH_query.json). Every write is
//      therefore a relaxed atomic add on a cache-line-padded shard — no
//      locks, no branches beyond a null check at the call site.
//   2. Reads (snapshot/export) are rare and may be slow: value() sums the
//      shards, snapshot() walks the registry under its registration mutex.
//   3. Instrument handles are stable for the registry's lifetime, so
//      subsystems resolve names once (construction time) and keep raw
//      pointers; the per-event path never touches the name table.
//
// The storage nodes shard by node id and the client by thread, so under
// the threaded runtime concurrent writers land on distinct cache lines;
// under the single-threaded simulator the same code degenerates to plain
// increments on one line.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"

namespace mendel::obs {

// Monotonic event count. Writers pick a shard (their node id, or a cached
// per-thread slot) so concurrent increments never contend on one line.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) { add_shard(this_thread_shard(), n); }
  void add_shard(std::size_t shard, std::uint64_t n = 1) {
    shards_[shard % kShards].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static std::size_t this_thread_shard();

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

// Point-in-time signed value (queue depths, in-flight counts).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Latency histogram with power-of-two nanosecond buckets: bin i counts
// samples in [2^(i-1), 2^i) ns (bin 0 is exactly 0 ns), so 64 bins span
// 1 ns to ~584 years with ~2x resolution — the right trade for latency
// profiles whose interesting structure is in orders of magnitude.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBins = 64;

  void record_ns(std::uint64_t ns);
  void record_seconds(double seconds) {
    record_ns(seconds <= 0.0
                  ? 0
                  : static_cast<std::uint64_t>(seconds * 1e9 + 0.5));
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bin(std::size_t i) const {
    return bins_[i].load(std::memory_order_relaxed);
  }

  // Upper bound (exclusive) of bin i in nanoseconds.
  static std::uint64_t bin_upper_ns(std::size_t i) {
    return i == 0 ? 1 : (i >= 63 ? ~0ULL : (1ULL << i));
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBins> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ULL};
  std::atomic<std::uint64_t> max_ns_{0};

  friend struct HistogramValue;
  friend class MetricsRegistry;
};

// --- snapshot --------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  // Sparse (bin index, count) pairs, ascending index, zero bins omitted.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> bins;

  // Nearest-rank percentile, reported as the matched bin's upper bound
  // (p in [0,100]); 0 for an empty histogram.
  std::uint64_t percentile_ns(double p) const;
  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            static_cast<double>(count);
  }
};

// One coherent reading of every registered instrument, plus any synthetic
// entries the caller folded in (Client::metrics() appends node counters,
// transport traffic, and trace buffer stats). Entries are sorted by name.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // Lookup helpers; counter()/gauge() return 0 when absent (absent and
  // never-incremented are indistinguishable by design).
  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const HistogramValue* histogram(std::string_view name) const;

  // Re-establishes the sorted-by-name invariant after appending synthetic
  // entries.
  void sort();

  // Exports. The JSON layout is pinned by tools/metrics_schema.json and
  // the round-trip test in tests/obs_test.cpp.
  std::string to_json() const;
  // Prometheus text exposition: '.' in names becomes '_', histograms
  // render as cumulative le-buckets with +Inf, _sum (seconds) and _count.
  std::string to_prometheus() const;
};

// --- registry --------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve-or-create by name. The returned reference is stable for the
  // registry's lifetime; resolve once and cache.
  Counter& counter(std::string_view name) MENDEL_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) MENDEL_EXCLUDES(mu_);
  LatencyHistogram& histogram(std::string_view name) MENDEL_EXCLUDES(mu_);

  MetricsSnapshot snapshot() const MENDEL_EXCLUDES(mu_);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MENDEL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MENDEL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_ MENDEL_GUARDED_BY(mu_);
};

// RAII latency probe: records the elapsed wall time into `histogram` on
// destruction. A null histogram makes the probe free apart from the
// construction-time clock read being skipped entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mendel::obs
