#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

#include "src/obs/json.h"

namespace mendel::obs {

namespace {

// Shortest round-trippable representation for doubles in exports; trims
// the trailing ".0" noise printf would add for integral values.
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  if (std::sscanf(buf, "%lf", &parsed) == 1 && parsed == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == v) {
        return shorter;
      }
    }
  }
  return buf;
}

}  // namespace

std::size_t Counter::this_thread_shard() {
  // Distinct threads get distinct slots (mod kShards) in arrival order; a
  // thread's slot never changes, so its increments stay on one line.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  const std::size_t bin = ns == 0 ? 0 : std::bit_width(ns);
  bins_[std::min<std::size_t>(bin, kBins - 1)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen && !min_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen && !max_ns_.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t HistogramValue::percentile_ns(double p) const {
  if (count == 0) return 0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: the smallest bin whose cumulative count reaches rank.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(clamped / 100.0 *
                                        static_cast<double>(count) +
                                    0.5));
  std::uint64_t cumulative = 0;
  for (const auto& [idx, n] : bins) {
    cumulative += n;
    if (cumulative >= rank) return LatencyHistogram::bin_upper_ns(idx);
  }
  return max_ns;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const HistogramValue* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::sort() {
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(), by_name);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  char buf[64];
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    Json::escape(c.name, out);
    std::snprintf(buf, sizeof(buf), "\": %" PRIu64, c.value);
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    Json::escape(g.name, out);
    std::snprintf(buf, sizeof(buf), "\": %" PRId64, g.value);
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    Json::escape(h.name, out);
    std::snprintf(buf, sizeof(buf),
                  "\": {\"count\": %" PRIu64 ", \"sum_ns\": %" PRIu64, h.count,
                  h.sum_ns);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"min_ns\": %" PRIu64, h.min_ns);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"max_ns\": %" PRIu64, h.max_ns);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p50_ns\": %" PRIu64,
                  h.percentile_ns(50));
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p90_ns\": %" PRIu64,
                  h.percentile_ns(90));
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"p99_ns\": %" PRIu64,
                  h.percentile_ns(99));
    out += buf;
    out += ", \"bins\": [";
    bool first_bin = true;
    for (const auto& [idx, n] : h.bins) {
      if (!first_bin) out += ", ";
      first_bin = false;
      std::snprintf(buf, sizeof(buf), "[%u, %" PRIu64 "]", idx, n);
      out += buf;
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  auto sanitize = [](std::string_view name) {
    std::string s(name);
    for (char& c : s) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) c = '_';
    }
    return s;
  };
  std::string out;
  char buf[96];
  for (const auto& c : counters) {
    const std::string name = sanitize(c.name);
    out += "# TYPE " + name + " counter\n";
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", c.value);
    out += name + buf;
  }
  for (const auto& g : gauges) {
    const std::string name = sanitize(g.name);
    out += "# TYPE " + name + " gauge\n";
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", g.value);
    out += name + buf;
  }
  for (const auto& h : histograms) {
    // Buckets and _sum are exported in seconds; make the name say so, but
    // registry names already carry the unit by convention ("*_seconds") —
    // don't double it.
    std::string name = sanitize(h.name);
    if (!name.ends_with("_seconds")) name += "_seconds";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [idx, n] : h.bins) {
      cumulative += n;
      const double le =
          static_cast<double>(LatencyHistogram::bin_upper_ns(idx)) * 1e-9;
      out += name + "_bucket{le=\"" + format_double(le) + "\"} ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", cumulative);
      out += buf;
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", h.count);
    out += buf;
    out += name + "_sum " +
           format_double(static_cast<double>(h.sum_ns) * 1e-9) + "\n";
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", h.count);
    out += name + buf;
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramValue v;
    v.name = name;
    v.count = hist->count();
    v.sum_ns = hist->sum_ns();
    const std::uint64_t raw_min = hist->min_ns_.load(std::memory_order_relaxed);
    v.min_ns = v.count == 0 ? 0 : raw_min;
    v.max_ns = hist->max_ns_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < LatencyHistogram::kBins; ++i) {
      const std::uint64_t n = hist->bin(i);
      if (n != 0) v.bins.emplace_back(static_cast<std::uint32_t>(i), n);
    }
    snap.histograms.push_back(std::move(v));
  }
  // The maps iterate in name order already; sort() documents the invariant
  // for callers that append synthetic entries afterwards.
  return snap;
}

}  // namespace mendel::obs
