#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.h"

namespace mendel::workload {

namespace {

// Cumulative background distribution for O(log n) sampling.
std::vector<double> cumulative(seq::Alphabet alphabet) {
  std::vector<double> cdf;
  if (alphabet == seq::Alphabet::kProtein) {
    const auto& f = seq::protein_background_frequencies();
    cdf.assign(f.begin(), f.end());
  } else {
    const auto& f = seq::dna_background_frequencies();
    cdf.assign(f.begin(), f.end());
  }
  std::partial_sum(cdf.begin(), cdf.end(), cdf.begin());
  // Guard against rounding: force the last bucket to cover 1.0.
  cdf.back() = 1.0;
  return cdf;
}

seq::Code sample_residue(const std::vector<double>& cdf, Rng& rng) {
  const double r = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
  return static_cast<seq::Code>(it - cdf.begin());
}

// A substitution that is guaranteed to change the residue.
seq::Code substitute(seq::Code original, const std::vector<double>& cdf,
                     Rng& rng) {
  for (;;) {
    const seq::Code replacement = sample_residue(cdf, rng);
    if (replacement != original) return replacement;
  }
}

}  // namespace

seq::Sequence random_sequence(seq::Alphabet alphabet, std::size_t length,
                              std::string name, Rng& rng) {
  const auto cdf = cumulative(alphabet);
  std::vector<seq::Code> codes;
  codes.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    codes.push_back(sample_residue(cdf, rng));
  }
  return seq::Sequence(alphabet, std::move(name), std::move(codes));
}

seq::Sequence mutate(const seq::Sequence& original, const MutationModel& model,
                     std::string name, Rng& rng) {
  const auto cdf = cumulative(original.alphabet());
  std::vector<seq::Code> codes;
  codes.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (model.indel_rate > 0.0 && rng.chance(model.indel_rate)) {
      // Geometric indel length.
      std::size_t len = 1;
      while (rng.chance(model.indel_extend)) ++len;
      if (rng.chance(0.5)) {
        // Deletion: skip `len` residues of the original.
        i += len - 1;  // the loop's ++i consumes the first deleted residue
        continue;
      }
      // Insertion: emit `len` random residues, then the original one.
      for (std::size_t j = 0; j < len; ++j) {
        codes.push_back(sample_residue(cdf, rng));
      }
    }
    if (rng.chance(model.substitution_rate)) {
      codes.push_back(substitute(original[i], cdf, rng));
    } else {
      codes.push_back(original[i]);
    }
  }
  if (codes.empty()) codes.push_back(sample_residue(cdf, rng));
  return seq::Sequence(original.alphabet(), std::move(name),
                       std::move(codes));
}

seq::Sequence mutate_to_similarity(const seq::Sequence& original,
                                   double similarity, std::string name,
                                   Rng& rng) {
  require(similarity >= 0.0 && similarity <= 1.0,
          "mutate_to_similarity: similarity must be in [0,1]");
  const auto cdf = cumulative(original.alphabet());
  std::vector<seq::Code> codes(original.codes().begin(),
                               original.codes().end());
  const auto mutations = static_cast<std::size_t>(
      (1.0 - similarity) * static_cast<double>(codes.size()));
  // Choose `mutations` distinct positions via partial Fisher–Yates.
  std::vector<std::size_t> positions(codes.size());
  std::iota(positions.begin(), positions.end(), 0);
  for (std::size_t i = 0; i < mutations && i < positions.size(); ++i) {
    const std::size_t j =
        i + rng.below(positions.size() - i);
    std::swap(positions[i], positions[j]);
    codes[positions[i]] = substitute(codes[positions[i]], cdf, rng);
  }
  return seq::Sequence(original.alphabet(), std::move(name),
                       std::move(codes));
}

std::size_t sample_trace_query_length(Rng& rng, std::size_t min_length,
                                      std::size_t max_length) {
  require(min_length > 0 && min_length <= max_length,
          "sample_trace_query_length: bad clamp range");
  // Lognormal with median 330 and p90 1000: sigma = ln(1000/330)/1.2816.
  const double mu = std::log(330.0);
  const double sigma = std::log(1000.0 / 330.0) / 1.2816;
  // Box-Muller from two uniforms.
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979 * u2);
  const double length = std::exp(mu + sigma * z);
  return std::clamp(static_cast<std::size_t>(length), min_length,
                    max_length);
}

seq::SequenceStore generate_database(const DatabaseSpec& spec) {
  require(spec.min_length > 0 && spec.min_length <= spec.max_length,
          "generate_database: bad length range");
  Rng rng(spec.seed);
  seq::SequenceStore store(spec.alphabet);

  for (std::size_t f = 0; f < spec.families; ++f) {
    const auto length = static_cast<std::size_t>(rng.between(
        static_cast<std::int64_t>(spec.min_length),
        static_cast<std::int64_t>(spec.max_length)));
    const seq::Sequence ancestor = random_sequence(
        spec.alphabet, length, "family" + std::to_string(f) + "/ancestor",
        rng);
    store.add(ancestor);
    for (std::size_t m = 1; m < spec.members_per_family; ++m) {
      store.add(mutate(ancestor, spec.family_divergence,
                       "family" + std::to_string(f) + "/member" +
                           std::to_string(m),
                       rng));
    }
  }
  for (std::size_t b = 0; b < spec.background_sequences; ++b) {
    const auto length = static_cast<std::size_t>(rng.between(
        static_cast<std::int64_t>(spec.min_length),
        static_cast<std::int64_t>(spec.max_length)));
    store.add(random_sequence(spec.alphabet, length,
                              "background" + std::to_string(b), rng));
  }
  return store;
}

std::vector<seq::Sequence> sample_queries(const seq::SequenceStore& store,
                                          const QuerySetSpec& spec) {
  require(!store.empty(), "sample_queries: empty store");
  require(spec.length > 0, "sample_queries: zero query length");
  Rng rng(spec.seed);

  // Origins must be long enough to donate a full-length region.
  std::vector<seq::SequenceId> eligible;
  for (const auto& sequence : store) {
    if (sequence.size() >= spec.length) eligible.push_back(sequence.id());
  }
  require(!eligible.empty(),
          "sample_queries: no database sequence is >= query length");

  std::vector<seq::Sequence> queries;
  queries.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    const seq::SequenceId origin =
        eligible[rng.below(eligible.size())];
    const auto& donor = store.at(origin);
    const std::size_t offset =
        donor.size() == spec.length
            ? 0
            : rng.below(donor.size() - spec.length + 1);
    auto window = donor.window(offset, spec.length);
    seq::Sequence raw(store.alphabet(), "", {window.begin(), window.end()});
    queries.push_back(mutate(raw, spec.noise,
                             "query" + std::to_string(i) + " from=" +
                                 std::to_string(origin) + " at=" +
                                 std::to_string(offset),
                             rng));
  }
  return queries;
}

}  // namespace mendel::workload
