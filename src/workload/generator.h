// Synthetic sequence workload generation.
//
// Stands in for the paper's NCBI datasets (nr reference database, s_aureus
// and e_coli query sets) — see DESIGN.md §2 for the substitution rationale.
// The generator produces:
//   * background sequences drawn from realistic residue frequencies
//     (UniProtKB/Swiss-Prot 2015 composition for protein, uniform for DNA);
//   * homologous *families*: a random ancestor evolved into members by a
//     substitution + indel model, so the database has genuine similarity
//     structure for Mendel's LSH grouping to exploit;
//   * query sets sampled from database sequences with controlled mutation
//     (reads that should map back to their origin);
//   * similarity-level cohorts for the Figure 6d sensitivity sweep.
//
// Everything is seeded and deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sequence/sequence.h"

namespace mendel::workload {

// A random sequence of `length` residues from the alphabet's background
// distribution (core residues only — no ambiguity codes).
seq::Sequence random_sequence(seq::Alphabet alphabet, std::size_t length,
                              std::string name, Rng& rng);

struct MutationModel {
  // Per-residue probability of substitution to a different residue.
  double substitution_rate = 0.1;
  // Per-residue probability of starting an indel.
  double indel_rate = 0.0;
  // Indel lengths are geometric with this continuation probability.
  double indel_extend = 0.3;
};

// Applies the mutation model; returns the mutated copy.
seq::Sequence mutate(const seq::Sequence& original, const MutationModel& model,
                     std::string name, Rng& rng);

// Mutates by substitutions only until exactly floor((1-similarity)*len)
// positions differ — the Figure 6d protocol ("randomly mutating residues
// from the original sequence corresponding to the desired similarity
// level").
seq::Sequence mutate_to_similarity(const seq::Sequence& original,
                                   double similarity, std::string name,
                                   Rng& rng);

struct DatabaseSpec {
  seq::Alphabet alphabet = seq::Alphabet::kProtein;
  // Families of homologous sequences + unrelated background sequences.
  std::size_t families = 40;
  std::size_t members_per_family = 8;
  std::size_t background_sequences = 80;
  std::size_t min_length = 200;
  std::size_t max_length = 1200;
  MutationModel family_divergence{0.15, 0.01, 0.3};
  std::uint64_t seed = 0x6d656e64656cULL;
};

seq::SequenceStore generate_database(const DatabaseSpec& spec);

struct QuerySetSpec {
  std::size_t count = 20;
  std::size_t length = 1000;
  // Mutation applied to the sampled region (models sequencing error +
  // strain divergence).
  MutationModel noise{0.05, 0.002, 0.3};
  std::uint64_t seed = 0x717565727953ULL;
};

// Samples a realistic protein-query length from a lognormal fit to the
// NIH BLAST trace statistic the paper cites (§VI-C: "90% of BLAST protein
// sequence queries are less than 1000 amino acid residues"): median ~330
// residues, p90 ~1000, clamped to [min_length, max_length].
std::size_t sample_trace_query_length(Rng& rng, std::size_t min_length = 50,
                                      std::size_t max_length = 5000);

// Samples regions of database sequences and perturbs them; each query's
// name records its origin ("query<i> from=<seq id> at=<offset>") so
// sensitivity benches can check recovery. Sequences shorter than
// spec.length are skipped as origins.
std::vector<seq::Sequence> sample_queries(const seq::SequenceStore& store,
                                          const QuerySetSpec& spec);

}  // namespace mendel::workload
