#include "src/cluster/topology.h"

#include <algorithm>

#include "src/common/error.h"

namespace mendel::cluster {

Topology::Topology(TopologyConfig config)
    : config_(config), global_ring_(config.ring_virtual_nodes) {
  require(config_.num_groups > 0, "Topology: num_groups must be > 0");
  require(config_.nodes_per_group > 0,
          "Topology: nodes_per_group must be > 0");
  require(config_.replication >= 1 &&
              config_.replication <= config_.nodes_per_group,
          "Topology: replication must be in [1, nodes_per_group]");
  require(config_.sequence_replication >= 1 &&
              config_.sequence_replication <=
                  config_.num_groups * config_.nodes_per_group,
          "Topology: sequence_replication must be in [1, total_nodes]");

  rings_.reserve(config_.num_groups);
  members_.resize(config_.num_groups);
  // Dense group-major initial layout: id = group * nodes_per_group + index.
  for (std::uint32_t g = 0; g < config_.num_groups; ++g) {
    hashing::HashRing ring(config_.ring_virtual_nodes);
    for (std::uint32_t i = 0; i < config_.nodes_per_group; ++i) {
      const auto id =
          static_cast<net::NodeId>(addresses_.size());
      ring.add_member(i, "group" + std::to_string(g) + "/node" +
                             std::to_string(i));
      members_[g].push_back(id);
      addresses_.push_back(NodeAddress{g, i});
      global_ring_.add_member(id, "node" + std::to_string(id));
    }
    rings_.push_back(std::move(ring));
  }
}

std::uint32_t Topology::group_size(std::uint32_t group) const {
  require(group < config_.num_groups, "Topology: group out of range");
  return static_cast<std::uint32_t>(members_[group].size());
}

net::NodeId Topology::node_id(std::uint32_t group, std::uint32_t index) const {
  require(group < config_.num_groups, "Topology: group out of range");
  require(index < members_[group].size(), "Topology: index out of range");
  return members_[group][index];
}

NodeAddress Topology::address(net::NodeId id) const {
  require(id < addresses_.size(), "Topology: node id out of range");
  return addresses_[id];
}

std::vector<net::NodeId> Topology::group_nodes(std::uint32_t group) const {
  require(group < config_.num_groups, "Topology: group out of range");
  return members_[group];
}

std::vector<net::NodeId> Topology::all_nodes() const {
  std::vector<net::NodeId> nodes;
  nodes.reserve(addresses_.size());
  for (net::NodeId id = 0; id < addresses_.size(); ++id) {
    nodes.push_back(id);
  }
  return nodes;
}

net::NodeId Topology::add_node(std::uint32_t group) {
  require(group < config_.num_groups, "Topology: group out of range");
  const auto id = static_cast<net::NodeId>(addresses_.size());
  const auto index = static_cast<std::uint32_t>(members_[group].size());
  rings_[group].add_member(index, "group" + std::to_string(group) +
                                      "/node" + std::to_string(index));
  members_[group].push_back(id);
  addresses_.push_back(NodeAddress{group, index});
  global_ring_.add_member(id, "node" + std::to_string(id));
  return id;
}

void Topology::bind_prefixes(
    const std::vector<std::uint64_t>& leaf_prefixes) {
  require(!leaf_prefixes.empty(), "Topology: no prefixes to bind");
  std::vector<std::uint64_t> sorted = leaf_prefixes;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  prefix_to_group_.clear();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    prefix_to_group_[sorted[i]] =
        static_cast<std::uint32_t>(i % config_.num_groups);
  }
}

std::uint32_t Topology::group_for_prefix(std::uint64_t prefix) const {
  require(!prefix_to_group_.empty(),
          "Topology: bind_prefixes() has not been called");
  auto it = prefix_to_group_.find(prefix);
  if (it != prefix_to_group_.end()) return it->second;
  // A prefix the binding never saw (possible when a query traverses a
  // branch the build sample never produced): fall back to a stable modular
  // assignment so routing still succeeds.
  return static_cast<std::uint32_t>(prefix % config_.num_groups);
}

std::vector<net::NodeId> Topology::nodes_for_key(std::uint32_t group,
                                                 std::uint64_t key) const {
  require(group < config_.num_groups, "Topology: group out of range");
  const auto owners = rings_[group].owners(key, config_.replication);
  std::vector<net::NodeId> nodes;
  nodes.reserve(owners.size());
  for (std::uint32_t member : owners) {
    nodes.push_back(members_[group][member]);
  }
  return nodes;
}

net::NodeId Topology::primary_node_for_key(std::uint32_t group,
                                           std::uint64_t key) const {
  require(group < config_.num_groups, "Topology: group out of range");
  return members_[group][rings_[group].owner(key)];
}

std::vector<net::NodeId> Topology::sequence_homes(std::uint64_t key) const {
  return global_ring_.owners(key, config_.sequence_replication);
}

}  // namespace mendel::cluster
