// Load-balance telemetry (drives Figure 5 and the cluster health checks).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/obs/metrics.h"

namespace mendel::cluster {

// Summary of how evenly data is spread over nodes.
struct LoadBalanceReport {
  // Per-node share of the total data volume, in [0,1], index = NodeId.
  std::vector<double> shares;
  double min_share = 0.0;
  double max_share = 0.0;
  // Paper's headline metric: largest share difference between any two
  // nodes ("the difference between single nodes never exceeds 1% of the
  // total data volume stored").
  double max_spread = 0.0;
  // Coefficient of variation of per-node counts (0 = perfectly even).
  double cov = 0.0;
};

LoadBalanceReport analyze_load(std::span<const std::uint64_t> per_node_counts);

// Publishes the report into `registry` gauges so load balance shows up in
// the unified metrics snapshot next to the pipeline stats. Gauges are
// integral, so the [0,1] shares are stored as parts-per-million:
// cluster.load_min_share_ppm, cluster.load_max_share_ppm,
// cluster.load_max_spread_ppm, cluster.load_cov_ppm, plus cluster.nodes.
// Called whenever placement changes (index / add_sequences / add_node).
void publish_load(const LoadBalanceReport& report,
                  obs::MetricsRegistry& registry);

}  // namespace mendel::cluster
