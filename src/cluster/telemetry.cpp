#include "src/cluster/telemetry.h"

#include <algorithm>

#include "src/common/stats.h"

namespace mendel::cluster {

LoadBalanceReport analyze_load(
    std::span<const std::uint64_t> per_node_counts) {
  LoadBalanceReport report;
  if (per_node_counts.empty()) return report;
  std::uint64_t total = 0;
  for (auto c : per_node_counts) total += c;
  report.shares.reserve(per_node_counts.size());
  RunningStats stats;
  for (auto c : per_node_counts) {
    const double share =
        total == 0 ? 0.0
                   : static_cast<double>(c) / static_cast<double>(total);
    report.shares.push_back(share);
    stats.add(static_cast<double>(c));
  }
  report.min_share =
      *std::min_element(report.shares.begin(), report.shares.end());
  report.max_share =
      *std::max_element(report.shares.begin(), report.shares.end());
  report.max_spread = report.max_share - report.min_share;
  report.cov = stats.mean() == 0.0 ? 0.0 : stats.stddev() / stats.mean();
  return report;
}

void publish_load(const LoadBalanceReport& report,
                  obs::MetricsRegistry& registry) {
  const auto ppm = [](double v) {
    return static_cast<std::int64_t>(v * 1e6 + 0.5);
  };
  registry.gauge("cluster.nodes")
      .set(static_cast<std::int64_t>(report.shares.size()));
  registry.gauge("cluster.load_min_share_ppm").set(ppm(report.min_share));
  registry.gauge("cluster.load_max_share_ppm").set(ppm(report.max_share));
  registry.gauge("cluster.load_max_spread_ppm").set(ppm(report.max_spread));
  registry.gauge("cluster.load_cov_ppm").set(ppm(report.cov));
}

}  // namespace mendel::cluster
