// Two-tier cluster topology (paper §IV-C).
//
// Storage nodes are partitioned into groups. Tier 1 routes an
// inverted-index block to a *group* via the vp-prefix tree LSH (similar
// blocks collide into the same group); tier 2 places it on an individual
// node via a flat SHA-1 consistent-hash ring private to the group. The
// overlay is zero-hop: every participant can compute both tiers locally, so
// requests go straight to their destination with no intermediate routing.
//
// Membership is table-based so nodes can be added incrementally (the DHT
// elasticity the paper motivates): add_node() grows a group and its ring,
// after which ~1/n of the group's keys map to the newcomer (consistent
// hashing), and the rebalance protocol in src/mendel migrates exactly those
// blocks. Initial node ids are dense (group-major); nodes added later take
// the next free ids.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/hash/ring.h"
#include "src/net/message.h"

namespace mendel::cluster {

struct TopologyConfig {
  std::uint32_t num_groups = 10;
  std::uint32_t nodes_per_group = 5;
  // Virtual nodes per member on each group's ring.
  std::size_t ring_virtual_nodes = 64;
  // Copies of each block within its group (1 = no replication). The
  // paper lists fault tolerance as future work; Mendel implements it as an
  // optional replication factor.
  std::uint32_t replication = 1;
  // Copies of each reference sequence in the cluster-wide repository.
  std::uint32_t sequence_replication = 1;
};

struct NodeAddress {
  std::uint32_t group = 0;
  std::uint32_t index = 0;  // ordinal within the group
};

class Topology {
 public:
  explicit Topology(TopologyConfig config);

  const TopologyConfig& config() const { return config_; }
  std::uint32_t num_groups() const { return config_.num_groups; }
  // Size of the given group (groups grow independently via add_node).
  std::uint32_t group_size(std::uint32_t group) const;
  // Initial per-group size from the config (load_index compatibility).
  std::uint32_t nodes_per_group() const { return config_.nodes_per_group; }
  std::uint32_t total_nodes() const {
    return static_cast<std::uint32_t>(addresses_.size());
  }

  net::NodeId node_id(std::uint32_t group, std::uint32_t index) const;
  NodeAddress address(net::NodeId id) const;
  std::vector<net::NodeId> group_nodes(std::uint32_t group) const;
  std::vector<net::NodeId> all_nodes() const;

  // Grows `group` by one node; returns the new node's id (always
  // total_nodes() before the call). The group ring and the global
  // sequence-repository ring gain the member, so ~1/n of keys remap to it.
  net::NodeId add_node(std::uint32_t group);

  // Tier 1: binds the vp-prefix tree's emitted prefixes onto groups.
  // Prefixes are assigned round-robin in sorted order, so every group
  // receives (nearly) the same number of prefixes. Must be called before
  // group_for_prefix().
  void bind_prefixes(const std::vector<std::uint64_t>& leaf_prefixes);
  std::uint32_t group_for_prefix(std::uint64_t prefix) const;

  // Tier 2: the node(s) within `group` owning flat-hash `key`. Returns
  // `replication` distinct nodes, primary first.
  std::vector<net::NodeId> nodes_for_key(std::uint32_t group,
                                         std::uint64_t key) const;
  net::NodeId primary_node_for_key(std::uint32_t group,
                                   std::uint64_t key) const;

  // Home node(s) of a reference sequence in the cluster-wide repository
  // (sequence_replication replicas, primary first). Keys are hashes of the
  // sequence id; all nodes participate.
  std::vector<net::NodeId> sequence_homes(std::uint64_t key) const;

 private:
  TopologyConfig config_;
  std::vector<hashing::HashRing> rings_;           // one per group
  hashing::HashRing global_ring_;                  // sequence repository
  std::vector<std::vector<net::NodeId>> members_;  // per group
  std::vector<NodeAddress> addresses_;             // per node id
  std::map<std::uint64_t, std::uint32_t> prefix_to_group_;
};

}  // namespace mendel::cluster
