#include "src/net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <utility>

#include "src/common/error.h"

namespace mendel::net {

namespace {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

struct ParsedEndpoint {
  bool unix_domain = false;
  std::string host;  // or socket path
  std::string port;
};

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  ParsedEndpoint out;
  if (endpoint.rfind("unix:", 0) == 0) {
    out.unix_domain = true;
    out.host = endpoint.substr(5);
    if (out.host.empty()) {
      throw InvalidArgument("endpoint '" + endpoint + "': empty socket path");
    }
    // sockaddr_un::sun_path is a fixed 108-byte field.
    if (out.host.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw InvalidArgument("endpoint '" + endpoint +
                            "': unix socket path too long");
    }
    return out;
  }
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    throw InvalidArgument("endpoint '" + endpoint +
                          "': expected host:port or unix:/path");
  }
  out.host = endpoint.substr(0, colon);
  out.port = endpoint.substr(colon + 1);
  return out;
}

void set_nodelay(int fd) {
  int one = 1;
  // Best effort: fails (harmlessly) on Unix-domain sockets.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool set_blocking(int fd, bool blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

// Connects to `endpoint` with a bounded timeout. Returns -1 on failure.
int dial_fd(const std::string& endpoint, double timeout_seconds) {
  const ParsedEndpoint parsed = parse_endpoint(endpoint);
  int fd = -1;
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  if (parsed.unix_domain) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    auto* un = reinterpret_cast<sockaddr_un*>(&addr);
    un->sun_family = AF_UNIX;
    std::strncpy(un->sun_path, parsed.host.c_str(),
                 sizeof(un->sun_path) - 1);
    addr_len = sizeof(sockaddr_un);
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(parsed.host.c_str(), parsed.port.c_str(), &hints,
                      &res) != 0 ||
        res == nullptr) {
      return -1;
    }
    fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd >= 0) {
      std::memcpy(&addr, res->ai_addr, res->ai_addrlen);
      addr_len = static_cast<socklen_t>(res->ai_addrlen);
    }
    ::freeaddrinfo(res);
    if (fd < 0) return -1;
  }

  // Nonblocking connect + poll: a blocking connect to a dead TCP peer can
  // hang for minutes, which would wedge a sending handler thread.
  if (!set_blocking(fd, false)) {
    ::close(fd);
    return -1;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), addr_len);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        timeout_seconds <= 0 ? 0
                             : static_cast<int>(timeout_seconds * 1000.0) + 1;
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 1) {
      int err = 0;
      socklen_t len = sizeof(err);
      rc = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (rc == 0 && err != 0) rc = -1;
    } else {
      rc = -1;  // timeout or poll error
    }
  }
  if (rc != 0 || !set_blocking(fd, true)) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

int listen_fd_for(const std::string& endpoint, int backlog) {
  const ParsedEndpoint parsed = parse_endpoint(endpoint);
  int fd = -1;
  if (parsed.unix_domain) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw IoError("socket() failed for " + endpoint);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, parsed.host.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A previous daemon instance (or a SIGKILLed one) leaves the path
    // behind; rebinding over it is the restart path.
    ::unlink(parsed.host.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw IoError("bind() failed for " + endpoint + ": " +
                    std::strerror(errno));
    }
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    if (::getaddrinfo(parsed.host.c_str(), parsed.port.c_str(), &hints,
                      &res) != 0 ||
        res == nullptr) {
      throw IoError("getaddrinfo() failed for " + endpoint);
    }
    fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      throw IoError("socket() failed for " + endpoint);
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const int rc =
        ::bind(fd, res->ai_addr, static_cast<socklen_t>(res->ai_addrlen));
    ::freeaddrinfo(res);
    if (rc != 0) {
      ::close(fd);
      throw IoError("bind() failed for " + endpoint + ": " +
                    std::strerror(errno));
    }
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw IoError("listen() failed for " + endpoint + ": " +
                  std::strerror(errno));
  }
  return fd;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::vector<std::string> parse_endpoint_list(std::string_view csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t end = csv.find(',', begin);
    if (end == std::string_view::npos) end = csv.size();
    std::string_view item = csv.substr(begin, end - begin);
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    if (!item.empty()) out.emplace_back(item);
    if (end == csv.size()) break;
    begin = end + 1;
  }
  return out;
}

std::vector<std::string> endpoints_from_env(
    std::vector<std::string> fallback) {
  const char* env = std::getenv("MENDEL_ENDPOINTS");
  if (env == nullptr || *env == '\0') return fallback;
  auto parsed = parse_endpoint_list(env);
  if (parsed.empty()) return fallback;
  return parsed;
}

SocketTransport::SocketTransport(SocketOptions options)
    : options_(std::move(options)) {}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::register_actor(NodeId id, Actor* actor) {
  require(!started_, "SocketTransport: register_actor after start()");
  require(actor != nullptr, "SocketTransport: null actor");
  actors_[id] = actor;
  mailboxes_[id] = std::make_unique<Mailbox>();
}

std::vector<NodeId> SocketTransport::local_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(actors_.size());
  for (const auto& [id, actor] : actors_) ids.push_back(id);
  return ids;
}

void SocketTransport::start() {
  require(!started_, "SocketTransport: start() called twice");
  started_ = true;
  running_.store(true, std::memory_order_release);

  // Listeners: one per unique endpoint among the locally hosted node ids.
  std::vector<std::string> local_endpoints;
  for (const auto& [id, actor] : actors_) {
    if (id >= options_.endpoints.size()) continue;  // e.g. the client actor
    const std::string& ep = options_.endpoints[id];
    if (std::find(local_endpoints.begin(), local_endpoints.end(), ep) ==
        local_endpoints.end()) {
      local_endpoints.push_back(ep);
    }
  }
  for (const std::string& ep : local_endpoints) {
    const int fd = listen_fd_for(ep, options_.accept_backlog);
    listen_fds_.push_back(fd);
    threads_.emplace_back([this, fd] { accept_loop(fd); });
  }

  // Dispatch threads (one per local actor, same contract as
  // ThreadTransport: handlers of one actor never run concurrently).
  for (auto& [id, mailbox] : mailboxes_) {
    Actor* actor = actors_.at(id);
    Mailbox* mb = mailbox.get();
    const NodeId actor_id = id;
    threads_.emplace_back(
        [this, actor_id, actor, mb] { dispatch_loop(actor_id, actor, mb); });
  }

  // Remote peers: every unique endpoint serving a non-local id.
  {
    std::lock_guard lock(peers_mu_);
    const double now = mono_seconds();
    for (NodeId id = 0; id < options_.endpoints.size(); ++id) {
      if (actors_.contains(id)) continue;
      const std::string& ep = options_.endpoints[id];
      Peer* peer = nullptr;
      for (auto& existing : peers_) {
        if (existing->endpoint == ep) {
          peer = existing.get();
          break;
        }
      }
      if (peer == nullptr) {
        peers_.push_back(std::make_unique<Peer>());
        peer = peers_.back().get();
        peer->endpoint = ep;
        peer->last_seen = now;
      }
      peer_of_id_[id] = peer;
    }
  }

  // Eager dial: peers may come up in any order, so retry each within the
  // connect budget. Failure here is not fatal — the peer stays subject to
  // backoff redial and (if enabled) heartbeat down-marking.
  std::vector<Peer*> to_dial;
  {
    std::lock_guard lock(peers_mu_);
    for (auto& peer : peers_) to_dial.push_back(peer.get());
  }
  // Dial concurrently: peers come up in any order, and a sequential loop
  // would serialize the full connect budget per missing peer. The accept
  // loops are already live, so two processes dialing each other both
  // succeed (each side keeps its own outbound connection).
  std::vector<std::thread> dialers;
  dialers.reserve(to_dial.size());
  for (Peer* peer : to_dial) {
    dialers.emplace_back([this, peer] {
      const double deadline = mono_seconds() + options_.connect_timeout;
      for (;;) {
        {
          std::lock_guard lock(peers_mu_);
          peer->dialing = true;
        }
        if (dial_peer(peer) != nullptr) break;
        if (mono_seconds() >= deadline) break;
        sleep_seconds(0.02);
      }
    });
  }
  for (auto& dialer : dialers) dialer.join();

  if (options_.heartbeat_interval > 0) {
    threads_.emplace_back([this] { monitor_loop(); });
  }
}

void SocketTransport::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  running_.store(false, std::memory_order_release);

  for (int fd : listen_fds_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  listen_fds_.clear();

  // Stop the dispatch workers (they drain their queues first).
  for (auto& [id, mailbox] : mailboxes_) {
    std::lock_guard lock(mailbox->mu);
    mailbox->stop = true;
    mailbox->cv.notify_all();
  }

  // Join the control threads (accept loops exit on the closed listeners,
  // dispatch workers on the drained queues, the monitor on running_)
  // BEFORE collecting the reader threads: the monitor's redials and late
  // accepts adopt new readers, so collecting first would leave a joinable
  // std::thread behind to terminate() the process at destruction.
  for (auto& t : threads_) t.join();
  threads_.clear();

  // Shut every connection down; the reader threads wake, close the fds,
  // and exit.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard lock(peers_mu_);
    for (auto& peer : peers_) {
      if (peer->conn) conns.push_back(peer->conn);
    }
    for (auto& conn : inbound_) conns.push_back(conn);
    hello_routes_.clear();
  }
  for (auto& conn : conns) close_conn(conn);

  std::vector<std::thread> readers;
  {
    std::lock_guard lock(reader_threads_mu_);
    readers_closed_ = true;
    readers.swap(reader_threads_);
  }
  for (auto& t : readers) t.join();
}

void SocketTransport::dispatch_loop(NodeId id, Actor* actor,
                                    Mailbox* mailbox) {
  for (;;) {
    Message message;
    {
      std::unique_lock lock(mailbox->mu);
      while (mailbox->queue.empty() && !mailbox->stop) {
        mailbox->cv.wait(lock);
      }
      if (mailbox->queue.empty()) return;  // stop and drained
      message = std::move(mailbox->queue.front());
      mailbox->queue.pop_front();
    }
    Context ctx(this, id, mono_seconds(), /*virtual_time=*/false);
    try {
      actor->handle(message, ctx);
    } catch (const DecodeError&) {
      // Malformed frame a non-node actor did not swallow itself: counted,
      // dropped, keep serving (hostile bytes must never stop dispatch).
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      record_error("node " + std::to_string(id) + ", message type " +
                   std::to_string(message.type) + ", request " +
                   std::to_string(message.request_id) + ": " + e.what());
    }
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(idle_mu_);
      idle_cv_.notify_all();
    }
  }
}

void SocketTransport::wait_local_idle() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void SocketTransport::deliver_local(Message message) {
  auto it = mailboxes_.find(message.to);
  if (it == mailboxes_.end()) {
    // A frame addressed to an actor this process doesn't host: misrouted
    // or version-skewed peer. Count and drop.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  Mailbox* mailbox = it->second.get();
  {
    std::lock_guard lock(mailbox->mu);
    mailbox->queue.push_back(std::move(message));
    mailbox->cv.notify_one();
  }
}

void SocketTransport::send(Message message) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(message.wire_size(), std::memory_order_relaxed);
  if (tracked_queries_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(qstats_mu_);
    auto it = query_stats_.find(message.request_id);
    if (it != query_stats_.end()) {
      it->second.messages += 1;
      it->second.bytes += message.wire_size();
    }
  }
  {
    std::lock_guard lock(fault_mu_);
    auto fit = failed_.find(message.to);
    if (fit != failed_.end() && fit->second) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto tit = type_drops_.find(message.to);
    if (tit != type_drops_.end() && tit->second == message.type) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (actors_.contains(message.to)) {
    deliver_local(std::move(message));
    return;
  }
  send_remote(message);
}

std::shared_ptr<SocketTransport::Conn> SocketTransport::connection_for(
    NodeId to) {
  Peer* peer = nullptr;
  {
    std::lock_guard lock(peers_mu_);
    auto hit = hello_routes_.find(to);
    if (hit != hello_routes_.end()) {
      if (hit->second->open.load(std::memory_order_acquire)) {
        return hit->second;
      }
      hello_routes_.erase(hit);
    }
    auto pit = peer_of_id_.find(to);
    if (pit == peer_of_id_.end()) {
      // No endpoint and no learned route: configuration bug, not a
      // runtime failure.
      throw ProtocolError("SocketTransport: no route to node " +
                          std::to_string(to));
    }
    peer = pit->second;
    if (peer->conn) {
      if (peer->conn->open.load(std::memory_order_acquire)) {
        return peer->conn;
      }
      peer->conn = nullptr;
    }
    const double now = mono_seconds();
    if (peer->dialing || now < peer->next_dial) return nullptr;
    peer->dialing = true;
  }
  return dial_peer(peer);
}

std::shared_ptr<SocketTransport::Conn> SocketTransport::dial_peer(
    Peer* peer) {
  // The endpoint string is immutable after start(), so it is safe to read
  // without peers_mu_ while the (slow) dial runs unlocked; `dialing` was
  // set by the caller and serializes concurrent dial attempts.
  const double attempt_timeout =
      std::min(options_.connect_timeout, 0.5);
  const int fd = dial_fd(peer->endpoint, attempt_timeout);
  if (fd < 0) {
    std::lock_guard lock(peers_mu_);
    peer->dialing = false;
    peer->backoff = peer->backoff <= 0
                        ? options_.reconnect_backoff
                        : std::min(peer->backoff * 2,
                                   options_.reconnect_backoff_max);
    peer->next_dial = mono_seconds() + peer->backoff;
    return nullptr;
  }
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  // Hello preamble: announce our actor ids so the peer can route replies
  // (in particular to the client actor, which has no endpoint) back over
  // this connection.
  const auto hello = encode_hello_frame(local_ids());
  if (!write_all(fd, hello.data(), hello.size())) {
    ::close(fd);
    std::lock_guard lock(peers_mu_);
    peer->dialing = false;
    peer->next_dial = mono_seconds() + options_.reconnect_backoff;
    return nullptr;
  }
  {
    std::lock_guard lock(peers_mu_);
    peer->dialing = false;
    peer->conn = conn;
    if (peer->ever_connected) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    peer->ever_connected = true;
    peer->backoff = 0.0;
    peer->next_dial = 0.0;
    peer->last_seen = mono_seconds();
    peer->hb_down = false;
  }
  adopt_reader(conn);
  return conn;
}

bool SocketTransport::send_remote(const Message& message) {
  std::shared_ptr<Conn> conn = connection_for(message.to);
  if (conn == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const auto bytes = encode_message_frame(message);
  if (!write_frame(conn, bytes)) {
    close_conn(conn);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool SocketTransport::write_frame(const std::shared_ptr<Conn>& conn,
                                  std::span<const std::uint8_t> bytes) {
  std::lock_guard lock(conn->write_mu);
  if (!conn->open.load(std::memory_order_acquire) || conn->fd < 0) {
    return false;
  }
  return write_all(conn->fd, bytes.data(), bytes.size());
}

void SocketTransport::close_conn(const std::shared_ptr<Conn>& conn) {
  // Mark closed and shut the stream down; the reader thread owns the
  // actual close(2) so the fd number cannot be reused while a writer is
  // mid-send on it.
  if (!conn->open.exchange(false, std::memory_order_acq_rel)) return;
  ::shutdown(conn->fd, SHUT_RDWR);
}

void SocketTransport::adopt_reader(std::shared_ptr<Conn> conn) {
  std::lock_guard lock(reader_threads_mu_);
  if (readers_closed_) {
    // stop() already collected the readers; a connection racing shutdown
    // (e.g. a send-path redial from a draining handler) is just closed.
    close_conn(conn);
    std::lock_guard fd_lock(conn->write_mu);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    return;
  }
  reader_threads_.emplace_back(
      [this, conn = std::move(conn)]() mutable { reader_loop(conn); });
}

void SocketTransport::reader_loop(std::shared_ptr<Conn> conn) {
  FrameParser parser(options_.max_frame_bytes);
  std::vector<std::uint8_t> buf(64 * 1024);
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    parser.feed({buf.data(), static_cast<std::size_t>(n)});
    try {
      Frame frame;
      while (parser.next(frame)) on_frame(conn, std::move(frame));
    } catch (const DecodeError&) {
      // Malformed stream: after a framing error the byte position is
      // untrustworthy, so the whole connection is dropped.
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  if (parser.buffered() > 0) {
    // Peer died mid-frame: a truncated frame is a decode failure, the
    // same category the application codecs report for cut-short buffers.
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  close_conn(conn);
  {
    // Drop every route over this connection; the fd is closed under the
    // write mutex so no writer can race the close.
    std::lock_guard lock(peers_mu_);
    for (auto it = hello_routes_.begin(); it != hello_routes_.end();) {
      it = it->second == conn ? hello_routes_.erase(it) : std::next(it);
    }
    for (auto& peer : peers_) {
      if (peer->conn == conn) peer->conn = nullptr;
    }
  }
  {
    std::lock_guard lock(conn->write_mu);
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void SocketTransport::on_frame(const std::shared_ptr<Conn>& conn,
                               Frame frame) {
  {
    // Any inbound frame proves the peer is alive.
    std::lock_guard lock(peers_mu_);
    for (auto& peer : peers_) {
      if (peer->conn == conn) {
        peer->last_seen = mono_seconds();
        peer->hb_down = false;
        break;
      }
    }
  }
  switch (frame.kind) {
    case FrameKind::kMessage:
      deliver_local(std::move(frame.message));
      return;
    case FrameKind::kHello: {
      std::lock_guard lock(peers_mu_);
      for (NodeId id : frame.hello) {
        hello_routes_[id] = conn;
        // Adopt the inbound connection for endpoint peers that are not
        // otherwise connected (two daemons that dialed each other end up
        // sharing one stream instead of redialing).
        auto pit = peer_of_id_.find(id);
        if (pit != peer_of_id_.end() && pit->second->conn == nullptr) {
          pit->second->conn = conn;
          pit->second->ever_connected = true;
          pit->second->last_seen = mono_seconds();
          pit->second->hb_down = false;
        }
      }
      return;
    }
    case FrameKind::kPing: {
      const auto pong = encode_ping_frame(FrameKind::kPong, frame.nonce);
      write_frame(conn, pong);
      return;
    }
    case FrameKind::kPong:
      return;  // liveness already recorded above
  }
}

void SocketTransport::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop()) or fatal error
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard lock(peers_mu_);
      inbound_.push_back(conn);
    }
    adopt_reader(std::move(conn));
  }
}

void SocketTransport::monitor_loop() {
  double next_tick = mono_seconds() + options_.heartbeat_interval;
  while (running_.load(std::memory_order_acquire)) {
    sleep_seconds(std::min(options_.heartbeat_interval, 0.05));
    const double now = mono_seconds();
    if (now < next_tick) continue;
    next_tick = now + options_.heartbeat_interval;

    std::vector<std::shared_ptr<Conn>> to_ping;
    std::vector<Peer*> to_dial;
    {
      std::lock_guard lock(peers_mu_);
      for (auto& peer : peers_) {
        if (peer->conn &&
            peer->conn->open.load(std::memory_order_acquire)) {
          to_ping.push_back(peer->conn);
        } else if (!peer->dialing && now >= peer->next_dial) {
          peer->dialing = true;
          to_dial.push_back(peer.get());
        }
        if (!peer->hb_down &&
            now - peer->last_seen > options_.heartbeat_timeout) {
          peer->hb_down = true;
          heartbeats_missed_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    const std::uint64_t nonce =
        ping_nonce_.fetch_add(1, std::memory_order_relaxed);
    const auto ping = encode_ping_frame(FrameKind::kPing, nonce);
    for (auto& conn : to_ping) {
      if (!write_frame(conn, ping)) close_conn(conn);
    }
    for (Peer* peer : to_dial) dial_peer(peer);
  }
}

NetworkStats SocketTransport::stats() const {
  NetworkStats out;
  out.messages = messages_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  return out;
}

void SocketTransport::begin_query_stats(std::uint64_t query_id) {
  std::lock_guard lock(qstats_mu_);
  if (query_stats_.emplace(query_id, NetworkStats{}).second) {
    tracked_queries_.fetch_add(1, std::memory_order_acq_rel);
  }
}

NetworkStats SocketTransport::take_query_stats(std::uint64_t query_id) {
  std::lock_guard lock(qstats_mu_);
  auto it = query_stats_.find(query_id);
  if (it == query_stats_.end()) return {};
  NetworkStats out = it->second;
  query_stats_.erase(it);
  tracked_queries_.fetch_sub(1, std::memory_order_acq_rel);
  return out;
}

void SocketTransport::fail_node(NodeId id) {
  std::lock_guard lock(fault_mu_);
  failed_[id] = true;
}

void SocketTransport::heal_node(NodeId id) {
  {
    std::lock_guard lock(fault_mu_);
    failed_.erase(id);
    type_drops_.erase(id);
  }
  // Give the peer a fresh liveness lease: a restarted daemon should be
  // redialed immediately, not after the stale backoff window.
  std::lock_guard lock(peers_mu_);
  auto pit = peer_of_id_.find(id);
  if (pit != peer_of_id_.end()) {
    pit->second->last_seen = mono_seconds();
    pit->second->hb_down = false;
    pit->second->next_dial = 0.0;
    pit->second->backoff = 0.0;
  }
}

bool SocketTransport::node_down(NodeId id) const {
  {
    std::lock_guard lock(fault_mu_);
    auto it = failed_.find(id);
    if (it != failed_.end() && it->second) return true;
  }
  if (options_.heartbeat_interval <= 0) return false;
  std::lock_guard lock(peers_mu_);
  auto pit = peer_of_id_.find(id);
  if (pit == peer_of_id_.end()) return false;
  return pit->second->hb_down;
}

void SocketTransport::drop_type_to(NodeId id, std::uint32_t type) {
  std::lock_guard lock(fault_mu_);
  type_drops_[id] = type;
}

std::vector<std::string> SocketTransport::handler_errors() const {
  std::lock_guard lock(errors_mu_);
  return errors_;
}

void SocketTransport::record_error(std::string what) {
  std::lock_guard lock(errors_mu_);
  errors_.push_back(std::move(what));
}

}  // namespace mendel::net
