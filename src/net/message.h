// Message envelope and actor interfaces of the Mendel cluster runtime.
//
// Mendel's network overlay is a zero-hop DHT (paper §IV-C): every node knows
// the address of every other node, so a message always travels exactly one
// logical hop. The runtime below models that as a flat actor space: each
// storage node (and each client) is an Actor addressed by NodeId, and
// Transport implementations deliver typed, serialized envelopes between
// them.
//
// Three transports exist (construct via transport_factory.h):
//   * SimTransport (sim_transport.h)     — deterministic discrete-event
//     engine with virtual time; the primary runtime and the one the
//     benchmark figures are measured on.
//   * ThreadTransport (thread_transport.h) — one OS thread per node with
//     blocking mailboxes; exercises the same actor code under real
//     concurrency in the integration tests.
//   * SocketTransport (socket_transport.h) — real length-prefixed frames
//     over TCP or Unix-domain sockets; the multi-process deployment
//     runtime behind the mendel-node daemon.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/codec.h"
#include "src/net/fault.h"

namespace mendel::net {

// Reserved id for client endpoints (a client is just an actor that lives
// outside the storage keyspace).
inline constexpr NodeId kClientNode = 0xfffffff0u;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  // Application-defined message type tag (see src/mendel/protocol.h).
  std::uint32_t type = 0;
  // Correlation id: responses carry the request's id so coordinators can
  // match fan-out replies to pending queries.
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const {
    // Envelope header (from/to/type/request_id/len) + payload.
    return 24 + payload.size();
  }
};

// One-line human-readable identity of a message (type, request id, sender,
// payload size) for error reports and logs. The type is printed numerically
// because the net layer is application-agnostic (see src/mendel/protocol.h
// for the mendel cluster's type names).
std::string describe(const Message& message);

class Transport;

// Handler-side view of the runtime: lets an actor reply or fan out further
// messages and observe its own clock.
class Context {
 public:
  Context(Transport* transport, NodeId self, double now,
          bool virtual_time = false)
      : transport_(transport), self_(self), now_(now),
        virtual_time_(virtual_time) {}

  NodeId self() const { return self_; }

  // Current time in seconds: virtual time under SimTransport, wall time
  // under ThreadTransport.
  double now() const { return now_; }

  // True under the simulator, where now() is virtual and measuring wall
  // durations would break run-to-run determinism (trace spans record
  // duration 0 instead).
  bool virtual_time() const { return virtual_time_; }

  void send(NodeId to, std::uint32_t type, std::uint64_t request_id,
            std::vector<std::uint8_t> payload);

 private:
  Transport* transport_;
  NodeId self_;
  double now_;
  bool virtual_time_;
};

class Actor {
 public:
  virtual ~Actor() = default;
  virtual void handle(const Message& message, Context& ctx) = 0;
};

// Convenience adapter so tests and clients can register a lambda.
class FunctionActor : public Actor {
 public:
  using Fn = std::function<void(const Message&, Context&)>;
  explicit FunctionActor(Fn fn) : fn_(std::move(fn)) {}
  void handle(const Message& message, Context& ctx) override {
    fn_(message, ctx);
  }

 private:
  Fn fn_;
};

// Aggregate transfer statistics (drives the network columns of the bench
// tables).
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Must be called before any traffic involving `id` flows.
  virtual void register_actor(NodeId id, Actor* actor) = 0;

  // Enqueues a message for delivery (called by Context::send and by
  // external injectors).
  virtual void send(Message message) = 0;

  virtual NetworkStats stats() const = 0;

  // Fault-injection capability (src/net/fault.h). All Mendel transports
  // implement it and return `this`; the default keeps the Transport
  // interface implementable without one (callers must check for null).
  virtual FaultInjector* fault_injector() { return nullptr; }

  // --- per-query traffic attribution ------------------------------------
  // Opt-in exact accounting: after begin_query_stats(id), every message
  // whose request_id equals `id` is also counted into a per-query bucket
  // until take_query_stats(id) removes and returns it. Because the query
  // dataflow reuses the query id as request_id end to end, the bucket is
  // exactly that query's traffic even with other queries in flight. Only
  // registered ids pay the bookkeeping; the defaults make the feature a
  // no-op for Transport subclasses that don't implement it.
  virtual void begin_query_stats(std::uint64_t query_id) {
    (void)query_id;
  }
  virtual NetworkStats take_query_stats(std::uint64_t query_id) {
    (void)query_id;
    return {};
  }
};

}  // namespace mendel::net
