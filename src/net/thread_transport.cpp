#include "src/net/thread_transport.h"

#include <chrono>

#include "src/common/error.h"

namespace mendel::net {

ThreadTransport::~ThreadTransport() {
  if (started_ && !stopped_) drain_and_stop();
}

void ThreadTransport::register_actor(NodeId id, Actor* actor) {
  require(actor != nullptr, "ThreadTransport: null actor");
  require(!started_, "ThreadTransport: register after start()");
  require(!actors_.contains(id),
          "ThreadTransport: duplicate actor id " + std::to_string(id));
  actors_[id] = actor;
  mailboxes_[id] = std::make_unique<Mailbox>();
}

void ThreadTransport::start() {
  require(!started_, "ThreadTransport: started twice");
  started_ = true;
  workers_.reserve(actors_.size());
  for (auto& [id, actor] : actors_) {
    Mailbox* mailbox = mailboxes_.at(id).get();
    workers_.emplace_back(
        [this, id = id, actor = actor, mailbox] {
          worker_loop(id, actor, mailbox);
        });
  }
}

void ThreadTransport::send(Message message) {
  auto it = mailboxes_.find(message.to);
  if (it == mailboxes_.end()) {
    throw ProtocolError("ThreadTransport: send to unregistered node " +
                        std::to_string(message.to));
  }
  Mailbox* mailbox = it->second.get();
  // The sender pays the traffic either way (parity with SimTransport, which
  // counts at send and drops at delivery).
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(message.wire_size(), std::memory_order_relaxed);
  // Per-query attribution only when someone registered a query: the atomic
  // gate keeps the untracked hot path free of locks and hash lookups.
  if (message.request_id != 0 &&
      tracked_queries_.load(std::memory_order_acquire) != 0) {
    if (StatSlot* slot = find_stat_slot(message.request_id)) {
      slot->messages.fetch_add(1, std::memory_order_relaxed);
      slot->bytes.fetch_add(message.wire_size(), std::memory_order_relaxed);
    } else if (overflow_tracked_.load(std::memory_order_acquire) != 0) {
      std::lock_guard lock(stats_mu_);
      auto stats_it = overflow_stats_.find(message.request_id);
      if (stats_it != overflow_stats_.end()) {
        stats_it->second.messages += 1;
        stats_it->second.bytes += message.wire_size();
      }
    }
  }
  if (mailbox->failed.load(std::memory_order_relaxed) ||
      mailbox->drop_type.load(std::memory_order_relaxed) == message.type) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard lock(mailbox->mu);
    mailbox->queue.push_back(std::move(message));
  }
  mailbox->cv.notify_one();
}

void ThreadTransport::record_error(std::string what) {
  std::lock_guard lock(errors_mu_);
  errors_.push_back(std::move(what));
}

std::vector<std::string> ThreadTransport::handler_errors() const {
  std::lock_guard lock(errors_mu_);
  return errors_;
}

void ThreadTransport::worker_loop(NodeId id, Actor* actor, Mailbox* mailbox) {
  for (;;) {
    Message message;
    {
      // Explicit wait loop (not a predicate lambda) so Clang's
      // thread-safety analysis can see queue/stop accessed under mu.
      std::unique_lock lock(mailbox->mu);
      while (!mailbox->stop && mailbox->queue.empty()) mailbox->cv.wait(lock);
      if (mailbox->queue.empty()) return;  // stop && drained
      message = std::move(mailbox->queue.front());
      mailbox->queue.pop_front();
    }
    const double now =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    Context ctx(this, id, now);
    // A throwing handler must still decrement inflight_, or drain_and_stop()
    // would wait forever on a count that can no longer reach zero. Record
    // the failure — with the message's identity, so the error list alone
    // pinpoints the offending traffic — and keep serving the mailbox.
    const std::string origin = "node " + std::to_string(id) + " handling " +
                               describe(message) + ": ";
    try {
      actor->handle(message, ctx);
    } catch (const DecodeError& e) {
      // A malformed frame an actor did not swallow itself (StorageNode
      // counts and drops its own; this backstop covers every other actor,
      // e.g. the client's reply handler). Counted separately so operators
      // can tell hostile bytes from handler bugs.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      record_error(origin + e.what());
    } catch (const std::exception& e) {
      record_error(origin + e.what());
    } catch (...) {
      record_error(origin + "unknown (non-std::exception) handler error");
    }
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(idle_mu_);
      idle_cv_.notify_all();
    }
  }
}

void ThreadTransport::wait_idle() {
  require(started_, "ThreadTransport: wait_idle before start()");
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadTransport::drain_and_stop() {
  require(started_, "ThreadTransport: drain before start()");
  require(!stopped_, "ThreadTransport: drained twice");
  wait_idle();
  for (auto& [id, mailbox] : mailboxes_) {
    std::lock_guard lock(mailbox->mu);
    mailbox->stop = true;
    mailbox->cv.notify_all();
  }
  for (auto& worker : workers_) worker.join();
  stopped_ = true;
}

void ThreadTransport::begin_query_stats(std::uint64_t query_id) {
  if (query_id == 0) return;  // 0 is the "untracked" sentinel in send()
  std::lock_guard lock(stats_mu_);
  if (find_stat_slot(query_id) != nullptr ||
      overflow_stats_.contains(query_id)) {
    return;  // already tracked
  }
  const std::size_t h = static_cast<std::size_t>(query_id) % kStatSlots;
  for (std::size_t p = 0; p < kStatProbe; ++p) {
    StatSlot& slot = stat_slots_[(h + p) % kStatSlots];
    // Only begin/take mutate ids, both under stats_mu_, so a plain check
    // suffices; the release store publishes the zeroed counters to the
    // lock-free readers in send().
    if (slot.id.load(std::memory_order_relaxed) != 0) continue;
    slot.messages.store(0, std::memory_order_relaxed);
    slot.bytes.store(0, std::memory_order_relaxed);
    slot.id.store(query_id, std::memory_order_release);
    tracked_queries_.fetch_add(1, std::memory_order_release);
    return;
  }
  overflow_stats_.emplace(query_id, NetworkStats{});
  overflow_tracked_.fetch_add(1, std::memory_order_release);
  tracked_queries_.fetch_add(1, std::memory_order_release);
}

NetworkStats ThreadTransport::take_query_stats(std::uint64_t query_id) {
  std::lock_guard lock(stats_mu_);
  if (StatSlot* slot = find_stat_slot(query_id)) {
    // The caller settles the query before taking its stats, so no send()
    // for this id races the release of the slot.
    NetworkStats out;
    out.messages = slot->messages.load(std::memory_order_relaxed);
    out.bytes = slot->bytes.load(std::memory_order_relaxed);
    slot->id.store(0, std::memory_order_release);
    tracked_queries_.fetch_sub(1, std::memory_order_release);
    return out;
  }
  auto it = overflow_stats_.find(query_id);
  if (it == overflow_stats_.end()) return {};
  NetworkStats out = it->second;
  overflow_stats_.erase(it);
  overflow_tracked_.fetch_sub(1, std::memory_order_release);
  tracked_queries_.fetch_sub(1, std::memory_order_release);
  return out;
}

NetworkStats ThreadTransport::stats() const {
  NetworkStats stats;
  stats.messages = messages_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadTransport::fail_node(NodeId id) {
  auto it = mailboxes_.find(id);
  require(it != mailboxes_.end(), "ThreadTransport: fail unknown node");
  it->second->failed.store(true, std::memory_order_relaxed);
}

void ThreadTransport::heal_node(NodeId id) {
  auto it = mailboxes_.find(id);
  require(it != mailboxes_.end(), "ThreadTransport: heal unknown node");
  it->second->failed.store(false, std::memory_order_relaxed);
  it->second->drop_type.store(kDropNone, std::memory_order_relaxed);
}

void ThreadTransport::drop_type_to(NodeId id, std::uint32_t type) {
  auto it = mailboxes_.find(id);
  require(it != mailboxes_.end(), "ThreadTransport: drop to unknown node");
  it->second->drop_type.store(type, std::memory_order_relaxed);
}

bool ThreadTransport::node_down(NodeId id) const {
  auto it = mailboxes_.find(id);
  return it != mailboxes_.end() &&
         it->second->failed.load(std::memory_order_relaxed);
}

}  // namespace mendel::net
