#include "src/net/thread_transport.h"

#include <chrono>

#include "src/common/error.h"

namespace mendel::net {

ThreadTransport::~ThreadTransport() {
  if (started_ && !stopped_) drain_and_stop();
}

void ThreadTransport::register_actor(NodeId id, Actor* actor) {
  require(actor != nullptr, "ThreadTransport: null actor");
  require(!started_, "ThreadTransport: register after start()");
  require(actors_.find(id) == actors_.end(),
          "ThreadTransport: duplicate actor id " + std::to_string(id));
  actors_[id] = actor;
  mailboxes_[id] = std::make_unique<Mailbox>();
}

void ThreadTransport::start() {
  require(!started_, "ThreadTransport: started twice");
  started_ = true;
  workers_.reserve(actors_.size());
  for (auto& [id, actor] : actors_) {
    Mailbox* mailbox = mailboxes_.at(id).get();
    workers_.emplace_back(
        [this, id = id, actor = actor, mailbox] {
          worker_loop(id, actor, mailbox);
        });
  }
}

void ThreadTransport::send(Message message) {
  auto it = mailboxes_.find(message.to);
  if (it == mailboxes_.end()) {
    throw ProtocolError("ThreadTransport: send to unregistered node " +
                        std::to_string(message.to));
  }
  {
    std::lock_guard lock(stats_mu_);
    stats_.messages += 1;
    stats_.bytes += message.wire_size();
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  Mailbox* mailbox = it->second.get();
  {
    std::lock_guard lock(mailbox->mu);
    mailbox->queue.push_back(std::move(message));
  }
  mailbox->cv.notify_one();
}

void ThreadTransport::worker_loop(NodeId id, Actor* actor, Mailbox* mailbox) {
  for (;;) {
    Message message;
    {
      std::unique_lock lock(mailbox->mu);
      mailbox->cv.wait(lock,
                       [&] { return mailbox->stop || !mailbox->queue.empty(); });
      if (mailbox->queue.empty()) {
        if (mailbox->stop) return;
        continue;
      }
      message = std::move(mailbox->queue.front());
      mailbox->queue.pop_front();
    }
    const double now =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    Context ctx(this, id, now);
    // A throwing handler would deadlock drain_and_stop(); surface the
    // failure loudly instead.
    actor->handle(message, ctx);
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(idle_mu_);
      idle_cv_.notify_all();
    }
  }
}

void ThreadTransport::drain_and_stop() {
  require(started_, "ThreadTransport: drain before start()");
  require(!stopped_, "ThreadTransport: drained twice");
  {
    std::unique_lock lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return inflight_.load(std::memory_order_acquire) == 0;
    });
  }
  for (auto& [id, mailbox] : mailboxes_) {
    std::lock_guard lock(mailbox->mu);
    mailbox->stop = true;
    mailbox->cv.notify_all();
  }
  for (auto& worker : workers_) worker.join();
  stopped_ = true;
}

NetworkStats ThreadTransport::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace mendel::net
