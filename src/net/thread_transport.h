// Thread-backed transport: one OS thread and one blocking mailbox per actor.
//
// This is the "real concurrency" twin of SimTransport. It runs the same
// Actor code under genuine parallel execution and real memory visibility,
// which the integration tests use to confirm that the cluster protocol is
// free of ordering assumptions that only hold in the single-threaded
// simulator. It reports wall-clock time, not virtual time, so it is not
// used for the scalability figures (see sim_transport.h for why).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "src/net/message.h"

namespace mendel::net {

class ThreadTransport final : public Transport {
 public:
  ThreadTransport() = default;
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  // All actors must be registered before start().
  void register_actor(NodeId id, Actor* actor) override;

  // Spawns one worker thread per registered actor.
  void start();

  // Thread-safe; may be called from handlers or from outside.
  void send(Message message) override;

  // Blocks until every mailbox is empty and no handler is running, then
  // stops all workers. Safe to call once.
  void drain_and_stop();

  NetworkStats stats() const override;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    bool stop = false;
  };

  void worker_loop(NodeId id, Actor* actor, Mailbox* mailbox);

  std::map<NodeId, Actor*> actors_;
  std::map<NodeId, std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;

  // In-flight accounting for quiescence detection: incremented on send,
  // decremented after the handler for that message returns.
  std::atomic<std::int64_t> inflight_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  mutable std::mutex stats_mu_;
  NetworkStats stats_;
};

}  // namespace mendel::net
