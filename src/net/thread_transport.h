// Thread-backed transport: one OS thread and one blocking mailbox per actor.
//
// This is the "real concurrency" twin of SimTransport. It runs the same
// Actor code under genuine parallel execution and real memory visibility,
// which the integration tests use to confirm that the cluster protocol is
// free of ordering assumptions that only hold in the single-threaded
// simulator, and which the concurrent query pipeline (Client in
// TransportMode::kThreaded) uses to serve many in-flight queries at once.
// It reports wall-clock time, not virtual time, so it is not used for the
// scalability figures (see sim_transport.h for why).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/net/message.h"

namespace mendel::net {

class ThreadTransport final : public Transport, public FaultInjector {
 public:
  ThreadTransport() = default;
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  // All actors must be registered before start().
  void register_actor(NodeId id, Actor* actor) override;

  // Spawns one worker thread per registered actor.
  void start();

  // Thread-safe; may be called from handlers or from outside. Messages to
  // failed nodes are dropped (counted in dropped_messages()).
  void send(Message message) override;

  // Blocks until every mailbox is empty and no handler is running. Unlike
  // drain_and_stop(), the workers keep running — callers use this as the
  // quiescence barrier between pipeline phases (indexing, query batches).
  void wait_idle();

  // True when no message is queued or being handled. With causally chained
  // protocols (every in-flight message was sent either externally or from a
  // running handler) this can only be observed between complete dataflows,
  // so the concurrent client uses it to detect stalled queries.
  bool idle() const {
    return inflight_.load(std::memory_order_acquire) == 0;
  }

  // Blocks until every mailbox is empty and no handler is running, then
  // stops all workers. Safe to call once.
  void drain_and_stop();

  NetworkStats stats() const override;

  // Per-query traffic attribution (see Transport). Counting happens on the
  // send() hot path, so the common cases stay lock-free: an atomic count of
  // tracked queries gates the whole feature (zero → no lookup at all), and
  // tracked ids hash into a small array of mutex-guarded shard maps so
  // concurrent queries rarely contend on one lock.
  void begin_query_stats(std::uint64_t query_id) override;
  NetworkStats take_query_stats(std::uint64_t query_id) override;

  // --- fault injection (net::FaultInjector) -----------------------------
  // A failed node's inbound messages are dropped at send() time;
  // drop_type_to drops only one message type, leaving the node otherwise
  // healthy (it keeps answering everything else and is NOT node_down()).
  // heal_node() clears both.
  FaultInjector* fault_injector() override { return this; }
  void fail_node(NodeId id) override;
  void heal_node(NodeId id) override;
  bool node_down(NodeId id) const override;
  void drop_type_to(NodeId id, std::uint32_t type) override;
  std::uint64_t dropped_messages() const override {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Frames whose handler raised DecodeError (malformed bytes an actor did
  // not swallow itself); subset of handler_errors(), counted separately so
  // hostile input is distinguishable from handler bugs.
  std::uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }

  // Errors thrown by actor handlers. A throwing handler must not wedge the
  // quiescence accounting (that would deadlock drain_and_stop()), so the
  // worker loop catches, records here, and keeps serving its mailbox. Each
  // entry carries the node, the offending message's type and request id,
  // and the exception's what() so a CI failure is diagnosable from the
  // recorded list alone.
  std::vector<std::string> handler_errors() const MENDEL_EXCLUDES(errors_mu_);

 private:
  // Sentinel for Mailbox::drop_type: no type is dropped.
  static constexpr std::uint32_t kDropNone = 0xffffffffu;

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue MENDEL_GUARDED_BY(mu);
    bool stop MENDEL_GUARDED_BY(mu) = false;
    std::atomic<bool> failed{false};
    std::atomic<std::uint32_t> drop_type{kDropNone};
  };

  void worker_loop(NodeId id, Actor* actor, Mailbox* mailbox);
  void record_error(std::string what) MENDEL_EXCLUDES(errors_mu_);

  std::map<NodeId, Actor*> actors_;
  std::map<NodeId, std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;

  // In-flight accounting for quiescence detection: incremented on send,
  // decremented after the handler for that message returns.
  std::atomic<std::int64_t> inflight_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  // Traffic accounting is lock-free: send() is the cross-node hot path and
  // only ever bumps these counters, so relaxed atomics replace the old
  // stats mutex.
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> decode_errors_{0};

  mutable std::mutex errors_mu_;
  std::vector<std::string> errors_ MENDEL_GUARDED_BY(errors_mu_);

  // Per-query traffic buckets. send() is the cross-node hot path and a
  // tracked query routes every one of its ~thousand messages through it,
  // so attribution must not take a lock there: a tracked id claims one
  // slot in a fixed open-addressed table and senders bump its relaxed
  // atomic counters after a lock-free probe. begin/take serialize slot
  // claim and release on stats_mu_ (cold, twice per query). When the table
  // is full — batches larger than kStatSlots in flight — excess ids fall
  // back to a mutex-guarded overflow map: attribution stays exact, only
  // slower, and send() consults it only while overflow_tracked_ is
  // nonzero.
  struct StatSlot {
    std::atomic<std::uint64_t> id{0};  // 0 = free (the untracked sentinel)
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  static constexpr std::size_t kStatSlots = 128;
  static constexpr std::size_t kStatProbe = 8;
  StatSlot* find_stat_slot(std::uint64_t query_id) {
    const std::size_t h = static_cast<std::size_t>(query_id) % kStatSlots;
    for (std::size_t p = 0; p < kStatProbe; ++p) {
      StatSlot& slot = stat_slots_[(h + p) % kStatSlots];
      if (slot.id.load(std::memory_order_acquire) == query_id) return &slot;
    }
    return nullptr;
  }
  std::array<StatSlot, kStatSlots> stat_slots_;
  std::mutex stats_mu_;
  std::unordered_map<std::uint64_t, NetworkStats> overflow_stats_
      MENDEL_GUARDED_BY(stats_mu_);
  std::atomic<std::size_t> overflow_tracked_{0};
  std::atomic<std::size_t> tracked_queries_{0};
};

}  // namespace mendel::net
