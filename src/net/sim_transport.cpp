#include "src/net/sim_transport.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/common/stopwatch.h"

namespace mendel::net {

void SimTransport::register_actor(NodeId id, Actor* actor) {
  require(actor != nullptr, "SimTransport: null actor");
  require(!actors_.contains(id),
          "SimTransport: duplicate actor id " + std::to_string(id));
  actors_[id] = actor;
  clocks_[id] = 0.0;
}

void SimTransport::send(Message message) {
  if (!actors_.contains(message.to)) {
    throw ProtocolError("SimTransport: send to unregistered node " +
                        std::to_string(message.to));
  }
  stats_.messages += 1;
  stats_.bytes += message.wire_size();
  if (!query_stats_.empty()) {
    // A query's ~thousand messages all carry the same request_id, so one
    // memoized bucket pointer replaces a map lookup per message. std::map
    // value pointers survive unrelated insert/erase; begin/take invalidate
    // the memo when they touch the cached id.
    if (message.request_id != last_stats_id_ || !last_stats_valid_) {
      auto it = query_stats_.find(message.request_id);
      last_stats_id_ = message.request_id;
      last_stats_ = it == query_stats_.end() ? nullptr : &it->second;
      last_stats_valid_ = true;
    }
    if (last_stats_ != nullptr) {
      last_stats_->messages += 1;
      last_stats_->bytes += message.wire_size();
    }
  }
  if (in_handler_) {
    // A handler's outbound messages depart when the handler's node clock
    // advances past its (yet unknown) completion time; buffer them and
    // stamp after the handler returns.
    pending_.push_back(std::move(message));
    return;
  }
  Event event;
  event.seq = next_seq_++;
  event.time = external_now_ + cost_.transfer_delay(message.wire_size()) +
               schedule_jitter(event.seq);
  event.message = std::move(message);
  queue_.push(std::move(event));
}

double SimTransport::schedule_jitter(std::uint64_t seq) const {
  if (schedule_seed_ == 0) return 0.0;
  // splitmix64 over (seed, seq): cheap, stateless, and replayable — the
  // same seed always yields the same schedule regardless of how many
  // events preceded this one.
  std::uint64_t x = schedule_seed_ ^ (seq * 0x9E3779B97F4A7C15ULL);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  // [0, 1) from the top 53 bits, scaled to a few link latencies: enough to
  // permute near-tied fan-in arrivals, small enough that virtual-time
  // metrics stay in the same regime.
  const double unit =
      static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  return unit * 4.0 * cost_.latency;
}

double SimTransport::run_until_idle() {
  double horizon = external_now_;
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();

    if (failed_[event.message.to]) {
      ++dropped_;
      continue;
    }
    const auto type_drop = type_drops_.find(event.message.to);
    if (type_drop != type_drops_.end() &&
        type_drop->second == event.message.type) {
      ++dropped_;
      continue;
    }
    Actor* actor = actors_.at(event.message.to);
    double& clock = clocks_[event.message.to];
    const double start = std::max(clock, event.time);

    // Execute the real handler, measuring its CPU cost.
    in_handler_ = true;
    Stopwatch watch;
    Context ctx(this, event.message.to, start, /*virtual_time=*/true);
    try {
      actor->handle(event.message, ctx);
    } catch (...) {
      in_handler_ = false;
      pending_.clear();
      throw;
    }
    in_handler_ = false;

    const double cpu = cost_.measured_cpu ? watch.seconds() : 0.0;
    total_cpu_ += cpu;
    const double end = start + cpu * cost_.cpu_scale + cost_.proc_overhead;
    clock = std::max(clock, end);
    horizon = std::max(horizon, end);

    // Messages the handler emitted depart at `end`.
    for (auto& outbound : pending_) {
      Event e;
      e.seq = next_seq_++;
      e.time = end + cost_.transfer_delay(outbound.wire_size()) +
               schedule_jitter(e.seq);
      e.message = std::move(outbound);
      horizon = std::max(horizon, e.time);
      queue_.push(std::move(e));
    }
    pending_.clear();
  }
  external_now_ = std::max(external_now_, horizon);
  return horizon;
}

double SimTransport::node_clock(NodeId id) const {
  auto it = clocks_.find(id);
  require(it != clocks_.end(), "SimTransport: unknown node clock");
  return it->second;
}

void SimTransport::fail_node(NodeId id) { failed_[id] = true; }
void SimTransport::heal_node(NodeId id) {
  failed_[id] = false;
  type_drops_.erase(id);
}
void SimTransport::drop_type_to(NodeId id, std::uint32_t type) {
  type_drops_[id] = type;
}

bool SimTransport::node_down(NodeId id) const {
  auto it = failed_.find(id);
  return it != failed_.end() && it->second;
}

}  // namespace mendel::net
