// TransportFactory: the one place a transport is chosen and constructed.
//
// Every runtime (Client, cluster tools, examples, the mendel-node daemon)
// selects its transport through TransportMode + TransportConfig instead of
// naming a concrete class, so adding a transport — as the socket transport
// was — touches this file and nothing upstream. The returned Transport
// exposes the capabilities callers need behind virtual interfaces:
// fault_injector() for failure injection (all three transports implement
// it) and the stats/per-query attribution surface on Transport itself.
// Runtime-specific control (SimTransport::run_until_idle,
// ThreadTransport::wait_idle, SocketTransport::start) stays behind a
// dynamic_cast by the owner that selected the mode — the factory
// deliberately does not wrap those, since their semantics differ per
// runtime.
#pragma once

#include <cstdint>
#include <memory>

#include "src/net/message.h"
#include "src/net/sim_transport.h"
#include "src/net/socket_transport.h"
#include "src/net/thread_transport.h"

namespace mendel::net {

enum class TransportMode {
  kSim,       // deterministic discrete-event simulator (virtual time)
  kThreaded,  // one OS thread per node (wall time, real concurrency)
  kSocket,    // real sockets between processes (mendel-node daemons)
};

struct TransportConfig {
  TransportMode mode = TransportMode::kSim;
  // kSim: simulated network cost model and schedule-exploration seed.
  CostModel cost;
  std::uint64_t schedule_seed = 0;
  // kSocket: endpoints and deployment knobs.
  SocketOptions socket;
};

// Constructs the transport for `config.mode`. The concrete lifecycle calls
// (start/run/stop) remain the owner's job.
std::unique_ptr<Transport> make_transport(const TransportConfig& config);

}  // namespace mendel::net
