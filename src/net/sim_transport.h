// Discrete-event network simulator with virtual time.
//
// Why a simulator: the paper's evaluation ran on a 50-node LAN cluster. A
// reproduction on a single machine cannot observe real parallel speedup by
// running 50 threads on a few cores — wall time would serialize the very
// parallelism Figure 6c measures. Instead, SimTransport executes the *real*
// handler code (real vp-tree searches, real alignment DP) and charges each
// handler's measured CPU time to the *owning node's* virtual clock:
//
//   start(m)   = max(node_clock[to], arrival_time(m))
//   node_clock = start(m) + handler_cpu_seconds * cpu_scale + proc_overhead
//
// Messages emitted by a handler leave at the node's clock after the handler
// finished and arrive `latency + size/bandwidth` later. A query's turnaround
// is the virtual time at which the client actor receives the final response
// — exactly the makespan an N-node cluster with these CPU costs and this
// network would exhibit. The engine is single-threaded, so runs are
// reproducible (ties broken by injection sequence number).
//
// For unit tests that need bit-exact timing across machines, set
// `CostModel::measured_cpu = false`; every handler is then charged the fixed
// `proc_overhead` instead of measured time.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "src/net/message.h"

namespace mendel::net {

struct CostModel {
  // One-way link latency (seconds) — LAN-scale default.
  double latency = 100e-6;
  // Link bandwidth (bytes/second) — 10 GbE default.
  double bandwidth = 1.25e9;
  // Fixed cost charged per handled message (dispatch, deserialize).
  double proc_overhead = 5e-6;
  // Multiplier on measured handler CPU seconds (1.0 = charge as measured).
  double cpu_scale = 1.0;
  // When false, handler CPU is not measured; only proc_overhead is charged
  // (deterministic timing for tests).
  bool measured_cpu = true;

  double transfer_delay(std::size_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

class SimTransport final : public Transport, public FaultInjector {
 public:
  explicit SimTransport(CostModel cost = {}) : cost_(cost) {}

  void register_actor(NodeId id, Actor* actor) override;

  // From inside a handler: departs at the sending node's current virtual
  // clock. From outside run(): departs at `external_now_`.
  void send(Message message) override;

  // Processes events until the queue drains; returns the final virtual
  // time (max over node clocks and deliveries).
  double run_until_idle();

  // Advances the external injection clock (used between queries so each
  // query's turnaround is measured from its own injection time).
  void set_external_time(double now) { external_now_ = now; }
  double external_time() const { return external_now_; }

  double node_clock(NodeId id) const;
  NetworkStats stats() const override { return stats_; }

  // Per-query traffic attribution (see Transport). The engine is
  // single-threaded, so a plain map suffices.
  void begin_query_stats(std::uint64_t query_id) override {
    query_stats_[query_id] = {};
    last_stats_valid_ = false;  // send() memoizes a bucket pointer
  }
  NetworkStats take_query_stats(std::uint64_t query_id) override {
    auto it = query_stats_.find(query_id);
    if (it == query_stats_.end()) return {};
    NetworkStats out = it->second;
    query_stats_.erase(it);
    last_stats_valid_ = false;
    return out;
  }

  // Total measured handler CPU seconds charged so far (all nodes).
  double total_cpu_seconds() const { return total_cpu_; }

  // Schedule exploration: with a nonzero seed, every delivery time gets a
  // small deterministic jitter derived from (seed, injection sequence), so
  // messages that would arrive in near-tied order are delivered in a
  // seed-dependent permutation. Causality is preserved — a handler's
  // outbound messages still depart only after the handler finished — but
  // fan-in arrival orders, which the protocol must be insensitive to,
  // differ per seed. An interleaving-coverage analog of a race detector at
  // the protocol level: the parity suite sweeps seeds and asserts ranked
  // hits never change, printing the seed for replay when they do. Seed 0
  // (default) disables jitter and reproduces the historical schedule.
  void set_schedule_seed(std::uint64_t seed) { schedule_seed_ = seed; }
  std::uint64_t schedule_seed() const { return schedule_seed_; }

  // Fault injection (net::FaultInjector): a failed node's deliveries are
  // silently dropped and counted in dropped_messages(); drop_type_to drops
  // only one message type, leaving the node otherwise healthy. Lets tests
  // fail a node mid-dataflow — e.g. a sequence home that stops serving
  // ranged fetches after its searches succeeded.
  FaultInjector* fault_injector() override { return this; }
  void fail_node(NodeId id) override;
  void heal_node(NodeId id) override;
  bool node_down(NodeId id) const override;
  void drop_type_to(NodeId id, std::uint32_t type) override;
  std::uint64_t dropped_messages() const override { return dropped_; }

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among equal-time events
    Message message;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  CostModel cost_;
  std::map<NodeId, Actor*> actors_;
  std::map<NodeId, double> clocks_;
  std::map<NodeId, bool> failed_;
  std::map<NodeId, std::uint32_t> type_drops_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  NetworkStats stats_;
  std::map<std::uint64_t, NetworkStats> query_stats_;
  // Memoized query_stats_ bucket for the current request_id (send() hot
  // path); invalidated whenever begin/take mutate the map.
  std::uint64_t last_stats_id_ = 0;
  NetworkStats* last_stats_ = nullptr;
  bool last_stats_valid_ = false;
  // Deterministic per-event delivery jitter in [0, 4*latency); see
  // set_schedule_seed().
  double schedule_jitter(std::uint64_t seq) const;

  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t schedule_seed_ = 0;
  double external_now_ = 0.0;
  double total_cpu_ = 0.0;

  // While a handler runs, its outbound messages are buffered here and
  // stamped with the handler's completion time once it returns.
  bool in_handler_ = false;
  std::vector<Message> pending_;
};

}  // namespace mendel::net
