#include "src/net/message.h"

namespace mendel::net {

void Context::send(NodeId to, std::uint32_t type, std::uint64_t request_id,
                   std::vector<std::uint8_t> payload) {
  Message message;
  message.from = self_;
  message.to = to;
  message.type = type;
  message.request_id = request_id;
  message.payload = std::move(payload);
  transport_->send(std::move(message));
}

}  // namespace mendel::net
