#include "src/net/message.h"

namespace mendel::net {

std::string describe(const Message& message) {
  return "message{type=" + std::to_string(message.type) +
         ", request_id=" + std::to_string(message.request_id) +
         ", from=" + std::to_string(message.from) + ", " +
         std::to_string(message.payload.size()) + " payload bytes}";
}

void Context::send(NodeId to, std::uint32_t type, std::uint64_t request_id,
                   std::vector<std::uint8_t> payload) {
  Message message;
  message.from = self_;
  message.to = to;
  message.type = type;
  message.request_id = request_id;
  message.payload = std::move(payload);
  transport_->send(std::move(message));
}

}  // namespace mendel::net
