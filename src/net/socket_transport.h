// Socket-backed transport: real length-prefixed frames between processes.
//
// The multi-process deployment runtime. Each participating process owns one
// SocketTransport hosting that process's local actors (a mendel-node daemon
// hosts one or more StorageNodes; the coordinator process hosts the client
// actor). A static endpoint table — one endpoint string per NodeId, TCP
// "host:port" or Unix-domain "unix:/path" — maps every storage node to the
// process serving it; several node ids may share one endpoint (one daemon
// hosting several nodes). Discovery is deliberately static for now: ROADMAP
// item 1 starts with a fixed endpoint list, liveness comes from heartbeats.
//
// Wiring model:
//   * start() binds + listens on the local node ids' endpoints and eagerly
//     dials every remote endpoint (retrying until `connect_timeout`).
//   * Every outbound connection opens with a kHello frame announcing the
//     dialing process's local actor ids, so the accepting side can route
//     replies — in particular to the client actor, which has no endpoint
//     of its own — back over the same connection.
//   * send() is thread-safe: local destinations enqueue into the actor's
//     mailbox (one dispatch thread per actor, same single-threaded handler
//     contract as ThreadTransport); remote destinations are framed and
//     written under a per-connection mutex. A dead connection is redialed
//     with exponential backoff; messages that cannot be delivered are
//     dropped and counted, mirroring the other transports' fault
//     semantics (Mendel's dataflows already tolerate loss via the client's
//     stall/cancel machinery).
//   * With heartbeat_interval > 0 a monitor thread pings every remote
//     peer; a peer whose traffic stays silent past heartbeat_timeout is
//     reported node_down() — the same membership view the Client's
//     cancel/heal machinery consumes for simulated failures.
//
// What this transport does NOT give: global quiescence detection (there is
// no cluster-wide idle() across processes — the client uses reply timeouts
// and explicit barrier messages instead) and virtual time (Context::now()
// is wall time, like ThreadTransport).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/net/frame.h"
#include "src/net/message.h"

namespace mendel::net {

// Socket deployment settings, grouped so RuntimeOptions can carry them as
// one unit and the CLI / MENDEL_ENDPOINTS env can populate them uniformly.
struct SocketOptions {
  // endpoints[id] is the endpoint string of NodeId id: "host:port" (TCP)
  // or "unix:/path" (Unix-domain). Ids registered locally listen on their
  // endpoint; all other listed ids are dialed as remote peers.
  std::vector<std::string> endpoints;
  // listen(2) backlog for the accept sockets.
  int accept_backlog = 16;
  // Heartbeat ping period in seconds; 0 (default) disables the monitor
  // thread entirely.
  double heartbeat_interval = 0.0;
  // A remote peer silent for longer than this (no pong, no traffic) is
  // reported node_down().
  double heartbeat_timeout = 2.0;
  // Exponential backoff between redial attempts after a connection died.
  double reconnect_backoff = 0.05;
  double reconnect_backoff_max = 1.0;
  // Total per-peer dial budget during start() (daemons may come up in any
  // order; start retries within this window before giving up and leaving
  // the peer to the backoff/heartbeat machinery).
  double connect_timeout = 10.0;
  // Client-side deadlines (consumed by core::Client, carried here so all
  // socket deployment knobs travel together): how long wait() waits for a
  // query reply before declaring the query stalled, and how long settle()
  // waits for barrier acks.
  double query_timeout = 30.0;
  double settle_timeout = 10.0;
  // Frame-length acceptance bound (see frame.h).
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

// Splits a comma-separated endpoint list ("unix:/tmp/a,host:9001,...").
// Empty input yields an empty list; whitespace around items is trimmed.
std::vector<std::string> parse_endpoint_list(std::string_view csv);

// MENDEL_ENDPOINTS environment override: when set and non-empty, its
// parsed list replaces `fallback` (same pattern as MENDEL_ARENA_BUDGET).
std::vector<std::string> endpoints_from_env(
    std::vector<std::string> fallback);

class SocketTransport final : public Transport, public FaultInjector {
 public:
  explicit SocketTransport(SocketOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // All local actors must be registered before start().
  void register_actor(NodeId id, Actor* actor) override;

  // Binds the local listeners, dials every remote endpoint (retrying up to
  // connect_timeout per peer), and spawns the dispatch / accept / monitor
  // threads. Throws IoError when a local endpoint cannot be bound.
  void start();

  // Drains local mailboxes, closes every socket, joins every thread.
  // Idempotent; also run by the destructor.
  void stop();

  // Thread-safe. Local destinations enqueue; remote destinations frame and
  // write (redialing through backoff when the connection died). Messages
  // to failed/unreachable destinations are dropped and counted.
  void send(Message message) override;

  // Blocks until every local mailbox is empty and no handler is running.
  // Local quiescence only — in-flight frames on the wire or queued in
  // other processes are invisible here.
  void wait_local_idle();

  NetworkStats stats() const override;
  void begin_query_stats(std::uint64_t query_id) override;
  NetworkStats take_query_stats(std::uint64_t query_id) override;

  // --- fault injection (net::FaultInjector) -----------------------------
  // fail_node drops this process's outbound traffic to the id (chaos
  // testing and the client's explicit fail path); node_down additionally
  // reports peers whose heartbeats expired, so the one membership view
  // covers injected and real failures.
  FaultInjector* fault_injector() override { return this; }
  void fail_node(NodeId id) override;
  void heal_node(NodeId id) override;
  bool node_down(NodeId id) const override;
  void drop_type_to(NodeId id, std::uint32_t type) override;
  std::uint64_t dropped_messages() const override {
    return dropped_.load(std::memory_order_relaxed);
  }

  // --- socket observability (exported as net.* counters) ----------------
  // Frames rejected at the framing layer (bad length prefix, unknown
  // kind, truncated body) plus local handlers that raised DecodeError.
  std::uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }
  // Framing-layer subset of decode_errors: connections dropped because
  // the byte stream itself was malformed.
  std::uint64_t frame_errors() const {
    return frame_errors_.load(std::memory_order_relaxed);
  }
  // Successful redials of a previously connected peer.
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  // Peers declared down by the heartbeat monitor (transition count).
  std::uint64_t heartbeats_missed() const {
    return heartbeats_missed_.load(std::memory_order_relaxed);
  }
  // Errors thrown by local actor handlers (kept serving, like
  // ThreadTransport).
  std::vector<std::string> handler_errors() const MENDEL_EXCLUDES(errors_mu_);

  const SocketOptions& options() const { return options_; }

 private:
  // One live stream socket. Reader threads are owned by the transport
  // (joined in stop()), not by the connection, so a connection object can
  // die while its reader unwinds.
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };

  // One remote process, keyed by endpoint string (several node ids may map
  // here). Guarded by peers_mu_.
  struct Peer {
    std::string endpoint;
    std::shared_ptr<Conn> conn;  // null = not connected
    double next_dial = 0.0;      // monotonic gate for redial backoff
    double backoff = 0.0;
    double last_seen = 0.0;      // last inbound frame / successful dial
    bool ever_connected = false;
    bool hb_down = false;   // heartbeat monitor's verdict
    bool dialing = false;   // serializes concurrent dial attempts
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue MENDEL_GUARDED_BY(mu);
    bool stop MENDEL_GUARDED_BY(mu) = false;
  };

  void dispatch_loop(NodeId id, Actor* actor, Mailbox* mailbox);
  void reader_loop(std::shared_ptr<Conn> conn);
  void accept_loop(int listen_fd);
  void monitor_loop();

  void deliver_local(Message message);
  // Routes + writes one frame; returns false when the message had to be
  // dropped (already counted).
  bool send_remote(const Message& message);
  // Dials `peer` once (bounded single-attempt timeout), installs the
  // connection and sends the hello preamble on success. peers_mu_ must NOT
  // be held. Returns the connection or null.
  std::shared_ptr<Conn> dial_peer(Peer* peer);
  std::shared_ptr<Conn> connection_for(NodeId to);
  void adopt_reader(std::shared_ptr<Conn> conn);
  void on_frame(const std::shared_ptr<Conn>& conn, Frame frame);
  void close_conn(const std::shared_ptr<Conn>& conn);
  bool write_frame(const std::shared_ptr<Conn>& conn,
                   std::span<const std::uint8_t> bytes);
  void record_error(std::string what) MENDEL_EXCLUDES(errors_mu_);
  std::vector<NodeId> local_ids() const;

  SocketOptions options_;
  std::map<NodeId, Actor*> actors_;
  std::map<NodeId, std::unique_ptr<Mailbox>> mailboxes_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> running_{false};

  std::vector<int> listen_fds_;
  std::vector<std::thread> threads_;  // dispatch + accept + monitor
  std::mutex reader_threads_mu_;
  std::vector<std::thread> reader_threads_
      MENDEL_GUARDED_BY(reader_threads_mu_);
  // Set once stop() has collected the readers; adopt_reader then closes
  // late connections instead of spawning unjoinable threads.
  bool readers_closed_ MENDEL_GUARDED_BY(reader_threads_mu_) = false;

  mutable std::mutex peers_mu_;
  std::vector<std::unique_ptr<Peer>> peers_ MENDEL_GUARDED_BY(peers_mu_);
  std::unordered_map<NodeId, Peer*> peer_of_id_ MENDEL_GUARDED_BY(peers_mu_);
  // Routes learned from kHello frames (ids with no endpoint of their own,
  // i.e. the client actor; also inbound daemon-daemon connections).
  std::unordered_map<NodeId, std::shared_ptr<Conn>> hello_routes_
      MENDEL_GUARDED_BY(peers_mu_);
  // Accepted connections awaiting/holding routes (kept for cleanup).
  std::vector<std::shared_ptr<Conn>> inbound_ MENDEL_GUARDED_BY(peers_mu_);

  // Manual fault injection state.
  mutable std::mutex fault_mu_;
  std::map<NodeId, bool> failed_ MENDEL_GUARDED_BY(fault_mu_);
  std::map<NodeId, std::uint32_t> type_drops_ MENDEL_GUARDED_BY(fault_mu_);

  // Local in-flight accounting for wait_local_idle().
  std::atomic<std::int64_t> inflight_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> heartbeats_missed_{0};
  std::atomic<std::uint64_t> ping_nonce_{0};

  mutable std::mutex errors_mu_;
  std::vector<std::string> errors_ MENDEL_GUARDED_BY(errors_mu_);

  // Per-query traffic attribution: a mutex-guarded map gated by an atomic
  // tracked count (zero → untracked sends skip the lock entirely). Socket
  // sends are dominated by the write syscall, so the cold-path lock is
  // acceptable; note the bucket only sees THIS process's sends — remote
  // processes' traffic is counted in their own transports.
  std::atomic<std::size_t> tracked_queries_{0};
  mutable std::mutex qstats_mu_;
  std::unordered_map<std::uint64_t, NetworkStats> query_stats_
      MENDEL_GUARDED_BY(qstats_mu_);
};

}  // namespace mendel::net
