// Socket frame layer: length-prefixed frames over a byte stream.
//
// SocketTransport ships Message envelopes between processes over TCP or
// Unix-domain stream sockets. A stream has no message boundaries, so every
// frame is prefixed with its body length:
//
//   u32 body_length (little-endian)
//   u8  kind                          ─┐
//   kind-specific body …               ├─ body (body_length bytes)
//                                     ─┘
// Frame kinds:
//   kMessage — one Message envelope: u32 from, u32 to, u32 type,
//              u64 request_id, remaining bytes = payload (the payload is
//              the application codec's output, already byte-stable).
//   kHello   — connection preamble announcing the dialing process's local
//              actor ids (u32 count, count × u32), so the accepting side
//              can route replies to those ids over this connection.
//   kPing / kPong — liveness probes (u64 nonce, echoed back). Answered at
//              the frame layer, never delivered to actors.
//
// Decoding is strict, mirroring the application codecs: a body that does
// not consume its length exactly, an unknown kind, or a length above
// `max_frame_bytes` raises DecodeError — the single exception type decode
// surfaces may produce on arbitrary bytes. FrameParser is incremental:
// feed() accepts arbitrary read() chunks (split or coalesced frames) and
// emits each complete frame exactly once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/net/message.h"

namespace mendel::net {

enum class FrameKind : std::uint8_t {
  kMessage = 0,
  kHello = 1,
  kPing = 2,
  kPong = 3,
};

struct Frame {
  FrameKind kind = FrameKind::kMessage;
  Message message;            // kMessage
  std::vector<NodeId> hello;  // kHello
  std::uint64_t nonce = 0;    // kPing / kPong
};

// Upper bound on a frame body. Far above any legitimate Mendel payload
// (block batches are the largest and stay in the low megabytes); its job
// is to reject hostile or corrupt length prefixes before they turn into
// multi-gigabyte allocations.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

std::vector<std::uint8_t> encode_frame(const Frame& frame);
// Convenience encoders for the common kinds.
std::vector<std::uint8_t> encode_message_frame(const Message& message);
std::vector<std::uint8_t> encode_hello_frame(const std::vector<NodeId>& ids);
std::vector<std::uint8_t> encode_ping_frame(FrameKind kind,
                                            std::uint64_t nonce);

// Incremental decoder for one stream direction.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  // Appends a read chunk. Call next() until it returns false to drain the
  // completed frames.
  void feed(std::span<const std::uint8_t> bytes);

  // Decodes the next complete frame into `out`; returns false when no
  // complete frame is buffered yet. Throws DecodeError on a malformed
  // frame (oversized length prefix, unknown kind, body over- or
  // under-consumed); the connection must then be dropped — after a framing
  // error the stream position is untrustworthy.
  bool next(Frame& out);

  // Bytes buffered but not yet consumed by next(). Nonzero at EOF means
  // the peer died mid-frame (a truncated frame).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already decoded
};

}  // namespace mendel::net
