#include "src/net/transport_factory.h"

#include <string>

#include "src/common/error.h"

namespace mendel::net {

std::unique_ptr<Transport> make_transport(const TransportConfig& config) {
  switch (config.mode) {
    case TransportMode::kSim: {
      auto sim = std::make_unique<SimTransport>(config.cost);
      sim->set_schedule_seed(config.schedule_seed);
      return sim;
    }
    case TransportMode::kThreaded:
      return std::make_unique<ThreadTransport>();
    case TransportMode::kSocket:
      return std::make_unique<SocketTransport>(config.socket);
  }
  throw InvalidArgument("make_transport: unknown TransportMode " +
                        std::to_string(static_cast<int>(config.mode)));
}

}  // namespace mendel::net
