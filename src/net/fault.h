// Fault-injection capability of a transport.
//
// Every Mendel transport can simulate node failure: a failed node's
// traffic is dropped (and counted) until the node is healed, and a
// partial-failure variant drops only one message type so tests can kill a
// node mid-dataflow. These operations used to live ad hoc on the concrete
// transport classes; FaultInjector lifts them into one interface so chaos
// tests — and the Client's fail/heal machinery — are written once against
// the capability instead of per concrete transport.
//
// How "down" manifests differs by transport and mirrors a real failure
// mode of each runtime:
//   * SimTransport drops at delivery time (the node vanished);
//   * ThreadTransport drops at send time (the mailbox refuses);
//   * SocketTransport drops at the outbound edge of this process, and
//     additionally reports peers whose heartbeats expired as down.
// In every case node_down() is the membership view the Client consults
// when deferring cancel broadcasts for later healing.
#pragma once

#include <cstdint>

namespace mendel::net {

using NodeId = std::uint32_t;

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Marks a node as failed: its traffic is dropped (counted in
  // dropped_messages()) until heal_node().
  virtual void fail_node(NodeId id) = 0;
  // Re-admits the node and clears any partial-failure type drop.
  virtual void heal_node(NodeId id) = 0;
  virtual bool node_down(NodeId id) const = 0;
  // Partial failure: drop only messages of one type to the node, leaving
  // it otherwise healthy (it keeps answering everything else and is NOT
  // node_down()). heal_node() clears it.
  virtual void drop_type_to(NodeId id, std::uint32_t type) = 0;
  // Messages dropped by any of the mechanisms above.
  virtual std::uint64_t dropped_messages() const = 0;
};

}  // namespace mendel::net
