#include "src/net/frame.h"

#include <algorithm>
#include <string>

#include "src/common/error.h"

namespace mendel::net {

namespace {

void encode_body(CodecWriter& w, const Frame& frame) {
  w.u8(static_cast<std::uint8_t>(frame.kind));
  switch (frame.kind) {
    case FrameKind::kMessage:
      w.u32(frame.message.from);
      w.u32(frame.message.to);
      w.u32(frame.message.type);
      w.u64(frame.message.request_id);
      w.raw(frame.message.payload);
      return;
    case FrameKind::kHello:
      w.u32(static_cast<std::uint32_t>(frame.hello.size()));
      for (NodeId id : frame.hello) w.u32(id);
      return;
    case FrameKind::kPing:
    case FrameKind::kPong:
      w.u64(frame.nonce);
      return;
  }
  throw InvalidArgument("encode_frame: unknown frame kind " +
                        std::to_string(static_cast<unsigned>(frame.kind)));
}

Frame decode_body(std::span<const std::uint8_t> body) {
  CodecReader r(body);
  Frame frame;
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(FrameKind::kMessage):
      frame.kind = FrameKind::kMessage;
      frame.message.from = r.u32();
      frame.message.to = r.u32();
      frame.message.type = r.u32();
      frame.message.request_id = r.u64();
      {
        const auto payload = r.raw(r.remaining());
        frame.message.payload.assign(payload.begin(), payload.end());
      }
      break;
    case static_cast<std::uint8_t>(FrameKind::kHello): {
      frame.kind = FrameKind::kHello;
      const std::uint32_t count = r.u32();
      if (count > r.remaining() / sizeof(std::uint32_t)) {
        throw DecodeError("frame: hello id count " + std::to_string(count) +
                          " exceeds body");
      }
      frame.hello.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) frame.hello.push_back(r.u32());
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kPing):
    case static_cast<std::uint8_t>(FrameKind::kPong):
      frame.kind = static_cast<FrameKind>(kind);
      frame.nonce = r.u64();
      break;
    default:
      throw DecodeError("frame: unknown kind " + std::to_string(kind));
  }
  // Strict framing: the body must be consumed exactly (kMessage consumes
  // the remainder by construction; the fixed-shape kinds must not carry
  // trailing bytes).
  if (!r.done()) {
    throw DecodeError("frame: " + std::to_string(r.remaining()) +
                      " trailing bytes after body");
  }
  return frame;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  CodecWriter body;
  encode_body(body, frame);
  CodecWriter out;
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.raw(body.data());
  return out.take();
}

std::vector<std::uint8_t> encode_message_frame(const Message& message) {
  Frame frame;
  frame.kind = FrameKind::kMessage;
  frame.message = message;
  return encode_frame(frame);
}

std::vector<std::uint8_t> encode_hello_frame(const std::vector<NodeId>& ids) {
  Frame frame;
  frame.kind = FrameKind::kHello;
  frame.hello = ids;
  return encode_frame(frame);
}

std::vector<std::uint8_t> encode_ping_frame(FrameKind kind,
                                            std::uint64_t nonce) {
  Frame frame;
  frame.kind = kind;
  frame.nonce = nonce;
  return encode_frame(frame);
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Reclaim the decoded prefix before appending so the buffer stays
  // proportional to the undecoded tail, not to connection lifetime.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

bool FrameParser::next(Frame& out) {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const std::uint8_t* p = buffer_.data() + consumed_;
  const std::uint32_t length = static_cast<std::uint32_t>(p[0]) |
                               (static_cast<std::uint32_t>(p[1]) << 8) |
                               (static_cast<std::uint32_t>(p[2]) << 16) |
                               (static_cast<std::uint32_t>(p[3]) << 24);
  // Reject hostile lengths before buffering toward them: a forged prefix
  // must not commit this process to a multi-gigabyte allocation.
  if (length > max_frame_bytes_) {
    throw DecodeError("frame: length " + std::to_string(length) +
                      " exceeds limit " + std::to_string(max_frame_bytes_));
  }
  if (available - 4 < length) return false;
  out = decode_body({p + 4, length});
  consumed_ += 4 + static_cast<std::size_t>(length);
  return true;
}

}  // namespace mendel::net
