#include "src/blast/blast.h"

#include <algorithm>
#include <unordered_map>

#include "src/align/banded.h"
#include "src/align/ungapped.h"
#include "src/common/error.h"

namespace mendel::blast {

namespace {

// Packs (sequence, diagonal) into one map key. Diagonals are offset so
// negative values pack cleanly.
std::uint64_t diag_key(seq::SequenceId sequence, std::ptrdiff_t diagonal) {
  const auto biased =
      static_cast<std::uint64_t>(diagonal + (1LL << 31));
  return (static_cast<std::uint64_t>(sequence) << 32) | (biased & 0xffffffffu);
}

}  // namespace

BlastEngine::BlastEngine(const seq::SequenceStore* store,
                         const score::ScoringMatrix* scores,
                         BlastOptions options)
    : store_(store),
      scores_(scores),
      options_(options),
      index_(store->alphabet(), options.word_size) {
  require(store_ != nullptr && scores_ != nullptr,
          "BlastEngine: null store or matrix");
  require(scores_->alphabet() == store_->alphabet(),
          "BlastEngine: matrix alphabet mismatch");
  karlin_ = score::gapped_params(*scores_);
}

void BlastEngine::build() {
  require(!built_, "BlastEngine::build called twice");
  for (const auto& sequence : *store_) index_.add_sequence(sequence);
  built_ = true;
}

std::vector<align::AlignmentHit> BlastEngine::search(
    const seq::Sequence& query, BlastSearchStats* stats) const {
  require(built_, "BlastEngine::search before build()");
  require(query.alphabet() == store_->alphabet(),
          "BlastEngine::search: query alphabet mismatch");

  BlastSearchStats local_stats;
  BlastSearchStats& s = stats != nullptr ? *stats : local_stats;
  const std::size_t w = options_.word_size;
  const bool protein = store_->alphabet() == seq::Alphabet::kProtein;

  // Per-(subject, diagonal) bookkeeping: the query offset up to which an
  // ungapped extension already covered this diagonal, and the last seed
  // position for the two-hit rule.
  std::unordered_map<std::uint64_t, std::size_t> covered_until;
  std::unordered_map<std::uint64_t, std::size_t> last_hit;
  // Candidate HSPs per subject.
  std::unordered_map<seq::SequenceId, std::vector<align::Hsp>> candidates;

  if (query.size() < w) return {};
  for (std::size_t qoff = 0; qoff + w <= query.size(); ++qoff) {
    ++s.query_words;
    const auto word = query.window(qoff, w);

    // Keys to probe: exact word for DNA, scoring neighborhood for protein.
    std::vector<std::uint32_t> keys;
    if (protein) {
      keys = index_.neighborhood(word, *scores_,
                                 options_.neighborhood_threshold);
    } else {
      std::uint32_t key;
      if (index_.pack(word, key)) keys.push_back(key);
    }
    s.neighborhood_words += keys.size();

    for (std::uint32_t key : keys) {
      const auto* hits = index_.lookup_key(key);
      if (hits == nullptr) continue;
      for (const WordHit& hit : *hits) {
        ++s.seed_hits;
        const auto diagonal = static_cast<std::ptrdiff_t>(hit.offset) -
                              static_cast<std::ptrdiff_t>(qoff);
        const std::uint64_t dk = diag_key(hit.sequence, diagonal);

        // Skip seeds inside an already-extended region of this diagonal.
        auto cov = covered_until.find(dk);
        if (cov != covered_until.end() && qoff < cov->second) continue;

        if (options_.two_hit) {
          // Gapped-BLAST two-hit rule: trigger when this hit lies
          // [w, window] residues right of the stored hit on this diagonal.
          // Overlapping hits (< w) must NOT replace the stored one, or a
          // run of consecutive hits would never reach separation w.
          auto [stored, fresh] = last_hit.try_emplace(dk, qoff);
          if (fresh) continue;
          const std::size_t distance = qoff - stored->second;
          if (distance < w) continue;  // keep the older anchor hit
          if (distance > options_.two_hit_window) {
            stored->second = qoff;  // chain went stale; restart
            continue;
          }
          stored->second = qoff;  // second hit confirmed
        }

        const auto& subject = store_->at(hit.sequence);
        ++s.ungapped_extensions;
        const align::Hsp hsp = align::extend_ungapped(
            query.codes(), subject.codes(), qoff, hit.offset, w, *scores_,
            {options_.x_drop_ungapped});
        covered_until[dk] = hsp.q_end;
        if (hsp.score >= options_.gapped_trigger) {
          candidates[hit.sequence].push_back(hsp);
        }
      }
    }
  }

  // Gapped pass per subject: take candidate HSPs best-first, skip ones
  // already inside an accepted alignment's region.
  std::vector<align::AlignmentHit> results;
  for (auto& [sid, hsps] : candidates) {
    std::sort(hsps.begin(), hsps.end(),
              [](const align::Hsp& a, const align::Hsp& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.q_begin != b.q_begin) return a.q_begin < b.q_begin;
                return a.s_begin < b.s_begin;
              });
    const auto& subject = store_->at(sid);
    std::vector<align::Hsp> accepted;
    for (const align::Hsp& hsp : hsps) {
      bool inside = false;
      for (const align::Hsp& a : accepted) {
        if (hsp.q_begin >= a.q_begin && hsp.q_end <= a.q_end &&
            hsp.s_begin >= a.s_begin && hsp.s_end <= a.s_end) {
          inside = true;
          break;
        }
      }
      if (inside) continue;

      ++s.gapped_extensions;
      align::GappedAlignment gapped = align::banded_local_align(
          query.codes(), subject.codes(), *scores_, scores_->default_gaps(),
          {hsp.diagonal(), options_.band_radius});
      if (gapped.hsp.score < hsp.score) {
        // The band missed the ungapped HSP (rare; extreme diagonals).
        gapped.hsp = hsp;
        gapped.columns = hsp.q_len();
        gapped.identities = 0;
        gapped.gap_columns = 0;
        gapped.cigar = std::to_string(hsp.q_len()) + "M";
      }
      const double e = score::evalue(karlin_, gapped.hsp.score, query.size(),
                                     store_->total_residues());
      if (e > options_.evalue_cutoff) continue;

      align::AlignmentHit result;
      result.subject_id = sid;
      result.subject_name = subject.name();
      result.alignment = gapped;
      result.bit_score = score::bit_score(karlin_, gapped.hsp.score);
      result.evalue = e;
      const auto segment =
          subject.window(gapped.hsp.s_begin, gapped.hsp.s_len());
      result.subject_segment.assign(segment.begin(), segment.end());
      accepted.push_back(gapped.hsp);
      results.push_back(std::move(result));
    }
  }

  std::sort(results.begin(), results.end(),
            [](const align::AlignmentHit& a, const align::AlignmentHit& b) {
              if (a.evalue != b.evalue) return a.evalue < b.evalue;
              return a.subject_id < b.subject_id;
            });
  if (results.size() > options_.max_hits) {
    results.resize(options_.max_hits);
  }
  return results;
}

}  // namespace mendel::blast
