// Word (k-mer) index over a sequence database — the seeding stage of the
// BLAST baseline.
//
// Every length-w window of every database sequence is recorded under its
// packed integer key. Protein search additionally expands each query word
// into its *neighborhood*: all words scoring >= T against it under the
// substitution matrix (BLAST's T parameter), which is what gives BLAST its
// sensitivity beyond exact seeds.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/scoring/matrix.h"
#include "src/sequence/sequence.h"

namespace mendel::blast {

struct WordHit {
  seq::SequenceId sequence = 0;
  std::uint32_t offset = 0;
};

class WordIndex {
 public:
  WordIndex(seq::Alphabet alphabet, std::size_t word_size);

  // Indexes every unambiguous word of `sequence` (windows containing
  // ambiguity codes are skipped, as in NCBI BLAST's default masking).
  void add_sequence(const seq::Sequence& sequence);

  std::size_t word_size() const { return word_size_; }
  std::size_t indexed_words() const { return indexed_words_; }

  // Exact lookups.
  const std::vector<WordHit>* lookup(seq::CodeSpan word) const;

  // All words within score >= threshold of `word` under `scores`
  // (including the word itself when it qualifies). Used per query
  // position; enumeration prunes on the best achievable remaining score.
  std::vector<std::uint32_t> neighborhood(seq::CodeSpan word,
                                          const score::ScoringMatrix& scores,
                                          int threshold) const;

  const std::vector<WordHit>* lookup_key(std::uint32_t key) const;

  // Packs an unambiguous word into its integer key; returns false if the
  // word contains ambiguity codes.
  bool pack(seq::CodeSpan word, std::uint32_t& key) const;

 private:
  void enumerate(seq::CodeSpan word, const score::ScoringMatrix& scores,
                 int threshold, std::size_t position, int score_so_far,
                 std::uint32_t key_so_far, const std::vector<int>& best_tail,
                 std::vector<std::uint32_t>& out) const;

  seq::Alphabet alphabet_;
  std::size_t word_size_;
  std::size_t core_;  // unambiguous alphabet size (4 or 20)
  std::size_t indexed_words_ = 0;
  std::unordered_map<std::uint32_t, std::vector<WordHit>> buckets_;
};

}  // namespace mendel::blast
