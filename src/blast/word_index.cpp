#include "src/blast/word_index.h"

#include <algorithm>
#include <limits>

#include "src/common/error.h"

namespace mendel::blast {

WordIndex::WordIndex(seq::Alphabet alphabet, std::size_t word_size)
    : alphabet_(alphabet),
      word_size_(word_size),
      core_(seq::core_cardinality(alphabet)) {
  require(word_size_ >= 2, "WordIndex: word size must be >= 2");
  // Key must fit 32 bits: 20^7 < 2^32, 4^15 < 2^32.
  double keyspace = 1.0;
  for (std::size_t i = 0; i < word_size_; ++i) {
    keyspace *= static_cast<double>(core_);
  }
  require(keyspace < 4.0e9, "WordIndex: word size too large for 32-bit keys");
}

bool WordIndex::pack(seq::CodeSpan word, std::uint32_t& key) const {
  require(word.size() == word_size_, "WordIndex::pack: wrong word length");
  std::uint32_t packed = 0;
  for (seq::Code c : word) {
    if (c >= core_) return false;  // ambiguity code
    packed = packed * static_cast<std::uint32_t>(core_) + c;
  }
  key = packed;
  return true;
}

void WordIndex::add_sequence(const seq::Sequence& sequence) {
  require(sequence.alphabet() == alphabet_,
          "WordIndex: alphabet mismatch");
  if (sequence.size() < word_size_) return;
  for (std::size_t offset = 0; offset + word_size_ <= sequence.size();
       ++offset) {
    std::uint32_t key;
    if (!pack(sequence.window(offset, word_size_), key)) continue;
    buckets_[key].push_back(
        WordHit{sequence.id(), static_cast<std::uint32_t>(offset)});
    ++indexed_words_;
  }
}

const std::vector<WordHit>* WordIndex::lookup(seq::CodeSpan word) const {
  std::uint32_t key;
  if (!pack(word, key)) return nullptr;
  return lookup_key(key);
}

const std::vector<WordHit>* WordIndex::lookup_key(std::uint32_t key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? nullptr : &it->second;
}

std::vector<std::uint32_t> WordIndex::neighborhood(
    seq::CodeSpan word, const score::ScoringMatrix& scores,
    int threshold) const {
  require(word.size() == word_size_,
          "WordIndex::neighborhood: wrong word length");
  // best_tail[i] = max achievable score for positions i..end; used to prune
  // the enumeration ("no completion of this stem can reach T").
  std::vector<int> best_tail(word_size_ + 1, 0);
  for (std::size_t i = word_size_; i-- > 0;) {
    int best = std::numeric_limits<int>::min();
    for (std::size_t c = 0; c < core_; ++c) {
      best = std::max(best,
                      scores.score(word[i], static_cast<seq::Code>(c)));
    }
    best_tail[i] = best_tail[i + 1] + best;
  }
  std::vector<std::uint32_t> out;
  enumerate(word, scores, threshold, 0, 0, 0, best_tail, out);
  return out;
}

void WordIndex::enumerate(seq::CodeSpan word,
                          const score::ScoringMatrix& scores, int threshold,
                          std::size_t position, int score_so_far,
                          std::uint32_t key_so_far,
                          const std::vector<int>& best_tail,
                          std::vector<std::uint32_t>& out) const {
  if (position == word_size_) {
    if (score_so_far >= threshold) out.push_back(key_so_far);
    return;
  }
  for (std::size_t c = 0; c < core_; ++c) {
    const int s =
        score_so_far + scores.score(word[position], static_cast<seq::Code>(c));
    if (s + best_tail[position + 1] < threshold) continue;
    enumerate(word, scores, threshold, position + 1, s,
              key_so_far * static_cast<std::uint32_t>(core_) +
                  static_cast<std::uint32_t>(c),
              best_tail, out);
  }
}

}  // namespace mendel::blast
