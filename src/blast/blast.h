// BLAST-style baseline search engine (single machine).
//
// Reimplements the algorithmic skeleton the paper compares against
// (§II-B): tokenize the query into w-letter words, expand protein words to
// their scoring neighborhood (threshold T), look each word up in a
// database-wide index, extend each hit ungapped with an X-drop rule into an
// HSP, trigger a banded gapped extension for HSPs above a score threshold,
// and rank the surviving alignments by Karlin–Altschul E-value. An optional
// two-hit heuristic (Gapped BLAST, Altschul et al. 1997) requires a second
// same-diagonal hit within a window before extending.
//
// This baseline intentionally performs database-proportional work, which is
// the scaling behaviour Figures 6a/6b/6d contrast Mendel with.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/alignment.h"
#include "src/blast/word_index.h"
#include "src/scoring/karlin.h"
#include "src/scoring/matrix.h"
#include "src/sequence/sequence.h"

namespace mendel::blast {

struct BlastOptions {
  // Word size: 3 for protein (BLAST default), 11 for DNA.
  std::size_t word_size = 3;
  // Protein neighborhood threshold T (ignored for DNA: exact words only).
  int neighborhood_threshold = 11;
  // X-drop for the ungapped extension.
  int x_drop_ungapped = 16;
  // Ungapped HSP score needed to trigger the gapped pass (BLAST's S_g;
  // ~22 bits under BLOSUM62).
  int gapped_trigger = 35;
  // Band radius of the gapped extension.
  std::size_t band_radius = 24;
  double evalue_cutoff = 10.0;
  std::size_t max_hits = 50;
  // Two-hit heuristic: extend only after two non-overlapping hits land on
  // one diagonal within `two_hit_window` residues (NCBI default since
  // Gapped BLAST).
  bool two_hit = true;
  std::size_t two_hit_window = 40;
};

// Work counters — exposed so the benches can report *why* the baseline
// scales the way it does.
struct BlastSearchStats {
  std::uint64_t query_words = 0;
  std::uint64_t neighborhood_words = 0;
  std::uint64_t seed_hits = 0;
  std::uint64_t ungapped_extensions = 0;
  std::uint64_t gapped_extensions = 0;
};

class BlastEngine {
 public:
  // The store and matrix must outlive the engine.
  BlastEngine(const seq::SequenceStore* store,
              const score::ScoringMatrix* scores, BlastOptions options = {});

  // Builds the word index (one pass over the database).
  void build();
  bool built() const { return built_; }
  std::size_t indexed_words() const { return index_.indexed_words(); }

  // Full search pipeline; hits sorted by ascending E-value.
  std::vector<align::AlignmentHit> search(const seq::Sequence& query,
                                          BlastSearchStats* stats = nullptr) const;

 private:
  const seq::SequenceStore* store_;
  const score::ScoringMatrix* scores_;
  BlastOptions options_;
  WordIndex index_;
  score::KarlinParams karlin_;
  bool built_ = false;
};

}  // namespace mendel::blast
