#include "src/blast/pssm.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"
#include "src/sequence/alphabet.h"

namespace mendel::blast {

Pssm Pssm::from_query(seq::CodeSpan query,
                      const score::ScoringMatrix& scores) {
  require(scores.alphabet() == seq::Alphabet::kProtein,
          "Pssm: profiles are protein-only");
  Pssm pssm;
  pssm.columns_.resize(query.size());
  for (std::size_t c = 0; c < query.size(); ++c) {
    for (std::size_t a = 0; a < score::ScoringMatrix::kMaxCodes; ++a) {
      pssm.columns_[c][a] =
          scores.score(query[c], static_cast<seq::Code>(a));
    }
  }
  return pssm;
}

Pssm Pssm::from_counts(seq::CodeSpan query,
                       const score::ScoringMatrix& scores,
                       const ColumnCounts& counts,
                       double pseudocount_weight) {
  require(counts.size() == query.size(),
          "Pssm::from_counts: counts/query length mismatch");
  require(pseudocount_weight > 0,
          "Pssm::from_counts: pseudocount weight must be > 0");

  Pssm pssm = from_query(query, scores);
  const auto& background = seq::protein_background_frequencies();
  const auto karlin =
      score::solve_ungapped(scores, background);

  for (std::size_t c = 0; c < query.size(); ++c) {
    double observed = 0;
    for (double w : counts[c]) observed += w;
    if (observed <= 0) continue;  // no data: keep the matrix row

    for (std::size_t a = 0; a < 20; ++a) {
      const double f =
          (counts[c][a] + pseudocount_weight * background[a]) /
          (observed + pseudocount_weight);
      const double log_odds = std::log(f / background[a]) / karlin.lambda;
      pssm.columns_[c][a] = static_cast<int>(std::lround(log_odds));
    }
    // Ambiguity codes: conservative average of the core scores.
    for (std::size_t a = 20; a < score::ScoringMatrix::kMaxCodes; ++a) {
      pssm.columns_[c][a] = -1;
    }
  }
  return pssm;
}

void accumulate_counts(const align::AlignmentHit& hit,
                       Pssm::ColumnCounts& counts) {
  require(!hit.subject_segment.empty(),
          "accumulate_counts: hit lacks subject_segment (run the query "
          "with include_subject_segment)");
  std::size_t q = hit.alignment.hsp.q_begin;
  std::size_t s = 0;
  const std::string& cigar = hit.alignment.cigar;
  std::size_t i = 0;
  while (i < cigar.size()) {
    std::size_t count = 0;
    while (i < cigar.size() &&
           std::isdigit(static_cast<unsigned char>(cigar[i])) != 0) {
      count = count * 10 + static_cast<std::size_t>(cigar[i] - '0');
      ++i;
    }
    require(i < cigar.size(), "accumulate_counts: malformed CIGAR");
    const char op = cigar[i++];
    for (std::size_t k = 0; k < count; ++k) {
      if (op == 'M') {
        require(q < counts.size() && s < hit.subject_segment.size(),
                "accumulate_counts: CIGAR out of range");
        const seq::Code residue = hit.subject_segment[s];
        if (residue < 20) counts[q][residue] += 1.0;
        ++q;
        ++s;
      } else if (op == 'D') {
        ++q;
      } else if (op == 'I') {
        ++s;
      } else {
        throw InvalidArgument("accumulate_counts: unknown CIGAR op");
      }
    }
  }
}

align::Hsp profile_local_align(const Pssm& pssm, seq::CodeSpan subject,
                               score::GapPenalties gaps) {
  align::Hsp best;
  const std::size_t m = pssm.length();
  const std::size_t n = subject.size();
  if (m == 0 || n == 0) return best;

  const int open = gaps.open + gaps.extend;
  const int extend = gaps.extend;
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

  struct Cell {
    int m = 0;
    int ix = kNegInf;
    int iy = kNegInf;
  };
  std::vector<Cell> prev(n + 1), curr(n + 1);
  // Local alignment without traceback: track the best end cell; the start
  // is recovered by a second pass on the reversed problem — unnecessary
  // for PSI inclusion decisions, so spans report the end position with a
  // zero-length start marker when unknown. To keep Hsp meaningful we run
  // the standard score recurrence and recover q/s begin by monotone
  // backwalk bookkeeping: store per-cell alignment start, rolled along.
  struct Start {
    std::uint32_t q = 0, s = 0;
  };
  std::vector<Start> prev_start_m(n + 1), curr_start_m(n + 1);
  std::vector<Start> prev_start_ix(n + 1), curr_start_ix(n + 1);
  std::vector<Start> prev_start_iy(n + 1), curr_start_iy(n + 1);

  int best_score = 0;
  Start best_start;
  std::size_t best_q = 0, best_s = 0;

  for (std::size_t q = 1; q <= m; ++q) {
    curr[0] = Cell{};
    curr_start_m[0] = {static_cast<std::uint32_t>(q), 0};
    for (std::size_t s = 1; s <= n; ++s) {
      const int sub = pssm.score(q - 1, subject[s - 1]);

      // Ix from above.
      int ix;
      Start ix_start;
      if (prev[s].ix - extend >= prev[s].m - open) {
        ix = prev[s].ix == kNegInf ? kNegInf : prev[s].ix - extend;
        ix_start = prev_start_ix[s];
      } else {
        ix = prev[s].m - open;
        ix_start = prev_start_m[s];
      }
      // Iy from left.
      int iy;
      Start iy_start;
      if (curr[s - 1].iy - extend >= curr[s - 1].m - open) {
        iy = curr[s - 1].iy == kNegInf ? kNegInf : curr[s - 1].iy - extend;
        iy_start = curr_start_iy[s - 1];
      } else {
        iy = curr[s - 1].m - open;
        iy_start = curr_start_m[s - 1];
      }
      // M from diagonal (any state) or fresh start.
      int best_prev = prev[s - 1].m;
      Start m_start = prev_start_m[s - 1];
      if (prev[s - 1].ix > best_prev) {
        best_prev = prev[s - 1].ix;
        m_start = prev_start_ix[s - 1];
      }
      if (prev[s - 1].iy > best_prev) {
        best_prev = prev[s - 1].iy;
        m_start = prev_start_iy[s - 1];
      }
      int mm = best_prev + sub;
      if (best_prev == 0 && prev[s - 1].m == 0) {
        // Possible fresh start at this pair.
        m_start = {static_cast<std::uint32_t>(q - 1),
                   static_cast<std::uint32_t>(s - 1)};
      }
      if (mm <= 0) {
        mm = 0;
        m_start = {static_cast<std::uint32_t>(q),
                   static_cast<std::uint32_t>(s)};
      }

      curr[s] = Cell{mm, ix, iy};
      curr_start_m[s] = m_start;
      curr_start_ix[s] = ix_start;
      curr_start_iy[s] = iy_start;

      if (mm > best_score) {
        best_score = mm;
        best_start = m_start;
        best_q = q;
        best_s = s;
      }
    }
    std::swap(prev, curr);
    std::swap(prev_start_m, curr_start_m);
    std::swap(prev_start_ix, curr_start_ix);
    std::swap(prev_start_iy, curr_start_iy);
  }

  best.q_begin = best_start.q;
  best.q_end = best_q;
  best.s_begin = best_start.s;
  best.s_end = best_s;
  best.score = best_score;
  return best;
}

}  // namespace mendel::blast
