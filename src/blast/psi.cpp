#include "src/blast/psi.h"

#include <algorithm>

#include "src/align/banded.h"
#include "src/common/error.h"

namespace mendel::blast {

PsiBlastEngine::PsiBlastEngine(const seq::SequenceStore* store,
                               const score::ScoringMatrix* scores,
                               BlastOptions blast_options,
                               PsiBlastOptions psi_options)
    : store_(store),
      scores_(scores),
      psi_options_(psi_options),
      blast_options_(blast_options),
      blast_(store, scores, blast_options),
      karlin_(score::gapped_params(*scores)) {
  require(psi_options_.iterations >= 1,
          "PsiBlastEngine: iterations must be >= 1");
  require(scores_->alphabet() == seq::Alphabet::kProtein,
          "PsiBlastEngine: profiles are protein-only");
}

std::vector<align::AlignmentHit> PsiBlastEngine::search(
    const seq::Sequence& query, PsiSearchStats* stats) const {
  PsiSearchStats local;
  PsiSearchStats& s = stats != nullptr ? *stats : local;

  // Round 1: plain word-seeded BLAST.
  std::vector<align::AlignmentHit> hits = blast_.search(query);
  s.rounds = 1;

  std::set<seq::SequenceId> included;
  Pssm::ColumnCounts counts(query.size());
  // The query always participates in its own profile.
  for (std::size_t c = 0; c < query.size(); ++c) {
    if (query[c] < 20) counts[c][query[c]] += 1.0;
  }
  auto include = [&](const align::AlignmentHit& hit) {
    if (hit.evalue > psi_options_.inclusion_evalue) return false;
    if (!included.insert(hit.subject_id).second) return false;
    accumulate_counts(hit, counts);
    return true;
  };
  bool grew = false;
  for (const auto& hit : hits) grew = include(hit) || grew;

  while (s.rounds < psi_options_.iterations && grew) {
    const Pssm pssm = Pssm::from_counts(query.codes(), *scores_, counts,
                                        psi_options_.pseudocount_weight);
    // Exhaustive profile scan of the database.
    std::vector<align::AlignmentHit> round_hits;
    for (const auto& subject : *store_) {
      ++s.profile_scans;
      const align::Hsp hsp = profile_local_align(
          pssm, subject.codes(), scores_->default_gaps());
      if (hsp.score <= 0) continue;
      const double e = score::evalue(karlin_, hsp.score, query.size(),
                                     store_->total_residues());
      if (e > blast_options_.evalue_cutoff) continue;

      // Rescore with the base matrix around the profile alignment to
      // recover columns/identity/CIGAR and the subject segment (needed for
      // reporting and for the next round's counts).
      align::GappedAlignment detailed = align::banded_local_align(
          query.codes(), subject.codes(), *scores_,
          scores_->default_gaps(),
          {hsp.diagonal(), blast_options_.band_radius});

      align::AlignmentHit hit;
      hit.subject_id = subject.id();
      hit.subject_name = subject.name();
      hit.alignment = detailed;
      hit.alignment.hsp.score = hsp.score;  // profile score ranks the hit
      hit.bit_score = score::bit_score(karlin_, hsp.score);
      hit.evalue = e;
      if (detailed.hsp.s_end > detailed.hsp.s_begin) {
        const auto segment = subject.window(
            detailed.hsp.s_begin, detailed.hsp.s_len());
        hit.subject_segment.assign(segment.begin(), segment.end());
      }
      round_hits.push_back(std::move(hit));
    }
    std::sort(round_hits.begin(), round_hits.end(),
              [](const align::AlignmentHit& a, const align::AlignmentHit& b) {
                if (a.evalue != b.evalue) return a.evalue < b.evalue;
                return a.subject_id < b.subject_id;
              });
    if (round_hits.size() > blast_options_.max_hits) {
      round_hits.resize(blast_options_.max_hits);
    }
    hits = std::move(round_hits);
    ++s.rounds;

    grew = false;
    for (const auto& hit : hits) {
      if (!hit.alignment.cigar.empty()) grew = include(hit) || grew;
    }
  }
  s.included_subjects = included.size();
  return hits;
}

}  // namespace mendel::blast
