// Iterative profile search driver (PSI-BLAST style; see pssm.h).
//
// Round 1 runs the regular word-seeded BLAST pass. Alignments better than
// the inclusion E-value contribute per-column residue counts; the
// resulting PSSM scans the database exhaustively in later rounds (profile
// Smith–Waterman — our databases are simulator-scale, so the exhaustive
// scan is affordable and exact). Iteration stops early when a round
// includes no new subjects.
#pragma once

#include <set>

#include "src/blast/blast.h"
#include "src/blast/pssm.h"

namespace mendel::blast {

struct PsiBlastOptions {
  std::size_t iterations = 3;
  // Alignments at or below this E-value shape the next round's profile.
  double inclusion_evalue = 1e-3;
  double pseudocount_weight = 10.0;
};

struct PsiSearchStats {
  std::size_t rounds = 0;
  std::size_t included_subjects = 0;
  std::size_t profile_scans = 0;
};

class PsiBlastEngine {
 public:
  PsiBlastEngine(const seq::SequenceStore* store,
                 const score::ScoringMatrix* scores,
                 BlastOptions blast_options = {},
                 PsiBlastOptions psi_options = {});

  void build() { blast_.build(); }
  bool built() const { return blast_.built(); }

  // Final round's hits, sorted by E-value. With iterations = 1 this is
  // exactly the plain BLAST result.
  std::vector<align::AlignmentHit> search(const seq::Sequence& query,
                                          PsiSearchStats* stats = nullptr) const;

 private:
  const seq::SequenceStore* store_;
  const score::ScoringMatrix* scores_;
  PsiBlastOptions psi_options_;
  BlastOptions blast_options_;
  BlastEngine blast_;
  score::KarlinParams karlin_;
};

}  // namespace mendel::blast
