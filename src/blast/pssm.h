// Position-specific scoring matrices and iterative profile search
// (PSI-BLAST, Altschul et al. 1997 — the second half of the paper's
// reference [11]).
//
// A PSSM assigns each query column its own residue scores. Round 1 of a
// PSI search is a regular BLAST pass; alignments better than the inclusion
// E-value contribute residue counts per query column; the counts (mixed
// with background pseudocounts) become log-odds scores; further rounds
// search with the profile, pulling in homologs too remote for the generic
// matrix. Profiles routinely extend recall deep into the twilight zone —
// the same motivation as Mendel's NNS seeding, approached from scoring
// rather than indexing.
#pragma once

#include <cstdint>
#include <vector>

#include "src/align/alignment.h"
#include "src/scoring/karlin.h"
#include "src/scoring/matrix.h"

namespace mendel::blast {

class Pssm {
 public:
  // Profile equivalent to plain matrix scoring: column scores are the
  // matrix row of the query residue.
  static Pssm from_query(seq::CodeSpan query,
                         const score::ScoringMatrix& scores);

  // Per-column observed residue counts (query column -> residue ->
  // weight). The caller accumulates these from included alignments via
  // accumulate_counts().
  using ColumnCounts = std::vector<std::array<double, 20>>;

  // Log-odds profile: S(c, a) = round(ln(f_ca / p_a) / lambda) where f is
  // the pseudocount-smoothed column composition, p the background, and
  // lambda the ungapped scale of `scores` at that background. Columns with
  // no observations fall back to from_query scores.
  static Pssm from_counts(seq::CodeSpan query,
                          const score::ScoringMatrix& scores,
                          const ColumnCounts& counts,
                          double pseudocount_weight = 10.0);

  std::size_t length() const { return columns_.size(); }
  int score(std::size_t column, seq::Code subject) const {
    return columns_[column][subject];
  }

 private:
  // 24 codes per column (ambiguity codes get the conservative defaults of
  // the source matrix).
  std::vector<std::array<int, score::ScoringMatrix::kMaxCodes>> columns_;
};

// Adds one included alignment's residue observations into `counts`
// (which must have query-length entries). Walks the hit's CIGAR against
// its subject_segment; M columns contribute weight 1 to
// counts[qpos][subject residue]. Requires hit.subject_segment.
void accumulate_counts(const align::AlignmentHit& hit,
                       Pssm::ColumnCounts& counts);

// Best local alignment of a profile against a subject (affine gaps,
// score-and-spans only — callers needing columns re-run the banded
// aligner). The profile plays the query role.
align::Hsp profile_local_align(const Pssm& pssm, seq::CodeSpan subject,
                               score::GapPenalties gaps);

}  // namespace mendel::blast
