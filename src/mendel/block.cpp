#include "src/mendel/block.h"

#include "src/common/error.h"

namespace mendel::core {

std::vector<Block> make_blocks(const seq::Sequence& sequence,
                               std::size_t window_length) {
  require(window_length > 0, "make_blocks: zero window length");
  std::vector<Block> blocks;
  if (sequence.size() < window_length) return blocks;
  blocks.reserve(sequence.size() - window_length + 1);
  for (std::size_t start = 0; start + window_length <= sequence.size();
       ++start) {
    Block block;
    block.sequence = sequence.id();
    block.start = static_cast<std::uint32_t>(start);
    const auto window = sequence.window(start, window_length);
    block.window.assign(window.begin(), window.end());
    blocks.push_back(std::move(block));
  }
  return blocks;
}

}  // namespace mendel::core
