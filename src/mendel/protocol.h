// Wire protocol of the Mendel cluster (message types + payload codecs).
//
// Query dataflow (paper §V-B):
//
//   client ──kQueryRequest──▶ system entry point (coordinator)
//     coordinator: stride-k sliding window ⇒ subqueries; vp-prefix
//     hash_multi ⇒ target groups
//   coordinator ──kGroupQuery──▶ one entry node per selected group
//     group entry ──kNodeSearch──▶ every node of the group (flat-hash
//       dispersal means any node may hold matches — paper §V-A2)
//     node: local vp-tree n-NN per subquery, identity + c-score filters
//     node ──kNodeSearchResult──▶ group entry
//     group entry: merge seeds on (sequence, diagonal); batched
//       kFetchRange to sequence home nodes; ungapped X-drop extension
//     group entry ──kGroupResult──▶ coordinator
//   coordinator: merge anchors across groups, bin by sequence, anchors
//     with normalized score > S ⇒ banded gapped extension (band l) using
//     ranges fetched from home nodes; E-value filter; rank
//   coordinator ──kQueryResult──▶ client
//
// Indexing dataflow (paper §V-A): the indexer ships each sequence to its
// home node (kStoreSequence) and each inverted-index block batch to its
// tier-1 group / tier-2 ring owner (kInsertBlocks).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/align/alignment.h"
#include "src/common/codec.h"
#include "src/mendel/block.h"
#include "src/mendel/params.h"
#include "src/net/message.h"
#include "src/obs/trace.h"

namespace mendel::core {

enum MessageType : std::uint32_t {
  kStoreSequence = 1,
  kInsertBlocks = 2,
  kQueryRequest = 10,
  kGroupQuery = 11,
  kNodeSearch = 12,
  kNodeSearchResult = 13,
  kGroupResult = 14,
  kQueryResult = 15,
  kFetchRange = 20,
  kFetchRangeResult = 21,
  // Client-issued abort: nodes drop any pending state for the query id
  // (sent when a query's dataflow stalled, e.g. a silently failed node).
  kCancelQuery = 30,
  // Membership changed (a node joined): re-evaluate ownership of every
  // locally stored block and sequence against the shared topology and ship
  // anything this node no longer owns to its current owners.
  kRebalance = 31,
  // Observability: the client broadcasts kCollectTrace (request_id = query
  // id) after a traced query completes; each node drains that query's spans
  // from its SpanBuffer and replies kTraceReport.
  kCollectTrace = 40,
  kTraceReport = 41,
  // Cluster control (socket deployment): in TransportMode::kSocket the
  // coordinator process hosts no StorageNodes, so state that the in-process
  // runtimes install through direct method calls travels as messages to the
  // mendel-node daemons instead.
  //   kNodeInit     — (re)build the hosted nodes: topology shape, alphabet,
  //                   routing prefix tree, membership. Carries a generation;
  //                   a host already at that generation ignores the message
  //                   (so re-initializing a healed-but-alive daemon keeps
  //                   its data, while a restarted one rebuilds).
  //   kSetNodeDown  — membership change (StorageNode::set_down).
  //   kSetResidues  — database residue total after (incremental) indexing
  //                   (StorageNode::set_database_residues).
  //   kBarrier      — flush marker: the receiver replies kBarrierAck to the
  //                   sender. Acked over the same FIFO connection the
  //                   sender's earlier messages used, so collecting every
  //                   alive node's ack proves those messages were handled —
  //                   the socket runtime's stand-in for run_until_idle /
  //                   wait_idle. Both carry empty payloads.
  kNodeInit = 50,
  kSetNodeDown = 51,
  kSetResidues = 52,
  kBarrier = 53,
  kBarrierAck = 54,
};

// --- Indexing ---------------------------------------------------------

struct StoreSequencePayload {
  std::uint32_t sequence = 0;
  std::string name;
  std::uint8_t alphabet = 1;
  std::vector<seq::Code> codes;

  void encode(CodecWriter& w) const;
  static StoreSequencePayload decode(CodecReader& r);
};

struct InsertBlocksPayload {
  std::vector<Block> blocks;

  void encode(CodecWriter& w) const;
  static InsertBlocksPayload decode(CodecReader& r);
};

// --- Query ------------------------------------------------------------

struct Subquery {
  std::uint32_t query_offset = 0;
  vpt::Window window;

  void encode(CodecWriter& w) const;
  static Subquery decode(CodecReader& r);
};

// The query-dataflow payloads below carry an obs::TraceContext so every
// node doing work for a query knows whether to record spans and which
// upstream span caused the work (the query id itself is the message's
// request_id). Result payloads don't need one: the receiver's pending
// state already holds the query's context.

struct QueryRequestPayload {
  QueryParams params;
  obs::TraceContext trace;
  std::vector<seq::Code> query;

  void encode(CodecWriter& w) const;
  static QueryRequestPayload decode(CodecReader& r);
};

struct GroupQueryPayload {
  QueryParams params;
  obs::TraceContext trace;
  std::vector<seq::Code> query;
  std::vector<Subquery> subqueries;

  void encode(CodecWriter& w) const;
  static GroupQueryPayload decode(CodecReader& r);
};

// Split GroupQueryPayload encoding: the coordinator serializes the
// params+trace+query prefix once and appends each group's subquery set,
// instead of copying the full query into a payload struct per selected
// group. encode_group_query(prefix, subs) yields byte-identical output to
// GroupQueryPayload{params, trace, query, subs}.encode().
std::vector<std::uint8_t> encode_group_query_prefix(
    const QueryParams& params, const obs::TraceContext& trace,
    const std::vector<seq::Code>& query);
std::vector<std::uint8_t> encode_group_query(
    const std::vector<std::uint8_t>& prefix,
    const std::vector<Subquery>& subqueries);

struct NodeSearchPayload {
  QueryParams params;
  obs::TraceContext trace;
  std::vector<Subquery> subqueries;

  void encode(CodecWriter& w) const;
  static NodeSearchPayload decode(CodecReader& r);
};

// A filtered n-NN candidate: block-sized match between query and subject.
struct Seed {
  std::uint32_t sequence = 0;
  std::uint32_t subject_start = 0;
  std::uint32_t query_offset = 0;
  std::uint32_t length = 0;
  double identity = 0.0;
  double c_score = 0.0;

  std::ptrdiff_t diagonal() const {
    return static_cast<std::ptrdiff_t>(subject_start) -
           static_cast<std::ptrdiff_t>(query_offset);
  }

  void encode(CodecWriter& w) const;
  static Seed decode(CodecReader& r);
};

struct NodeSearchResultPayload {
  std::vector<Seed> seeds;

  void encode(CodecWriter& w) const;
  static NodeSearchResultPayload decode(CodecReader& r);
};

// An ungapped-extended anchor (group entry output / coordinator input).
struct Anchor {
  std::uint32_t sequence = 0;
  std::uint32_t q_begin = 0;
  std::uint32_t q_end = 0;
  std::uint32_t s_begin = 0;
  std::uint32_t s_end = 0;
  std::int32_t score = 0;
  // Certified score: the best *actually scored* ungapped run folded into
  // this anchor. `score` can be a union estimate after same-diagonal
  // merging (merge_anchors), so it may overstate what any alignment
  // achieves; `cert` never does — every constituent run lies on this
  // anchor's diagonal inside [q_begin,q_end)×[s_begin,s_end), so a banded
  // DP over the anchor is guaranteed to score at least `cert`. The
  // coordinator's score-bounded pruning builds its guaranteed-hit cutoff
  // from certs; using estimates there would make pruning inexact.
  std::int32_t cert = 0;
  // Subject length, when the group entry learned it: a ranged fetch the
  // home node clamped short reveals exactly where the sequence ends (the
  // returned end IS the length). 0 = unknown. The coordinator's pruning
  // uses it to cap how many subject columns a gapped alignment could
  // possibly use — without it, short subjects look as capable as long
  // ones and the score ceiling never prunes anything.
  std::uint32_t subject_len = 0;

  std::ptrdiff_t diagonal() const {
    return static_cast<std::ptrdiff_t>(s_begin) -
           static_cast<std::ptrdiff_t>(q_begin);
  }
  std::uint32_t length() const { return q_end - q_begin; }
  double normalized_score() const {
    return length() == 0 ? 0.0
                         : static_cast<double>(score) /
                               static_cast<double>(length());
  }

  void encode(CodecWriter& w) const;
  static Anchor decode(CodecReader& r);
};

struct GroupResultPayload {
  std::vector<Anchor> anchors;

  void encode(CodecWriter& w) const;
  static GroupResultPayload decode(CodecReader& r);
};

// --- Sequence repository ------------------------------------------------

// Purpose tag so a node acting simultaneously as group entry and as
// coordinator for one query can route fetch responses to the right pending
// state machine.
enum class FetchPurpose : std::uint8_t {
  kGroupExtension = 0,
  kGappedExtension = 1,
};

struct FetchRangePayload {
  std::uint8_t purpose = 0;
  std::uint32_t token = 0;  // requester-local correlation
  std::uint32_t sequence = 0;
  std::uint32_t start = 0;
  std::uint32_t length = 0;
  obs::TraceContext trace;

  void encode(CodecWriter& w) const;
  static FetchRangePayload decode(CodecReader& r);
};

struct FetchRangeResultPayload {
  std::uint8_t purpose = 0;
  std::uint32_t token = 0;
  std::uint32_t sequence = 0;
  std::uint32_t start = 0;           // clamped actual start
  std::uint32_t sequence_length = 0;  // full subject length
  std::string sequence_name;
  std::vector<seq::Code> codes;

  void encode(CodecWriter& w) const;
  static FetchRangeResultPayload decode(CodecReader& r);
};

// --- Results ------------------------------------------------------------

struct QueryResultPayload {
  std::vector<align::AlignmentHit> hits;

  void encode(CodecWriter& w) const;
  static QueryResultPayload decode(CodecReader& r);
};

// --- Observability ------------------------------------------------------

// One node's spans for one query, answering kCollectTrace.
struct TraceReportPayload {
  std::vector<obs::SpanRecord> spans;

  void encode(CodecWriter& w) const;
  static TraceReportPayload decode(CodecReader& r);
};

// --- Cluster control (socket deployment) --------------------------------

// Everything a mendel-node daemon needs to construct its StorageNodes:
// the exact inputs Client::spawn_nodes feeds StorageNodeConfig, shipped as
// bytes. `prefix_tree` holds vpt::VpPrefixTree::encode output (the same
// byte-stable encoding index snapshots use).
struct NodeInitPayload {
  std::uint64_t generation = 0;
  std::uint8_t alphabet = 1;
  // cluster::TopologyConfig, field by field.
  std::uint32_t num_groups = 0;
  std::uint32_t nodes_per_group = 0;
  std::uint64_t ring_virtual_nodes = 0;
  std::uint32_t replication = 1;
  std::uint32_t sequence_replication = 1;
  // Groups of nodes added beyond the dense initial layout (add_node), in
  // id order — mirrors the index-snapshot encoding of grown topologies.
  std::vector<std::uint32_t> extra_node_groups;
  std::uint64_t bucket_capacity = 32;
  std::uint64_t database_residues = 0;
  // Node ids currently marked down, so a daemon (re)joining mid-outage
  // starts with the cluster's membership view instead of an empty one.
  std::vector<std::uint32_t> down_nodes;
  std::vector<std::uint8_t> prefix_tree;

  void encode(CodecWriter& w) const;
  static NodeInitPayload decode(CodecReader& r);
};

struct SetNodeDownPayload {
  std::uint32_t node = 0;
  bool down = false;

  void encode(CodecWriter& w) const;
  static SetNodeDownPayload decode(CodecReader& r);
};

struct SetResiduesPayload {
  std::uint64_t residues = 0;

  void encode(CodecWriter& w) const;
  static SetResiduesPayload decode(CodecReader& r);
};

// Helper: serialize any payload struct into message bytes.
template <typename Payload>
std::vector<std::uint8_t> encode_payload(const Payload& payload) {
  CodecWriter writer;
  payload.encode(writer);
  return writer.take();
}

template <typename Payload>
Payload decode_payload(std::span<const std::uint8_t> bytes) {
  CodecReader reader(bytes);
  Payload payload = Payload::decode(reader);
  // Strict framing: a payload must consume its buffer exactly. Trailing
  // bytes mean a mis-framed or forged message, and tolerating them would
  // let two different byte strings decode to the same value — breaking the
  // decode∘encode round-trip identity the fuzz harnesses pin.
  if (!reader.done()) {
    throw DecodeError("decode_payload: " + std::to_string(reader.remaining()) +
                      " trailing bytes after payload");
  }
  return payload;
}

// --- Untrusted-boundary semantic validation -----------------------------
//
// Framing-valid bytes can still carry semantically poisonous values
// (residue codes past the alphabet — a distance-LUT index out of bounds —
// or inverted anchor/seed intervals feeding unsigned arithmetic). These
// helpers raise DecodeError, the same category as framing failures, so
// StorageNode's bad-frame guard handles both uniformly. They are called at
// the trust boundary (message ingress), never on internally produced data.

// Every code must be < cardinality (the distance-LUT dimension).
void validate_codes(std::span<const seq::Code> codes, std::size_t cardinality,
                    const char* what);

// q/s intervals must be well-ordered (end >= begin) and spans must agree
// with each other within 32-bit arithmetic.
void validate_anchor(const Anchor& anchor);

// Seed windows must not wrap 32-bit offsets.
void validate_seed(const Seed& seed);

}  // namespace mendel::core
