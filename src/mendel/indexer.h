// Indexing pipeline (paper §V-A): inverted-index block creation, vp-prefix
// tree dispersion (tier 1), SHA-1 ring placement (tier 2), and batched
// shipment to storage nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/cluster/topology.h"
#include "src/mendel/block.h"
#include "src/net/message.h"
#include "src/scoring/distance.h"
#include "src/sequence/sequence.h"
#include "src/vptree/prefix_tree.h"

namespace mendel::core {

struct IndexingOptions {
  // Block length k of the inverted index (cluster-wide property; every
  // query subquery window has this length too).
  std::size_t window_length = 8;
  // Sample size for building the vp-prefix tree (hash-priority bottom-k
  // over all block positions — uniform, deterministic, and independent of
  // visit order, so serial and parallel builds select the same sample).
  std::size_t sample_size = 2000;
  // Blocks per kInsertBlocks message ("batches of inverted indexing blocks
  // are accumulated ... and submitted in sets", §V-A1).
  std::size_t batch_size = 512;
  std::uint64_t seed = 0x696e646578ULL;
  // Worker threads for sampling and placement planning (0 = hardware
  // concurrency). Results are byte-identical for every thread count:
  // per-sequence work is computed in parallel but merged and shipped in
  // sequence order.
  unsigned threads = 0;
};

struct IndexReport {
  std::uint64_t sequences = 0;
  std::uint64_t blocks = 0;
  std::uint64_t messages = 0;
};

class Indexer {
 public:
  Indexer(const cluster::Topology* topology,
          const score::DistanceMatrix* distance, IndexingOptions options);

  const IndexingOptions& options() const { return options_; }

  // Builds the tier-1 LSH from a reservoir sample of the store's blocks.
  vpt::VpPrefixTree build_prefix_tree(
      const seq::SequenceStore& store,
      vpt::PrefixTreeOptions tree_options) const;

  // Streams the store into the cluster: each sequence to its home node(s),
  // each block batch to its tier-1 group / tier-2 ring owner(s). The
  // topology must already have the prefix tree's leaves bound.
  // `id_offset` shifts every shipped sequence id — incremental indexing
  // appends stores whose local ids start at 0 into a cluster that already
  // holds ids below the offset.
  IndexReport index_store(const seq::SequenceStore& store,
                          const vpt::VpPrefixTree& prefix_tree,
                          net::Transport& transport, net::NodeId sender,
                          seq::SequenceId id_offset = 0) const;

  // Placement-only analyses for the Figure 5 load-balance benchmark: the
  // per-node block counts under the two-tier scheme...
  std::vector<std::uint64_t> placement_counts(
      const seq::SequenceStore& store,
      const vpt::VpPrefixTree& prefix_tree) const;
  // ...and under a single flat SHA-1 hash over the whole cluster (the
  // baseline of Figure 5a).
  std::vector<std::uint64_t> flat_placement_counts(
      const seq::SequenceStore& store) const;
  // ...and under a vp-prefix hash at *node* granularity with no flat
  // second tier — the rejected design of §V-A2 (similarity hashing all the
  // way down), reported by the Fig 5 bench as an ablation.
  std::vector<std::uint64_t> similarity_only_placement_counts(
      const seq::SequenceStore& store,
      const vpt::VpPrefixTree& prefix_tree) const;

 private:
  const cluster::Topology* topology_;
  const score::DistanceMatrix* distance_;
  IndexingOptions options_;
};

}  // namespace mendel::core
