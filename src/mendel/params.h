// Query parameters — paper Table I, plus the implementation knobs the
// paper leaves implicit.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/codec.h"

namespace mendel::core {

struct QueryParams {
  // --- Paper Table I ---------------------------------------------------
  // k: sliding-window step over the query (subqueries are block-length
  // windows taken every k residues; the *block* length is a cluster-wide
  // indexing property, not a per-query one).
  std::uint32_t k = 8;
  // n: nearest neighbors fetched per subquery per node.
  std::uint32_t n = 16;
  // i: percent-identity threshold in [0,1] for candidate blocks.
  double identity = 0.30;
  // c: consecutivity-score threshold in [0,1].
  double c_score = 0.40;
  // M: scoring matrix name ("BLOSUM62", "BLOSUM80", "PAM250", "DNA").
  std::string matrix = "BLOSUM62";
  // S: normalized anchor score (raw score / anchor length) required to
  // trigger gapped extension. Matrix-relative: the default suits BLOSUM62
  // (exact columns average ~5); for DNA (+2 per match) use ~1.0.
  double gapped_trigger = 2.5;
  // l: gapped-alignment band width (diagonals either side of the anchor).
  std::uint32_t band = 16;
  // E: expectation-value cutoff for reported alignments.
  double evalue = 10.0;

  // --- Implementation knobs --------------------------------------------
  // Branching tolerance of the vp-prefix traversal for query routing
  // (paper: "multiple groups can be selected ... if the path branches").
  double branch_epsilon = 10.0;
  // X-drop of the ungapped anchor extension at group entry points.
  int x_drop = 16;
  // Residues fetched either side of a seed for ungapped extension.
  std::uint32_t extension_margin = 128;
  // Cap on reported alignments.
  std::uint32_t max_hits = 50;
  // Cap on banded gapped extensions attempted per sequence bin (anchors
  // are taken best-first, so the cap cuts only redundant weak anchors).
  std::uint32_t max_gapped_per_bin = 8;
  // Attach the aligned subject residues to each reported hit (needed for
  // client-side pairwise rendering; costs extra reply bytes).
  bool include_subject_segment = false;
  // Minimum merged-seed span (residues) required before a seed run is
  // fetched and extended at the group entry. 0 keeps every n-NN candidate
  // (the paper's behaviour). Setting it just above the block length drops
  // isolated single-window noise seeds — true matches produce runs of
  // adjacent subquery windows on one diagonal — trading a little
  // low-similarity sensitivity for a large cut in fetch/extension work.
  std::uint32_t min_anchor_span = 0;

  void encode(CodecWriter& writer) const {
    writer.u32(k);
    writer.u32(n);
    writer.f64(identity);
    writer.f64(c_score);
    writer.str(matrix);
    writer.f64(gapped_trigger);
    writer.u32(band);
    writer.f64(evalue);
    writer.f64(branch_epsilon);
    writer.i32(x_drop);
    writer.u32(extension_margin);
    writer.u32(max_hits);
    writer.u32(max_gapped_per_bin);
    writer.u32(min_anchor_span);
    writer.boolean(include_subject_segment);
  }

  static QueryParams decode(CodecReader& reader) {
    QueryParams p;
    p.k = reader.u32();
    p.n = reader.u32();
    p.identity = reader.f64();
    p.c_score = reader.f64();
    p.matrix = reader.str();
    p.gapped_trigger = reader.f64();
    p.band = reader.u32();
    p.evalue = reader.f64();
    p.branch_epsilon = reader.f64();
    p.x_drop = reader.i32();
    p.extension_margin = reader.u32();
    p.max_hits = reader.u32();
    p.max_gapped_per_bin = reader.u32();
    p.min_anchor_span = reader.u32();
    p.include_subject_segment = reader.boolean();
    return p;
  }
};

}  // namespace mendel::core
