// Anchor aggregation (paper §V-B): "any overlapping anchors on the same
// diagonal are combined". Applied twice — at each group entry point over
// its nodes' results, and at the system entry point over all groups'
// results.
#pragma once

#include <vector>

#include "src/mendel/protocol.h"

namespace mendel::core {

// Combines anchors that share a (sequence, diagonal) and whose query spans
// overlap or touch. The merged anchor covers the union span; its score is
// a conservative estimate of the union's ungapped score:
//
//   score(a U b) = score(a) + score(b) - overlap * max(norm(a), norm(b))
//
// (each constituent contributes its full score, minus the doubly counted
// overlap charged at the *denser* anchor's per-column rate), clamped below
// by the best constituent. This keeps the *normalized* score of a long
// merged run meaningful — with a plain max, a chain of overlapping strong
// anchors would dilute to norm ~score_one/len_union and be dropped by the
// gapped trigger S. The union is rescored exactly by the gapped pass.
// Output is sorted by (sequence, diagonal, q_begin).
std::vector<Anchor> merge_anchors(std::vector<Anchor> anchors);

}  // namespace mendel::core
