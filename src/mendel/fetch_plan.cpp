#include "src/mendel/fetch_plan.h"

#include <algorithm>
#include <numeric>

namespace mendel::core {

std::vector<CoalescedRange> coalesce_ranges(
    const std::vector<RangeRequest>& requests) {
  std::vector<std::uint32_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const RangeRequest& ra = requests[a];
              const RangeRequest& rb = requests[b];
              if (ra.sequence != rb.sequence) return ra.sequence < rb.sequence;
              if (ra.start != rb.start) return ra.start < rb.start;
              if (ra.length != rb.length) return ra.length < rb.length;
              return a < b;
            });

  std::vector<CoalescedRange> plan;
  for (std::uint32_t idx : order) {
    const RangeRequest& req = requests[idx];
    // 64-bit ends: start + length may overflow 32 bits for hostile inputs.
    const std::uint64_t req_end =
        static_cast<std::uint64_t>(req.start) + req.length;
    if (!plan.empty() && plan.back().sequence == req.sequence &&
        static_cast<std::uint64_t>(plan.back().start) + plan.back().length >=
            req.start) {
      CoalescedRange& cur = plan.back();
      const std::uint64_t cur_end =
          static_cast<std::uint64_t>(cur.start) + cur.length;
      const std::uint64_t merged_end = std::max(cur_end, req_end);
      cur.length = static_cast<std::uint32_t>(merged_end - cur.start);
      cur.members.push_back(idx);
      continue;
    }
    CoalescedRange fresh;
    fresh.sequence = req.sequence;
    fresh.start = req.start;
    fresh.length = req.length;
    fresh.members.push_back(idx);
    plan.push_back(std::move(fresh));
  }
  for (CoalescedRange& range : plan) {
    std::sort(range.members.begin(), range.members.end());
  }
  return plan;
}

}  // namespace mendel::core
