// Inverted-index blocks: the basic unit of storage and computation
// (paper §V-A1).
//
// A block is one k-length window of a reference sequence plus the metadata
// needed during query evaluation: the owning sequence id and the window's
// start offset. The paper also stores explicit references to the previous
// and next blocks; since the indexing stride is 1, those are exactly
// (sequence, start-1) and (sequence, start+1), so Mendel represents them
// implicitly. Anchor extension resolves residues beyond a block through the
// distributed sequence repository (each sequence has a home node) rather
// than by chasing per-block links across the ring — see
// src/mendel/storage_node.h.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/codec.h"
#include "src/hash/sha1.h"
#include "src/sequence/sequence.h"
#include "src/vptree/prefix_tree.h"

namespace mendel::core {

struct Block {
  seq::SequenceId sequence = seq::kInvalidSequenceId;
  std::uint32_t start = 0;
  vpt::Window window;

  std::uint32_t end() const {
    return start + static_cast<std::uint32_t>(window.size());
  }

  bool operator==(const Block&) const = default;

  void encode(CodecWriter& writer) const {
    writer.u32(sequence);
    writer.u32(start);
    writer.bytes(std::span<const std::uint8_t>(window.data(), window.size()));
  }

  static Block decode(CodecReader& reader) {
    Block block;
    block.sequence = reader.u32();
    block.start = reader.u32();
    block.window = reader.bytes();
    return block;
  }
};

// Tier-2 placement key: SHA-1 over the block's identity and payload
// (paper §V-A2 — flat hash dispersal within the group). The span overload
// lets a storage node hash arena-resident windows without materializing a
// Block.
inline std::uint64_t block_placement_key(seq::SequenceId sequence,
                                         std::uint32_t start,
                                         seq::CodeSpan window) {
  hashing::Sha1 hasher;
  CodecWriter header;
  header.u32(sequence);
  header.u32(start);
  hasher.update(std::span<const std::uint8_t>(header.data().data(),
                                              header.data().size()));
  hasher.update(std::span<const std::uint8_t>(window.data(), window.size()));
  const auto digest = hasher.finish();
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | digest[static_cast<std::size_t>(i)];
  }
  return value;
}

inline std::uint64_t block_placement_key(const Block& block) {
  return block_placement_key(block.sequence, block.start, block.window);
}

// Placement key of a reference sequence in the cluster-wide repository
// (home-node selection on the global ring).
inline std::uint64_t sequence_placement_key(seq::SequenceId sequence) {
  return hashing::sha1_prefix64("seq:" + std::to_string(sequence));
}

// Cuts a sequence into its L-k+1 stride-1 blocks (the paper says "L - k
// segments"; the off-by-one is immaterial and we keep the inclusive count).
std::vector<Block> make_blocks(const seq::Sequence& sequence,
                               std::size_t window_length);

}  // namespace mendel::core
