#include "src/mendel/indexer.h"

#include <algorithm>
#include <map>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/mendel/protocol.h"

namespace mendel::core {

namespace {

// Sampling priority of one window position: a SplitMix64 hash of
// (seed, sequence, start). The prefix-tree sample is the sample_size
// windows with the smallest (priority, sequence, start) tuples — a
// uniform draw that any partitioning of the work selects identically.
struct SampleKey {
  std::uint64_t priority = 0;
  std::uint32_t sequence = 0;
  std::uint32_t start = 0;
};

bool sample_key_less(const SampleKey& a, const SampleKey& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.sequence != b.sequence) return a.sequence < b.sequence;
  return a.start < b.start;
}

std::uint64_t window_priority(std::uint64_t seed, std::uint32_t sequence,
                              std::uint32_t start) {
  SplitMix64 mix(seed ^ (static_cast<std::uint64_t>(sequence) *
                         0x9e3779b97f4a7c15ULL) ^
                 (static_cast<std::uint64_t>(start) * 0xbf58476d1ce4e5b9ULL));
  return mix.next();
}

}  // namespace

Indexer::Indexer(const cluster::Topology* topology,
                 const score::DistanceMatrix* distance,
                 IndexingOptions options)
    : topology_(topology), distance_(distance), options_(options) {
  require(topology_ != nullptr, "Indexer: null topology");
  require(distance_ != nullptr, "Indexer: null distance matrix");
  require(options_.window_length >= 4, "Indexer: window_length must be >= 4");
  require(options_.batch_size > 0, "Indexer: batch_size must be > 0");
  require(options_.sample_size >= 16, "Indexer: sample_size must be >= 16");
}

vpt::VpPrefixTree Indexer::build_prefix_tree(
    const seq::SequenceStore& store,
    vpt::PrefixTreeOptions tree_options) const {
  // Sample windows uniformly over all block positions. Each position gets a
  // deterministic hash priority; the sample is the global bottom-k. Every
  // sequence can be scanned independently (bottom-k per sequence, then a
  // serial merge), so the parallel build selects exactly the serial sample.
  ThreadPool pool(options_.threads);
  std::vector<std::vector<SampleKey>> per_sequence(store.size());
  pool.parallel_for(store.size(), [&](std::size_t i) {
    const auto& sequence = store.at(static_cast<seq::SequenceId>(i));
    if (sequence.size() < options_.window_length) return;
    std::vector<SampleKey>& keys = per_sequence[i];
    const std::size_t count = sequence.size() - options_.window_length + 1;
    keys.reserve(count);
    for (std::size_t start = 0; start < count; ++start) {
      keys.push_back(SampleKey{
          window_priority(options_.seed, static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(start)),
          static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(start)});
    }
    if (keys.size() > options_.sample_size) {
      std::nth_element(
          keys.begin(),
          keys.begin() + static_cast<std::ptrdiff_t>(options_.sample_size),
          keys.end(), sample_key_less);
      keys.resize(options_.sample_size);
    }
  });

  std::vector<SampleKey> merged;
  for (auto& keys : per_sequence) {
    merged.insert(merged.end(), keys.begin(), keys.end());
  }
  if (merged.size() > options_.sample_size) {
    std::nth_element(
        merged.begin(),
        merged.begin() + static_cast<std::ptrdiff_t>(options_.sample_size),
        merged.end(), sample_key_less);
    merged.resize(options_.sample_size);
  }
  std::sort(merged.begin(), merged.end(), sample_key_less);

  std::vector<vpt::Window> sample;
  sample.reserve(merged.size());
  for (const SampleKey& key : merged) {
    const auto window =
        store.at(key.sequence).window(key.start, options_.window_length);
    sample.emplace_back(window.begin(), window.end());
  }
  require(!sample.empty(),
          "Indexer: store has no sequence long enough for one block");
  vpt::VpPrefixTree tree(distance_, tree_options);
  tree.build(std::move(sample));
  return tree;
}

IndexReport Indexer::index_store(const seq::SequenceStore& store,
                                 const vpt::VpPrefixTree& prefix_tree,
                                 net::Transport& transport,
                                 net::NodeId sender,
                                 seq::SequenceId id_offset) const {
  IndexReport report;
  // Per-destination block batches, flushed at batch_size.
  std::map<net::NodeId, std::vector<Block>> batches;
  auto flush = [&](net::NodeId node, std::vector<Block>& batch) {
    if (batch.empty()) return;
    InsertBlocksPayload payload;
    payload.blocks = std::move(batch);
    batch = {};
    net::Message message;
    message.from = sender;
    message.to = node;
    message.type = kInsertBlocks;
    message.request_id = 0;
    message.payload = encode_payload(payload);
    transport.send(std::move(message));
    ++report.messages;
  };

  // Phase 1 (parallel): per-sequence plans — the sequence payload encoded
  // once, its home nodes, and every block's owner list. Phase 2 (serial):
  // replay the plans in sequence order, so the message stream is
  // byte-identical for any thread count. Plans are built chunk-by-chunk to
  // bound memory: only `chunk` sequences worth of blocks are resident.
  struct BlockPlan {
    std::vector<net::NodeId> owners;
    Block block;
  };
  struct SequencePlan {
    std::vector<std::uint8_t> stored_payload;
    std::vector<net::NodeId> homes;
    std::vector<BlockPlan> blocks;
  };

  ThreadPool pool(options_.threads);
  const std::size_t chunk =
      std::max<std::size_t>(std::size_t{4} * pool.size(), 16);
  std::vector<SequencePlan> plans;
  for (std::size_t base = 0; base < store.size(); base += chunk) {
    const std::size_t count = std::min(chunk, store.size() - base);
    plans.assign(count, SequencePlan{});
    pool.parallel_for(count, [&](std::size_t i) {
      const auto& sequence =
          store.at(static_cast<seq::SequenceId>(base + i));
      SequencePlan& plan = plans[i];

      // Sequence repository: ship the full sequence to its home node(s),
      // encoding the payload once no matter how many homes receive it.
      StoreSequencePayload stored;
      stored.sequence = sequence.id() + id_offset;
      stored.name = sequence.name();
      stored.alphabet = static_cast<std::uint8_t>(sequence.alphabet());
      stored.codes.assign(sequence.codes().begin(), sequence.codes().end());
      plan.stored_payload = encode_payload(stored);
      plan.homes =
          topology_->sequence_homes(sequence_placement_key(stored.sequence));

      // Inverted-index blocks: tier-1 group via the vp-prefix LSH, tier-2
      // node via the group's SHA-1 ring.
      for (Block& block : make_blocks(sequence, options_.window_length)) {
        block.sequence += id_offset;
        const std::uint64_t prefix = prefix_tree.hash(block.window);
        const std::uint32_t group = topology_->group_for_prefix(prefix);
        const std::uint64_t key = block_placement_key(block);
        plan.blocks.push_back(
            BlockPlan{topology_->nodes_for_key(group, key), std::move(block)});
      }
    });

    for (SequencePlan& plan : plans) {
      for (net::NodeId home : plan.homes) {
        net::Message message;
        message.from = sender;
        message.to = home;
        message.type = kStoreSequence;
        message.request_id = 0;
        message.payload = plan.stored_payload;
        transport.send(std::move(message));
        ++report.messages;
      }
      ++report.sequences;
      for (BlockPlan& planned : plan.blocks) {
        for (net::NodeId node : planned.owners) {
          auto& batch = batches[node];
          batch.push_back(planned.block);
          if (batch.size() >= options_.batch_size) flush(node, batch);
        }
        ++report.blocks;
      }
    }
  }
  for (auto& [node, batch] : batches) flush(node, batch);
  return report;
}

std::vector<std::uint64_t> Indexer::placement_counts(
    const seq::SequenceStore& store,
    const vpt::VpPrefixTree& prefix_tree) const {
  std::vector<std::uint64_t> counts(topology_->total_nodes(), 0);
  for (const auto& sequence : store) {
    for (const Block& block :
         make_blocks(sequence, options_.window_length)) {
      const std::uint64_t prefix = prefix_tree.hash(block.window);
      const std::uint32_t group = topology_->group_for_prefix(prefix);
      const net::NodeId node =
          topology_->primary_node_for_key(group, block_placement_key(block));
      ++counts[node];
    }
  }
  return counts;
}

std::vector<std::uint64_t> Indexer::flat_placement_counts(
    const seq::SequenceStore& store) const {
  std::vector<std::uint64_t> counts(topology_->total_nodes(), 0);
  for (const auto& sequence : store) {
    for (const Block& block :
         make_blocks(sequence, options_.window_length)) {
      counts[block_placement_key(block) % topology_->total_nodes()] += 1;
    }
  }
  return counts;
}

std::vector<std::uint64_t> Indexer::similarity_only_placement_counts(
    const seq::SequenceStore& store,
    const vpt::VpPrefixTree& prefix_tree) const {
  std::vector<std::uint64_t> counts(topology_->total_nodes(), 0);
  for (const auto& sequence : store) {
    for (const Block& block :
         make_blocks(sequence, options_.window_length)) {
      // No flat tier: the prefix alone picks the node, so similar blocks
      // pile onto single machines (§V-A2's rejected design).
      const std::uint64_t prefix = prefix_tree.hash(block.window);
      counts[prefix % topology_->total_nodes()] += 1;
    }
  }
  return counts;
}

}  // namespace mendel::core
