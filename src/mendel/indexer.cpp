#include "src/mendel/indexer.h"

#include <map>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/mendel/protocol.h"

namespace mendel::core {

Indexer::Indexer(const cluster::Topology* topology,
                 const score::DistanceMatrix* distance,
                 IndexingOptions options)
    : topology_(topology), distance_(distance), options_(options) {
  require(topology_ != nullptr, "Indexer: null topology");
  require(distance_ != nullptr, "Indexer: null distance matrix");
  require(options_.window_length >= 4, "Indexer: window_length must be >= 4");
  require(options_.batch_size > 0, "Indexer: batch_size must be > 0");
  require(options_.sample_size >= 16, "Indexer: sample_size must be >= 16");
}

vpt::VpPrefixTree Indexer::build_prefix_tree(
    const seq::SequenceStore& store,
    vpt::PrefixTreeOptions tree_options) const {
  // Reservoir-sample windows uniformly over all block positions.
  Rng rng(options_.seed);
  std::vector<vpt::Window> sample;
  sample.reserve(options_.sample_size);
  std::size_t seen = 0;
  for (const auto& sequence : store) {
    if (sequence.size() < options_.window_length) continue;
    for (std::size_t start = 0;
         start + options_.window_length <= sequence.size(); ++start) {
      ++seen;
      const auto window = sequence.window(start, options_.window_length);
      if (sample.size() < options_.sample_size) {
        sample.emplace_back(window.begin(), window.end());
      } else {
        const std::size_t j = rng.below(seen);
        if (j < sample.size()) {
          sample[j].assign(window.begin(), window.end());
        }
      }
    }
  }
  require(!sample.empty(),
          "Indexer: store has no sequence long enough for one block");
  vpt::VpPrefixTree tree(distance_, tree_options);
  tree.build(std::move(sample));
  return tree;
}

IndexReport Indexer::index_store(const seq::SequenceStore& store,
                                 const vpt::VpPrefixTree& prefix_tree,
                                 net::Transport& transport,
                                 net::NodeId sender,
                                 seq::SequenceId id_offset) const {
  IndexReport report;
  // Per-destination block batches, flushed at batch_size.
  std::map<net::NodeId, std::vector<Block>> batches;
  auto flush = [&](net::NodeId node, std::vector<Block>& batch) {
    if (batch.empty()) return;
    InsertBlocksPayload payload;
    payload.blocks = std::move(batch);
    batch = {};
    net::Message message;
    message.from = sender;
    message.to = node;
    message.type = kInsertBlocks;
    message.request_id = 0;
    message.payload = encode_payload(payload);
    transport.send(std::move(message));
    ++report.messages;
  };

  for (const auto& sequence : store) {
    // Sequence repository: ship the full sequence to its home node(s).
    StoreSequencePayload stored;
    stored.sequence = sequence.id() + id_offset;
    stored.name = sequence.name();
    stored.alphabet = static_cast<std::uint8_t>(sequence.alphabet());
    stored.codes.assign(sequence.codes().begin(), sequence.codes().end());
    for (net::NodeId home : topology_->sequence_homes(
             sequence_placement_key(sequence.id() + id_offset))) {
      net::Message message;
      message.from = sender;
      message.to = home;
      message.type = kStoreSequence;
      message.request_id = 0;
      message.payload = encode_payload(stored);
      transport.send(std::move(message));
      ++report.messages;
    }
    ++report.sequences;

    // Inverted-index blocks: tier-1 group via the vp-prefix LSH, tier-2
    // node via the group's SHA-1 ring.
    for (Block& block : make_blocks(sequence, options_.window_length)) {
      block.sequence += id_offset;
      const std::uint64_t prefix = prefix_tree.hash(block.window);
      const std::uint32_t group = topology_->group_for_prefix(prefix);
      const std::uint64_t key = block_placement_key(block);
      for (net::NodeId node : topology_->nodes_for_key(group, key)) {
        auto& batch = batches[node];
        batch.push_back(block);
        if (batch.size() >= options_.batch_size) flush(node, batch);
      }
      ++report.blocks;
    }
  }
  for (auto& [node, batch] : batches) flush(node, batch);
  return report;
}

std::vector<std::uint64_t> Indexer::placement_counts(
    const seq::SequenceStore& store,
    const vpt::VpPrefixTree& prefix_tree) const {
  std::vector<std::uint64_t> counts(topology_->total_nodes(), 0);
  for (const auto& sequence : store) {
    for (const Block& block :
         make_blocks(sequence, options_.window_length)) {
      const std::uint64_t prefix = prefix_tree.hash(block.window);
      const std::uint32_t group = topology_->group_for_prefix(prefix);
      const net::NodeId node =
          topology_->primary_node_for_key(group, block_placement_key(block));
      ++counts[node];
    }
  }
  return counts;
}

std::vector<std::uint64_t> Indexer::flat_placement_counts(
    const seq::SequenceStore& store) const {
  std::vector<std::uint64_t> counts(topology_->total_nodes(), 0);
  for (const auto& sequence : store) {
    for (const Block& block :
         make_blocks(sequence, options_.window_length)) {
      counts[block_placement_key(block) % topology_->total_nodes()] += 1;
    }
  }
  return counts;
}

std::vector<std::uint64_t> Indexer::similarity_only_placement_counts(
    const seq::SequenceStore& store,
    const vpt::VpPrefixTree& prefix_tree) const {
  std::vector<std::uint64_t> counts(topology_->total_nodes(), 0);
  for (const auto& sequence : store) {
    for (const Block& block :
         make_blocks(sequence, options_.window_length)) {
      // No flat tier: the prefix alone picks the node, so similar blocks
      // pile onto single machines (§V-A2's rejected design).
      const std::uint64_t prefix = prefix_tree.hash(block.window);
      counts[prefix % topology_->total_nodes()] += 1;
    }
  }
  return counts;
}

}  // namespace mendel::core
