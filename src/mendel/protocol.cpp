#include "src/mendel/protocol.h"

namespace mendel::core {

namespace {

void encode_codes(CodecWriter& w, const std::vector<seq::Code>& codes) {
  w.bytes(std::span<const std::uint8_t>(codes.data(), codes.size()));
}

std::vector<seq::Code> decode_codes(CodecReader& r) { return r.bytes(); }

}  // namespace

void StoreSequencePayload::encode(CodecWriter& w) const {
  w.u32(sequence);
  w.str(name);
  w.u8(alphabet);
  encode_codes(w, codes);
}

StoreSequencePayload StoreSequencePayload::decode(CodecReader& r) {
  StoreSequencePayload p;
  p.sequence = r.u32();
  p.name = r.str();
  p.alphabet = r.u8();
  p.codes = decode_codes(r);
  return p;
}

void InsertBlocksPayload::encode(CodecWriter& w) const {
  w.vec(blocks, [](CodecWriter& ww, const Block& b) { b.encode(ww); });
}

InsertBlocksPayload InsertBlocksPayload::decode(CodecReader& r) {
  InsertBlocksPayload p;
  p.blocks = r.vec<Block>([](CodecReader& rr) { return Block::decode(rr); });
  return p;
}

void Subquery::encode(CodecWriter& w) const {
  w.u32(query_offset);
  encode_codes(w, window);
}

Subquery Subquery::decode(CodecReader& r) {
  Subquery s;
  s.query_offset = r.u32();
  s.window = decode_codes(r);
  return s;
}

void QueryRequestPayload::encode(CodecWriter& w) const {
  params.encode(w);
  trace.encode(w);
  encode_codes(w, query);
}

QueryRequestPayload QueryRequestPayload::decode(CodecReader& r) {
  QueryRequestPayload p;
  p.params = QueryParams::decode(r);
  p.trace = obs::TraceContext::decode(r);
  p.query = decode_codes(r);
  return p;
}

void GroupQueryPayload::encode(CodecWriter& w) const {
  params.encode(w);
  trace.encode(w);
  encode_codes(w, query);
  w.vec(subqueries,
        [](CodecWriter& ww, const Subquery& s) { s.encode(ww); });
}

GroupQueryPayload GroupQueryPayload::decode(CodecReader& r) {
  GroupQueryPayload p;
  p.params = QueryParams::decode(r);
  p.trace = obs::TraceContext::decode(r);
  p.query = decode_codes(r);
  p.subqueries =
      r.vec<Subquery>([](CodecReader& rr) { return Subquery::decode(rr); });
  return p;
}

std::vector<std::uint8_t> encode_group_query_prefix(
    const QueryParams& params, const obs::TraceContext& trace,
    const std::vector<seq::Code>& query) {
  CodecWriter w;
  params.encode(w);
  trace.encode(w);
  encode_codes(w, query);
  return w.take();
}

std::vector<std::uint8_t> encode_group_query(
    const std::vector<std::uint8_t>& prefix,
    const std::vector<Subquery>& subqueries) {
  CodecWriter w;
  w.raw(prefix);
  w.vec(subqueries,
        [](CodecWriter& ww, const Subquery& s) { s.encode(ww); });
  return w.take();
}

void NodeSearchPayload::encode(CodecWriter& w) const {
  params.encode(w);
  trace.encode(w);
  w.vec(subqueries,
        [](CodecWriter& ww, const Subquery& s) { s.encode(ww); });
}

NodeSearchPayload NodeSearchPayload::decode(CodecReader& r) {
  NodeSearchPayload p;
  p.params = QueryParams::decode(r);
  p.trace = obs::TraceContext::decode(r);
  p.subqueries =
      r.vec<Subquery>([](CodecReader& rr) { return Subquery::decode(rr); });
  return p;
}

void Seed::encode(CodecWriter& w) const {
  w.u32(sequence);
  w.u32(subject_start);
  w.u32(query_offset);
  w.u32(length);
  w.f64(identity);
  w.f64(c_score);
}

Seed Seed::decode(CodecReader& r) {
  Seed s;
  s.sequence = r.u32();
  s.subject_start = r.u32();
  s.query_offset = r.u32();
  s.length = r.u32();
  s.identity = r.f64();
  s.c_score = r.f64();
  return s;
}

void NodeSearchResultPayload::encode(CodecWriter& w) const {
  w.vec(seeds, [](CodecWriter& ww, const Seed& s) { s.encode(ww); });
}

NodeSearchResultPayload NodeSearchResultPayload::decode(CodecReader& r) {
  NodeSearchResultPayload p;
  p.seeds = r.vec<Seed>([](CodecReader& rr) { return Seed::decode(rr); });
  return p;
}

void Anchor::encode(CodecWriter& w) const {
  w.u32(sequence);
  w.u32(q_begin);
  w.u32(q_end);
  w.u32(s_begin);
  w.u32(s_end);
  w.i32(score);
  w.i32(cert);
  w.u32(subject_len);
}

Anchor Anchor::decode(CodecReader& r) {
  Anchor a;
  a.sequence = r.u32();
  a.q_begin = r.u32();
  a.q_end = r.u32();
  a.s_begin = r.u32();
  a.s_end = r.u32();
  a.score = r.i32();
  a.cert = r.i32();
  a.subject_len = r.u32();
  return a;
}

void GroupResultPayload::encode(CodecWriter& w) const {
  w.vec(anchors, [](CodecWriter& ww, const Anchor& a) { a.encode(ww); });
}

GroupResultPayload GroupResultPayload::decode(CodecReader& r) {
  GroupResultPayload p;
  p.anchors =
      r.vec<Anchor>([](CodecReader& rr) { return Anchor::decode(rr); });
  return p;
}

void FetchRangePayload::encode(CodecWriter& w) const {
  w.u8(purpose);
  w.u32(token);
  w.u32(sequence);
  w.u32(start);
  w.u32(length);
  trace.encode(w);
}

FetchRangePayload FetchRangePayload::decode(CodecReader& r) {
  FetchRangePayload p;
  p.purpose = r.u8();
  p.token = r.u32();
  p.sequence = r.u32();
  p.start = r.u32();
  p.length = r.u32();
  p.trace = obs::TraceContext::decode(r);
  return p;
}

void FetchRangeResultPayload::encode(CodecWriter& w) const {
  w.u8(purpose);
  w.u32(token);
  w.u32(sequence);
  w.u32(start);
  w.u32(sequence_length);
  w.str(sequence_name);
  encode_codes(w, codes);
}

FetchRangeResultPayload FetchRangeResultPayload::decode(CodecReader& r) {
  FetchRangeResultPayload p;
  p.purpose = r.u8();
  p.token = r.u32();
  p.sequence = r.u32();
  p.start = r.u32();
  p.sequence_length = r.u32();
  p.sequence_name = r.str();
  p.codes = decode_codes(r);
  return p;
}

void QueryResultPayload::encode(CodecWriter& w) const {
  w.vec(hits, [](CodecWriter& ww, const align::AlignmentHit& h) {
    ww.u32(h.subject_id);
    ww.str(h.subject_name);
    ww.u64(h.alignment.hsp.q_begin);
    ww.u64(h.alignment.hsp.q_end);
    ww.u64(h.alignment.hsp.s_begin);
    ww.u64(h.alignment.hsp.s_end);
    ww.i32(h.alignment.hsp.score);
    ww.u64(h.alignment.columns);
    ww.u64(h.alignment.identities);
    ww.u64(h.alignment.gap_columns);
    ww.str(h.alignment.cigar);
    ww.f64(h.bit_score);
    ww.f64(h.evalue);
    ww.bytes(std::span<const std::uint8_t>(h.subject_segment.data(),
                                           h.subject_segment.size()));
  });
}

QueryResultPayload QueryResultPayload::decode(CodecReader& r) {
  QueryResultPayload p;
  p.hits = r.vec<align::AlignmentHit>([](CodecReader& rr) {
    align::AlignmentHit h;
    h.subject_id = rr.u32();
    h.subject_name = rr.str();
    h.alignment.hsp.q_begin = rr.u64();
    h.alignment.hsp.q_end = rr.u64();
    h.alignment.hsp.s_begin = rr.u64();
    h.alignment.hsp.s_end = rr.u64();
    h.alignment.hsp.score = rr.i32();
    h.alignment.columns = rr.u64();
    h.alignment.identities = rr.u64();
    h.alignment.gap_columns = rr.u64();
    h.alignment.cigar = rr.str();
    h.bit_score = rr.f64();
    h.evalue = rr.f64();
    h.subject_segment = rr.bytes();
    return h;
  });
  return p;
}

void TraceReportPayload::encode(CodecWriter& w) const {
  w.vec(spans,
        [](CodecWriter& ww, const obs::SpanRecord& s) { s.encode(ww); });
}

TraceReportPayload TraceReportPayload::decode(CodecReader& r) {
  TraceReportPayload p;
  p.spans = r.vec<obs::SpanRecord>(
      [](CodecReader& rr) { return obs::SpanRecord::decode(rr); });
  return p;
}

void NodeInitPayload::encode(CodecWriter& w) const {
  w.u64(generation);
  w.u8(alphabet);
  w.u32(num_groups);
  w.u32(nodes_per_group);
  w.u64(ring_virtual_nodes);
  w.u32(replication);
  w.u32(sequence_replication);
  w.vec(extra_node_groups,
        [](CodecWriter& ww, std::uint32_t g) { ww.u32(g); });
  w.u64(bucket_capacity);
  w.u64(database_residues);
  w.vec(down_nodes, [](CodecWriter& ww, std::uint32_t n) { ww.u32(n); });
  w.bytes(prefix_tree);
}

NodeInitPayload NodeInitPayload::decode(CodecReader& r) {
  NodeInitPayload p;
  p.generation = r.u64();
  p.alphabet = r.u8();
  p.num_groups = r.u32();
  p.nodes_per_group = r.u32();
  p.ring_virtual_nodes = r.u64();
  p.replication = r.u32();
  p.sequence_replication = r.u32();
  p.extra_node_groups =
      r.vec<std::uint32_t>([](CodecReader& rr) { return rr.u32(); });
  p.bucket_capacity = r.u64();
  p.database_residues = r.u64();
  p.down_nodes =
      r.vec<std::uint32_t>([](CodecReader& rr) { return rr.u32(); });
  p.prefix_tree = r.bytes();
  return p;
}

void SetNodeDownPayload::encode(CodecWriter& w) const {
  w.u32(node);
  w.boolean(down);
}

SetNodeDownPayload SetNodeDownPayload::decode(CodecReader& r) {
  SetNodeDownPayload p;
  p.node = r.u32();
  p.down = r.boolean();
  return p;
}

void SetResiduesPayload::encode(CodecWriter& w) const { w.u64(residues); }

SetResiduesPayload SetResiduesPayload::decode(CodecReader& r) {
  SetResiduesPayload p;
  p.residues = r.u64();
  return p;
}

void validate_codes(std::span<const seq::Code> codes, std::size_t cardinality,
                    const char* what) {
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] >= cardinality) {
      throw DecodeError(std::string(what) + ": residue code " +
                        std::to_string(codes[i]) + " at position " +
                        std::to_string(i) + " outside alphabet (cardinality " +
                        std::to_string(cardinality) + ")");
    }
  }
}

void validate_anchor(const Anchor& anchor) {
  if (anchor.q_end < anchor.q_begin || anchor.s_end < anchor.s_begin) {
    throw DecodeError("anchor: inverted interval (q " +
                      std::to_string(anchor.q_begin) + ".." +
                      std::to_string(anchor.q_end) + ", s " +
                      std::to_string(anchor.s_begin) + ".." +
                      std::to_string(anchor.s_end) + ")");
  }
}

void validate_seed(const Seed& seed) {
  const std::uint64_t s_end =
      static_cast<std::uint64_t>(seed.subject_start) + seed.length;
  const std::uint64_t q_end =
      static_cast<std::uint64_t>(seed.query_offset) + seed.length;
  if (s_end > 0xffffffffULL || q_end > 0xffffffffULL) {
    throw DecodeError("seed: window wraps 32-bit offsets (subject_start " +
                      std::to_string(seed.subject_start) + ", query_offset " +
                      std::to_string(seed.query_offset) + ", length " +
                      std::to_string(seed.length) + ")");
  }
}

}  // namespace mendel::core
