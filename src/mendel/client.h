// mendel::core::Client — the public facade of the framework.
//
// A Client owns a complete simulated Mendel deployment: the two-tier
// topology, the vp-prefix routing tree, one StorageNode actor per cluster
// node, and the discrete-event transport. Typical use (see
// examples/quickstart.cpp):
//
//   mendel::core::ClientOptions options;
//   options.topology.num_groups = 10;
//   options.topology.nodes_per_group = 5;
//   mendel::core::Client client(options);
//   client.index(store);                       // build + disperse the index
//   auto outcome = client.query(query);        // similarity search
//   for (const auto& hit : outcome.hits) ...;  // ranked alignments
//
// The Client also exposes the paper's future-work features implemented
// here: index persistence (save_index/load_index) and fault injection with
// replication (fail_node).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/topology.h"
#include "src/mendel/indexer.h"
#include "src/mendel/params.h"
#include "src/mendel/storage_node.h"
#include "src/net/sim_transport.h"

namespace mendel::core {

struct ClientOptions {
  cluster::TopologyConfig topology;
  IndexingOptions indexing;
  vpt::PrefixTreeOptions prefix_tree;
  net::CostModel cost;
  std::size_t bucket_capacity = 32;
};

struct QueryOutcome {
  std::vector<align::AlignmentHit> hits;
  // Virtual-time turnaround: injection at the system entry point to the
  // client's receipt of the ranked result (what Figures 6a–6c measure).
  double turnaround = 0.0;
  // Network traffic attributable to this query.
  net::NetworkStats traffic;
  // False when the query's dataflow stalled (e.g. a node failed silently
  // mid-query and a fan-in never completed). The client then broadcasts
  // kCancelQuery so no pending state leaks, and returns empty hits.
  bool completed = true;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Builds the prefix tree from `store`, binds the topology, spawns the
  // storage nodes, and streams the database in. Callable once per Client
  // (use a fresh Client per experiment configuration).
  IndexReport index(const seq::SequenceStore& store);

  // Incremental indexing: streams additional sequences into an
  // already-indexed cluster (the DHT's scale-with-the-data story). The new
  // sequences get fresh cluster-wide ids starting at the returned base id;
  // hits reference those ids. Tier-1 routing keeps using the original
  // LSH sample.
  seq::SequenceId add_sequences(const seq::SequenceStore& more);

  // Elastic scale-out (paper §I: "commodity hardware can be added
  // incrementally"): grows `group` by one storage node and runs the
  // rebalance protocol — consistent hashing moves ~1/n of the group's
  // blocks (and a slice of the sequence repository) onto the newcomer.
  // Returns the new node's id. Queries work unchanged afterwards.
  net::NodeId add_node(std::uint32_t group);

  bool indexed() const { return indexed_; }

  // Runs one similarity query through the cluster.
  QueryOutcome query(const seq::Sequence& query, QueryParams params = {});

  // --- telemetry ---------------------------------------------------------
  const cluster::Topology& topology() const;
  std::vector<std::uint64_t> block_counts() const;
  NodeCounters total_counters() const;
  net::SimTransport& transport() { return *transport_; }
  StorageNode& node(net::NodeId id);

  // --- fault tolerance (paper §VII-B future work) -------------------------
  // Marks a node failed: the transport drops its traffic and every other
  // node excludes it from fan-outs and home-node lookups.
  void fail_node(net::NodeId id);
  void heal_node(net::NodeId id);

  // --- persistence (paper §VII-B future work) ------------------------------
  // Snapshot the fully built index (routing state + every node's blocks
  // and sequence shard) so "pre-indexed data for popular large datasets"
  // can be reloaded without re-indexing.
  void save_index(const std::string& path) const;
  // Restores a snapshot into this (un-indexed) Client. The snapshot's
  // topology replaces whatever ClientOptions carried (an index is only
  // valid on the cluster shape it was built for).
  void load_index(const std::string& path);

 private:
  void spawn_nodes(seq::Alphabet alphabet);

  ClientOptions options_;
  std::unique_ptr<cluster::Topology> topology_;
  std::unique_ptr<score::DistanceMatrix> distance_;
  std::unique_ptr<vpt::VpPrefixTree> prefix_tree_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::unique_ptr<net::Actor> client_actor_;
  bool indexed_ = false;
  std::uint64_t next_query_id_ = 1;
  seq::SequenceId next_sequence_id_ = 0;
  std::uint64_t database_residues_ = 0;
  seq::Alphabet alphabet_ = seq::Alphabet::kProtein;

  // Filled by the client actor when a kQueryResult lands.
  struct Reply {
    std::vector<align::AlignmentHit> hits;
    double arrival = 0.0;
  };
  std::optional<Reply> last_reply_;
};

}  // namespace mendel::core
