// mendel::core::Client — the public facade of the framework.
//
// A Client owns a complete Mendel deployment: the two-tier topology, the
// vp-prefix routing tree, one StorageNode actor per cluster node, and the
// message transport. Typical use (see examples/quickstart.cpp):
//
//   mendel::core::ClientOptions options;
//   options.topology.num_groups = 10;
//   options.topology.nodes_per_group = 5;
//   mendel::core::Client client(options);
//   client.index(store);                       // build + disperse the index
//   auto outcome = client.query(query);        // similarity search
//   for (const auto& hit : outcome.hits) ...;  // ranked alignments
//
// Three runtimes back the same cluster code (selected through
// net::TransportFactory):
//   * TransportMode::kSim (default) — the deterministic discrete-event
//     simulator with virtual time; the runtime the benchmark figures are
//     measured on. Single-threaded: submit/wait/query must all be called
//     from one thread.
//   * TransportMode::kThreaded — one OS thread per storage node. submit()
//     and wait() are thread-safe, so many application threads can drive
//     overlapping queries (the concurrent query pipeline); intra-node
//     subquery searches additionally fan out over `search_threads`.
//   * TransportMode::kSocket — real sockets between processes. The Client
//     hosts no StorageNodes; mendel-node daemons (tools/mendel_node) serve
//     them at the endpoints in RuntimeOptions::socket, and the Client
//     drives their lifecycle with the kNodeInit/kBarrier control messages.
//     Queries time out (RuntimeOptions::socket.query_timeout) instead of
//     using cluster-idle stall detection, and node liveness comes from
//     heartbeats mapped onto the same node_down/cancel/heal machinery the
//     in-process runtimes use for injected faults.
//
// Concurrent admission: submit() injects a query and returns a ticket;
// wait() blocks for that query's result. query() is submit+wait, and
// query_batch() admits a whole set before collecting any result — under
// the simulator that batches the virtual-time dataflow, under threads the
// queries genuinely overlap. Replies land in a per-query_id reply table,
// so any number of queries can be in flight simultaneously.
//
// The Client also exposes the paper's future-work features implemented
// here: index persistence (save_index/load_index) and fault injection with
// replication (fail_node).
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/topology.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/mendel/indexer.h"
#include "src/mendel/params.h"
#include "src/mendel/storage_node.h"
#include "src/net/transport_factory.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace mendel::core {

// The mode enum now lives with the factory in src/net (the net layer owns
// transport selection); the alias keeps every existing core::TransportMode
// spelling working.
using TransportMode = net::TransportMode;

// Runtime knobs, grouped apart from the index-shape options: everything
// here may differ between two deployments of the same index (transport,
// parallelism, caching, observability) without affecting results. Plain
// aggregate with member defaults, so `RuntimeOptions{}` and partial
// designated initialization both work.
struct RuntimeOptions {
  // Runtime selection (see the header comment).
  TransportMode transport_mode = TransportMode::kSim;
  // Worker threads shared by all storage nodes for intra-node subquery
  // fan-out (0 = serial searches). Only useful with real CPU parallelism;
  // results are identical either way.
  unsigned search_threads = 0;
  // Per-node subquery NN cache entries (0 disables the cache).
  std::size_t nn_cache_capacity = 4096;
  // Registers pipeline-stage latency histograms and client counters in the
  // metrics registry. Off, the hot paths skip even the clock reads.
  bool enable_metrics = true;
  // Stamps every submitted query's dataflow with an enabled TraceContext so
  // nodes record spans (collect with Client::collect_trace). Off, no spans
  // are recorded anywhere.
  bool enable_tracing = false;
  // Bound on each node's span buffer (see obs::SpanBuffer).
  std::size_t trace_buffer_capacity = 1 << 16;
  // Per-node resident-byte budget for the window arena (0 = keep every
  // block in memory). A positive budget backs each node's arena with the
  // mmap'd block store: rows past the budget spill to an unlinked temp
  // file and fault back in on access, LRU-evicted around pinned leaf
  // scans. Ranked results are byte-identical either way. The
  // MENDEL_ARENA_BUDGET environment variable (integer bytes, optional
  // k/m/g suffix) overrides this at Client construction — CI uses it to
  // force spilling without touching call sites.
  std::size_t arena_resident_budget = 0;
  // Store arena rows bit-packed (2-bit DNA, 4-bit small alphabets) with
  // the decode fused into the SIMD scan kernels — ~4x less window memory
  // for DNA, byte-identical results. Off stores one code per byte.
  bool arena_packing = true;
  // Spill-segment granularity for the arena block store (0 = the default
  // BlockStore::kDefaultSegmentBytes). Mostly for benches/tests that need
  // eviction pressure on small per-node arenas.
  std::size_t arena_segment_bytes = 0;
  // Score-bounded pruning of coordinator-side gapped extension (see
  // StorageNodeConfig::prune_extensions). Exact — ranked hits are
  // identical with it off; the switch exists for A/B benchmarking and for
  // tests that pin that equivalence.
  bool prune_extensions = true;
  // Schedule exploration (TransportMode::kSim only): nonzero seeds a
  // deterministic per-delivery jitter in the simulator so near-tied
  // message arrivals land in a seed-dependent order. Ranked results must
  // not depend on the seed — the parity suite sweeps seeds to prove it.
  // 0 (default) keeps the historical FIFO-tie-break schedule. See
  // net::SimTransport::set_schedule_seed.
  std::uint64_t schedule_seed = 0;
  // Socket deployment (TransportMode::kSocket only): the cluster endpoint
  // table and timeouts. The MENDEL_ENDPOINTS environment variable
  // (comma-separated endpoint list) overrides `socket.endpoints` at Client
  // construction, mirroring the daemon side.
  net::SocketOptions socket;
};

struct ClientOptions {
  cluster::TopologyConfig topology;
  IndexingOptions indexing;
  vpt::PrefixTreeOptions prefix_tree;
  net::CostModel cost;
  std::size_t bucket_capacity = 32;
  RuntimeOptions runtime;
};

struct QueryOutcome {
  std::vector<align::AlignmentHit> hits;
  // Turnaround from the query's injection to the client's receipt of the
  // ranked result: virtual time under TransportMode::kSim (what Figures
  // 6a–6c measure), wall time under kThreaded.
  double turnaround = 0.0;
  // Exactly this query's network traffic, even with other queries in
  // flight: the transport tags every message whose request_id equals the
  // query id into a per-query bucket between submit() and wait() (the
  // dataflow reuses the query id as request_id end to end).
  net::NetworkStats traffic;
  // False when the query's dataflow stalled (e.g. a node failed silently
  // mid-query and a fan-in never completed). The client then broadcasts
  // kCancelQuery so no pending state leaks, and returns empty hits.
  bool completed = true;
};

// Handle for an admitted (in-flight) query; redeem with Client::wait().
struct QueryTicket {
  std::uint64_t id = 0;
  double injected_at = 0.0;
  // Deprecated: cluster-wide totals at submit time. QueryOutcome.traffic is
  // now computed from the transport's per-query attribution, which is exact
  // under concurrency; the after-minus-before diff over this field was only
  // an upper bound. Kept (and still populated) so existing callers build.
  net::NetworkStats traffic_before;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Builds the prefix tree from `store`, binds the topology, spawns the
  // storage nodes, and streams the database in. Callable once per Client
  // (use a fresh Client per experiment configuration).
  IndexReport index(const seq::SequenceStore& store);

  // Incremental indexing: streams additional sequences into an
  // already-indexed cluster (the DHT's scale-with-the-data story). The new
  // sequences get fresh cluster-wide ids starting at the returned base id;
  // hits reference those ids. Tier-1 routing keeps using the original
  // LSH sample.
  seq::SequenceId add_sequences(const seq::SequenceStore& more);

  // Elastic scale-out (paper §I: "commodity hardware can be added
  // incrementally"): grows `group` by one storage node and runs the
  // rebalance protocol — consistent hashing moves ~1/n of the group's
  // blocks (and a slice of the sequence repository) onto the newcomer.
  // Returns the new node's id. Queries work unchanged afterwards.
  // Simulator mode only (the threaded runtime pins its worker set at
  // start()).
  net::NodeId add_node(std::uint32_t group);

  bool indexed() const { return indexed_; }

  // --- concurrent query admission ----------------------------------------
  // Injects a query into the cluster and returns immediately. Thread-safe
  // in TransportMode::kThreaded; in kSim the caller must stay on the one
  // driving thread (the simulator itself is single-threaded).
  QueryTicket submit(const seq::Sequence& query, QueryParams params = {});
  // Blocks until the ticket's query completed or provably stalled (the
  // transport went idle without its reply). On a stall, broadcasts
  // kCancelQuery to every alive node — nodes the transport knows are down
  // get their cancel deferred until heal_node() — and reports
  // completed = false.
  QueryOutcome wait(const QueryTicket& ticket);
  // submit() + wait().
  QueryOutcome query(const seq::Sequence& query, QueryParams params = {});
  // Admits every query before collecting any result, so the queries share
  // the cluster concurrently. Outcomes are in input order.
  std::vector<QueryOutcome> query_batch(
      const std::vector<seq::Sequence>& queries, QueryParams params = {});

  // --- observability -----------------------------------------------------
  // One coherent reading of every stat the cluster keeps: the registry's
  // own instruments (pipeline-stage latency histograms, client counters)
  // plus synthetic entries folding in the per-node NodeCounters totals
  // (node.*), transport traffic (net.*) and span-buffer health (trace.*).
  // Serialize with MetricsSnapshot::to_json()/to_prometheus().
  obs::MetricsSnapshot metrics() const;
  // The registry behind metrics(); for attaching extra instruments.
  obs::MetricsRegistry& metrics_registry() { return registry_; }
  // Collects a traced query's spans from every alive node (kCollectTrace
  // broadcast) plus the client's own submit/reply spans, and reassembles
  // the timeline. Call after wait(); requires runtime.enable_tracing.
  // Spans live in bounded per-node buffers until collected, so collect (or
  // ignore) traces promptly when tracing many queries.
  obs::QueryTrace collect_trace(std::uint64_t query_id);

  // --- telemetry ---------------------------------------------------------
  const cluster::Topology& topology() const;
  std::vector<std::uint64_t> block_counts() const;
  // Deprecated: summed NodeCounters across nodes. Prefer metrics(), which
  // includes these totals as node.* counters next to everything else. Kept
  // so existing callers build.
  NodeCounters total_counters() const;
  // Deprecated concrete-transport accessors, kept as shims over the
  // factory-owned transport (construction itself now goes through
  // net::make_transport). Prefer fault_injector() for the capability most
  // callers wanted these for.
  // The simulator instance (TransportMode::kSim only).
  net::SimTransport& transport();
  // The threaded instance (TransportMode::kThreaded only).
  net::ThreadTransport& thread_transport();
  // The socket instance (TransportMode::kSocket only).
  net::SocketTransport& socket_transport();
  // The transport's fault-injection capability (all modes).
  net::FaultInjector& fault_injector() const;
  StorageNode& node(net::NodeId id);
  const StorageNode& node(net::NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }
  // Routing prefix tree, valid once indexed (verify tooling re-hashes
  // stored blocks against it during placement audits).
  const vpt::VpPrefixTree& prefix_tree() const;

  // --- fault tolerance (paper §VII-B future work) -------------------------
  // Marks a node failed: the transport drops its traffic and every other
  // node excludes it from fan-outs and home-node lookups.
  void fail_node(net::NodeId id);
  // Re-admits the node and flushes any cancel broadcasts that were
  // deferred while it was down (so no cancelled query's pending state can
  // survive on a healed node).
  void heal_node(net::NodeId id);

  // --- persistence (paper §VII-B future work) ------------------------------
  // Snapshot the fully built index (routing state + every node's blocks
  // and sequence shard) so "pre-indexed data for popular large datasets"
  // can be reloaded without re-indexing.
  void save_index(const std::string& path) const;
  // Restores a snapshot into this (un-indexed) Client. The snapshot's
  // topology replaces whatever ClientOptions carried (an index is only
  // valid on the cluster shape it was built for).
  void load_index(const std::string& path);

 private:
  // Filled by the client actor when a kQueryResult lands.
  struct Reply {
    std::vector<align::AlignmentHit> hits;
    double arrival = 0.0;
  };

  void spawn_nodes(seq::Alphabet alphabet);
  // Runs the cluster to quiescence: run_until_idle (sim) / wait_idle
  // (threaded) / barrier broadcast with acks (socket). Returns the virtual
  // horizon (sim) or 0.
  double settle();
  // Socket-mode settle: kBarrier to every alive node, wait for the acks
  // up to socket.settle_timeout (a node dying mid-settle must not hang the
  // coordinator forever).
  void settle_socket() MENDEL_EXCLUDES(barrier_mu_);
  // The kNodeInit payload describing the current cluster (socket mode).
  NodeInitPayload make_node_init() const;
  // Pushes database_residues_ to every node: direct call in-process,
  // kSetResidues broadcast + settle over sockets.
  void propagate_residues();
  // Socket mode: kSetNodeDown{changed,down} to every alive node but
  // `changed` itself (the caller settles).
  void broadcast_membership(net::NodeId changed, bool down);
  // Injection/arrival clock: virtual external time (sim), wall time
  // (threaded).
  double now_seconds() const;
  bool transport_down(net::NodeId id) const;
  // kCancelQuery to every node, deferring nodes the transport knows are
  // down (flushed on heal_node).
  void broadcast_cancel(std::uint64_t query_id) MENDEL_EXCLUDES(cancel_mu_);
  std::optional<Reply> take_reply(std::uint64_t query_id)
      MENDEL_EXCLUDES(reply_mu_);
  QueryOutcome wait_sim(const QueryTicket& ticket);
  QueryOutcome wait_threaded(const QueryTicket& ticket);
  // Socket mode: no cluster-wide idle exists across processes, so a reply
  // missing past socket.query_timeout is declared a stall (then cancelled
  // like the other runtimes' stalls).
  QueryOutcome wait_socket(const QueryTicket& ticket);
  QueryOutcome finish_outcome(const QueryTicket& ticket,
                              std::optional<Reply> reply);
  // Records a client-side span (node = net::kClientNode) and returns its id
  // (0 when tracing is off).
  std::uint64_t record_client_span(const char* name, std::uint64_t query_id,
                                   std::uint64_t parent_span, double start,
                                   std::uint64_t value);
  // Refreshes the cluster.load_* gauges from the current block placement;
  // called whenever placement changes (index/add_sequences/add_node/load).
  void publish_load_gauges();

  ClientOptions options_;
  std::unique_ptr<cluster::Topology> topology_;
  std::unique_ptr<score::DistanceMatrix> distance_;
  std::unique_ptr<vpt::VpPrefixTree> prefix_tree_;
  // The factory-owned transport; exactly one of the typed observer
  // pointers below is non-null (they exist for the runtime-specific calls
  // — run_until_idle, wait_idle, start/stop — the Transport interface
  // deliberately doesn't carry).
  std::unique_ptr<net::Transport> transport_owner_;
  net::SimTransport* sim_ = nullptr;
  net::ThreadTransport* threaded_ = nullptr;
  net::SocketTransport* socket_ = nullptr;
  net::Transport* transport_ = nullptr;
  std::unique_ptr<ThreadPool> search_pool_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::unique_ptr<net::Actor> client_actor_;
  bool indexed_ = false;
  bool started_ = false;  // threaded workers running
  std::atomic<std::uint64_t> next_query_id_{1};
  seq::SequenceId next_sequence_id_ = 0;
  std::uint64_t database_residues_ = 0;
  seq::Alphabet alphabet_ = seq::Alphabet::kProtein;

  // Per-query_id reply table: the client actor files results here; wait()
  // redeems tickets against it. Guarded by reply_mu_ (the actor runs on a
  // transport thread in kThreaded mode).
  std::mutex reply_mu_;
  std::condition_variable reply_cv_;
  std::unordered_map<std::uint64_t, Reply> replies_
      MENDEL_GUARDED_BY(reply_mu_);

  // Cancels not deliverable because the target was down, keyed by node.
  std::mutex cancel_mu_;
  std::map<net::NodeId, std::vector<std::uint64_t>> deferred_cancels_
      MENDEL_GUARDED_BY(cancel_mu_);

  // Socket-mode settle barrier: the client actor decrements
  // barrier_outstanding_ as kBarrierAck frames land.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::uint64_t barrier_id_ MENDEL_GUARDED_BY(barrier_mu_) = 0;
  std::size_t barrier_outstanding_ MENDEL_GUARDED_BY(barrier_mu_) = 0;

  // --- observability state ------------------------------------------------
  obs::MetricsRegistry registry_;
  // Client counters / turnaround histogram; null when metrics are off.
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_stalled_ = nullptr;
  obs::LatencyHistogram* h_turnaround_ = nullptr;
  // The client's own spans (client.submit / client.reply) plus, keyed by
  // query id, the submit span each reply should parent to and the span
  // reports nodes send back for kCollectTrace.
  obs::SpanBuffer client_spans_;
  std::mutex trace_mu_;
  std::unordered_map<std::uint64_t, std::uint64_t> submit_spans_
      MENDEL_GUARDED_BY(trace_mu_);
  std::unordered_map<std::uint64_t, std::vector<obs::SpanRecord>>
      trace_reports_ MENDEL_GUARDED_BY(trace_mu_);
};

}  // namespace mendel::core
