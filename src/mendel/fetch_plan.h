// Fetch planning for the extension pipeline: coalesce the per-seed subject
// ranges a group entry wants into the minimal set of kFetchRange requests.
//
// Anchors of the same sequence cluster on nearby diagonals, so their margin-
// padded fetch windows overlap heavily; issuing one ranged fetch per merged
// seed re-ships the same subject bytes several times and pays a per-message
// round trip for each. The coalescer unions overlapping or touching windows
// per sequence, so one kFetchRange serves every member seed. Extension later
// clamps each member back to its own requested window (a subspan of the
// coalesced buffer), which keeps anchors byte-identical to the one-fetch-
// per-seed dataflow.
//
// Pure functions over value types — no node state — so tests can pin the
// coalescing rules directly (tests/fetch_plan_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace mendel::core {

// One requester-side range want: `length` codes of `sequence` from `start`
// (already margin-padded and clamped at zero by the caller).
struct RangeRequest {
  std::uint32_t sequence = 0;
  std::uint32_t start = 0;
  std::uint32_t length = 0;
};

// A coalesced fetch covering one or more requests of the same sequence.
// `members` are indices into the request vector handed to coalesce_ranges,
// ascending; each member's window is fully contained in [start, start+length).
struct CoalescedRange {
  std::uint32_t sequence = 0;
  std::uint32_t start = 0;
  std::uint32_t length = 0;
  std::vector<std::uint32_t> members;
};

// Unions requests of the same sequence whose windows overlap or touch
// (duplicate and adjacent windows coalesce too). Deterministic: output is
// sorted by (sequence, start) and member lists ascend, independent of the
// input order. Zero-length requests join a covering range if one exists at
// their start; otherwise they form their own empty-window fetch.
std::vector<CoalescedRange> coalesce_ranges(
    const std::vector<RangeRequest>& requests);

}  // namespace mendel::core
