#include "src/mendel/node_host.h"

#include <utility>

#include "src/common/error.h"
#include "src/scoring/distance.h"

namespace mendel::core {

class NodeHost::HostActor final : public net::Actor {
 public:
  HostActor(NodeHost* host, net::NodeId id) : host_(host), id_(id) {}
  void handle(const net::Message& message, net::Context& ctx) override {
    host_->handle(id_, message, ctx);
  }

 private:
  NodeHost* host_;
  net::NodeId id_;
};

NodeHost::NodeHost(net::Transport* transport, NodeHostOptions options)
    : options_(std::move(options)) {
  require(transport != nullptr, "NodeHost: null transport");
  require(!options_.node_ids.empty(), "NodeHost: no node ids to host");
  if (options_.search_threads > 0) {
    search_pool_ = std::make_unique<ThreadPool>(options_.search_threads);
  }
  for (net::NodeId id : options_.node_ids) {
    actors_.push_back(std::make_unique<HostActor>(this, id));
    transport->register_actor(id, actors_.back().get());
  }
}

NodeHost::~NodeHost() = default;

std::uint64_t NodeHost::generation() const {
  std::shared_lock lock(mu_);
  return generation_;
}

StorageNode* NodeHost::node(net::NodeId id) {
  std::shared_lock lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void NodeHost::handle(net::NodeId id, const net::Message& message,
                      net::Context& ctx) {
  if (message.type == kNodeInit) {
    apply_init(decode_payload<NodeInitPayload>(message.payload));
    return;
  }
  std::shared_lock lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    // Not initialized yet. Ack barriers so a coordinator settling against
    // a half-initialized cluster cannot deadlock; drop everything else
    // (the init broadcast precedes all data over the coordinator's FIFO
    // connection, so this only catches cross-connection races).
    if (message.type == kBarrier) {
      ctx.send(message.from, kBarrierAck, message.request_id, {});
    }
    return;
  }
  it->second->handle(message, ctx);
}

void NodeHost::apply_init(const NodeInitPayload& payload) {
  std::unique_lock lock(mu_);
  if (payload.generation == generation_) return;  // already at this epoch

  // Untrusted-boundary validation: everything below feeds constructors
  // that treat bad values as caller bugs, so reject them as bad frames.
  if (payload.alphabet > static_cast<std::uint8_t>(seq::Alphabet::kProtein)) {
    throw DecodeError("node_init: unknown alphabet " +
                      std::to_string(payload.alphabet));
  }
  if (payload.num_groups == 0 || payload.nodes_per_group == 0) {
    throw DecodeError("node_init: empty topology");
  }
  const auto alphabet = static_cast<seq::Alphabet>(payload.alphabet);

  cluster::TopologyConfig config;
  config.num_groups = payload.num_groups;
  config.nodes_per_group = payload.nodes_per_group;
  config.ring_virtual_nodes =
      static_cast<std::size_t>(payload.ring_virtual_nodes);
  config.replication = payload.replication;
  config.sequence_replication = payload.sequence_replication;
  auto topology = std::make_unique<cluster::Topology>(config);
  for (std::uint32_t group : payload.extra_node_groups) {
    if (group >= config.num_groups) {
      throw DecodeError("node_init: extra node in unknown group " +
                        std::to_string(group));
    }
    topology->add_node(group);
  }
  for (net::NodeId id : options_.node_ids) {
    if (id >= topology->total_nodes()) {
      throw DecodeError("node_init: hosted node " + std::to_string(id) +
                        " outside the " +
                        std::to_string(topology->total_nodes()) +
                        "-node topology");
    }
  }

  auto distance = std::make_unique<score::DistanceMatrix>(
      score::default_distance(alphabet));
  CodecReader tree_reader(payload.prefix_tree);
  auto prefix_tree = std::make_unique<vpt::VpPrefixTree>(
      vpt::VpPrefixTree::decode(tree_reader, distance.get()));
  if (!tree_reader.done()) {
    throw DecodeError("node_init: trailing bytes after prefix tree");
  }
  topology->bind_prefixes(prefix_tree->leaf_prefixes());

  // A re-init at a new generation replaces the node set wholesale — this
  // is the restart path, where the previous state died with the process.
  nodes_.clear();
  topology_ = std::move(topology);
  distance_ = std::move(distance);
  prefix_tree_ = std::move(prefix_tree);

  StorageNodeConfig node_config;
  node_config.topology = topology_.get();
  node_config.prefix_tree = prefix_tree_.get();
  node_config.distance = distance_.get();
  node_config.alphabet = alphabet;
  node_config.bucket_capacity =
      static_cast<std::size_t>(payload.bucket_capacity);
  node_config.database_residues = payload.database_residues;
  node_config.search_pool = search_pool_.get();
  node_config.nn_cache_capacity = options_.nn_cache_capacity;
  node_config.metrics = options_.metrics;
  node_config.trace_buffer_capacity = options_.trace_buffer_capacity;
  node_config.arena_resident_budget = options_.arena_resident_budget;
  node_config.arena_packing = options_.arena_packing;
  node_config.arena_segment_bytes = options_.arena_segment_bytes;
  node_config.prune_extensions = options_.prune_extensions;

  for (net::NodeId id : options_.node_ids) {
    auto node = std::make_unique<StorageNode>(id, node_config);
    for (std::uint32_t down : payload.down_nodes) node->set_down(down, true);
    nodes_[id] = std::move(node);
  }
  generation_ = payload.generation;
}

}  // namespace mendel::core
