// NodeHost: hosts StorageNodes behind a message-driven init protocol.
//
// In TransportMode::kSocket the coordinator process cannot construct the
// cluster's StorageNodes directly — they live in mendel-node daemon
// processes. A NodeHost owns the server side of that split: it registers
// one actor per hosted node id on a transport and materializes the actual
// StorageNodes when a kNodeInit message arrives, rebuilding the shared
// state (topology, distance matrix, vp-prefix routing tree) that
// Client::spawn_nodes would otherwise wire in by pointer.
//
// Init is generation-checked: the coordinator broadcasts kNodeInit to every
// node id with a fixed generation per index epoch, so a host that already
// built that generation ignores the re-send (heal_node re-inits a possibly
// restarted daemon; one that never died must keep its data), while a fresh
// process — first start or post-SIGKILL restart — builds from the payload.
// Pre-init, every message except kNodeInit and kBarrier is dropped;
// kBarrier is acked even then so a coordinator settling against a
// half-initialized cluster cannot deadlock.
//
// The same class backs the in-process socket parity tests (several
// NodeHosts on loopback transports in one test binary) and the mendel-node
// daemon (tools/mendel_node_main.cpp).
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/mendel/protocol.h"
#include "src/mendel/storage_node.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"

namespace mendel::core {

struct NodeHostOptions {
  // Node ids this process hosts.
  std::vector<net::NodeId> node_ids;
  // Worker threads shared by the hosted nodes' intra-node subquery fan-out
  // (0 = serial searches).
  unsigned search_threads = 0;
  // StorageNodeConfig knobs not carried by kNodeInit (deployment-local,
  // like the arena budget; the index-shape knobs all travel in-band).
  std::size_t nn_cache_capacity = 4096;
  std::size_t trace_buffer_capacity = 1 << 16;
  std::size_t arena_resident_budget = 0;
  bool arena_packing = true;
  std::size_t arena_segment_bytes = 0;
  bool prune_extensions = true;
  // Shared metrics registry for the hosted nodes' histograms and counters;
  // nullptr disables instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

class NodeHost {
 public:
  // Registers one actor per hosted id on `transport` (which must not have
  // started yet). The host must outlive the transport's dispatch threads —
  // destroy the transport (or stop it) first.
  NodeHost(net::Transport* transport, NodeHostOptions options);
  ~NodeHost();

  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;

  // Nonzero once a kNodeInit was applied.
  std::uint64_t generation() const MENDEL_EXCLUDES(mu_);
  // The hosted StorageNode, or nullptr before init (test introspection;
  // the dispatch threads may be mutating it concurrently).
  StorageNode* node(net::NodeId id) MENDEL_EXCLUDES(mu_);

 private:
  class HostActor;

  void handle(net::NodeId id, const net::Message& message, net::Context& ctx)
      MENDEL_EXCLUDES(mu_);
  void apply_init(const NodeInitPayload& payload) MENDEL_EXCLUDES(mu_);

  NodeHostOptions options_;

  // mu_ orders (re)initialization against dispatch: apply_init rebuilds
  // the node set under the exclusive lock; per-node dispatch holds the
  // shared lock (node handlers themselves stay single-threaded per node —
  // each id has its own dispatch thread).
  mutable std::shared_mutex mu_;
  std::uint64_t generation_ MENDEL_GUARDED_BY(mu_) = 0;
  std::unique_ptr<cluster::Topology> topology_ MENDEL_GUARDED_BY(mu_);
  std::unique_ptr<score::DistanceMatrix> distance_ MENDEL_GUARDED_BY(mu_);
  std::unique_ptr<vpt::VpPrefixTree> prefix_tree_ MENDEL_GUARDED_BY(mu_);
  std::unique_ptr<ThreadPool> search_pool_;
  std::map<net::NodeId, std::unique_ptr<StorageNode>> nodes_
      MENDEL_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<HostActor>> actors_;
};

}  // namespace mendel::core
