#include "src/mendel/anchors.h"

#include <algorithm>
#include <cmath>

namespace mendel::core {

std::vector<Anchor> merge_anchors(std::vector<Anchor> anchors) {
  if (anchors.size() <= 1) return anchors;
  // The comparator must be a *total* order over every field the merge loop
  // reads. Anchors can tie on (sequence, diagonal, q_begin) while differing
  // in q_end/score — X-drop extension trims different seeds to the same
  // start — and the union-score formula is order-dependent, so an unstable
  // sort over a partial order would make the result depend on message
  // arrival order (the DNA sim/threaded divergence of ROADMAP item 7).
  std::sort(anchors.begin(), anchors.end(),
            [](const Anchor& a, const Anchor& b) {
              if (a.sequence != b.sequence) return a.sequence < b.sequence;
              if (a.diagonal() != b.diagonal())
                return a.diagonal() < b.diagonal();
              if (a.q_begin != b.q_begin) return a.q_begin < b.q_begin;
              if (a.q_end != b.q_end) return a.q_end < b.q_end;
              return a.score < b.score;
            });
  std::vector<Anchor> merged;
  merged.reserve(anchors.size());
  for (const Anchor& anchor : anchors) {
    const bool mergeable =
        !merged.empty() && merged.back().sequence == anchor.sequence &&
        merged.back().diagonal() == anchor.diagonal() &&
        anchor.q_begin <= merged.back().q_end;
    if (mergeable) {
      Anchor& target = merged.back();
      const std::uint32_t overlap =
          std::min(target.q_end, anchor.q_end) -
          std::min(std::max(target.q_begin, anchor.q_begin),
                   std::min(target.q_end, anchor.q_end));
      const double rate =
          std::max(target.normalized_score(), anchor.normalized_score());
      const double union_score =
          static_cast<double>(target.score) +
          static_cast<double>(anchor.score) -
          static_cast<double>(overlap) * rate;
      target.q_end = std::max(target.q_end, anchor.q_end);
      target.s_end = std::max(target.s_end, anchor.s_end);
      target.score = std::max(
          {target.score, anchor.score,
           static_cast<std::int32_t>(std::floor(union_score))});
      // The union score is an estimate; the certified score only ever
      // takes the max of constituents, so it stays achievable.
      target.cert = std::max(target.cert, anchor.cert);
      // Constituents that learned the subject length agree on it; max
      // just prefers known (non-zero) over unknown.
      target.subject_len = std::max(target.subject_len, anchor.subject_len);
    } else {
      merged.push_back(anchor);
    }
  }
  return merged;
}

}  // namespace mendel::core
