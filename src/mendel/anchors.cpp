#include "src/mendel/anchors.h"

#include <algorithm>
#include <cmath>

namespace mendel::core {

std::vector<Anchor> merge_anchors(std::vector<Anchor> anchors) {
  if (anchors.size() <= 1) return anchors;
  std::sort(anchors.begin(), anchors.end(),
            [](const Anchor& a, const Anchor& b) {
              if (a.sequence != b.sequence) return a.sequence < b.sequence;
              if (a.diagonal() != b.diagonal())
                return a.diagonal() < b.diagonal();
              return a.q_begin < b.q_begin;
            });
  std::vector<Anchor> merged;
  merged.reserve(anchors.size());
  for (const Anchor& anchor : anchors) {
    const bool mergeable =
        !merged.empty() && merged.back().sequence == anchor.sequence &&
        merged.back().diagonal() == anchor.diagonal() &&
        anchor.q_begin <= merged.back().q_end;
    if (mergeable) {
      Anchor& target = merged.back();
      const std::uint32_t overlap =
          std::min(target.q_end, anchor.q_end) -
          std::min(std::max(target.q_begin, anchor.q_begin),
                   std::min(target.q_end, anchor.q_end));
      const double rate =
          std::max(target.normalized_score(), anchor.normalized_score());
      const double union_score =
          static_cast<double>(target.score) +
          static_cast<double>(anchor.score) -
          static_cast<double>(overlap) * rate;
      target.q_end = std::max(target.q_end, anchor.q_end);
      target.s_end = std::max(target.s_end, anchor.s_end);
      target.score = std::max(
          {target.score, anchor.score,
           static_cast<std::int32_t>(std::floor(union_score))});
    } else {
      merged.push_back(anchor);
    }
  }
  return merged;
}

}  // namespace mendel::core
