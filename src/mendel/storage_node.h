// Mendel storage node: one actor playing every server-side role of the
// symmetric architecture (paper §V-B: "any node in the cluster can perform
// as a query's entry point and generates identical results").
//
// Roles, all hosted in this class:
//   * block store     — a dynamically balanced local vp-tree over the
//                       inverted-index blocks this node owns (§V-A3);
//   * sequence shard  — home-node storage of full reference sequences,
//                       serving FetchRange requests during anchor and
//                       gapped extension;
//   * searcher        — per-subquery n-NN lookups with identity and
//                       c-score filtering (§V-B);
//   * group entry     — fan-out/fan-in within its group, seed merging on
//                       (sequence, diagonal), batched range fetches, and
//                       ungapped anchor extension;
//   * coordinator     — system entry point: subquery construction, group
//                       routing via the vp-prefix tree, cross-group anchor
//                       aggregation, gapped extension, E-value ranking.
//
// The class is transport-agnostic: the same code runs under the
// deterministic SimTransport and the thread-per-node ThreadTransport. All
// mutable state is only touched from handle(), which both transports call
// from a single thread per node. The one intra-handler concurrency is the
// subquery fan-out in on_node_search: pool tasks only *read* the vp-tree
// and arena (each with a private probe metric) and write disjoint slots of
// a local result vector; counters and the NN cache stay handler-thread-only.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <mutex>

#include "src/cluster/topology.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/mendel/fetch_plan.h"
#include "src/mendel/protocol.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scoring/distance.h"
#include "src/scoring/karlin.h"
#include "src/vptree/dynamic_vptree.h"
#include "src/vptree/prefix_tree.h"
#include "src/vptree/window_arena.h"

namespace mendel::core {

struct StorageNodeConfig {
  const cluster::Topology* topology = nullptr;
  const vpt::VpPrefixTree* prefix_tree = nullptr;
  const score::DistanceMatrix* distance = nullptr;
  seq::Alphabet alphabet = seq::Alphabet::kProtein;
  std::size_t bucket_capacity = 32;
  // Total residues across the indexed database; set by the client after
  // indexing (used for Karlin–Altschul E-values at the coordinator).
  std::uint64_t database_residues = 0;
  // Shared worker pool for intra-node subquery fan-out in on_node_search.
  // nullptr keeps the serial path. Either way the seed lists are merged in
  // subquery order, so replies are byte-identical for every pool size.
  ThreadPool* search_pool = nullptr;
  // Entries held by the node-local subquery NN cache (0 disables caching).
  // Query windows are stride-k k-mers, so concurrent and repeated queries
  // share windows; a hit skips the vp-tree search entirely.
  std::size_t nn_cache_capacity = 4096;
  // MENDEL_CHECKED builds audit the two-tier DHT placement of freshly
  // admitted blocks after every insert batch (senders route with the
  // shared topology, so misplacement means corrupted routing state).
  // Unit tests that address a node directly with unrouted blocks can opt
  // out; the vp-tree structural audit still runs. No effect outside
  // MENDEL_CHECKED builds.
  bool checked_placement_audit = true;
  // Shared metrics registry for pipeline-stage latency histograms. nullptr
  // (the default) disables histogram instrumentation entirely — the hot
  // paths then skip even the clock reads.
  obs::MetricsRegistry* metrics = nullptr;
  // Bound on this node's trace span buffer; spans past it are counted as
  // dropped rather than growing node memory while no collector runs.
  std::size_t trace_buffer_capacity = 1 << 16;
  // Resident-byte budget for the window arena. 0 (the default) keeps the
  // original all-resident heap arena; > 0 spills rows to a memory-mapped
  // BlockStore whose LRU-pinned hot set is bounded by this many bytes
  // (src/vptree/block_store.h). Search results are byte-identical either
  // way — only residency changes.
  std::size_t arena_resident_budget = 0;
  // Bit-pack arena rows when the alphabet fits: 2 bits for the DNA core
  // (auto-widening to 4 when an ambiguity base appears), 4 bits for any
  // alphabet with at most 16 codes. Lossless — the packed kernels decode
  // the very same codes — so this only shrinks memory, never results.
  bool arena_packing = true;
  // Spill-segment granularity for the block store; 0 keeps the default
  // (BlockStore::kDefaultSegmentBytes). Smaller segments make the LRU
  // budget meaningful for small per-node arenas (benches, tests).
  std::size_t arena_segment_bytes = 0;
  // Score-bounded pruning of coordinator-side gapped extension: bins whose
  // best possible banded score provably cannot place a hit in the final
  // top max_hits (or under the E-value cutoff) skip their fetch and DP
  // entirely. The bound is exact — ranked results are identical with the
  // switch off — which MENDEL_CHECKED builds verify by extending every bin
  // and comparing rankings. Off restores the extend-everything dataflow.
  bool prune_extensions = true;
};

// Per-node work counters (telemetry for benches and tests).
struct NodeCounters {
  std::uint64_t blocks_inserted = 0;
  std::uint64_t sequences_stored = 0;
  // Items restored from a snapshot via load(), counted separately so the
  // inserted/stored counters keep reporting only this session's work.
  std::uint64_t blocks_restored = 0;
  std::uint64_t sequences_restored = 0;
  std::uint64_t nn_searches = 0;
  // Subquery searches answered from the node-local NN cache (subset of
  // nn_searches) and the complement that ran a fresh vp-tree search.
  std::uint64_t nn_cache_hits = 0;
  std::uint64_t nn_cache_misses = 0;
  std::uint64_t seeds_emitted = 0;
  std::uint64_t fetches_served = 0;
  std::uint64_t group_queries = 0;
  std::uint64_t queries_coordinated = 0;
  std::uint64_t anchors_extended = 0;
  std::uint64_t gapped_extensions = 0;
  // Extension-pipeline work avoided: kFetchRange requests saved by
  // coalescing overlapping per-seed ranges, and anchors whose bins were
  // score-bound pruned out of gapped extension.
  std::uint64_t fetch_ranges_coalesced = 0;
  std::uint64_t anchors_pruned = 0;
  // Frames rejected at the trust boundary: framing failures (truncated /
  // trailing bytes), unknown message types, and semantically poisonous
  // values (out-of-alphabet codes, inverted intervals). The node drops the
  // frame and keeps serving.
  std::uint64_t decode_errors = 0;
};

class StorageNode final : public net::Actor {
 public:
  StorageNode(net::NodeId id, StorageNodeConfig config);

  // Decodes and dispatches one frame. Malformed frames (DecodeError — bad
  // framing, unknown type, or semantic validation failure) are counted in
  // counters().decode_errors / `net.decode_errors` and dropped; any other
  // exception (CheckError, ProtocolError) still propagates because it
  // indicates an internal bug, not hostile input.
  void handle(const net::Message& message, net::Context& ctx) override;

  net::NodeId id() const { return id_; }
  std::size_t block_count() const { return tree_.size(); }
  std::size_t sequence_count() const { return sequences_.size(); }
  // Highest stored sequence id + 1 (0 when the shard is empty); the client
  // uses the cluster-wide max as its id watermark after load_index().
  seq::SequenceId max_sequence_id_plus_one() const;
  const NodeCounters& counters() const { return counters_; }
  // Diagnostic text of the most recently rejected frame ("" when none).
  const std::string& last_decode_error() const { return last_decode_error_; }

  // Outstanding query state machines (leak detection in tests: after every
  // query completed or was cancelled, both must be zero on every node).
  std::size_t pending_group_queries() const { return group_pending_.size(); }
  std::size_t pending_coordinator_queries() const {
    return coord_pending_.size();
  }
  std::size_t nn_cache_entries() const MENDEL_EXCLUDES(nn_cache_mu_) {
    std::lock_guard lock(nn_cache_mu_);
    return nn_cache_.size();
  }

  // Spans recorded for traced queries, awaiting a kCollectTrace broadcast.
  const obs::SpanBuffer& span_buffer() const { return span_buffer_; }

  // Arena storage telemetry: resident/packed bytes plus the block-store
  // hit/miss/eviction/fault counters (zeros for all-resident arenas).
  vpt::WindowArena::Stats arena_stats() const { return arena_.stats(); }

  // Membership view for fault tolerance: nodes marked down are excluded
  // from fan-outs and home-node selection. (The paper leaves fault
  // tolerance as future work; Mendel ships a static-membership version.)
  void set_down(net::NodeId node, bool down);

  // Updated by the client after (incremental) indexing.
  void set_database_residues(std::uint64_t residues) {
    config_.database_residues = residues;
  }

  // --- persistence (paper §VII-B future work: save pre-indexed data) ----
  void save(CodecWriter& writer) const;
  void load(CodecReader& reader);

  // --- invariant verification (src/verify, tools/mendel_verify) ---------
  // Materialized copies of every stored block, tree iteration order.
  std::vector<Block> blocks() const;
  // Ascending ids of the sequences this shard stores.
  std::vector<seq::SequenceId> stored_sequence_ids() const;
  // Deep node-local audit: local vp-tree structure (balance, occupancy,
  // mu admissibility), block/arena/dedup-key bookkeeping, two-tier DHT
  // placement of every stored block (tier 1: the window re-hashes to this
  // node's group; tier 2: the intra-group ring owners include this node)
  // and the repository ring homes of every stored sequence. Returns
  // human-readable violations, at most `max_violations`; empty = sound.
  // Under MENDEL_CHECKED this runs automatically after rebalance and
  // load (and a fresh-blocks-only variant after every insert batch).
  std::vector<std::string> audit(std::size_t max_violations = 32) const;

 private:
  // Stored sequence shard entry.
  struct StoredSequence {
    std::string name;
    std::vector<seq::Code> codes;
  };

  // What the local vp-tree stores: block identity plus the slot of its
  // window payload in the node's SoA arena. 12 bytes instead of a Block
  // with a heap-allocated window, so tree rebuilds shuffle indices and
  // bucket scans read one contiguous code buffer.
  struct BlockRef {
    // Sentinel slot marking a search probe; its codes live in the node's
    // `probe_` span rather than the arena.
    static constexpr std::uint32_t kProbeSlot = 0xffffffffu;

    seq::SequenceId sequence = seq::kInvalidSequenceId;
    std::uint32_t start = 0;
    std::uint32_t slot = 0;
  };

  // Metric adapter: L1 window distance between arena-resident windows,
  // with the early-abandoning variant the vp-tree uses for bucket scans
  // and vantage pruning, plus the batched leaf-scan entry point that runs
  // the SIMD kernels over whole bucket chunks. Lengths are validated once
  // at admission (arena append) and search entry, so the kernels skip the
  // per-call check.
  struct BlockRefMetric {
    // Bucket chunk handed to one distance_batch kernel call.
    static constexpr std::size_t kBatchChunk = 64;

    const score::DistanceMatrix* distance;
    const vpt::WindowArena* arena;
    const seq::CodeSpan* probe;
    // Kernel observability (kernel.batched_scans / kernel.scalar_fallbacks);
    // null on metrics-less nodes and on the tree's internal rebuild metric.
    obs::Counter* batched_scans = nullptr;
    obs::Counter* scalar_fallbacks = nullptr;

    // Item-wise code access. The all-resident unpacked arena hands out
    // direct row pointers (the original zero-copy path); packed or spilled
    // arenas decode into per-thread scratch — `side` keeps the two
    // operands of a distance call in separate buffers. Copying (rather
    // than pointing) is what makes item-wise access safe against
    // concurrent LRU eviction: the bytes are captured under the store
    // lock.
    const seq::Code* codes(const BlockRef& ref, int side) const {
      if (ref.slot == BlockRef::kProbeSlot) return probe->data();
      if (!arena->packed() && !arena->spilled()) return arena->at(ref.slot);
      thread_local std::vector<seq::Code> scratch[2];
      auto& buf = scratch[side];
      buf.resize(arena->window_length());
      arena->copy_row(ref.slot, buf.data());
      return buf.data();
    }
    double operator()(const BlockRef& a, const BlockRef& b) const {
      return score::window_distance_unchecked(*distance, codes(a, 0),
                                              codes(b, 1),
                                              arena->window_length());
    }
    // Total order over stored blocks for n-NN distance ties. Block identity
    // (sequence, start) is unique per node (dedup keys), so the tie class at
    // the n-th-neighbor boundary resolves identically on every tree shape —
    // required for sim/threaded transport parity on DNA, whose 4-letter
    // alphabet makes exact window-distance ties pervasive.
    bool tie_before(const BlockRef& a, const BlockRef& b) const {
      if (a.sequence != b.sequence) return a.sequence < b.sequence;
      return a.start < b.start;
    }
    double bounded(const BlockRef& a, const BlockRef& b,
                   double bound) const {
      return score::window_distance_bounded_unchecked(
          *distance, codes(a, 0), codes(b, 1), arena->window_length(), bound);
    }
    // Batched bucket scan: same item-wise contract as bounded(). Falls back
    // to the item-at-a-time path when the matrix has no quantized twin or
    // the arena is too large for 32-bit gather offsets.
    void bounded_batch(const BlockRef& a, const BlockRef* items,
                       std::size_t count, double bound, double* out) const {
      const score::QuantizedDistance* q = distance->quantized();
      const std::size_t len = arena->window_length();
      const bool gatherable =
          arena->size() * arena->stride() <
          static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()) -
              vpt::WindowArena::kGuardTail;
      if (q == nullptr || !gatherable) {
        if (q == nullptr && scalar_fallbacks != nullptr) {
          scalar_fallbacks->add();
        }
        for (std::size_t j = 0; j < count; ++j) {
          out[j] = bounded(a, items[j], bound);
        }
        return;
      }
      const seq::Code* probe_codes = codes(a, 0);
      const std::int64_t qthresh = q->threshold(bound);
      const auto& kernels = score::qkernels();
      std::array<std::uint32_t, kBatchChunk> slots;
      std::array<std::int64_t, kBatchChunk> qdists;
      for (std::size_t offset = 0; offset < count;) {
        const std::size_t run = std::min(count - offset, kBatchChunk);
        bool arena_only = true;
        for (std::size_t j = 0; j < run && arena_only; ++j) {
          arena_only = items[offset + j].slot != BlockRef::kProbeSlot;
        }
        if (!arena_only) {
          // A probe sentinel never lives in tree buckets, but the metric
          // contract doesn't depend on that: route odd chunks item-wise.
          for (std::size_t j = 0; j < run; ++j) {
            out[offset + j] = bounded(a, items[offset + j], bound);
          }
          offset += run;
          continue;
        }
        for (std::size_t j = 0; j < run; ++j) {
          slots[j] = items[offset + j].slot;
        }
        // Spilled arenas: pin the chunk's rows so the gather kernels can
        // never touch an evicted (PROT_NONE) segment mid-scan; no-op for
        // heap arenas. Packed arenas route to the fused-decode kernel.
        const auto pin = arena->pin_scan(slots.data(), run);
        if (arena->packed()) {
          kernels.distance_batch_packed(*q, probe_codes, arena->base(),
                                        arena->stride(), arena->packed_bits(),
                                        slots.data(), run, len, qthresh,
                                        qdists.data());
        } else {
          kernels.distance_batch(*q, probe_codes, arena->base(),
                                 arena->stride(), slots.data(), run, len,
                                 qthresh, qdists.data());
        }
        for (std::size_t j = 0; j < run; ++j) {
          out[offset + j] = q->to_double(qdists[j]);
        }
        if (batched_scans != nullptr) batched_scans->add();
        offset += run;
      }
    }
  };

  // A fetched subject range held while a pending state machine completes.
  struct FetchedRange {
    std::uint32_t sequence = 0;
    std::uint32_t start = 0;
    std::uint32_t sequence_length = 0;
    std::string name;
    std::vector<seq::Code> codes;
  };

  // Seeds merged on one (sequence, diagonal) run, pre-extension.
  struct MergedSeed {
    std::uint32_t sequence = 0;
    std::uint32_t q_begin = 0;
    std::uint32_t q_end = 0;
    std::uint32_t s_begin = 0;
  };

  // ---- group entry pending state ----
  struct PendingGroupQuery {
    net::NodeId coordinator = 0;
    QueryParams params;
    std::vector<seq::Code> query;
    std::size_t awaiting_nodes = 0;
    std::vector<Seed> seeds;
    // fetch stage: one coalesced fetch per plan entry (token = plan index),
    // each serving every member seed whose margin-padded window it covers.
    std::vector<MergedSeed> merged;
    std::vector<CoalescedRange> fetch_plan;
    std::vector<std::optional<FetchedRange>> fetched;
    std::size_t awaiting_fetches = 0;
    // Streaming extension: ungapped X-drop runs as each fetch result
    // arrives (pool task under the threaded transport, inline under the
    // simulator), writing disjoint per-seed slots; the reply assembles
    // them in merged-seed order so results are arrival-order independent.
    std::vector<std::optional<Anchor>> anchor_slots;
    std::vector<std::future<void>> extend_tasks;
    // observability: trace context for downstream spans (parent = this
    // entry's group.broadcast span) and the fan-in wait origin.
    obs::TraceContext trace;
    double created = 0.0;
  };

  // ---- coordinator pending state ----
  struct SequenceBin {
    std::uint32_t sequence = 0;
    std::vector<Anchor> anchors;
    // Score-bounded pruning decision (made pre-fetch, deterministic): a
    // pruned bin provably cannot place a hit in the final ranking, so its
    // fetch and banded DP are skipped. MENDEL_CHECKED builds still extend
    // pruned bins and assert the two rankings match.
    bool pruned = false;
    // Streaming per-bin extension outcome, written by at most one task.
    std::vector<align::AlignmentHit> hits;
    std::uint32_t dp_runs = 0;
  };
  struct PendingQuery {
    net::NodeId client = 0;
    QueryParams params;
    std::vector<seq::Code> query;
    std::size_t awaiting_groups = 0;
    // Streaming fan-in: group results bin by sequence as they arrive
    // instead of accumulating one flat anchor list for an end-of-fan-in
    // pass. Per-sequence diagonal merging at the last arrival is
    // byte-identical to the old global merge (merging never crosses
    // sequences).
    std::map<std::uint32_t, std::vector<Anchor>> binned;
    std::size_t raw_anchors = 0;  // pre-merge arrivals (telemetry)
    // gapped stage
    std::vector<SequenceBin> bins;
    std::vector<std::optional<FetchedRange>> fetched;
    std::size_t awaiting_fetches = 0;
    std::vector<std::future<void>> extend_tasks;
    // observability: trace context for downstream spans (parent = this
    // coordinator's coord.route span) and the fan-in wait origin.
    obs::TraceContext trace;
    double created = 0.0;
  };

  // Handlers, one per message type.
  // handle() minus the bad-frame guard: decodes, validates, and routes.
  void dispatch(const net::Message& message, net::Context& ctx);
  void on_store_sequence(const net::Message& message);
  void on_insert_blocks(const net::Message& message);
  void on_fetch_range(const net::Message& message, net::Context& ctx);
  void on_query_request(const net::Message& message, net::Context& ctx);
  void on_group_query(const net::Message& message, net::Context& ctx);
  void on_node_search(const net::Message& message, net::Context& ctx);
  void on_node_search_result(const net::Message& message, net::Context& ctx);
  void on_fetch_range_result(const net::Message& message, net::Context& ctx);
  void on_group_result(const net::Message& message, net::Context& ctx);
  void on_rebalance(net::Context& ctx);
  void on_collect_trace(const net::Message& message, net::Context& ctx);

  // Records one span for a traced query and returns its id so callers can
  // parent downstream work on it; no-op (returns 0) when `trace` is off.
  std::uint64_t record_span(const char* name, std::uint64_t query_id,
                            const obs::TraceContext& trace, double start,
                            std::uint64_t duration_ns, std::uint64_t value);

  // Stage transitions.
  void group_entry_merge_and_fetch(std::uint64_t query_id,
                                   PendingGroupQuery& pending,
                                   net::Context& ctx);
  void group_entry_finish(std::uint64_t query_id, PendingGroupQuery& pending,
                          net::Context& ctx);
  void coordinator_bin_and_fetch(std::uint64_t query_id,
                                 PendingQuery& pending, net::Context& ctx);
  void coordinator_finish(std::uint64_t query_id, PendingQuery& pending,
                          net::Context& ctx);

  // Streaming extension bodies, scheduled per fetch arrival. Pure compute:
  // they read the pending entry's immutable stage inputs and write only
  // their own disjoint slots (anchor_slots members / one SequenceBin), so
  // they are safe on pool threads while the handler thread keeps
  // dispatching; `wall_timing` routes the phase histogram (off under the
  // simulator, where wall time is meaningless and nondeterministic).
  void group_entry_extend_range(PendingGroupQuery& pending,
                                std::size_t range_idx, bool wall_timing);
  void coordinator_extend_bin(PendingQuery& pending, std::size_t bin_idx,
                              bool wall_timing);
  // Runs `body` inline when `ctx` is virtual-time or no pool is configured;
  // otherwise submits it to the pool and parks the future in `tasks`.
  void schedule_extension(std::vector<std::future<void>>& tasks,
                          net::Context& ctx, std::function<void()> body);
  // Joins outstanding streaming-extension tasks (reply assembly and
  // kCancelQuery teardown: a pending entry must never be erased while a
  // pool task can still touch it).
  static void drain_tasks(std::vector<std::future<void>>& tasks);

  // First alive home node of a sequence key.
  net::NodeId pick_sequence_home(std::uint64_t key) const;
  bool is_down(net::NodeId node) const { return down_.contains(node); }
  std::vector<net::NodeId> alive_group_members(std::uint32_t group) const;

  // Admits blocks this node does not yet store: dedups against
  // block_keys_, appends windows to the arena, returns the new refs.
  std::vector<BlockRef> admit_blocks(std::vector<Block> blocks);

  // Checks the two-tier placement of one stored block (see audit()).
  void audit_placement(const BlockRef& ref,
                       std::vector<std::string>& out) const;
#ifdef MENDEL_CHECKED
  // MENDEL_CHECKED hooks: throw CheckError on the first violation.
  void checked_audit(const char* where) const;
  // Insert-time variant: audits only the freshly admitted refs, because a
  // mid-rebalance node may legitimately still hold stale blocks while the
  // eviction wave drains; the fresh ones were routed with the current
  // topology and must already be placed correctly.
  void checked_audit_fresh(const std::vector<BlockRef>& fresh) const;
#endif
  // Reconstitutes the wire-format Block of a stored ref (codec paths).
  Block materialize(const BlockRef& ref) const;

  // One subquery's filtered n-NN search over the local tree. Thread-safe
  // with respect to other searches (the tree is only read; the probe rides
  // in a per-call metric, not in the shared probe_ slot). Emitted seeds
  // carry query_offset = 0 so the result is cacheable across subqueries
  // and queries that share the window.
  std::vector<Seed> search_subquery(const vpt::Window& window,
                                    const QueryParams& params,
                                    const score::ScoringMatrix& matrix) const;
  // Cache key: window codes + every parameter that shapes the seed list.
  static std::string nn_cache_key(const vpt::Window& window,
                                  const QueryParams& params);
  void invalidate_nn_cache() MENDEL_EXCLUDES(nn_cache_mu_) {
    std::lock_guard lock(nn_cache_mu_);
    nn_cache_.clear();
  }

  net::NodeId id_;
  StorageNodeConfig config_;
  double max_residue_distance_ = 0.0;  // cached distance->max_entry()
  // SoA payload store + current probe window; both must outlive (and are
  // declared before) the tree whose metric points at them.
  vpt::WindowArena arena_;
  seq::CodeSpan probe_;
  vpt::DynamicVpTree<BlockRef, BlockRefMetric> tree_;
  // Identities of stored blocks ((sequence << 32) | start) so re-deliveries
  // during replication and rebalance stay idempotent.
  std::unordered_set<std::uint64_t> block_keys_;
  std::unordered_map<std::uint32_t, StoredSequence> sequences_;
  std::set<net::NodeId> down_;
  NodeCounters counters_;
  std::string last_decode_error_;

  std::map<std::uint64_t, PendingGroupQuery> group_pending_;
  std::map<std::uint64_t, PendingQuery> coord_pending_;

  // Node-local subquery NN cache: key = window codes + search params,
  // value = the filtered seed list with query_offset zeroed. Mutated only
  // from the handler thread (lookups before the pool fan-out, insertions
  // after it joins); the mutex — uncontended on that path — makes the
  // telemetry reads other threads perform (nn_cache_entries) well-defined
  // and lets Clang's thread-safety analysis verify every access.
  // Invalidated whenever the local block set changes (insert, rebalance,
  // load).
  mutable std::mutex nn_cache_mu_;
  std::unordered_map<std::string, std::vector<Seed>> nn_cache_
      MENDEL_GUARDED_BY(nn_cache_mu_);

  // Observability: span storage for traced queries and cached histogram
  // handles (null when config_.metrics is null — instrumentation then
  // costs a single pointer test per site).
  obs::SpanBuffer span_buffer_;
  // Dispatch-time histogram sampling (handler thread only): every
  // kHandlerSample-th message pays the two clock reads.
  static constexpr std::uint64_t kHandlerSample = 16;
  std::uint64_t handler_ticks_ = 0;
  obs::LatencyHistogram* h_handler_ = nullptr;
  obs::LatencyHistogram* h_search_ = nullptr;
  obs::LatencyHistogram* h_subquery_ = nullptr;
  obs::LatencyHistogram* h_group_fanin_ = nullptr;
  obs::LatencyHistogram* h_coord_fanin_ = nullptr;
  // Extension-phase compute latency (per coalesced range / per bin chain);
  // recorded from pool threads, which the histograms' relaxed atomics allow.
  obs::LatencyHistogram* h_group_extend_ = nullptr;
  obs::LatencyHistogram* h_coord_extend_ = nullptr;
  // Kernel path visibility: which SIMD level this process dispatches to
  // and how often searches take the batched vs scalar-fallback path.
  obs::Counter* c_batched_scans_ = nullptr;
  obs::Counter* c_scalar_fallbacks_ = nullptr;
  // Extension-pipeline savings (mirrors of the NodeCounters fields so the
  // cluster-wide registry aggregates them).
  obs::Counter* c_ranges_coalesced_ = nullptr;
  obs::Counter* c_anchors_pruned_ = nullptr;
  // Frames rejected by the bad-frame guard (mirror of
  // counters_.decode_errors for the cluster-wide registry).
  obs::Counter* c_decode_errors_ = nullptr;
};

}  // namespace mendel::core
