#include "src/mendel/storage_node.h"

#include <algorithm>

#include "src/align/banded.h"
#include "src/align/ungapped.h"
#include "src/common/check.h"
#include "src/common/error.h"
#include "src/common/simd.h"
#include "src/common/stopwatch.h"
#include "src/mendel/anchors.h"
#include "src/scoring/matrix.h"

namespace mendel::core {

namespace {

// Virtual-clock deltas (Context::now() differences) converted to span
// nanoseconds; deterministic under the simulator because both endpoints
// come from the virtual clock.
std::uint64_t delta_ns(double begin, double end) {
  const double seconds = end - begin;
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
}

// Resolves a scoring matrix named by wire-carried query params. An unknown
// name is a bad frame (any peer can put any string there), so the
// InvalidArgument from matrix_by_name is re-raised as DecodeError for the
// bad-frame guard.
const score::ScoringMatrix& matrix_from_wire(const std::string& name) {
  try {
    return score::matrix_by_name(name);
  } catch (const InvalidArgument& e) {
    throw DecodeError(std::string("params: ") + e.what());
  }
}

}  // namespace

StorageNode::StorageNode(net::NodeId id, StorageNodeConfig config)
    : id_(id),
      config_(config),
      tree_(BlockRefMetric{config.distance, &arena_, &probe_},
            vpt::DynamicVpTreeOptions{config.bucket_capacity, true, 2.0,
                                      0x6e6f6465ULL + id}),
      span_buffer_(config.trace_buffer_capacity) {
  require(config_.topology != nullptr, "StorageNode: null topology");
  require(config_.prefix_tree != nullptr, "StorageNode: null prefix tree");
  require(config_.distance != nullptr, "StorageNode: null distance matrix");
  max_residue_distance_ = config_.distance->max_entry();
  // Arena encoding and storage are fixed before the first admitted block.
  // DNA starts 2-bit (its unambiguous core) and widens automatically when
  // an N appears; any other alphabet with <= 16 codes packs at 4 bits;
  // wider alphabets (protein's 24 codes) stay byte-per-residue.
  {
    vpt::WindowArena::Config acfg;
    if (config_.arena_packing) {
      const std::size_t core = seq::core_cardinality(config_.alphabet);
      const std::size_t full = seq::cardinality(config_.alphabet);
      if (core <= 4 && full <= 16) {
        acfg.packed_bits = 2;
      } else if (full <= 16) {
        acfg.packed_bits = 4;
      }
    }
    acfg.resident_budget = config_.arena_resident_budget;
    if (config_.arena_segment_bytes > 0) {
      acfg.segment_bytes = config_.arena_segment_bytes;
    }
    arena_.configure(acfg);
  }
  if (config_.metrics != nullptr) {
    // Handles resolved once; the per-message path never touches the
    // registry's name table.
    h_handler_ = &config_.metrics->histogram("node.handler_seconds");
    h_search_ = &config_.metrics->histogram("node.search_seconds");
    h_subquery_ = &config_.metrics->histogram("node.subquery_seconds");
    h_group_fanin_ = &config_.metrics->histogram("group.fanin_wait_seconds");
    h_coord_fanin_ = &config_.metrics->histogram("coord.fanin_wait_seconds");
    h_group_extend_ = &config_.metrics->histogram("group.extend_seconds");
    h_coord_extend_ = &config_.metrics->histogram("coord.extend_seconds");
    c_batched_scans_ = &config_.metrics->counter("kernel.batched_scans");
    c_scalar_fallbacks_ = &config_.metrics->counter("kernel.scalar_fallbacks");
    c_ranges_coalesced_ = &config_.metrics->counter("fetch.ranges_coalesced");
    c_anchors_pruned_ = &config_.metrics->counter("extend.anchors_pruned");
    c_decode_errors_ = &config_.metrics->counter("net.decode_errors");
    // Process-wide dispatch level; every node in a process reports the
    // same value, which is exactly the property worth asserting on.
    config_.metrics->gauge("kernel.simd_level")
        .set(static_cast<std::int64_t>(simd::active_level()));
  }
}

std::uint64_t StorageNode::record_span(const char* name,
                                       std::uint64_t query_id,
                                       const obs::TraceContext& trace,
                                       double start,
                                       std::uint64_t duration_ns,
                                       std::uint64_t value) {
  if (!trace.on()) return 0;
  obs::SpanRecord span;
  span.name = name;
  span.node = id_;
  span.query_id = query_id;
  span.span_id = span_buffer_.next_span_id(id_);
  span.parent_span = trace.parent_span;
  span.start = start;
  span.duration_ns = duration_ns;
  span.value = value;
  const std::uint64_t span_id = span.span_id;
  span_buffer_.add(std::move(span));
  return span_id;
}

std::vector<StorageNode::BlockRef> StorageNode::admit_blocks(
    std::vector<Block> blocks) {
  std::vector<BlockRef> fresh;
  fresh.reserve(blocks.size());
  for (const Block& block : blocks) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(block.sequence) << 32) | block.start;
    if (!block_keys_.insert(key).second) continue;
    const std::uint32_t slot = arena_.append(block.window);
    fresh.push_back({block.sequence, block.start, slot});
  }
  return fresh;
}

Block StorageNode::materialize(const BlockRef& ref) const {
  MENDEL_DCHECK(ref.slot < arena_.size(),
                "node " << id_ << ": block (seq " << ref.sequence
                        << ", start " << ref.start << ") references arena "
                        << "slot " << ref.slot << " past the arena end "
                        << arena_.size());
  Block block;
  block.sequence = ref.sequence;
  block.start = ref.start;
  block.window.resize(arena_.window_length());
  arena_.copy_row(ref.slot, block.window.data());
  return block;
}

void StorageNode::set_down(net::NodeId node, bool down) {
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

seq::SequenceId StorageNode::max_sequence_id_plus_one() const {
  seq::SequenceId watermark = 0;
  for (const auto& [sid, stored] : sequences_) {
    watermark = std::max(watermark, sid + 1);
  }
  return watermark;
}

std::vector<net::NodeId> StorageNode::alive_group_members(
    std::uint32_t group) const {
  std::vector<net::NodeId> alive;
  for (net::NodeId node : config_.topology->group_nodes(group)) {
    if (!is_down(node)) alive.push_back(node);
  }
  return alive;
}

net::NodeId StorageNode::pick_sequence_home(std::uint64_t key) const {
  for (net::NodeId node : config_.topology->sequence_homes(key)) {
    if (!is_down(node)) return node;
  }
  return net::kClientNode;  // sentinel: no alive home
}

void StorageNode::handle(const net::Message& message, net::Context& ctx) {
  // Sampled 1-in-16: a query dispatches on the order of a thousand messages
  // (per-subquery fetches), so two clock reads on every one is measurable
  // against the observability overhead budget. Uniform sampling keeps the
  // distribution shape; a null histogram makes ScopedTimer skip the clock.
  const bool time_dispatch =
      h_handler_ != nullptr && (handler_ticks_++ % kHandlerSample) == 0;
  const obs::ScopedTimer dispatch_timer(time_dispatch ? h_handler_ : nullptr);
  try {
    dispatch(message, ctx);
  } catch (const DecodeError& e) {
    // Bad frame off the wire: reject, count, keep serving. Everything else
    // (CheckError, ProtocolError, bad_alloc) propagates — those mean an
    // internal bug or resource exhaustion, not hostile input.
    ++counters_.decode_errors;
    if (c_decode_errors_ != nullptr) c_decode_errors_->add(1);
    last_decode_error_ = net::describe(message) + ": " + e.what();
  }
}

void StorageNode::dispatch(const net::Message& message, net::Context& ctx) {
  switch (message.type) {
    case kStoreSequence:
      on_store_sequence(message);
      return;
    case kInsertBlocks:
      on_insert_blocks(message);
      return;
    case kFetchRange:
      on_fetch_range(message, ctx);
      return;
    case kQueryRequest:
      on_query_request(message, ctx);
      return;
    case kGroupQuery:
      on_group_query(message, ctx);
      return;
    case kNodeSearch:
      on_node_search(message, ctx);
      return;
    case kNodeSearchResult:
      on_node_search_result(message, ctx);
      return;
    case kFetchRangeResult:
      on_fetch_range_result(message, ctx);
      return;
    case kGroupResult:
      on_group_result(message, ctx);
      return;
    case kCancelQuery:
      // Join streaming-extension tasks before tearing the entry down: a
      // pool task holds a reference into the pending state and must never
      // outlive it (fault path: a home node dies mid-fetch, the client's
      // stall detector broadcasts the cancel while extensions for already-
      // arrived ranges are still in flight).
      if (auto git = group_pending_.find(message.request_id);
          git != group_pending_.end()) {
        drain_tasks(git->second.extend_tasks);
        group_pending_.erase(git);
      }
      if (auto cit = coord_pending_.find(message.request_id);
          cit != coord_pending_.end()) {
        drain_tasks(cit->second.extend_tasks);
        coord_pending_.erase(cit);
      }
      return;
    case kRebalance:
      on_rebalance(ctx);
      return;
    case kCollectTrace:
      on_collect_trace(message, ctx);
      return;
    case kSetNodeDown: {
      const auto payload =
          decode_payload<SetNodeDownPayload>(message.payload);
      set_down(payload.node, payload.down);
      return;
    }
    case kSetResidues:
      set_database_residues(
          decode_payload<SetResiduesPayload>(message.payload).residues);
      return;
    case kBarrier: {
      // Flush marker (socket deployments): ack so the sender can prove its
      // earlier messages over the same FIFO connection were handled.
      if (!message.payload.empty()) {
        throw DecodeError("barrier: unexpected payload");
      }
      ctx.send(message.from, kBarrierAck, message.request_id, {});
      return;
    }
    default:
      // Unknown type is a bad frame, not an internal bug: a hostile or
      // version-skewed peer can send any type value, so this must land in
      // the counted-drop path rather than tearing the node down.
      throw DecodeError("StorageNode " + std::to_string(id_) +
                        ": unknown message type " +
                        std::to_string(message.type));
  }
}

// --- indexing -----------------------------------------------------------

void StorageNode::on_store_sequence(const net::Message& message) {
  auto payload = decode_payload<StoreSequencePayload>(message.payload);
  // Stored codes later index distance LUTs (fetch ranges feed extension),
  // so out-of-alphabet codes must never be admitted.
  validate_codes(payload.codes, seq::cardinality(config_.alphabet),
                 "store_sequence");
  StoredSequence stored;
  stored.name = std::move(payload.name);
  stored.codes = std::move(payload.codes);
  sequences_[payload.sequence] = std::move(stored);
  ++counters_.sequences_stored;
}

void StorageNode::on_insert_blocks(const net::Message& message) {
  auto payload = decode_payload<InsertBlocksPayload>(message.payload);
  // Ingress validation ahead of admit_blocks: arena append treats a length
  // mismatch or empty window as caller error (InvalidArgument), and packed
  // arenas must never see out-of-alphabet codes.
  const std::size_t cardinality = seq::cardinality(config_.alphabet);
  const std::size_t expect = arena_.window_length() != 0
                                 ? arena_.window_length()
                                 : (payload.blocks.empty()
                                        ? 0
                                        : payload.blocks.front().window.size());
  for (const Block& block : payload.blocks) {
    if (block.window.empty() || block.window.size() != expect) {
      throw DecodeError("insert_blocks: block (seq " +
                        std::to_string(block.sequence) + ", start " +
                        std::to_string(block.start) + ") window length " +
                        std::to_string(block.window.size()) +
                        " != expected " + std::to_string(expect));
    }
    validate_codes(block.window, cardinality, "insert_blocks");
  }
  // Deduplicate: replication and rebalance may redeliver blocks this node
  // already stores.
  auto fresh = admit_blocks(std::move(payload.blocks));
  counters_.blocks_inserted += fresh.size();
  if (!fresh.empty()) {
    // The block set changed: cached seed lists may miss the new blocks.
    invalidate_nn_cache();
#ifdef MENDEL_CHECKED
    const auto admitted = fresh;
#endif
    tree_.insert_batch(std::move(fresh));
#ifdef MENDEL_CHECKED
    checked_audit_fresh(admitted);
#endif
  }
}

// --- sequence repository --------------------------------------------------

void StorageNode::on_fetch_range(const net::Message& message,
                                 net::Context& ctx) {
  auto request = decode_payload<FetchRangePayload>(message.payload);
  ++counters_.fetches_served;

  FetchRangeResultPayload reply;
  reply.purpose = request.purpose;
  reply.token = request.token;
  reply.sequence = request.sequence;

  auto it = sequences_.find(request.sequence);
  if (it != sequences_.end()) {
    const auto& codes = it->second.codes;
    const auto start =
        std::min<std::uint32_t>(request.start,
                                static_cast<std::uint32_t>(codes.size()));
    const auto end = std::min<std::uint32_t>(
        request.start + request.length,
        static_cast<std::uint32_t>(codes.size()));
    reply.start = start;
    reply.sequence_length = static_cast<std::uint32_t>(codes.size());
    reply.sequence_name = it->second.name;
    reply.codes.assign(codes.begin() + start, codes.begin() + end);
  }
  record_span("node.fetch", message.request_id, request.trace, ctx.now(), 0,
              reply.codes.size());
  ctx.send(message.from, kFetchRangeResult, message.request_id,
           encode_payload(reply));
}

// --- observability -------------------------------------------------------

void StorageNode::on_collect_trace(const net::Message& message,
                                   net::Context& ctx) {
  TraceReportPayload report;
  report.spans = span_buffer_.take(message.request_id);
  ctx.send(message.from, kTraceReport, message.request_id,
           encode_payload(report));
}

// --- coordinator: query entry ----------------------------------------------

void StorageNode::on_query_request(const net::Message& message,
                                   net::Context& ctx) {
  auto request = decode_payload<QueryRequestPayload>(message.payload);
  // The query's codes index distance LUTs on every node downstream and the
  // matrix name is resolved again at extension time: reject both here, at
  // the dataflow's entry, so no later stage can trip on them.
  validate_codes(request.query, seq::cardinality(config_.alphabet),
                 "query_request");
  matrix_from_wire(request.params.matrix);
  ++counters_.queries_coordinated;

  const std::size_t block_len = config_.prefix_tree->window_length();
  const std::uint64_t query_id = message.request_id;

  PendingQuery pending;
  pending.client = message.from;
  pending.params = request.params;
  pending.query = request.query;

  if (request.query.size() < block_len || request.params.k == 0) {
    QueryResultPayload empty;
    ctx.send(message.from, kQueryResult, query_id, encode_payload(empty));
    return;
  }

  // Stride-k sliding window over the query (paper §V-B: "steps over the
  // query sequence in larger intervals of size k ... to reduce the
  // amplification of the subqueries"), plus a final window flush against
  // the tail so the query's end is always covered.
  std::vector<Subquery> subqueries;
  const std::size_t last_offset = request.query.size() - block_len;
  for (std::size_t offset = 0;; offset += request.params.k) {
    if (offset > last_offset) break;
    Subquery sub;
    sub.query_offset = static_cast<std::uint32_t>(offset);
    sub.window.assign(request.query.begin() + static_cast<std::ptrdiff_t>(offset),
                      request.query.begin() +
                          static_cast<std::ptrdiff_t>(offset + block_len));
    subqueries.push_back(std::move(sub));
    if (offset == last_offset) break;
    if (offset + request.params.k > last_offset) {
      // Tail flush: one final window ending exactly at the query's end.
      Subquery tail;
      tail.query_offset = static_cast<std::uint32_t>(last_offset);
      tail.window.assign(
          request.query.begin() + static_cast<std::ptrdiff_t>(last_offset),
          request.query.end());
      subqueries.push_back(std::move(tail));
      break;
    }
  }

  // Tier-1 routing: vp-prefix multi-hash each subquery to its group(s).
  std::map<std::uint32_t, std::vector<Subquery>> per_group;
  for (const Subquery& sub : subqueries) {
    const auto prefixes = config_.prefix_tree->hash_multi(
        sub.window, request.params.branch_epsilon);
    std::set<std::uint32_t> groups;
    for (std::uint64_t prefix : prefixes) {
      groups.insert(config_.topology->group_for_prefix(prefix));
    }
    for (std::uint32_t group : groups) per_group[group].push_back(sub);
  }

  // The routing span parents every downstream group's work; the pending
  // trace context carries it to the coordinator's own later stages.
  const std::uint64_t route_span =
      record_span("coord.route", query_id, request.trace, ctx.now(), 0,
                  subqueries.size());
  pending.trace = request.trace.child(route_span);
  pending.created = ctx.now();

  // Dispatch one GroupQuery per selected group to an alive entry node.
  // The params+trace+query prefix is serialized once; only each group's
  // subquery set differs per message.
  const auto prefix =
      encode_group_query_prefix(request.params, pending.trace, request.query);
  std::size_t dispatched = 0;
  for (auto& [group, subs] : per_group) {
    const auto alive = alive_group_members(group);
    if (alive.empty()) continue;
    const net::NodeId entry =
        alive[(query_id + group) % alive.size()];
    ctx.send(entry, kGroupQuery, query_id, encode_group_query(prefix, subs));
    ++dispatched;
  }

  if (dispatched == 0) {
    QueryResultPayload empty;
    ctx.send(message.from, kQueryResult, query_id, encode_payload(empty));
    return;
  }
  pending.awaiting_groups = dispatched;
  coord_pending_[query_id] = std::move(pending);
}

// --- group entry -------------------------------------------------------------

void StorageNode::on_group_query(const net::Message& message,
                                 net::Context& ctx) {
  auto request = decode_payload<GroupQueryPayload>(message.payload);
  // A group query can arrive from any peer, not only our own coordinator:
  // re-validate the query (extension scores it against fetched subjects)
  // and every subquery window (forwarded verbatim into node searches).
  {
    const std::size_t cardinality = seq::cardinality(config_.alphabet);
    validate_codes(request.query, cardinality, "group_query");
    matrix_from_wire(request.params.matrix);
    for (const Subquery& sub : request.subqueries) {
      validate_codes(sub.window, cardinality, "group_query subquery");
      const std::uint64_t end =
          static_cast<std::uint64_t>(sub.query_offset) + sub.window.size();
      if (end > request.query.size()) {
        throw DecodeError("group_query: subquery at offset " +
                          std::to_string(sub.query_offset) + " (window " +
                          std::to_string(sub.window.size()) +
                          ") overruns query length " +
                          std::to_string(request.query.size()));
      }
    }
  }
  ++counters_.group_queries;
  const std::uint64_t query_id = message.request_id;
  const std::uint32_t group = config_.topology->address(id_).group;

  PendingGroupQuery pending;
  pending.coordinator = message.from;
  pending.params = request.params;
  pending.query = request.query;

  // Flat-hash dispersal means any node of the group may hold relevant
  // blocks: replicate the search to every alive member (paper §V-B).
  const auto members = alive_group_members(group);
  const std::uint64_t broadcast_span =
      record_span("group.broadcast", query_id, request.trace, ctx.now(), 0,
                  members.size());
  pending.trace = request.trace.child(broadcast_span);
  pending.created = ctx.now();
  NodeSearchPayload search;
  search.params = request.params;
  search.trace = pending.trace;
  search.subqueries = std::move(request.subqueries);
  const auto encoded = encode_payload(search);
  for (net::NodeId member : members) {
    ctx.send(member, kNodeSearch, query_id, encoded);
  }
  pending.awaiting_nodes = members.size();
  if (members.empty()) {
    GroupResultPayload empty;
    ctx.send(message.from, kGroupResult, query_id, encode_payload(empty));
    return;
  }
  group_pending_[query_id] = std::move(pending);
}

// --- searcher ------------------------------------------------------------------

std::string StorageNode::nn_cache_key(const vpt::Window& window,
                                      const QueryParams& params) {
  // Window codes first, then the raw bytes of every knob that shapes the
  // seed list (n-NN count, filters, matrix). Equality on the full key makes
  // collisions impossible; windows are fixed-length so the layout is
  // unambiguous.
  std::string key;
  key.reserve(window.size() + sizeof(std::uint32_t) + 2 * sizeof(double) +
              params.matrix.size() + 1);
  key.append(reinterpret_cast<const char*>(window.data()), window.size());
  key.append(reinterpret_cast<const char*>(&params.n), sizeof(params.n));
  key.append(reinterpret_cast<const char*>(&params.identity),
             sizeof(params.identity));
  key.append(reinterpret_cast<const char*>(&params.c_score),
             sizeof(params.c_score));
  key.append(params.matrix);
  return key;
}

std::vector<Seed> StorageNode::search_subquery(
    const vpt::Window& window, const QueryParams& params,
    const score::ScoringMatrix& matrix) const {
  std::vector<Seed> seeds;
  if (tree_.empty()) return seeds;
  // The probe rides in a per-call metric so concurrent subquery searches
  // never share mutable state; the tree itself is only read.
  const seq::CodeSpan probe_span(window);
  const BlockRefMetric metric{config_.distance, &arena_, &probe_span,
                              c_batched_scans_, c_scalar_fallbacks_};
  const BlockRef probe_ref{0, 0, BlockRef::kProbeSlot};
  // Exact radius cap from the identity filter: a candidate passing
  // identity >= i differs in at most (1-i)*k positions, each costing at
  // most max_entry — anything farther is filtered later anyway, so the
  // n-NN search can discard it up front.
  const double cap = (1.0 - params.identity) *
                     static_cast<double>(window.size()) *
                     max_residue_distance_;
  const auto neighbors = tree_.nearest_with(metric, probe_ref, params.n, cap);
  std::vector<seq::Code> decoded(arena_.window_length());
  for (const auto& neighbor : neighbors) {
    const BlockRef& block = *neighbor.item;
    arena_.copy_row(block.slot, decoded.data());
    const seq::CodeSpan arena_window{decoded.data(), decoded.size()};
    const double identity = score::percent_identity(window, arena_window);
    if (identity < params.identity) continue;
    const double c = score::consecutivity_score(window, arena_window, matrix);
    if (c < params.c_score) continue;
    Seed seed;
    seed.sequence = block.sequence;
    seed.subject_start = block.start;
    seed.query_offset = 0;  // caller rebinds to the subquery's offset
    seed.length = static_cast<std::uint32_t>(arena_window.size());
    seed.identity = identity;
    seed.c_score = c;
    seeds.push_back(seed);
  }
  return seeds;
}

void StorageNode::on_node_search(const net::Message& message,
                                 net::Context& ctx) {
  auto request = decode_payload<NodeSearchPayload>(message.payload);
  const auto& matrix = matrix_from_wire(request.params.matrix);
  const std::size_t count = request.subqueries.size();
  // Window codes feed unchecked distance kernels (LUT rows sized to the
  // alphabet); lengths are checked against the arena inside the cache loop
  // below, codes here.
  for (const Subquery& sub : request.subqueries) {
    validate_codes(sub.window, seq::cardinality(config_.alphabet),
                   "node_search subquery");
  }
  // Span duration is wall time under the threaded transport only; under
  // virtual time a measured duration would differ run to run and break
  // trace byte-stability.
  const bool measure_span = request.trace.on() && !ctx.virtual_time();
  Stopwatch search_watch;
  const obs::ScopedTimer search_timer(h_search_);

  // Phase 1 (handler thread): resolve each subquery against the NN cache.
  // Only misses pay for a vp-tree search.
  std::vector<const std::vector<Seed>*> cached(count, nullptr);
  std::vector<std::string> keys(count);
  std::vector<std::size_t> misses;
  const bool cache_enabled = config_.nn_cache_capacity > 0;
  {
    // The handler thread is the cache's only mutator, so the pointers
    // captured here stay valid past the lock: nothing erases or rehashes
    // the map until the phase-3 insertion below, which runs after the last
    // cached[] read.
    std::lock_guard cache_lock(nn_cache_mu_);
    for (std::size_t i = 0; i < count; ++i) {
      const Subquery& sub = request.subqueries[i];
      ++counters_.nn_searches;
      if (tree_.empty()) continue;
      // Lengths are checked once here; the metric then runs unchecked
      // kernels for every distance evaluation of the search. A mismatch is
      // a bad frame (any peer can send any window), not an invariant.
      if (sub.window.size() != arena_.window_length()) {
        throw DecodeError(
            "node_search: subquery " + std::to_string(i) +
            " window length " + std::to_string(sub.window.size()) +
            " != arena window length " +
            std::to_string(arena_.window_length()));
      }
      if (cache_enabled) {
        keys[i] = nn_cache_key(sub.window, request.params);
        auto it = nn_cache_.find(keys[i]);
        if (it != nn_cache_.end()) {
          ++counters_.nn_cache_hits;
          cached[i] = &it->second;
          continue;
        }
        ++counters_.nn_cache_misses;
      }
      misses.push_back(i);
    }
  }

  // Phase 2: fan the cache misses across the shared pool (serial without
  // one). Each task writes its own slot of `fresh`; the join publishes the
  // writes back to the handler thread.
  std::vector<std::vector<Seed>> fresh(count);
  auto search_one = [&](std::size_t j) {
    const obs::ScopedTimer subquery_timer(h_subquery_);
    const std::size_t i = misses[j];
    fresh[i] = search_subquery(request.subqueries[i].window, request.params,
                               matrix);
  };
  if (config_.search_pool != nullptr && misses.size() > 1) {
    config_.search_pool->parallel_for(misses.size(), search_one);
  } else {
    for (std::size_t j = 0; j < misses.size(); ++j) search_one(j);
  }

  // Phase 3 (handler thread): emit every subquery's seeds in subquery
  // order — byte-identical to the serial path regardless of pool size or
  // hit/miss pattern — then admit the fresh results into the cache.
  NodeSearchResultPayload reply;
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<Seed>* seeds = cached[i] != nullptr ? cached[i]
                                                          : &fresh[i];
    const std::uint32_t offset = request.subqueries[i].query_offset;
    for (Seed seed : *seeds) {
      seed.query_offset = offset;
      reply.seeds.push_back(seed);
    }
  }
  if (cache_enabled) {
    std::lock_guard cache_lock(nn_cache_mu_);
    for (std::size_t i : misses) {
      if (nn_cache_.size() >= config_.nn_cache_capacity) {
        // Wholesale eviction: simple, rare, and never serves stale seeds.
        nn_cache_.clear();
      }
      nn_cache_[std::move(keys[i])] = std::move(fresh[i]);
    }
  }
  counters_.seeds_emitted += reply.seeds.size();
  record_span("node.search", message.request_id, request.trace, ctx.now(),
              measure_span ? delta_ns(0.0, search_watch.seconds()) : 0,
              count);
  ctx.send(message.from, kNodeSearchResult, message.request_id,
           encode_payload(reply));
}

// --- group entry: fan-in, merge, fetch, extend ------------------------------

void StorageNode::on_node_search_result(const net::Message& message,
                                        net::Context& ctx) {
  auto it = group_pending_.find(message.request_id);
  if (it == group_pending_.end()) return;  // stale / cancelled
  PendingGroupQuery& pending = it->second;

  auto payload = decode_payload<NodeSearchResultPayload>(message.payload);
  // A forged or duplicated result frame must not underflow the fan-in
  // counter or feed seeds whose windows overrun the query into the merge
  // arithmetic (merged ranges drive fetch lengths and extension spans).
  if (pending.awaiting_nodes == 0) {
    throw DecodeError("node_search_result: group query " +
                      std::to_string(message.request_id) +
                      " has no outstanding node searches (duplicate or "
                      "forged result from node " +
                      std::to_string(message.from) + ")");
  }
  for (const Seed& seed : payload.seeds) {
    validate_seed(seed);
    const std::uint64_t q_end =
        static_cast<std::uint64_t>(seed.query_offset) + seed.length;
    if (q_end > pending.query.size()) {
      throw DecodeError("node_search_result: seed window [" +
                        std::to_string(seed.query_offset) + ", " +
                        std::to_string(q_end) + ") overruns query length " +
                        std::to_string(pending.query.size()));
    }
  }
  pending.seeds.insert(pending.seeds.end(), payload.seeds.begin(),
                       payload.seeds.end());
  if (--pending.awaiting_nodes > 0) return;
  if (h_group_fanin_ != nullptr) {
    // Broadcast → last search result; virtual seconds under the simulator.
    h_group_fanin_->record_seconds(ctx.now() - pending.created);
  }
  group_entry_merge_and_fetch(message.request_id, pending, ctx);
}

void StorageNode::group_entry_merge_and_fetch(std::uint64_t query_id,
                                              PendingGroupQuery& pending,
                                              net::Context& ctx) {
  if (pending.seeds.empty()) {
    GroupResultPayload empty;
    ctx.send(pending.coordinator, kGroupResult, query_id,
             encode_payload(empty));
    group_pending_.erase(query_id);
    return;
  }

  // Merge seeds on the same (sequence, diagonal) into runs (paper §V-B:
  // binning by sequence id, combining overlapping anchors on the same
  // diagonal).
  std::sort(pending.seeds.begin(), pending.seeds.end(),
            [](const Seed& a, const Seed& b) {
              if (a.sequence != b.sequence) return a.sequence < b.sequence;
              if (a.diagonal() != b.diagonal())
                return a.diagonal() < b.diagonal();
              return a.query_offset < b.query_offset;
            });
  std::vector<MergedSeed> merged;
  for (const Seed& seed : pending.seeds) {
    const bool extends_last =
        !merged.empty() && merged.back().sequence == seed.sequence &&
        static_cast<std::ptrdiff_t>(merged.back().s_begin) -
                static_cast<std::ptrdiff_t>(merged.back().q_begin) ==
            seed.diagonal() &&
        seed.query_offset <= merged.back().q_end;
    if (extends_last) {
      merged.back().q_end = std::max(merged.back().q_end,
                                     seed.query_offset + seed.length);
    } else {
      MergedSeed m;
      m.sequence = seed.sequence;
      m.q_begin = seed.query_offset;
      m.q_end = seed.query_offset + seed.length;
      m.s_begin = seed.subject_start;
      merged.push_back(m);
    }
  }
  // Optional noise gate: drop isolated short runs before paying for their
  // fetch + extension (params.min_anchor_span, 0 = keep everything).
  if (pending.params.min_anchor_span > 0) {
    std::erase_if(merged, [&](const MergedSeed& m) {
      return m.q_end - m.q_begin < pending.params.min_anchor_span;
    });
    if (merged.empty()) {
      GroupResultPayload empty;
      ctx.send(pending.coordinator, kGroupResult, query_id,
               encode_payload(empty));
      group_pending_.erase(query_id);
      return;
    }
  }
  pending.merged = std::move(merged);

  const std::uint64_t merge_span =
      record_span("group.merge", query_id, pending.trace, ctx.now(), 0,
                  pending.merged.size());
  const obs::TraceContext fetch_trace = pending.trace.child(merge_span);

  // Coalesced range fetches: anchors of one sequence cluster on nearby
  // diagonals, so their margin-padded windows overlap heavily; union them
  // into one kFetchRange per covering range (token = plan index) and issue
  // everything up front. Extension runs per arrival (on_fetch_range_result)
  // instead of behind the last fetch, overlapping fetch latency with
  // compute.
  const std::uint32_t margin = pending.params.extension_margin;
  std::vector<RangeRequest> requests(pending.merged.size());
  for (std::size_t i = 0; i < pending.merged.size(); ++i) {
    const MergedSeed& m = pending.merged[i];
    RangeRequest& req = requests[i];
    req.sequence = m.sequence;
    req.start = m.s_begin > margin ? m.s_begin - margin : 0;
    req.length = (m.s_begin - req.start) + (m.q_end - m.q_begin) + margin;
  }
  pending.fetch_plan = coalesce_ranges(requests);
  pending.fetched.assign(pending.fetch_plan.size(), std::nullopt);
  pending.anchor_slots.assign(pending.merged.size(), std::nullopt);

  std::size_t sent = 0;
  std::size_t member_requests = 0;
  for (std::size_t i = 0; i < pending.fetch_plan.size(); ++i) {
    const CoalescedRange& range = pending.fetch_plan[i];
    const net::NodeId home =
        pick_sequence_home(sequence_placement_key(range.sequence));
    if (home == net::kClientNode) continue;  // no alive replica: skip range
    FetchRangePayload fetch;
    fetch.purpose = static_cast<std::uint8_t>(FetchPurpose::kGroupExtension);
    fetch.token = static_cast<std::uint32_t>(i);
    fetch.trace = fetch_trace;
    fetch.sequence = range.sequence;
    fetch.start = range.start;
    fetch.length = range.length;
    ctx.send(home, kFetchRange, query_id, encode_payload(fetch));
    ++sent;
    member_requests += range.members.size();
  }
  if (sent == 0) {
    GroupResultPayload empty;
    ctx.send(pending.coordinator, kGroupResult, query_id,
             encode_payload(empty));
    group_pending_.erase(query_id);
    return;
  }
  const std::uint64_t saved =
      static_cast<std::uint64_t>(member_requests - sent);
  counters_.fetch_ranges_coalesced += saved;
  if (c_ranges_coalesced_ != nullptr) c_ranges_coalesced_->add(saved);
  pending.awaiting_fetches = sent;
}

void StorageNode::group_entry_extend_range(PendingGroupQuery& pending,
                                           std::size_t range_idx,
                                           bool wall_timing) {
  if (!pending.fetched[range_idx].has_value()) return;
  const FetchedRange& range = *pending.fetched[range_idx];
  if (range.codes.empty()) return;
  const auto& matrix = score::matrix_by_name(pending.params.matrix);
  const std::uint32_t margin = pending.params.extension_margin;
  std::optional<Stopwatch> watch;
  if (wall_timing && h_group_extend_ != nullptr) watch.emplace();
  const std::uint64_t data_begin = range.start;
  const std::uint64_t data_end = range.start + range.codes.size();
  // A reply shorter than requested means the home clamped at the end of
  // the sequence, so data_end is the subject's exact length.
  const std::uint32_t subject_len =
      range.codes.size() < pending.fetch_plan[range_idx].length
          ? static_cast<std::uint32_t>(data_end)
          : 0;
  for (std::uint32_t member : pending.fetch_plan[range_idx].members) {
    const MergedSeed& m = pending.merged[member];
    // Re-derive the member's own margin-padded window and clamp the
    // coalesced buffer to it: extension must see exactly the bytes a
    // dedicated per-seed fetch would have returned, so coalescing can
    // never perturb where X-drop terminates (anchors stay byte-identical
    // to the one-fetch-per-seed dataflow).
    const std::uint32_t span = m.q_end - m.q_begin;
    const std::uint32_t w_start = m.s_begin > margin ? m.s_begin - margin : 0;
    const std::uint64_t w_end =
        static_cast<std::uint64_t>(w_start) + (m.s_begin - w_start) + span +
        margin;
    const std::uint64_t view_begin = std::max<std::uint64_t>(w_start,
                                                             data_begin);
    const std::uint64_t view_end = std::min(w_end, data_end);
    if (view_begin >= view_end) continue;
    if (m.s_begin < view_begin) continue;  // defensive: clamp mismatch
    const std::size_t s_local = m.s_begin - view_begin;
    if (s_local + span > view_end - view_begin) continue;
    const seq::CodeSpan subject(
        range.codes.data() + (view_begin - data_begin),
        static_cast<std::size_t>(view_end - view_begin));

    const align::Hsp hsp =
        align::extend_ungapped(pending.query, subject, m.q_begin, s_local,
                               span, matrix, {pending.params.x_drop});
    Anchor anchor;
    anchor.sequence = m.sequence;
    anchor.q_begin = static_cast<std::uint32_t>(hsp.q_begin);
    anchor.q_end = static_cast<std::uint32_t>(hsp.q_end);
    anchor.s_begin = static_cast<std::uint32_t>(hsp.s_begin + view_begin);
    anchor.s_end = static_cast<std::uint32_t>(hsp.s_end + view_begin);
    anchor.score = hsp.score;
    anchor.cert = hsp.score;  // actually scored, never an estimate
    anchor.subject_len = subject_len;
    pending.anchor_slots[member] = anchor;
  }
  if (watch.has_value()) h_group_extend_->record_seconds(watch->seconds());
}

void StorageNode::group_entry_finish(std::uint64_t query_id,
                                     PendingGroupQuery& pending,
                                     net::Context& ctx) {
  drain_tasks(pending.extend_tasks);
  // Assemble in merged-seed order: slot writes are disjoint and the order
  // below is index order, so the reply is independent of fetch arrival
  // order and of how extension work was scheduled.
  std::vector<Anchor> anchors;
  anchors.reserve(pending.anchor_slots.size());
  for (const std::optional<Anchor>& slot : pending.anchor_slots) {
    if (slot.has_value()) anchors.push_back(*slot);
  }
  counters_.anchors_extended += anchors.size();

  GroupResultPayload reply;
  reply.anchors = merge_anchors(std::move(anchors));
  record_span("group.extend", query_id, pending.trace, ctx.now(), 0,
              reply.anchors.size());
  ctx.send(pending.coordinator, kGroupResult, query_id,
           encode_payload(reply));
  group_pending_.erase(query_id);
}

void StorageNode::schedule_extension(std::vector<std::future<void>>& tasks,
                                     net::Context& ctx,
                                     std::function<void()> body) {
  // Under the simulator extension runs inline: pool compute would escape
  // the virtual clock (charged CPU must stay on the handler). Without a
  // pool there is nowhere else to run it anyway.
  if (config_.search_pool == nullptr || ctx.virtual_time()) {
    body();
    return;
  }
  tasks.push_back(config_.search_pool->submit(std::move(body)));
}

void StorageNode::drain_tasks(std::vector<std::future<void>>& tasks) {
  for (std::future<void>& task : tasks) {
    if (task.valid()) task.get();
  }
  tasks.clear();
}

// --- coordinator: fan-in, gapped extension, ranking ---------------------------

void StorageNode::on_group_result(const net::Message& message,
                                  net::Context& ctx) {
  auto it = coord_pending_.find(message.request_id);
  if (it == coord_pending_.end()) return;
  PendingQuery& pending = it->second;

  auto payload = decode_payload<GroupResultPayload>(message.payload);
  // Forged/duplicate frames must not underflow the fan-in counter, and
  // anchor intervals feed unsigned span arithmetic (length(), pruning
  // ceilings, banded DP bands) — reject inverted or query-overrunning ones.
  if (pending.awaiting_groups == 0) {
    throw DecodeError("group_result: query " +
                      std::to_string(message.request_id) +
                      " has no outstanding group queries (duplicate or "
                      "forged result from node " +
                      std::to_string(message.from) + ")");
  }
  for (const Anchor& anchor : payload.anchors) {
    validate_anchor(anchor);
    if (anchor.q_end > pending.query.size()) {
      throw DecodeError("group_result: anchor q interval [" +
                        std::to_string(anchor.q_begin) + ", " +
                        std::to_string(anchor.q_end) +
                        ") overruns query length " +
                        std::to_string(pending.query.size()));
    }
  }
  // Streaming fan-in: bin by sequence as results arrive instead of piling
  // anchors into one flat list for an end-of-fan-in pass; the last arrival
  // then only pays per-sequence diagonal merging.
  for (const Anchor& anchor : payload.anchors) {
    pending.binned[anchor.sequence].push_back(anchor);
  }
  pending.raw_anchors += payload.anchors.size();
  if (--pending.awaiting_groups > 0) return;
  if (h_coord_fanin_ != nullptr) {
    // Route → last group result; virtual seconds under the simulator.
    h_coord_fanin_->record_seconds(ctx.now() - pending.created);
  }
  coordinator_bin_and_fetch(message.request_id, pending, ctx);
}

void StorageNode::coordinator_bin_and_fetch(std::uint64_t query_id,
                                            PendingQuery& pending,
                                            net::Context& ctx) {
  // Second aggregation stage (paper §V-B): combine overlapping anchors on
  // the same diagonal across groups. Anchors were already binned by
  // sequence as the group results streamed in; merging never crosses
  // sequences, so per-bin merges reproduce the old global pass exactly.
  std::vector<SequenceBin> all_bins;
  all_bins.reserve(pending.binned.size());
  std::size_t total_merged = 0;
  for (auto& [sid, anchors] : pending.binned) {
    SequenceBin bin;
    bin.sequence = sid;
    bin.anchors = merge_anchors(std::move(anchors));
    total_merged += bin.anchors.size();
    all_bins.push_back(std::move(bin));
  }
  pending.binned.clear();

  // The fan-in span covers route → last group result. The duration comes
  // from clock deltas, so it is virtual (and deterministic) under the
  // simulator and wall time under the threaded transport.
  const std::uint64_t fanin_span = record_span(
      "coord.fanin", query_id, pending.trace, pending.created,
      delta_ns(pending.created, ctx.now()), total_merged);
  const obs::TraceContext fetch_trace = pending.trace.child(fanin_span);

  // Keep only bins with at least one anchor above the gapped trigger S.
  pending.bins.clear();
  for (auto& bin : all_bins) {
    const bool qualifies = std::any_of(
        bin.anchors.begin(), bin.anchors.end(), [&](const Anchor& a) {
          return a.normalized_score() > pending.params.gapped_trigger;
        });
    if (!qualifies) continue;
    // Best-first so the strongest anchor's gapped alignment is accepted
    // before weaker overlapping anchors can shadow it in the dedup pass.
    // The order is total, so results are independent of message arrival
    // order (symmetric-architecture guarantee: every entry point generates
    // identical results).
    std::sort(bin.anchors.begin(), bin.anchors.end(),
              [](const Anchor& a, const Anchor& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.s_begin != b.s_begin) return a.s_begin < b.s_begin;
                if (a.q_begin != b.q_begin) return a.q_begin < b.q_begin;
                return a.q_end < b.q_end;
              });
    pending.bins.push_back(std::move(bin));
  }

  if (pending.bins.empty()) {
    QueryResultPayload empty;
    ctx.send(pending.client, kQueryResult, query_id, encode_payload(empty));
    coord_pending_.erase(query_id);
    return;
  }

  // Per-bin fetch windows and homes, needed by both the pruning bound and
  // the sends below.
  struct BinFetch {
    net::NodeId home = net::kClientNode;
    std::uint32_t start = 0;
    std::uint32_t length = 0;
  };
  const std::uint32_t margin =
      pending.params.extension_margin + pending.params.band;
  std::vector<BinFetch> plan(pending.bins.size());
  for (std::size_t i = 0; i < pending.bins.size(); ++i) {
    const SequenceBin& bin = pending.bins[i];
    BinFetch& f = plan[i];
    f.home = pick_sequence_home(sequence_placement_key(bin.sequence));
    std::uint32_t lo = bin.anchors.front().s_begin;
    std::uint32_t hi = 0;
    for (const Anchor& a : bin.anchors) {
      lo = std::min(lo, a.s_begin);
      hi = std::max(hi, a.s_end);
    }
    f.start = lo > margin ? lo - margin : 0;
    f.length = (lo - f.start) + (hi - lo) + 2 * margin;
  }

  // ---- score-bounded pruning (exact — see docs/architecture.md) --------
  //
  // Upper bound U_i on any banded score bin i can produce: every aligned
  // pair consumes one query row and one subject column, and the window
  // holds at most L_i columns (the planned fetch, clipped at the end of
  // the subject when its length is known), so the score is at most the
  // sum of the min(L_i, qlen) largest positive per-row matrix maxima —
  // gap costs only subtract. A lower bound on every possible hit's
  // E-value follows. Guaranteed hit: the
  // bin's first attempted anchor always runs its DP against a window that
  // contains its certified ungapped run, so the bin is certain to place a
  // hit at E-value <= e(cert) when e(cert) passes the E-value filter. The
  // cutoff C is the max_hits-th smallest such guarantee; a bin whose
  // E-value lower bound is strictly above both C and the filter can only
  // produce hits that rank past the top max_hits, so skipping its fetch
  // and DP cannot change the reply.
  if (config_.prune_extensions) {
    const auto& matrix = score::matrix_by_name(pending.params.matrix);
    const auto karlin = score::gapped_params(matrix);
    const std::uint64_t db_residues =
        config_.database_residues > 0 ? config_.database_residues : 1;
    const std::size_t qlen = pending.query.size();
    const std::size_t codes = seq::cardinality(config_.alphabet);
    // Positive per-query-row matrix maxima, largest first, with prefix
    // sums: an alignment against an L-column window pairs at most
    // min(L, qlen) distinct query rows, so prefix[min(L, qlen)] bounds any
    // achievable banded score (gap costs only subtract).
    std::vector<int> row_maxima;
    row_maxima.reserve(pending.query.size());
    for (seq::Code code : pending.query) {
      int row_max = 0;
      for (std::size_t d = 0; d < codes; ++d) {
        row_max = std::max(row_max,
                           matrix.score(code, static_cast<seq::Code>(d)));
      }
      if (row_max > 0) row_maxima.push_back(row_max);
    }
    std::sort(row_maxima.begin(), row_maxima.end(), std::greater<>());
    std::vector<double> prefix(row_maxima.size() + 1, 0.0);
    for (std::size_t i = 0; i < row_maxima.size(); ++i) {
      prefix[i + 1] = prefix[i] + row_maxima[i];
    }

    std::vector<double> guarantees;
    std::vector<double> floor_evalue(pending.bins.size(), 0.0);
    for (std::size_t i = 0; i < pending.bins.size(); ++i) {
      const SequenceBin& bin = pending.bins[i];
      // Subject columns a gapped alignment could use: the planned window,
      // clipped at the end of the sequence when a group entry learned its
      // length from a clamped fetch.
      std::uint64_t columns = plan[i].length;
      for (const Anchor& anchor : bin.anchors) {
        if (anchor.subject_len == 0) continue;
        const std::uint64_t usable =
            anchor.subject_len > plan[i].start
                ? anchor.subject_len - plan[i].start
                : 0;
        columns = std::min(columns, usable);
        break;
      }
      const double best_possible =
          prefix[std::min<std::size_t>(columns, row_maxima.size())];
      floor_evalue[i] =
          score::evalue(karlin, best_possible, qlen, db_residues);
      if (plan[i].home == net::kClientNode) continue;  // no fetch: no hit
      if (pending.params.max_gapped_per_bin == 0) continue;  // no DP runs
      // First attempted anchor = first above the trigger in best-first
      // order; its certified run bounds what its DP is sure to achieve.
      const auto first = std::find_if(
          bin.anchors.begin(), bin.anchors.end(), [&](const Anchor& a) {
            return a.normalized_score() > pending.params.gapped_trigger;
          });
      if (first == bin.anchors.end() || first->cert <= 0) continue;
      const double guaranteed =
          score::evalue(karlin, first->cert, qlen, db_residues);
      if (guaranteed > pending.params.evalue) continue;
      guarantees.push_back(guaranteed);
    }
    double cutoff = std::numeric_limits<double>::infinity();
    const std::size_t k = pending.params.max_hits;
    if (k == 0) {
      cutoff = -std::numeric_limits<double>::infinity();
    } else if (guarantees.size() >= k) {
      std::nth_element(guarantees.begin(),
                       guarantees.begin() + static_cast<std::ptrdiff_t>(k) -
                           1,
                       guarantees.end());
      cutoff = guarantees[k - 1];
    }
    std::size_t pruned_bins = 0;
    std::uint64_t pruned_anchors = 0;
    for (std::size_t i = 0; i < pending.bins.size(); ++i) {
      // Strict >: a pruned hit tying the cutoff exactly could still win a
      // subject-id tiebreak against the guaranteed hit. Support bins never
      // self-prune (their floor is at most their own guarantee).
      if (floor_evalue[i] > pending.params.evalue ||
          floor_evalue[i] > cutoff) {
        pending.bins[i].pruned = true;
        ++pruned_bins;
        pruned_anchors += pending.bins[i].anchors.size();
      }
    }
    if (pruned_bins > 0) {
      counters_.anchors_pruned += pruned_anchors;
      if (c_anchors_pruned_ != nullptr) c_anchors_pruned_->add(pruned_anchors);
    }
    record_span("coord.prune", query_id, pending.trace, ctx.now(), 0,
                pruned_bins);
  }
#ifdef MENDEL_CHECKED
  // Prune audit: still fetch and extend pruned bins, then assert in
  // coordinator_finish that dropping their hits leaves the ranking
  // untouched — the exactness proof, executed.
  const bool audit_pruned = config_.prune_extensions;
#else
  const bool audit_pruned = false;
#endif

  pending.fetched.assign(pending.bins.size(), std::nullopt);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < pending.bins.size(); ++i) {
    const SequenceBin& bin = pending.bins[i];
    if (bin.pruned && !audit_pruned) continue;
    if (plan[i].home == net::kClientNode) continue;
    FetchRangePayload fetch;
    fetch.purpose = static_cast<std::uint8_t>(FetchPurpose::kGappedExtension);
    fetch.token = static_cast<std::uint32_t>(i);
    fetch.trace = fetch_trace;
    fetch.sequence = bin.sequence;
    fetch.start = plan[i].start;
    fetch.length = plan[i].length;
    ctx.send(plan[i].home, kFetchRange, query_id, encode_payload(fetch));
    ++sent;
  }
  if (sent == 0) {
    QueryResultPayload empty;
    ctx.send(pending.client, kQueryResult, query_id, encode_payload(empty));
    coord_pending_.erase(query_id);
    return;
  }
  pending.awaiting_fetches = sent;
}

void StorageNode::coordinator_extend_bin(PendingQuery& pending,
                                         std::size_t bin_idx,
                                         bool wall_timing) {
  if (!pending.fetched[bin_idx].has_value()) return;
  const FetchedRange& range = *pending.fetched[bin_idx];
  if (range.codes.empty()) return;
  SequenceBin& bin = pending.bins[bin_idx];
  const auto& matrix = score::matrix_by_name(pending.params.matrix);
  const auto karlin = score::gapped_params(matrix);
  const std::uint64_t db_residues =
      config_.database_residues > 0 ? config_.database_residues : 1;
  std::optional<Stopwatch> watch;
  if (wall_timing && h_coord_extend_ != nullptr) watch.emplace();

  {
    std::vector<align::GappedAlignment> accepted;
    std::uint32_t attempts = 0;
    for (const Anchor& anchor : bin.anchors) {
      if (anchor.normalized_score() <= pending.params.gapped_trigger) {
        continue;
      }
      if (attempts >= pending.params.max_gapped_per_bin) break;
      // Anchors are processed best-first; skip any anchor already covered
      // by an accepted gapped alignment *before* paying for its DP —
      // nearby-diagonal anchors overwhelmingly converge to one alignment.
      bool covered = false;
      for (const auto& existing : accepted) {
        const bool q_overlap = anchor.q_begin <
                                   static_cast<std::uint32_t>(
                                       existing.hsp.q_end) &&
                               static_cast<std::uint32_t>(
                                   existing.hsp.q_begin) < anchor.q_end;
        const bool s_overlap = anchor.s_begin <
                                   static_cast<std::uint32_t>(
                                       existing.hsp.s_end) &&
                               static_cast<std::uint32_t>(
                                   existing.hsp.s_begin) < anchor.s_end;
        if (q_overlap && s_overlap) {
          covered = true;
          break;
        }
      }
      if (covered) continue;

      ++attempts;
      ++bin.dp_runs;
      const std::ptrdiff_t local_diag =
          anchor.diagonal() - static_cast<std::ptrdiff_t>(range.start);
      align::GappedAlignment gapped = align::banded_local_align(
          pending.query, range.codes, matrix, matrix.default_gaps(),
          {local_diag, pending.params.band});
      if (gapped.hsp.score <= 0) continue;
      // Back to absolute subject coordinates.
      gapped.hsp.s_begin += range.start;
      gapped.hsp.s_end += range.start;

      // Deduplicate against the accepted alignments (the pre-check used
      // the anchor's span; the gapped result can drift).
      bool duplicate = false;
      for (const auto& existing : accepted) {
        const bool q_overlap =
            gapped.hsp.q_begin < existing.hsp.q_end &&
            existing.hsp.q_begin < gapped.hsp.q_end;
        const bool s_overlap =
            gapped.hsp.s_begin < existing.hsp.s_end &&
            existing.hsp.s_begin < gapped.hsp.s_end;
        if (q_overlap && s_overlap) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;

      const double e = score::evalue(karlin, gapped.hsp.score,
                                     pending.query.size(), db_residues);
      if (e > pending.params.evalue) {
        accepted.push_back(gapped);  // still shadows duplicates
        continue;
      }

      align::AlignmentHit hit;
      hit.subject_id = bin.sequence;
      hit.subject_name = range.name;
      hit.alignment = gapped;
      hit.bit_score = score::bit_score(karlin, gapped.hsp.score);
      hit.evalue = e;
      if (pending.params.include_subject_segment) {
        const std::size_t local_begin = gapped.hsp.s_begin - range.start;
        hit.subject_segment.assign(
            range.codes.begin() + static_cast<std::ptrdiff_t>(local_begin),
            range.codes.begin() +
                static_cast<std::ptrdiff_t>(local_begin +
                                            gapped.hsp.s_len()));
      }
      bin.hits.push_back(std::move(hit));
      accepted.push_back(gapped);
    }
  }
  if (watch.has_value()) h_coord_extend_->record_seconds(watch->seconds());
}

namespace {

// Ranked-hit ordering of the final reply (ties broken by subject id; hits
// of one subject keep their bin emission order under std::sort's
// implementation-determinism because assembly feeds bins in index order).
void rank_hits(std::vector<align::AlignmentHit>& hits,
               std::uint32_t max_hits) {
  std::sort(hits.begin(), hits.end(),
            [](const align::AlignmentHit& a, const align::AlignmentHit& b) {
              if (a.evalue != b.evalue) return a.evalue < b.evalue;
              return a.subject_id < b.subject_id;
            });
  if (hits.size() > max_hits) hits.resize(max_hits);
}

}  // namespace

void StorageNode::coordinator_finish(std::uint64_t query_id,
                                     PendingQuery& pending,
                                     net::Context& ctx) {
  drain_tasks(pending.extend_tasks);

  QueryResultPayload reply;
  for (const SequenceBin& bin : pending.bins) {
    counters_.gapped_extensions += bin.dp_runs;
    if (bin.pruned) continue;
    reply.hits.insert(reply.hits.end(), bin.hits.begin(), bin.hits.end());
  }
  rank_hits(reply.hits, pending.params.max_hits);

#ifdef MENDEL_CHECKED
  if (config_.prune_extensions) {
    // Prune audit: pruned bins were fetched and extended too (see
    // coordinator_bin_and_fetch); their hits must not change the ranking.
    std::vector<align::AlignmentHit> full;
    for (const SequenceBin& bin : pending.bins) {
      full.insert(full.end(), bin.hits.begin(), bin.hits.end());
    }
    rank_hits(full, pending.params.max_hits);
    MENDEL_CHECK(full.size() == reply.hits.size(),
                 "node " << id_ << ": query " << query_id
                         << " prune audit: pruned ranking has "
                         << reply.hits.size() << " hits, full ranking "
                         << full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
      const align::AlignmentHit& a = full[i];
      const align::AlignmentHit& b = reply.hits[i];
      MENDEL_CHECK(a.subject_id == b.subject_id && a.evalue == b.evalue &&
                       a.alignment.hsp.score == b.alignment.hsp.score &&
                       a.alignment.hsp.q_begin == b.alignment.hsp.q_begin &&
                       a.alignment.hsp.s_begin == b.alignment.hsp.s_begin,
                   "node " << id_ << ": query " << query_id
                           << " prune audit: rank " << i
                           << " differs (full subject " << a.subject_id
                           << " evalue " << a.evalue << " vs pruned subject "
                           << b.subject_id << " evalue " << b.evalue << ")");
    }
  }
#endif

  record_span("coord.finish", query_id, pending.trace, ctx.now(), 0,
              reply.hits.size());
  ctx.send(pending.client, kQueryResult, query_id, encode_payload(reply));
  coord_pending_.erase(query_id);
}

// --- fetch fan-in shared by both roles --------------------------------------

void StorageNode::on_fetch_range_result(const net::Message& message,
                                        net::Context& ctx) {
  auto payload = decode_payload<FetchRangeResultPayload>(message.payload);
  if (payload.purpose >
      static_cast<std::uint8_t>(FetchPurpose::kGappedExtension)) {
    throw DecodeError("fetch_range_result: unknown purpose " +
                      std::to_string(payload.purpose));
  }
  // Fetched subject codes are scored against the query through unchecked
  // LUT kernels (ungapped X-drop and banded DP).
  validate_codes(payload.codes, seq::cardinality(config_.alphabet),
                 "fetch_range_result");
  FetchedRange range;
  range.sequence = payload.sequence;
  range.start = payload.start;
  range.sequence_length = payload.sequence_length;
  range.name = std::move(payload.sequence_name);
  range.codes = std::move(payload.codes);

  if (payload.purpose ==
      static_cast<std::uint8_t>(FetchPurpose::kGroupExtension)) {
    auto it = group_pending_.find(message.request_id);
    if (it == group_pending_.end()) return;
    PendingGroupQuery& pending = it->second;
    if (pending.awaiting_fetches == 0) {
      throw DecodeError("fetch_range_result: group query " +
                        std::to_string(message.request_id) +
                        " has no outstanding fetches (duplicate or forged "
                        "result from node " +
                        std::to_string(message.from) + ")");
    }
    if (payload.token < pending.fetched.size()) {
      pending.fetched[payload.token] = std::move(range);
      // Streaming extension: ungapped X-drop for this range's member seeds
      // runs now — on the pool under the threaded transport, inline under
      // the simulator — instead of queueing behind the last fetch. The
      // pending entry is a stable map node and is only torn down after
      // drain_tasks (reply assembly or cancel), so the captured reference
      // outlives the task.
      const std::size_t range_idx = payload.token;
      const bool wall = !ctx.virtual_time();
      schedule_extension(pending.extend_tasks, ctx,
                         [this, &pending, range_idx, wall] {
                           group_entry_extend_range(pending, range_idx, wall);
                         });
    }
    if (--pending.awaiting_fetches == 0) {
      group_entry_finish(message.request_id, pending, ctx);
    }
    return;
  }

  auto it = coord_pending_.find(message.request_id);
  if (it == coord_pending_.end()) return;
  PendingQuery& pending = it->second;
  if (pending.awaiting_fetches == 0) {
    throw DecodeError("fetch_range_result: query " +
                      std::to_string(message.request_id) +
                      " has no outstanding fetches (duplicate or forged "
                      "result from node " +
                      std::to_string(message.from) + ")");
  }
  if (payload.token < pending.fetched.size()) {
    pending.fetched[payload.token] = std::move(range);
    // Same streaming scheme as the group entry: the bin's banded DP chain
    // starts at arrival, and coordinator_finish only assembles.
    const std::size_t bin_idx = payload.token;
    const bool wall = !ctx.virtual_time();
    schedule_extension(pending.extend_tasks, ctx,
                       [this, &pending, bin_idx, wall] {
                         coordinator_extend_bin(pending, bin_idx, wall);
                       });
  }
  if (--pending.awaiting_fetches == 0) {
    coordinator_finish(message.request_id, pending, ctx);
  }
}

// --- elasticity ---------------------------------------------------------------

void StorageNode::on_rebalance(net::Context& ctx) {
  const std::uint32_t group = config_.topology->address(id_).group;
  // Ownership may move blocks either way; drop every cached seed list.
  invalidate_nn_cache();

  // Blocks: ship everything whose owner set no longer includes this node,
  // then compact the survivors into a fresh arena + tree (slots are
  // append-only, so eviction is a rebuild).
  const auto refs = tree_.collect_all();
  std::vector<Block> kept;
  std::map<net::NodeId, InsertBlocksPayload> outgoing;
  std::vector<seq::Code> decoded(arena_.window_length());
  for (const BlockRef& ref : refs) {
    arena_.copy_row(ref.slot, decoded.data());
    const auto owners = config_.topology->nodes_for_key(
        group, block_placement_key(ref.sequence, ref.start,
                                   {decoded.data(), decoded.size()}));
    if (std::find(owners.begin(), owners.end(), id_) != owners.end()) {
      kept.push_back(materialize(ref));
      continue;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ref.sequence) << 32) | ref.start;
    block_keys_.erase(key);
    Block moved = materialize(ref);
    for (net::NodeId owner : owners) {
      outgoing[owner].blocks.push_back(moved);
    }
  }
  if (!outgoing.empty()) {
    block_keys_.clear();
    arena_.clear();
    tree_ = vpt::DynamicVpTree<BlockRef, BlockRefMetric>(
        BlockRefMetric{config_.distance, &arena_, &probe_},
        vpt::DynamicVpTreeOptions{config_.bucket_capacity, true, 2.0,
                                  0x6e6f6465ULL + id_});
    auto fresh = admit_blocks(std::move(kept));
    if (!fresh.empty()) tree_.insert_batch(std::move(fresh));
  }
  for (auto& [owner, payload] : outgoing) {
    ctx.send(owner, kInsertBlocks, 0, encode_payload(payload));
  }

  // Sequence shard: same treatment against the global repository ring.
  std::vector<std::uint32_t> evicted;
  for (const auto& [sid, stored] : sequences_) {
    const auto homes =
        config_.topology->sequence_homes(sequence_placement_key(sid));
    if (std::find(homes.begin(), homes.end(), id_) != homes.end()) continue;
    StoreSequencePayload payload;
    payload.sequence = sid;
    payload.name = stored.name;
    payload.alphabet = static_cast<std::uint8_t>(config_.alphabet);
    payload.codes = stored.codes;
    for (net::NodeId home : homes) {
      ctx.send(home, kStoreSequence, 0, encode_payload(payload));
    }
    evicted.push_back(sid);
  }
  for (std::uint32_t sid : evicted) sequences_.erase(sid);
#ifdef MENDEL_CHECKED
  checked_audit("rebalance");
#endif
}

// --- persistence ------------------------------------------------------------

void StorageNode::save(CodecWriter& writer) const {
  writer.str("mendel-node-v2");
  writer.u32(id_);
  // v2 dumps arena rows in their stored (possibly bit-packed) form — no
  // inflate/deflate round trip — preceded by the geometry needed to decode
  // them: block identities in slot order, then one contiguous blob of
  // row_bytes()-sized payloads (stride padding is not persisted).
  auto refs = tree_.collect_all();
  std::sort(refs.begin(), refs.end(),
            [](const BlockRef& a, const BlockRef& b) {
              return a.slot < b.slot;
            });
  writer.u32(static_cast<std::uint32_t>(arena_.window_length()));
  writer.u8(static_cast<std::uint8_t>(arena_.packed_bits()));
  writer.u32(static_cast<std::uint32_t>(refs.size()));
  for (const BlockRef& ref : refs) {
    writer.u32(ref.sequence);
    writer.u32(ref.start);
  }
  const std::size_t row_bytes = arena_.row_bytes();
  writer.u64(static_cast<std::uint64_t>(refs.size()) * row_bytes);
  std::vector<std::uint8_t> row(arena_.stride());
  for (const BlockRef& ref : refs) {
    arena_.copy_row_bytes(ref.slot, row.data());
    writer.raw(std::span<const std::uint8_t>(row.data(), row_bytes));
  }
  writer.u32(static_cast<std::uint32_t>(sequences_.size()));
  // Deterministic order for byte-stable snapshots.
  std::vector<std::uint32_t> ids;
  ids.reserve(sequences_.size());
  for (const auto& [sid, stored] : sequences_) ids.push_back(sid);
  std::sort(ids.begin(), ids.end());
  for (std::uint32_t sid : ids) {
    const auto& stored = sequences_.at(sid);
    writer.u32(sid);
    writer.str(stored.name);
    writer.bytes(std::span<const std::uint8_t>(stored.codes.data(),
                                               stored.codes.size()));
  }
}

void StorageNode::load(CodecReader& reader) {
  const std::string magic = reader.str();
  require(magic == "mendel-node-v2",
          "StorageNode::load: unsupported node snapshot magic '" + magic +
              "' (re-index and save with this version)");
  const std::uint32_t saved_id = reader.u32();
  require(saved_id == id_, "StorageNode::load: snapshot is for node " +
                               std::to_string(saved_id));
  const std::size_t window_len = reader.u32();
  const unsigned bits = reader.u8();
  require(bits == 0 || bits == 2 || bits == 4,
          "StorageNode::load: bad packed row width " + std::to_string(bits));
  const std::uint32_t block_count = reader.u32();
  // window_length 0 is how an empty arena saves itself; with blocks
  // present it would make append_row below reject caller error.
  if (window_len == 0 && block_count != 0) {
    throw DecodeError("StorageNode::load: zero window length with " +
                      std::to_string(block_count) + " blocks");
  }
  // Snapshot bytes come off disk: bound every count by the bytes that must
  // back it before sizing containers (a corrupt count must not become a
  // multi-GB allocation).
  if (block_count > reader.remaining() / 8) {
    throw DecodeError("StorageNode::load: block count " +
                      std::to_string(block_count) +
                      " exceeds the remaining bytes");
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> idents(block_count);
  for (auto& [sequence, start] : idents) {
    sequence = reader.u32();
    start = reader.u32();
  }
  const std::size_t row_bytes =
      vpt::WindowArena::payload_bytes(window_len, bits);
  const std::uint64_t blob = reader.u64();
  require(blob == static_cast<std::uint64_t>(block_count) * row_bytes,
          "StorageNode::load: row blob length mismatch");
  if (blob > reader.remaining()) {
    throw DecodeError("StorageNode::load: row blob overruns the buffer");
  }
  // Rows go straight from the snapshot into the arena; when the stored
  // width matches the arena's encoding this is a verbatim copy, otherwise
  // append_row transcodes (e.g. a 4-bit snapshot loaded into a fresh
  // 2-bit arena widens it on the first ambiguity code).
  std::vector<BlockRef> fresh;
  fresh.reserve(block_count);
  for (const auto& [sequence, start] : idents) {
    const auto row = reader.raw(row_bytes);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(sequence) << 32) | start;
    if (!block_keys_.insert(key).second) continue;  // idempotent re-delivery
    const std::uint32_t slot =
        arena_.append_row(row.data(), row_bytes, window_len, bits);
    fresh.push_back({sequence, start, slot});
  }
  // Restored items count separately from this session's insertions (the
  // inserted/stored counters track work done since startup).
  counters_.blocks_restored += fresh.size();
  if (!fresh.empty()) {
    invalidate_nn_cache();
    tree_.insert_batch(std::move(fresh));
  }
  const std::uint32_t count = reader.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t sid = reader.u32();
    StoredSequence stored;
    stored.name = reader.str();
    stored.codes = reader.bytes();
    sequences_[sid] = std::move(stored);
    ++counters_.sequences_restored;
  }
#ifdef MENDEL_CHECKED
  checked_audit("load");
#endif
}

// --- invariant verification -------------------------------------------------

std::vector<Block> StorageNode::blocks() const {
  const auto refs = tree_.collect_all();
  std::vector<Block> out;
  out.reserve(refs.size());
  for (const BlockRef& ref : refs) out.push_back(materialize(ref));
  return out;
}

std::vector<seq::SequenceId> StorageNode::stored_sequence_ids() const {
  std::vector<seq::SequenceId> ids;
  ids.reserve(sequences_.size());
  for (const auto& [sid, stored] : sequences_) ids.push_back(sid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void StorageNode::audit_placement(const BlockRef& ref,
                                  std::vector<std::string>& out) const {
  const std::string ident = "node " + std::to_string(id_) + ": block (seq " +
                            std::to_string(ref.sequence) + ", start " +
                            std::to_string(ref.start) + ")";
  std::vector<seq::Code> decoded(arena_.window_length());
  arena_.copy_row(ref.slot, decoded.data());
  const seq::CodeSpan window{decoded.data(), decoded.size()};
  // Tier 1: the window must re-hash to the group this node belongs to.
  const std::uint32_t own_group = config_.topology->address(id_).group;
  const std::uint64_t prefix = config_.prefix_tree->hash(window);
  const std::uint32_t group = config_.topology->group_for_prefix(prefix);
  if (group != own_group) {
    out.push_back(ident + " hashes to prefix " + std::to_string(prefix) +
                  " = group " + std::to_string(group) +
                  " but is stored in group " + std::to_string(own_group));
    return;  // tier 2 is meaningless against the wrong group ring
  }
  // Tier 2: the intra-group consistent-hash owners must include this node.
  const auto owners = config_.topology->nodes_for_key(
      group, block_placement_key(ref.sequence, ref.start, window));
  if (std::find(owners.begin(), owners.end(), id_) == owners.end()) {
    out.push_back(ident + " is not among the " +
                  std::to_string(owners.size()) +
                  " ring owner(s) of its placement key");
  }
}

std::vector<std::string> StorageNode::audit(std::size_t max_violations) const {
  std::vector<std::string> out;
  const std::string me = "node " + std::to_string(id_);

  // Local vp-tree structure (balance, occupancy, mu admissibility).
  for (auto& violation : tree_.validate(max_violations)) {
    out.push_back(me + " vp-tree: " + std::move(violation));
  }

  // SIMD layout contract: the batched kernels gather straight off the
  // arena buffer, so base alignment and row padding are load-bearing.
  if (!arena_.layout_ok()) {
    out.push_back(me + ": window arena violates the SIMD layout contract "
                       "(base alignment / row stride padding)");
  }

  // Content half of that contract: every stored row must decode and
  // re-encode to the same bytes (zero stride padding, no stray high bits in
  // packed rows) — the packed kernels and the scalar oracle only agree on
  // well-formed rows.
  for (std::uint32_t slot = 0; slot < arena_.size(); ++slot) {
    if (out.size() >= max_violations) return out;
    if (!arena_.row_roundtrip_ok(slot)) {
      out.push_back(me + ": arena slot " + std::to_string(slot) +
                    " fails the packed-row round trip (stray bits or "
                    "nonzero padding)");
    }
  }

  // Spilled arenas: the block store's residency invariants (pinned blocks
  // resident, accounting consistent, resident set within budget + pins).
  std::string store_why;
  if (!arena_.store_audit(&store_why)) {
    out.push_back(me + ": block store residency audit failed: " + store_why);
  }

  // Bookkeeping: tree contents, dedup keys and arena slots must agree.
  const auto refs = tree_.collect_all();
  if (refs.size() != block_keys_.size()) {
    out.push_back(me + ": vp-tree holds " + std::to_string(refs.size()) +
                  " blocks but the dedup key set holds " +
                  std::to_string(block_keys_.size()));
  }
  if (refs.size() != arena_.size()) {
    out.push_back(me + ": vp-tree holds " + std::to_string(refs.size()) +
                  " blocks but the window arena holds " +
                  std::to_string(arena_.size()));
  }
  for (const BlockRef& ref : refs) {
    if (out.size() >= max_violations) return out;
    if (ref.slot >= arena_.size()) {
      out.push_back(me + ": block (seq " + std::to_string(ref.sequence) +
                    ", start " + std::to_string(ref.start) +
                    ") references arena slot " + std::to_string(ref.slot) +
                    " past the arena end");
      return out;  // placement below would read out of bounds
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ref.sequence) << 32) | ref.start;
    if (!block_keys_.contains(key)) {
      out.push_back(me + ": block (seq " + std::to_string(ref.sequence) +
                    ", start " + std::to_string(ref.start) +
                    ") is missing from the dedup key set");
    }
  }

  // Two-tier DHT placement of every stored block. hash() needs a routing
  // tree whose window length matches the stored payloads, so check that
  // compatibility first instead of letting it throw mid-audit.
  if (!refs.empty()) {
    if (!config_.prefix_tree->built()) {
      out.push_back(me + ": stores blocks but the routing prefix tree is "
                         "not built");
      return out;
    }
    if (arena_.window_length() != config_.prefix_tree->window_length()) {
      out.push_back(
          me + ": arena window length " +
          std::to_string(arena_.window_length()) +
          " != routing prefix tree window length " +
          std::to_string(config_.prefix_tree->window_length()));
      return out;
    }
  }
  for (const BlockRef& ref : refs) {
    if (out.size() >= max_violations) return out;
    audit_placement(ref, out);
  }

  // Sequence shard: every stored sequence's repository-ring homes must
  // include this node.
  for (const auto& [sid, stored] : sequences_) {
    if (out.size() >= max_violations) return out;
    const auto homes =
        config_.topology->sequence_homes(sequence_placement_key(sid));
    if (std::find(homes.begin(), homes.end(), id_) == homes.end()) {
      out.push_back(me + ": sequence " + std::to_string(sid) + " ('" +
                    stored.name + "') is stored off its home ring");
    }
  }
  return out;
}

#ifdef MENDEL_CHECKED
void StorageNode::checked_audit(const char* where) const {
  const auto violations = audit();
  MENDEL_CHECK(violations.empty(),
               "node " << id_ << " failed the invariant audit after " << where
                       << " (" << violations.size()
                       << " violation(s)), first: " << violations.front());
}

void StorageNode::checked_audit_fresh(
    const std::vector<BlockRef>& fresh) const {
  std::vector<std::string> out;
  for (auto& violation : tree_.validate()) {
    out.push_back("node " + std::to_string(id_) + " vp-tree: " +
                  std::move(violation));
  }
  if (config_.checked_placement_audit) {
    for (const BlockRef& ref : fresh) {
      if (out.size() >= 32) break;
      audit_placement(ref, out);
    }
  }
  MENDEL_CHECK(out.empty(),
               "node " << id_ << " failed the invariant audit after insert ("
                       << out.size() << " violation(s)), first: "
                       << out.front());
}
#endif

}  // namespace mendel::core
