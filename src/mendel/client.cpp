#include "src/mendel/client.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>

#include "src/cluster/telemetry.h"
#include "src/common/error.h"
#include "src/hash/sha1.h"
#include "src/mendel/protocol.h"
#include "src/scoring/matrix.h"

namespace mendel::core {

namespace {

// MENDEL_ARENA_BUDGET=<bytes>[k|m|g] overrides every node's resident arena
// budget; CI's spill job uses it to force out-of-core operation without
// touching call sites. Malformed values are ignored.
std::size_t arena_budget_from_env(std::size_t fallback) {
  const char* env = std::getenv("MENDEL_ARENA_BUDGET");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env) return fallback;
  std::size_t scale = 1;
  switch (*end) {
    case '\0': break;
    case 'k': case 'K': scale = 1024ull; break;
    case 'm': case 'M': scale = 1024ull * 1024; break;
    case 'g': case 'G': scale = 1024ull * 1024 * 1024; break;
    default: return fallback;
  }
  return static_cast<std::size_t>(value) * scale;
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      client_spans_(options_.runtime.trace_buffer_capacity) {
  options_.runtime.arena_resident_budget =
      arena_budget_from_env(options_.runtime.arena_resident_budget);
  options_.runtime.socket.endpoints =
      net::endpoints_from_env(std::move(options_.runtime.socket.endpoints));
  net::TransportConfig transport_config;
  transport_config.mode = options_.runtime.transport_mode;
  transport_config.cost = options_.cost;
  transport_config.schedule_seed = options_.runtime.schedule_seed;
  transport_config.socket = options_.runtime.socket;
  transport_owner_ = net::make_transport(transport_config);
  transport_ = transport_owner_.get();
  sim_ = dynamic_cast<net::SimTransport*>(transport_);
  threaded_ = dynamic_cast<net::ThreadTransport*>(transport_);
  socket_ = dynamic_cast<net::SocketTransport*>(transport_);
  if (options_.runtime.search_threads > 0) {
    search_pool_ =
        std::make_unique<ThreadPool>(options_.runtime.search_threads);
  }
  if (options_.runtime.enable_metrics) {
    c_submitted_ = &registry_.counter("client.queries_submitted");
    c_completed_ = &registry_.counter("client.queries_completed");
    c_stalled_ = &registry_.counter("client.queries_stalled");
    h_turnaround_ = &registry_.histogram("client.turnaround_seconds");
  }
  client_actor_ = std::make_unique<net::FunctionActor>(
      [this](const net::Message& message, net::Context& ctx) {
        if (message.type == kBarrierAck) {
          std::lock_guard lock(barrier_mu_);
          if (message.request_id == barrier_id_ &&
              barrier_outstanding_ > 0 && --barrier_outstanding_ == 0) {
            barrier_cv_.notify_all();
          }
          return;
        }
        if (message.type == kTraceReport) {
          auto report = decode_payload<TraceReportPayload>(message.payload);
          std::lock_guard lock(trace_mu_);
          auto& spans = trace_reports_[message.request_id];
          spans.insert(spans.end(),
                       std::make_move_iterator(report.spans.begin()),
                       std::make_move_iterator(report.spans.end()));
          return;
        }
        if (message.type != kQueryResult) return;
        auto payload = decode_payload<QueryResultPayload>(message.payload);
        Reply reply;
        reply.hits = std::move(payload.hits);
        reply.arrival = ctx.now();
        if (options_.runtime.enable_tracing) {
          std::uint64_t parent = 0;
          {
            std::lock_guard lock(trace_mu_);
            auto it = submit_spans_.find(message.request_id);
            if (it != submit_spans_.end()) {
              parent = it->second;
              submit_spans_.erase(it);
            }
          }
          record_client_span("client.reply", message.request_id, parent,
                             ctx.now(), reply.hits.size());
        }
        {
          std::lock_guard lock(reply_mu_);
          replies_[message.request_id] = std::move(reply);
        }
        reply_cv_.notify_all();
      });
  transport_->register_actor(net::kClientNode, client_actor_.get());
}

Client::~Client() {
  // The threaded workers reference the storage nodes; stop them before the
  // nodes_ vector is destroyed. The socket dispatch threads reference the
  // client actor, so they too stop before members go away.
  if (threaded_ && started_) threaded_->drain_and_stop();
  if (socket_) socket_->stop();
}

void Client::spawn_nodes(seq::Alphabet alphabet) {
  alphabet_ = alphabet;
  // distance_ is allocated by the caller (index/load_index) BEFORE the
  // prefix tree captures its address; it must never be reallocated here.
  require(distance_ != nullptr, "spawn_nodes: distance matrix not set");

  if (socket_) {
    // The nodes live in mendel-node daemons: start the transport (binds
    // nothing locally, dials every endpoint), broadcast the cluster
    // description, and barrier so indexing only starts against
    // fully-constructed remote nodes.
    require(options_.runtime.socket.endpoints.size() >=
                topology_->total_nodes(),
            "spawn_nodes: socket mode needs an endpoint per node "
            "(RuntimeOptions::socket.endpoints or MENDEL_ENDPOINTS)");
    socket_->start();
    started_ = true;
    const auto payload = encode_payload(make_node_init());
    for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
      net::Message message;
      message.from = net::kClientNode;
      message.to = id;
      message.type = kNodeInit;
      message.request_id = 0;
      message.payload = payload;
      transport_->send(std::move(message));
    }
    settle();
    return;
  }

  StorageNodeConfig node_config;
  node_config.topology = topology_.get();
  node_config.prefix_tree = prefix_tree_.get();
  node_config.distance = distance_.get();
  node_config.alphabet = alphabet;
  node_config.bucket_capacity = options_.bucket_capacity;
  node_config.search_pool = search_pool_.get();
  node_config.nn_cache_capacity = options_.runtime.nn_cache_capacity;
  node_config.metrics =
      options_.runtime.enable_metrics ? &registry_ : nullptr;
  node_config.trace_buffer_capacity = options_.runtime.trace_buffer_capacity;
  node_config.arena_resident_budget = options_.runtime.arena_resident_budget;
  node_config.arena_packing = options_.runtime.arena_packing;
  node_config.arena_segment_bytes = options_.runtime.arena_segment_bytes;
  node_config.prune_extensions = options_.runtime.prune_extensions;

  nodes_.reserve(topology_->total_nodes());
  for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
    nodes_.push_back(std::make_unique<StorageNode>(id, node_config));
    transport_->register_actor(id, nodes_.back().get());
  }
  if (threaded_) {
    threaded_->start();
    started_ = true;
  }
}

double Client::settle() {
  if (sim_) return sim_->run_until_idle();
  if (threaded_) {
    threaded_->wait_idle();
    return 0.0;
  }
  settle_socket();
  return 0.0;
}

void Client::settle_socket() {
  std::vector<net::NodeId> targets;
  for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
    if (!transport_down(id)) targets.push_back(id);
  }
  if (targets.empty()) return;
  const std::uint64_t barrier_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(barrier_mu_);
    barrier_id_ = barrier_id;
    barrier_outstanding_ = targets.size();
  }
  for (net::NodeId id : targets) {
    net::Message message;
    message.from = net::kClientNode;
    message.to = id;
    message.type = kBarrier;
    message.request_id = barrier_id;
    transport_->send(std::move(message));
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              options_.runtime.socket.settle_timeout));
  std::unique_lock lock(barrier_mu_);
  while (barrier_outstanding_ > 0) {
    if (barrier_cv_.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      // A node died (or dropped our barrier) mid-settle; give up rather
      // than hang — the caller's own fault handling owns the follow-up.
      barrier_outstanding_ = 0;
      break;
    }
  }
  barrier_id_ = 0;
}

double Client::now_seconds() const {
  if (sim_) return sim_->external_time();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Client::transport_down(net::NodeId id) const {
  return fault_injector().node_down(id);
}

net::FaultInjector& Client::fault_injector() const {
  net::FaultInjector* faults = transport_->fault_injector();
  require(faults != nullptr,
          "Client::fault_injector: transport has no fault injector");
  return *faults;
}

void Client::propagate_residues() {
  if (socket_) {
    // Remote nodes learn the E-value denominator by message.
    SetResiduesPayload payload;
    payload.residues = database_residues_;
    const auto bytes = encode_payload(payload);
    for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
      if (transport_down(id)) continue;
      net::Message message;
      message.from = net::kClientNode;
      message.to = id;
      message.type = kSetResidues;
      message.request_id = 0;
      message.payload = bytes;
      transport_->send(std::move(message));
    }
    settle();
    return;
  }
  for (auto& node : nodes_) {
    node->set_database_residues(database_residues_);
  }
}

NodeInitPayload Client::make_node_init() const {
  NodeInitPayload init;
  // One index epoch per Client (socket mode forbids load_index), so the
  // generation is a constant: re-sending it to a daemon that never died is
  // an ignored no-op, while a restarted daemon (generation 0) rebuilds.
  init.generation = 1;
  init.alphabet = static_cast<std::uint8_t>(alphabet_);
  init.num_groups = options_.topology.num_groups;
  init.nodes_per_group = options_.topology.nodes_per_group;
  init.ring_virtual_nodes = options_.topology.ring_virtual_nodes;
  init.replication = options_.topology.replication;
  init.sequence_replication = options_.topology.sequence_replication;
  const std::uint32_t dense =
      options_.topology.num_groups * options_.topology.nodes_per_group;
  for (net::NodeId id = dense; id < topology_->total_nodes(); ++id) {
    init.extra_node_groups.push_back(topology_->address(id).group);
  }
  init.bucket_capacity = options_.bucket_capacity;
  init.database_residues = database_residues_;
  for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
    if (transport_down(id)) init.down_nodes.push_back(id);
  }
  CodecWriter tree;
  prefix_tree_->encode(tree);
  init.prefix_tree = tree.take();
  return init;
}

IndexReport Client::index(const seq::SequenceStore& store) {
  require(!indexed_, "Client::index: already indexed");
  require(!store.empty(), "Client::index: empty store");

  topology_ = std::make_unique<cluster::Topology>(options_.topology);
  distance_ = std::make_unique<score::DistanceMatrix>(
      score::default_distance(store.alphabet()));

  Indexer sampler(topology_.get(), distance_.get(), options_.indexing);
  prefix_tree_ = std::make_unique<vpt::VpPrefixTree>(
      sampler.build_prefix_tree(store, options_.prefix_tree));
  topology_->bind_prefixes(prefix_tree_->leaf_prefixes());

  spawn_nodes(store.alphabet());

  Indexer indexer(topology_.get(), distance_.get(), options_.indexing);
  const IndexReport report = indexer.index_store(
      store, *prefix_tree_, *transport_, net::kClientNode);
  settle();

  database_residues_ = store.total_residues();
  propagate_residues();
  next_sequence_id_ = static_cast<seq::SequenceId>(store.size());
  indexed_ = true;
  publish_load_gauges();
  return report;
}

seq::SequenceId Client::add_sequences(const seq::SequenceStore& more) {
  require(indexed_, "Client::add_sequences before index()/load_index()");
  require(more.alphabet() == alphabet_,
          "Client::add_sequences: alphabet mismatch");
  require(!more.empty(), "Client::add_sequences: empty store");
  const seq::SequenceId base = next_sequence_id_;

  Indexer indexer(topology_.get(), distance_.get(), options_.indexing);
  indexer.index_store(more, *prefix_tree_, *transport_, net::kClientNode,
                      base);
  settle();

  next_sequence_id_ += static_cast<seq::SequenceId>(more.size());
  database_residues_ += more.total_residues();
  propagate_residues();
  publish_load_gauges();
  return base;
}

net::NodeId Client::add_node(std::uint32_t group) {
  require(indexed_, "Client::add_node before index()/load_index()");
  require(sim_ != nullptr,
          "Client::add_node: elastic scale-out requires TransportMode::kSim "
          "(the threaded runtime pins its worker set at start())");
  const net::NodeId id = topology_->add_node(group);

  StorageNodeConfig node_config;
  node_config.topology = topology_.get();
  node_config.prefix_tree = prefix_tree_.get();
  node_config.distance = distance_.get();
  node_config.alphabet = alphabet_;
  node_config.bucket_capacity = options_.bucket_capacity;
  node_config.database_residues = database_residues_;
  node_config.search_pool = search_pool_.get();
  node_config.nn_cache_capacity = options_.runtime.nn_cache_capacity;
  node_config.metrics =
      options_.runtime.enable_metrics ? &registry_ : nullptr;
  node_config.trace_buffer_capacity = options_.runtime.trace_buffer_capacity;
  node_config.arena_resident_budget = options_.runtime.arena_resident_budget;
  node_config.arena_packing = options_.runtime.arena_packing;
  node_config.arena_segment_bytes = options_.runtime.arena_segment_bytes;
  node_config.prune_extensions = options_.runtime.prune_extensions;
  nodes_.push_back(std::make_unique<StorageNode>(id, node_config));
  transport_->register_actor(id, nodes_.back().get());

  // Every pre-existing node re-evaluates ownership; blocks and sequences
  // the newcomer now owns flow to it (consistent hashing moves only the
  // remapped slice).
  for (net::NodeId existing = 0; existing < id; ++existing) {
    net::Message message;
    message.from = net::kClientNode;
    message.to = existing;
    message.type = kRebalance;
    message.request_id = 0;
    transport_->send(std::move(message));
  }
  settle();
  publish_load_gauges();
  return id;
}

// --- concurrent query admission --------------------------------------------

QueryTicket Client::submit(const seq::Sequence& query, QueryParams params) {
  require(indexed_, "Client::submit before index()/load_index()");
  require(query.alphabet() == alphabet_,
          "Client::submit: alphabet mismatch with indexed database");

  const std::uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  // Symmetric architecture: any node can be the system entry point; rotate
  // deterministically per query.
  const net::NodeId entry = static_cast<net::NodeId>(
      hashing::sha1_prefix64("entry" + std::to_string(query_id)) %
      topology_->total_nodes());

  QueryRequestPayload request;
  request.params = std::move(params);
  request.query.assign(query.codes().begin(), query.codes().end());

  QueryTicket ticket;
  ticket.id = query_id;
  ticket.injected_at = now_seconds();
  // Deprecated field, still populated for callers that diff against it;
  // outcome.traffic itself now comes from per-query attribution.
  ticket.traffic_before = transport_->stats();

  if (options_.runtime.enable_tracing) {
    const std::uint64_t submit_span =
        record_client_span("client.submit", query_id, /*parent_span=*/0,
                           ticket.injected_at, request.query.size());
    request.trace.enabled = 1;
    request.trace.parent_span = submit_span;
    std::lock_guard lock(trace_mu_);
    submit_spans_[query_id] = submit_span;
  }

  // Open this query's exact traffic bucket before the first message flows.
  transport_->begin_query_stats(query_id);
  if (c_submitted_ != nullptr) c_submitted_->add();

  net::Message message;
  message.from = net::kClientNode;
  message.to = entry;
  message.type = kQueryRequest;
  message.request_id = query_id;
  message.payload = encode_payload(request);
  transport_->send(std::move(message));
  return ticket;
}

std::optional<Client::Reply> Client::take_reply(std::uint64_t query_id) {
  std::lock_guard lock(reply_mu_);
  auto it = replies_.find(query_id);
  if (it == replies_.end()) return std::nullopt;
  std::optional<Reply> reply = std::move(it->second);
  replies_.erase(it);
  return reply;
}

void Client::broadcast_cancel(std::uint64_t query_id) {
  for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
    if (transport_down(id)) {
      // The transport would drop the cancel anyway; remember it so the
      // node is scrubbed the moment it heals.
      std::lock_guard lock(cancel_mu_);
      deferred_cancels_[id].push_back(query_id);
      continue;
    }
    net::Message cancel;
    cancel.from = net::kClientNode;
    cancel.to = id;
    cancel.type = kCancelQuery;
    cancel.request_id = query_id;
    transport_->send(std::move(cancel));
  }
}

QueryOutcome Client::finish_outcome(const QueryTicket& ticket,
                                    std::optional<Reply> reply) {
  QueryOutcome outcome;
  if (reply.has_value()) {
    outcome.hits = std::move(reply->hits);
    outcome.turnaround = reply->arrival - ticket.injected_at;
  } else {
    // The dataflow stalled (a fan-in waits on a node whose messages were
    // dropped). Abort cluster-side pending state so nothing leaks, and
    // report the incomplete outcome instead of hanging or throwing.
    outcome.completed = false;
    broadcast_cancel(ticket.id);
    const double horizon = settle();
    outcome.turnaround =
        (sim_ ? horizon : now_seconds()) - ticket.injected_at;
    // No reply means no client.reply span consumed the submit-span link.
    std::lock_guard lock(trace_mu_);
    submit_spans_.erase(ticket.id);
  }
  // Exactly this query's traffic (the transport tagged every message with
  // this request_id into the bucket opened at submit). The stalled branch
  // above runs first, so the abort's cancel broadcast is included.
  outcome.traffic = transport_->take_query_stats(ticket.id);
  if (h_turnaround_ != nullptr) {
    h_turnaround_->record_seconds(outcome.turnaround);
  }
  if (outcome.completed) {
    if (c_completed_ != nullptr) c_completed_->add();
  } else if (c_stalled_ != nullptr) {
    c_stalled_->add();
  }
  return outcome;
}

void Client::publish_load_gauges() {
  // Socket mode hosts no local nodes, so there is no placement to report
  // (nodes_ is empty; the daemons see their own shards only).
  if (!options_.runtime.enable_metrics || nodes_.empty()) return;
  const auto counts = block_counts();
  cluster::publish_load(cluster::analyze_load(counts), registry_);
}

std::uint64_t Client::record_client_span(const char* name,
                                         std::uint64_t query_id,
                                         std::uint64_t parent_span,
                                         double start, std::uint64_t value) {
  obs::SpanRecord span;
  span.name = name;
  span.node = net::kClientNode;
  span.query_id = query_id;
  span.span_id = client_spans_.next_span_id(net::kClientNode);
  span.parent_span = parent_span;
  span.start = start;
  // Client spans are point events (admit / receipt); durations live in the
  // node-side spans, so 0 here keeps sim runs byte-stable.
  span.duration_ns = 0;
  span.value = value;
  const std::uint64_t span_id = span.span_id;
  client_spans_.add(std::move(span));
  return span_id;
}

QueryOutcome Client::wait_sim(const QueryTicket& ticket) {
  // Drains every in-flight event (this ticket's and any other admitted
  // query's); replies land in the table and later waits find them
  // immediately. run_until_idle also advances the external clock to the
  // drained horizon, so future injections start there.
  sim_->run_until_idle();
  return finish_outcome(ticket, take_reply(ticket.id));
}

QueryOutcome Client::wait_threaded(const QueryTicket& ticket) {
  std::optional<Reply> reply;
  for (;;) {
    {
      // Explicit re-check after a bounded wait (not a predicate lambda) so
      // the thread-safety analysis can see replies_ accessed under the
      // lock; the outer loop absorbs spurious wakeups and timeouts.
      std::unique_lock lock(reply_mu_);
      auto it = replies_.find(ticket.id);
      if (it == replies_.end()) {
        reply_cv_.wait_for(lock, std::chrono::milliseconds(2));
        it = replies_.find(ticket.id);
      }
      if (it != replies_.end()) {
        reply = std::move(it->second);
        replies_.erase(it);
        break;
      }
    }
    // No reply yet. If the whole cluster is quiescent the dataflow cannot
    // make further progress: the query stalled. (A reply may have raced in
    // between the two checks; take_reply in finish_outcome would still
    // miss it, so re-check under the lock first.)
    if (threaded_->idle()) {
      reply = take_reply(ticket.id);
      break;
    }
  }
  return finish_outcome(ticket, std::move(reply));
}

QueryOutcome Client::wait_socket(const QueryTicket& ticket) {
  // No cluster-wide idle signal exists across processes, so the stall
  // detector is a deadline: a reply missing past query_timeout means the
  // dataflow lost a message (node death, dropped frame) and will not
  // complete. finish_outcome then cancels cluster-side pending state.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              options_.runtime.socket.query_timeout));
  std::optional<Reply> reply;
  {
    std::unique_lock lock(reply_mu_);
    for (;;) {
      auto it = replies_.find(ticket.id);
      if (it != replies_.end()) {
        reply = std::move(it->second);
        replies_.erase(it);
        break;
      }
      if (reply_cv_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        // One final re-check: the reply may have raced the timeout.
        it = replies_.find(ticket.id);
        if (it != replies_.end()) {
          reply = std::move(it->second);
          replies_.erase(it);
        }
        break;
      }
    }
  }
  return finish_outcome(ticket, std::move(reply));
}

QueryOutcome Client::wait(const QueryTicket& ticket) {
  if (sim_) return wait_sim(ticket);
  if (threaded_) return wait_threaded(ticket);
  return wait_socket(ticket);
}

QueryOutcome Client::query(const seq::Sequence& query, QueryParams params) {
  return wait(submit(query, std::move(params)));
}

std::vector<QueryOutcome> Client::query_batch(
    const std::vector<seq::Sequence>& queries, QueryParams params) {
  std::vector<QueryTicket> tickets;
  tickets.reserve(queries.size());
  for (const auto& query : queries) tickets.push_back(submit(query, params));
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(tickets.size());
  for (const auto& ticket : tickets) outcomes.push_back(wait(ticket));
  return outcomes;
}

// --- observability ----------------------------------------------------------

obs::MetricsSnapshot Client::metrics() const {
  obs::MetricsSnapshot snap = registry_.snapshot();
  const auto add_counter = [&snap](const char* name, std::uint64_t value) {
    snap.counters.push_back({name, value});
  };

  // NodeCounters stay plain per-node structs (no atomics on the node hot
  // paths); fold their cluster totals in as synthetic node.* entries.
  const NodeCounters totals = total_counters();
  add_counter("node.blocks_inserted", totals.blocks_inserted);
  add_counter("node.sequences_stored", totals.sequences_stored);
  add_counter("node.blocks_restored", totals.blocks_restored);
  add_counter("node.sequences_restored", totals.sequences_restored);
  add_counter("node.nn_searches", totals.nn_searches);
  add_counter("node.nn_cache_hits", totals.nn_cache_hits);
  add_counter("node.nn_cache_misses", totals.nn_cache_misses);
  add_counter("node.seeds_emitted", totals.seeds_emitted);
  add_counter("node.fetches_served", totals.fetches_served);
  add_counter("node.group_queries", totals.group_queries);
  add_counter("node.queries_coordinated", totals.queries_coordinated);
  add_counter("node.anchors_extended", totals.anchors_extended);
  add_counter("node.gapped_extensions", totals.gapped_extensions);
  add_counter("node.fetch_ranges_coalesced", totals.fetch_ranges_coalesced);
  add_counter("node.anchors_pruned", totals.anchors_pruned);

  const net::NetworkStats traffic = transport_->stats();
  add_counter("net.messages", traffic.messages);
  add_counter("net.bytes", traffic.bytes);
  if (sim_ != nullptr) {
    add_counter("net.dropped_messages", sim_->dropped_messages());
  } else if (threaded_ != nullptr) {
    add_counter("net.dropped_messages", threaded_->dropped_messages());
    add_counter("net.handler_errors", threaded_->handler_errors().size());
    // Node-side rejected frames already flow through the registry's
    // net.decode_errors counter; fold in the transport backstop (frames a
    // non-node actor failed to decode) so the exported total covers every
    // layer.
    for (auto& counter : snap.counters) {
      if (counter.name == "net.decode_errors") {
        counter.value += threaded_->decode_errors();
      }
    }
  } else {
    // Socket mode: these cover only this coordinator process — each
    // daemon's transport keeps its own (the nodes are remote, so the
    // registry holds no node.*/net.decode_errors entries to fold into).
    add_counter("net.dropped_messages", socket_->dropped_messages());
    add_counter("net.handler_errors", socket_->handler_errors().size());
    add_counter("net.decode_errors", socket_->decode_errors());
    add_counter("net.frame_errors", socket_->frame_errors());
    add_counter("net.reconnects", socket_->reconnects());
    add_counter("net.heartbeats_missed", socket_->heartbeats_missed());
  }

  std::uint64_t buffered = client_spans_.size();
  std::uint64_t dropped = client_spans_.dropped();
  for (const auto& node : nodes_) {
    buffered += node->span_buffer().size();
    dropped += node->span_buffer().dropped();
  }
  snap.gauges.push_back(
      {"trace.spans_buffered", static_cast<std::int64_t>(buffered)});
  add_counter("trace.spans_dropped", dropped);

  // Window-arena residency across the cluster: how many arena bytes are
  // mapped in memory right now, how many the packed rows occupy in total,
  // and the block stores' fault/eviction traffic (all zero for all-resident
  // unpacked deployments — the entries are always present so dashboards
  // and the schema check see a stable key set).
  std::uint64_t resident = 0;
  std::uint64_t packed = 0;
  vpt::BlockStoreStats store_totals;
  for (const auto& node : nodes_) {
    const auto arena = node->arena_stats();
    resident += arena.resident_bytes;
    packed += arena.packed_bytes;
    store_totals.hits += arena.store.hits;
    store_totals.misses += arena.store.misses;
    store_totals.evictions += arena.store.evictions;
    store_totals.faults += arena.store.faults;
  }
  snap.gauges.push_back(
      {"arena.resident_bytes", static_cast<std::int64_t>(resident)});
  snap.gauges.push_back(
      {"arena.packed_bytes", static_cast<std::int64_t>(packed)});
  add_counter("blockstore.hits", store_totals.hits);
  add_counter("blockstore.misses", store_totals.misses);
  add_counter("blockstore.evictions", store_totals.evictions);
  add_counter("blockstore.faults", store_totals.faults);

  snap.sort();
  return snap;
}

obs::QueryTrace Client::collect_trace(std::uint64_t query_id) {
  require(indexed_, "Client::collect_trace before index()/load_index()");
  for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
    if (transport_down(id)) continue;
    net::Message collect;
    collect.from = net::kClientNode;
    collect.to = id;
    collect.type = kCollectTrace;
    collect.request_id = query_id;
    transport_->send(std::move(collect));
  }
  settle();

  obs::QueryTrace trace;
  trace.query_id = query_id;
  {
    std::lock_guard lock(trace_mu_);
    auto it = trace_reports_.find(query_id);
    if (it != trace_reports_.end()) {
      trace.spans = std::move(it->second);
      trace_reports_.erase(it);
    }
  }
  for (auto& span : client_spans_.take(query_id)) {
    trace.spans.push_back(std::move(span));
  }
  trace.sort();
  return trace;
}

// --- telemetry --------------------------------------------------------------

const cluster::Topology& Client::topology() const {
  require(topology_ != nullptr, "Client::topology before index()");
  return *topology_;
}

std::vector<std::uint64_t> Client::block_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(nodes_.size());
  for (const auto& node : nodes_) counts.push_back(node->block_count());
  return counts;
}

NodeCounters Client::total_counters() const {
  NodeCounters total;
  for (const auto& node : nodes_) {
    const NodeCounters& c = node->counters();
    total.blocks_inserted += c.blocks_inserted;
    total.sequences_stored += c.sequences_stored;
    total.blocks_restored += c.blocks_restored;
    total.sequences_restored += c.sequences_restored;
    total.nn_searches += c.nn_searches;
    total.nn_cache_hits += c.nn_cache_hits;
    total.nn_cache_misses += c.nn_cache_misses;
    total.seeds_emitted += c.seeds_emitted;
    total.fetches_served += c.fetches_served;
    total.group_queries += c.group_queries;
    total.queries_coordinated += c.queries_coordinated;
    total.anchors_extended += c.anchors_extended;
    total.gapped_extensions += c.gapped_extensions;
    total.fetch_ranges_coalesced += c.fetch_ranges_coalesced;
    total.anchors_pruned += c.anchors_pruned;
  }
  return total;
}

net::SimTransport& Client::transport() {
  require(sim_ != nullptr, "Client::transport: not in TransportMode::kSim");
  return *sim_;
}

net::ThreadTransport& Client::thread_transport() {
  require(threaded_ != nullptr,
          "Client::thread_transport: not in TransportMode::kThreaded");
  return *threaded_;
}

net::SocketTransport& Client::socket_transport() {
  require(socket_ != nullptr,
          "Client::socket_transport: not in TransportMode::kSocket");
  return *socket_;
}

StorageNode& Client::node(net::NodeId id) {
  require(id < nodes_.size(), "Client::node: id out of range");
  return *nodes_[id];
}

const StorageNode& Client::node(net::NodeId id) const {
  require(id < nodes_.size(), "Client::node: id out of range");
  return *nodes_[id];
}

const vpt::VpPrefixTree& Client::prefix_tree() const {
  require(prefix_tree_ != nullptr, "Client::prefix_tree before index()");
  return *prefix_tree_;
}

void Client::broadcast_membership(net::NodeId changed, bool down) {
  SetNodeDownPayload payload;
  payload.node = changed;
  payload.down = down;
  const auto bytes = encode_payload(payload);
  for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
    // On heal the changed node hears it too: a daemon that stayed alive
    // ignores the same-generation re-init, so this message is what clears
    // its own membership view. On fail its traffic is dropped anyway.
    if ((down && id == changed) || transport_down(id)) continue;
    net::Message message;
    message.from = net::kClientNode;
    message.to = id;
    message.type = kSetNodeDown;
    message.request_id = 0;
    message.payload = bytes;
    transport_->send(std::move(message));
  }
}

void Client::fail_node(net::NodeId id) {
  require(topology_ != nullptr && id < topology_->total_nodes(),
          "Client::fail_node: id out of range");
  fault_injector().fail_node(id);
  for (auto& node : nodes_) node->set_down(id, true);
  if (socket_) {
    // Remote daemons update their membership view by message; settle so
    // the exclusion is in force before the caller's next query.
    broadcast_membership(id, /*down=*/true);
    settle();
  }
}

void Client::heal_node(net::NodeId id) {
  require(topology_ != nullptr && id < topology_->total_nodes(),
          "Client::heal_node: id out of range");
  fault_injector().heal_node(id);
  for (auto& node : nodes_) node->set_down(id, false);
  if (socket_ && indexed_) {
    // Re-initialize the healed node at the original generation: a daemon
    // that stayed alive through the (injected) outage ignores it and
    // keeps its shard; a restarted daemon rebuilds empty and rejoins.
    // FIFO per connection orders the init before everything below.
    net::Message init;
    init.from = net::kClientNode;
    init.to = id;
    init.type = kNodeInit;
    init.request_id = 0;
    init.payload = encode_payload(make_node_init());
    transport_->send(std::move(init));
    broadcast_membership(id, /*down=*/false);
  }

  // Scrub the healed node: deliver every cancel that was deferred while
  // its traffic was being dropped, so no aborted query's pending state
  // survives the outage.
  std::vector<std::uint64_t> flush;
  {
    std::lock_guard lock(cancel_mu_);
    auto it = deferred_cancels_.find(id);
    if (it != deferred_cancels_.end()) {
      flush = std::move(it->second);
      deferred_cancels_.erase(it);
    }
  }
  for (std::uint64_t query_id : flush) {
    net::Message cancel;
    cancel.from = net::kClientNode;
    cancel.to = id;
    cancel.type = kCancelQuery;
    cancel.request_id = query_id;
    transport_->send(std::move(cancel));
  }
  if (!flush.empty() || socket_) settle();
}

// --- persistence ------------------------------------------------------------

void Client::save_index(const std::string& path) const {
  require(indexed_, "Client::save_index before index()");
  require(socket_ == nullptr,
          "Client::save_index: not available in TransportMode::kSocket "
          "(the shards live in the daemon processes)");
  CodecWriter writer;
  writer.str("mendel-index-v3");
  writer.u8(static_cast<std::uint8_t>(alphabet_));
  writer.u64(database_residues_);
  writer.u32(options_.topology.num_groups);
  writer.u32(options_.topology.nodes_per_group);
  // Nodes added after the initial dense layout, in id order.
  const std::uint32_t dense =
      options_.topology.num_groups * options_.topology.nodes_per_group;
  writer.u32(topology_->total_nodes() - dense);
  for (net::NodeId id = dense; id < topology_->total_nodes(); ++id) {
    writer.u32(topology_->address(id).group);
  }
  prefix_tree_->encode(writer);
  // v3: one length-framed section per group (ascending group id), each
  // holding its member nodes' shards with packed arena rows dumped
  // verbatim. The framing makes group sections independently skippable,
  // so incremental tooling can rewrite one group without decoding the
  // whole cluster.
  writer.u32(options_.topology.num_groups);
  for (std::uint32_t group = 0; group < options_.topology.num_groups;
       ++group) {
    writer.u32(group);
    CodecWriter section;
    std::vector<net::NodeId> members;
    for (net::NodeId id = 0; id < topology_->total_nodes(); ++id) {
      if (topology_->address(id).group == group) members.push_back(id);
    }
    section.u32(static_cast<std::uint32_t>(members.size()));
    for (net::NodeId id : members) {
      section.u32(id);
      nodes_[id]->save(section);
    }
    writer.bytes(section.data());
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("save_index: cannot open " + path);
  out.write(reinterpret_cast<const char*>(writer.data().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) throw IoError("save_index: write failed for " + path);
}

void Client::load_index(const std::string& path) {
  require(!indexed_, "Client::load_index: already indexed");
  require(socket_ == nullptr,
          "Client::load_index: not available in TransportMode::kSocket "
          "(daemons build their shards from the indexing stream)");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("load_index: cannot open " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  CodecReader reader(bytes);

  const std::string magic = reader.str();
  require(magic == "mendel-index-v3",
          "load_index: unsupported snapshot magic '" + magic +
              "' (re-index and save with this version)");
  const auto alphabet = static_cast<seq::Alphabet>(reader.u8());
  database_residues_ = reader.u64();
  // Adopt the snapshot's topology: an index is only meaningful on the
  // cluster shape it was built for.
  options_.topology.num_groups = reader.u32();
  options_.topology.nodes_per_group = reader.u32();
  const std::uint32_t extra_nodes = reader.u32();
  std::vector<std::uint32_t> extra_groups;
  for (std::uint32_t i = 0; i < extra_nodes; ++i) {
    extra_groups.push_back(reader.u32());
  }

  topology_ = std::make_unique<cluster::Topology>(options_.topology);
  for (std::uint32_t group : extra_groups) topology_->add_node(group);
  distance_ = std::make_unique<score::DistanceMatrix>(
      score::default_distance(alphabet));
  prefix_tree_ = std::make_unique<vpt::VpPrefixTree>(
      vpt::VpPrefixTree::decode(reader, distance_.get()));
  topology_->bind_prefixes(prefix_tree_->leaf_prefixes());

  spawn_nodes(alphabet);
  const std::uint32_t group_count = reader.u32();
  require(group_count == options_.topology.num_groups,
          "load_index: group section count mismatch");
  std::size_t shards = 0;
  for (std::uint32_t i = 0; i < group_count; ++i) {
    const std::uint32_t group = reader.u32();
    require(group == i, "load_index: group sections out of order");
    const auto section = reader.bytes();
    CodecReader sub(section);
    const std::uint32_t members = sub.u32();
    for (std::uint32_t m = 0; m < members; ++m) {
      const std::uint32_t id = sub.u32();
      require(id < nodes_.size(), "load_index: shard for unknown node " +
                                      std::to_string(id));
      require(topology_->address(id).group == group,
              "load_index: node " + std::to_string(id) +
                  " filed under the wrong group section");
      nodes_[id]->load(sub);
      ++shards;
    }
    require(sub.done(), "load_index: trailing bytes in group section " +
                            std::to_string(group));
  }
  require(shards == nodes_.size(), "load_index: node shard count mismatch");
  for (auto& node : nodes_) {
    node->set_database_residues(database_residues_);
  }
  // Recover the id watermark from the restored shards so add_sequences()
  // keeps allocating fresh ids after a load.
  seq::SequenceId watermark = 0;
  for (auto& node : nodes_) {
    watermark = std::max(watermark, node->max_sequence_id_plus_one());
  }
  next_sequence_id_ = watermark;
  indexed_ = true;
  publish_load_gauges();
}

}  // namespace mendel::core
