#include "src/common/simd.h"

#include <atomic>
#include <cstdlib>

#include "src/common/logging.h"

namespace mendel::simd {

namespace {

Level detect() {
#if defined(MENDEL_SIMD_X86)
  // SSE2 is part of the x86-64 baseline; AVX2 needs a CPUID check because
  // the kernels are compiled with per-function target("avx2") attributes
  // regardless of the host the binary was built on.
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  return Level::kSSE2;
#elif defined(MENDEL_SIMD_ARM)
  return Level::kNEON;
#else
  return Level::kScalar;
#endif
}

Level initial_level() {
  Level level = detect();
  if (const char* env = std::getenv("MENDEL_SIMD_LEVEL")) {
    Level requested = Level::kScalar;
    if (parse_level(env, requested)) {
      if (level_compiled(requested) &&
          static_cast<int>(requested) <= static_cast<int>(detect())) {
        level = requested;
      } else {
        MENDEL_LOG_WARN << "MENDEL_SIMD_LEVEL=" << env
                        << " is not runnable on this host; using "
                        << level_name(level);
      }
    } else {
      MENDEL_LOG_WARN << "MENDEL_SIMD_LEVEL=" << env
                      << " is not a known level; using " << level_name(level);
    }
  }
  return level;
}

std::atomic<Level>& active_slot() {
  static std::atomic<Level> active{initial_level()};
  return active;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSSE2:
      return "sse2";
    case Level::kAVX2:
      return "avx2";
    case Level::kNEON:
      return "neon";
  }
  return "unknown";
}

bool level_compiled(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSSE2:
    case Level::kAVX2:
#if defined(MENDEL_SIMD_X86)
      return true;
#else
      return false;
#endif
    case Level::kNEON:
#if defined(MENDEL_SIMD_ARM)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level detected_level() {
  static const Level level = detect();
  return level;
}

std::vector<Level> available_levels() {
  std::vector<Level> levels{Level::kScalar};
  const Level best = detected_level();
  for (Level l : {Level::kSSE2, Level::kAVX2, Level::kNEON}) {
    if (level_compiled(l) && static_cast<int>(l) <= static_cast<int>(best)) {
      levels.push_back(l);
    }
  }
  return levels;
}

Level active_level() {
  return active_slot().load(std::memory_order_relaxed);
}

Level set_active_level(Level level) {
  // Clamp to the best runnable level not preferred above the request.
  Level effective = Level::kScalar;
  for (Level l : available_levels()) {
    if (static_cast<int>(l) <= static_cast<int>(level)) effective = l;
  }
  active_slot().store(effective, std::memory_order_relaxed);
  return effective;
}

bool parse_level(const std::string& name, Level& out) {
  if (name == "scalar") {
    out = Level::kScalar;
  } else if (name == "sse2") {
    out = Level::kSSE2;
  } else if (name == "avx2") {
    out = Level::kAVX2;
  } else if (name == "neon") {
    out = Level::kNEON;
  } else {
    return false;
  }
  return true;
}

}  // namespace mendel::simd
