#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mendel {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::once_flag g_env_once;
std::mutex g_io_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void init_from_env() {
  const char* env = std::getenv("MENDEL_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_level = 0;
  if (std::strcmp(env, "info") == 0) g_level = 1;
  if (std::strcmp(env, "warn") == 0) g_level = 2;
  if (std::strcmp(env, "error") == 0) g_level = 3;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return static_cast<LogLevel>(g_level.load());
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard lock(g_io_mu);
  std::fprintf(stderr, "[mendel %s] %s\n", level_name(level), message.c_str());
}

}  // namespace mendel
