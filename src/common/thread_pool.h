// Fixed-size worker pool.
//
// Used by the ThreadTransport integration runtime and by embarrassingly
// parallel benchmark harness phases (e.g. generating workload cohorts).
// Tasks are type-erased std::function<void()>; submit() returns a
// std::future for the task's result.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"

namespace mendel {

class ThreadPool {
 public:
  // Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  // (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  // Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue a callable; returns a future for its result. Safe to call from
  // any thread, including from within a task.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>>
      MENDEL_EXCLUDES(mu_) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, n) across the pool and blocks until all
  // iterations complete. Exceptions from iterations propagate (first one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop() MENDEL_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ MENDEL_GUARDED_BY(mu_);
  bool stop_ MENDEL_GUARDED_BY(mu_) = false;
};

}  // namespace mendel
