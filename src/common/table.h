// Aligned text-table / CSV rendering for the benchmark harnesses.
//
// Every fig*/table* bench binary prints its results through this class so
// all experiment output shares one format: a titled, column-aligned table on
// stdout, optionally mirrored to CSV (--csv flag handled by the harness).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace mendel {

class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  // Column headers; call once before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats arithmetic cells with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::size_t v);
  static std::string percent(double fraction, int precision = 1);

  // Renders the aligned table (with title and rule lines) to `out`.
  void print(std::ostream& out) const;

  // Renders RFC-4180-ish CSV (no quoting of embedded commas needed for our
  // numeric tables, but quotes are added defensively when required).
  void print_csv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mendel
