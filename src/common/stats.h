// Streaming and batch summary statistics used by the benchmark harnesses
// (turnaround distributions, load-balance spreads) and by telemetry inside
// the cluster runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mendel {

// Welford streaming accumulator: mean/variance/min/max without storing
// samples. Suitable for high-volume telemetry counters.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch percentile over a copy of the samples (nearest-rank method).
double percentile(std::span<const double> samples, double p);

// Coefficient of variation (stddev / mean) of a sample set; 0 for empty.
double coefficient_of_variation(std::span<const double> samples);

// Fixed-width histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  // Renders a compact ASCII bar chart, one line per bin.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mendel
