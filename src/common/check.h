// Invariant-check macros with contextual logging.
//
// MENDEL_CHECK(cond, msg)   — always compiled. On failure, logs the
//                             expression, location, and a streamed context
//                             message (node id, block id, ...) at error
//                             level, then throws mendel::CheckError.
// MENDEL_DCHECK(cond, msg)  — compiled only in checked builds
//                             (-DMENDEL_CHECKED=ON); otherwise the
//                             condition and message are not evaluated.
//
// Use MENDEL_CHECK for internal invariants whose violation means the
// process state is corrupt (placement drift, structure corruption,
// protocol round-trip mismatch), and MENDEL_DCHECK for per-element checks
// too hot to pay for in release builds. Precondition validation of caller
// input stays on mendel::require() / InvalidArgument.
//
// The failure is thrown (not abort()) so the actor runtimes can surface it
// through ThreadTransport::handler_errors() instead of tearing down every
// worker mid-test; the log line is still emitted first, so the context
// survives even if the exception is swallowed.
//
// The message argument is a stream expression:
//
//   MENDEL_CHECK(slot < arena_.size(),
//                "node " << id_ << ": block slot " << slot << " out of "
//                        << arena_.size());
#pragma once

#include <sstream>
#include <string>

#include "src/common/error.h"
#include "src/common/logging.h"

namespace mendel {

// A MENDEL_CHECK failed: an internal invariant does not hold.
class CheckError : public Error {
 public:
  explicit CheckError(const std::string& what) : Error(what) {}
};

namespace detail {

// Ostream adapter so the macro's message argument can chain << without a
// named temporary.
class CheckStream {
 public:
  template <typename T>
  CheckStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& context) {
  std::ostringstream out;
  out << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!context.empty()) out << " — " << context;
  const std::string what = out.str();
  log_line(LogLevel::kError, what);
  throw CheckError(what);
}

}  // namespace detail
}  // namespace mendel

// The message argument is a `<<` chain, so it cannot be parenthesized.
// NOLINTBEGIN(bugprone-macro-parentheses)
#define MENDEL_CHECK(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::mendel::detail::check_failed(                                  \
          __FILE__, __LINE__, #cond,                                   \
          (::mendel::detail::CheckStream() << msg).str());             \
    }                                                                  \
  } while (0)

#ifdef MENDEL_CHECKED
#define MENDEL_DCHECK(cond, msg) MENDEL_CHECK(cond, msg)
#else
#define MENDEL_DCHECK(cond, msg) \
  do {                           \
  } while (0)
#endif
// NOLINTEND(bugprone-macro-parentheses)
