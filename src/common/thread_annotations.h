// Clang thread-safety analysis annotations.
//
// Wraps Clang's capability attributes (-Wthread-safety) behind MENDEL_*
// macros so mutex-protected members can declare which lock guards them:
//
//   std::mutex mu_;
//   std::deque<Task> queue_ MENDEL_GUARDED_BY(mu_);
//
//   void push(Task t) MENDEL_EXCLUDES(mu_);   // acquires mu_ internally
//   void drain_locked() MENDEL_REQUIRES(mu_); // caller must hold mu_
//
// Under Clang the analysis verifies every access at compile time; other
// compilers see empty macros, so the annotations are portable
// documentation. Enable enforcement with -DMENDEL_THREAD_SAFETY=ON (adds
// -Wthread-safety -Werror=thread-safety-analysis on Clang builds; see the
// top-level CMakeLists).
//
// Note: the analysis only fires when the standard library's mutex types
// carry capability attributes (libc++ does; libstdc++ does not), so the CI
// thread-safety job builds with clang++ -stdlib=libc++ where available.
#pragma once

// Capability arguments must reach the attribute unparenthesized.
// NOLINTBEGIN(bugprone-macro-parentheses)
#if defined(__clang__) && defined(__has_attribute)
#define MENDEL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MENDEL_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// Member annotations: the declared field may only be read or written while
// holding the named mutex (or, for _PT, the pointed-to data).
#define MENDEL_GUARDED_BY(x) MENDEL_THREAD_ANNOTATION_(guarded_by(x))
#define MENDEL_PT_GUARDED_BY(x) MENDEL_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function annotations: lock preconditions and effects.
#define MENDEL_REQUIRES(...) \
  MENDEL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MENDEL_EXCLUDES(...) \
  MENDEL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define MENDEL_ACQUIRE(...) \
  MENDEL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MENDEL_RELEASE(...) \
  MENDEL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// Escape hatch for functions the analysis cannot model (e.g. condition
// variable predicates evaluated under a lock the analysis cannot see).
#define MENDEL_NO_THREAD_SAFETY_ANALYSIS \
  MENDEL_THREAD_ANNOTATION_(no_thread_safety_analysis)
// NOLINTEND(bugprone-macro-parentheses)
