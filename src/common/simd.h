// Portable SIMD capability model and runtime dispatch level.
//
// The hot-path kernels (quantized window distances in src/scoring, batched
// leaf scans in src/vptree via StorageNode's metric, and the striped banded
// DP in src/align) each ship several implementations: a scalar reference
// plus 128/256-bit integer-lane variants. Which one runs is a process-wide
// *level*, resolved once at startup as
//
//     min(what this binary was compiled with, what the CPU reports)
//
// and overridable two ways:
//   * the MENDEL_SIMD_LEVEL environment variable ("scalar", "sse2",
//     "avx2", "neon") — how the benchmarks record scalar baselines from
//     the same binary;
//   * set_active_level() — how the exactness fuzz test walks every
//     compiled-in level in one process.
//
// Compile-time gating: the MENDEL_SIMD CMake option (default ON) defines
// MENDEL_SIMD_DISABLED when OFF, which compiles the dispatcher down to
// "scalar only" without touching any call site. The AVX2 kernels are built
// with per-function target attributes, so the rest of the binary keeps the
// default architecture flags and the runtime check is what keeps illegal
// instructions off pre-AVX2 silicon.
#pragma once

#include <string>
#include <vector>

// Architecture gates shared by every kernel translation unit. x86-64 with
// GCC/Clang gets SSE2 (baseline) and AVX2 (per-function target attribute);
// ARM with NEON gets the 128-bit kernels; everything else is scalar-only.
#if !defined(MENDEL_SIMD_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MENDEL_SIMD_X86 1
#endif
#if !defined(MENDEL_SIMD_DISABLED) && defined(__ARM_NEON)
#define MENDEL_SIMD_ARM 1
#endif

namespace mendel::simd {

// Ordered by preference within an architecture family; the numeric order
// is only used to clamp requests (a request for a level the host lacks
// resolves to the best available one below it).
enum class Level : int {
  kScalar = 0,
  kSSE2 = 1,
  kAVX2 = 2,
  kNEON = 3,
};

// Stable lowercase name ("scalar", "sse2", "avx2", "neon") for logs,
// benchmark context tags, and the kernel.simd_level gauge.
const char* level_name(Level level);

// True when this binary contains kernels for `level` (compile-time gate:
// architecture + MENDEL_SIMD option).
bool level_compiled(Level level);

// Best level this binary can run on this CPU: compiled-in support clamped
// by runtime CPU feature detection. Never changes during a process.
Level detected_level();

// Every runnable level on this host, ascending (always starts with
// kScalar). The fuzz test iterates this to pin SIMD == scalar per level.
std::vector<Level> available_levels();

// The level the dispatched kernels currently use. Initialized to
// detected_level(), unless the MENDEL_SIMD_LEVEL environment variable
// names a (runnable) level. Reads are relaxed-atomic: hot paths may cache
// the value per call batch.
Level active_level();

// Requests a dispatch level; the effective level (request clamped to what
// is runnable here) is returned and becomes active. Intended for tests and
// benchmark baselines, not for concurrent use while searches are running.
Level set_active_level(Level level);

// Parses a level name as accepted by MENDEL_SIMD_LEVEL; returns false on
// unknown names.
bool parse_level(const std::string& name, Level& out);

}  // namespace mendel::simd
