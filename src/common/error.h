// Error types shared across all Mendel libraries.
//
// Mendel uses exceptions for programmer errors and unrecoverable conditions
// (malformed input files, protocol violations) and return values / optionals
// for expected "not found" style outcomes. All exceptions derive from
// mendel::Error so callers can catch the library's failures uniformly.
#pragma once

#include <stdexcept>
#include <string>

namespace mendel {

// Root of the Mendel exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed external input: FASTA syntax errors, bad characters, corrupt
// serialized indexes.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// Malformed *external bytes* — a wire frame, snapshot file, or packed row
// that failed bounds/length/range validation while decoding. Derives from
// ParseError so existing catch sites keep working, but carries the stronger
// contract that it is the ONLY exception a decode path may raise on
// arbitrary input: transports and nodes catch it, count it
// (`net.decode_errors`), and drop the frame instead of crashing. Internal
// invariants keep using MENDEL_CHECK / CheckError, which must never be
// reachable from attacker-controlled bytes.
class DecodeError : public ParseError {
 public:
  explicit DecodeError(const std::string& what) : ParseError(what) {}
};

// A caller violated an API precondition (bad parameter ranges, mismatched
// lengths). Distinct from ParseError so tests can assert on the category.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

// I/O failure while reading or writing files (index persistence, FASTA).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

// A distributed-protocol invariant was violated (unknown destination,
// message decoded with the wrong type, routing to a nonexistent group).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

// Precondition check helper: throws InvalidArgument when `cond` is false.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InvalidArgument(what);
}

}  // namespace mendel
