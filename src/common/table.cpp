#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "src/common/error.h"

namespace mendel {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  require(header_.empty() || row.size() == header_.size(),
          "TextTable row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TextTable::num(std::size_t v) { return std::to_string(v); }

std::string TextTable::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::size_t total = 0;
  for (auto w : widths) total += w + 3;
  total = std::max<std::size_t>(total, title_.size());

  out << title_ << '\n' << std::string(total, '=') << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << std::left << std::setw(static_cast<int>(widths[i]) + 3) << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  out << '\n';
}

void TextTable::print_csv(std::ostream& out) const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace mendel
