// Binary serialization for network messages and index persistence.
//
// A deliberately simple, explicit little-endian codec: fixed-width integers,
// varint-free, length-prefixed containers. Every message type in src/net and
// every persisted index structure implements encode(Writer&) /
// decode(Reader&) pairs against this interface. The format is stable across
// platforms because widths and byte order are pinned.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/error.h"

namespace mendel {

class CodecWriter {
 public:
  CodecWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  // Appends pre-encoded bytes verbatim (no length prefix) — splices a
  // shared encoded fragment into a larger message.
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // Length-prefixed vector of encodable elements.
  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& encode_one) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) encode_one(*this, item);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class CodecReader {
 public:
  explicit CodecReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Strict: only 0/1 are valid. Accepting any nonzero byte would decode
  // 0x02 to the same value as 0x01, breaking the decode∘encode byte
  // identity the fuzz harnesses pin.
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) {
      throw DecodeError("CodecReader: non-canonical boolean byte " +
                        std::to_string(v));
    }
    return v != 0;
  }

  std::vector<std::uint8_t> bytes() {
    const auto n = u32();
    auto s = take(n);
    return {s.begin(), s.end()};
  }

  std::string str() {
    const auto n = u32();
    auto s = take(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& decode_one) {
    const auto n = u32();
    // Every element in the wire format encodes to at least one byte, so a
    // count exceeding the bytes left is malformed. Validating up front
    // bounds the reserve() below: a forged 0xFFFFFFFF count must not turn
    // into a multi-GB allocation before the first element read fails.
    if (n > remaining()) {
      throw DecodeError("CodecReader: element count " + std::to_string(n) +
                        " exceeds " + std::to_string(remaining()) +
                        " remaining bytes");
    }
    std::vector<T> items;
    items.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) items.push_back(decode_one(*this));
    return items;
  }

  // Consumes `n` verbatim bytes (no length prefix) — the inverse of
  // CodecWriter::raw for sections whose size is framed out of band. The
  // returned span aliases the reader's buffer.
  std::span<const std::uint8_t> raw(std::size_t n) { return take(n); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > data_.size() - pos_) {  // no overflow: pos_ <= size always
      throw DecodeError("CodecReader: truncated buffer (need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(remaining()) + ")");
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T read_le() {
    auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(s[i]) << (8 * i));
    }
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mendel
