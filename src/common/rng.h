// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of Mendel (workload generators, vantage point
// sampling, mutation models) draw from these generators so that every
// experiment in bench/ is reproducible from a single seed. We implement
// SplitMix64 (for seeding) and xoshiro256** (for bulk generation) rather
// than relying on std::mt19937 so that the bit streams are stable across
// standard libraries and platforms.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

namespace mendel {

// SplitMix64: tiny generator used to expand a single 64-bit seed into the
// state vector of a larger generator. Sebastiano Vigna's public-domain
// reference algorithm.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit generator. Satisfies the
// UniformRandomBitGenerator concept so it can drive std::distributions,
// though Mendel's own helpers below avoid them for cross-platform stability.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x4d454e44454cULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method; unbiased for all bounds.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in the closed interval [lo, hi].
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  // Sample an index from an unnormalized weight vector. O(n); callers that
  // sample repeatedly from the same weights should use AliasSampler.
  std::size_t weighted(std::span<const double> weights);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

inline std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) total += w;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace mendel
