#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace mendel {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // Explicit wait loop (not a predicate lambda) so Clang's
      // thread-safety analysis can see queue_/stop_ accessed under mu_.
      std::unique_lock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto drain = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!failed.exchange(true)) first_error = std::current_exception();
        return;
      }
    }
  };

  const unsigned fanout = std::min<std::size_t>(size(), n);
  std::vector<std::future<void>> futs;
  futs.reserve(fanout);
  for (unsigned i = 0; i < fanout; ++i) futs.push_back(submit(drain));
  // The calling thread participates too, so a single-thread pool still makes
  // progress even if all workers are busy with unrelated tasks.
  drain();
  for (auto& f : futs) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mendel
