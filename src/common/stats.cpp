#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/error.h"

namespace mendel {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double combined_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = combined_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double percentile(std::span<const double> samples, double p) {
  require(!samples.empty(), "percentile over empty sample set");
  require(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double coefficient_of_variation(std::span<const double> samples) {
  RunningStats s;
  for (double x : samples) s.add(x);
  if (s.count() == 0 || s.mean() == 0.0) return 0.0;
  return s.stddev() / s.mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  require(hi > lo, "Histogram requires hi > lo");
  require(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    out << "[" << bin_low(i) << ", " << bin_high(i) << ") ";
    for (std::size_t j = 0; j < bar; ++j) out << '#';
    out << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace mendel
