// codec.h is header-only; this translation unit exists so the library has a
// stable archive member and to host any future out-of-line codec helpers.
#include "src/common/codec.h"

namespace mendel {}  // namespace mendel
