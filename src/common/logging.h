// Minimal leveled logger.
//
// The cluster runtime and benchmark harnesses log through this so verbosity
// is controlled in one place (MENDEL_LOG_LEVEL env var or set_level()).
// Logging is intentionally synchronous and lock-guarded: Mendel's hot paths
// never log, so simplicity beats an async ring buffer here.
#pragma once

#include <sstream>
#include <string>

namespace mendel {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

// Writes one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace mendel

#define MENDEL_LOG_DEBUG ::mendel::detail::LogMessage(::mendel::LogLevel::kDebug)
#define MENDEL_LOG_INFO ::mendel::detail::LogMessage(::mendel::LogLevel::kInfo)
#define MENDEL_LOG_WARN ::mendel::detail::LogMessage(::mendel::LogLevel::kWarn)
#define MENDEL_LOG_ERROR ::mendel::detail::LogMessage(::mendel::LogLevel::kError)
