// Monotonic wall-clock stopwatch used to measure real CPU cost of message
// handlers (the SimTransport charges this cost to virtual node clocks) and
// to time benchmark harness phases.
#pragma once

#include <chrono>

namespace mendel {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  // Elapsed time since construction or the last restart(), in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mendel
