#include "src/hash/sha1.h"

#include <algorithm>
#include <cstring>

namespace mendel::hashing {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  buffered_ = 0;
  total_bits_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1Digest Sha1::finish() {
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  const std::uint64_t bits = total_bits_;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::array<std::uint8_t, 8> length_be;
  for (int i = 0; i < 8; ++i) {
    length_be[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(length_be.data(), 8));

  Sha1Digest digest;
  for (std::size_t i = 0; i < 5; ++i) {
    digest[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5a827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + w[t] + k;
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

Sha1Digest sha1(std::span<const std::uint8_t> data) {
  Sha1 hasher;
  hasher.update(data);
  return hasher.finish();
}

Sha1Digest sha1(std::string_view data) {
  Sha1 hasher;
  hasher.update(data);
  return hasher.finish();
}

std::uint64_t sha1_prefix64(std::span<const std::uint8_t> data) {
  const Sha1Digest digest = sha1(data);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | digest[static_cast<std::size_t>(i)];
  }
  return value;
}

std::uint64_t sha1_prefix64(std::string_view data) {
  return sha1_prefix64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::string to_hex(const Sha1Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace mendel::hashing
