// SHA-1 (RFC 3174), implemented from scratch.
//
// The paper's second placement tier "uses a tried-and-true flat hashing
// scheme, SHA-1, to disperse the blocks within a group" (§V-A2). SHA-1 is
// long broken for cryptographic signatures, but as a *dispersal* hash its
// uniformity is exactly what the load-balance results in Figure 5 rely on,
// so Mendel keeps the paper's choice.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mendel::hashing {

using Sha1Digest = std::array<std::uint8_t, 20>;

// One-shot digest over a byte buffer.
Sha1Digest sha1(std::span<const std::uint8_t> data);
Sha1Digest sha1(std::string_view data);

// Incremental interface (used when hashing block payload + metadata without
// concatenating buffers).
class Sha1 {
 public:
  Sha1();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  // Finalizes and returns the digest; the object must not be updated
  // afterwards (reset() to reuse).
  Sha1Digest finish();

  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

// First 8 digest bytes as a big-endian uint64 — the keyspace position used
// by the hash ring.
std::uint64_t sha1_prefix64(std::span<const std::uint8_t> data);
std::uint64_t sha1_prefix64(std::string_view data);

// Lowercase hex rendering (tests compare against RFC vectors).
std::string to_hex(const Sha1Digest& digest);

}  // namespace mendel::hashing
