// Consistent hash ring over the 64-bit SHA-1 keyspace.
//
// Tier-2 placement: within a storage group, blocks are dispersed across the
// group's nodes by flat hashing (paper §V-A2). A consistent ring with
// virtual nodes gives the near-perfect balance the paper reports for SHA-1
// *and* supports the elastic add/remove-node scenario the paper targets
// (only ~1/n of keys move when a node joins).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mendel::hashing {

class HashRing {
 public:
  // `virtual_nodes` replicas are placed on the ring per member; more
  // replicas -> smoother balance at the cost of lookup table size.
  explicit HashRing(std::size_t virtual_nodes = 64);

  // Members are dense indices (a group's local node ordinals). `label`
  // seeds the member's ring positions; use a globally unique name so two
  // groups don't share layouts.
  void add_member(std::uint32_t member, const std::string& label);
  void remove_member(std::uint32_t member);

  bool empty() const { return ring_.empty(); }
  std::size_t member_count() const { return members_; }

  // Owner of a key: first ring position clockwise from `key`.
  std::uint32_t owner(std::uint64_t key) const;

  // The `replicas` distinct members clockwise from `key` (primary first).
  // Fewer are returned if the ring has fewer members.
  std::vector<std::uint32_t> owners(std::uint64_t key,
                                    std::size_t replicas) const;

 private:
  std::size_t virtual_nodes_;
  std::size_t members_ = 0;
  std::map<std::uint64_t, std::uint32_t> ring_;
  std::map<std::uint32_t, std::vector<std::uint64_t>> positions_;
};

}  // namespace mendel::hashing
