#include "src/hash/ring.h"

#include "src/common/error.h"
#include "src/hash/sha1.h"

namespace mendel::hashing {

HashRing::HashRing(std::size_t virtual_nodes) : virtual_nodes_(virtual_nodes) {
  require(virtual_nodes_ > 0, "HashRing requires at least 1 virtual node");
}

void HashRing::add_member(std::uint32_t member, const std::string& label) {
  require(!positions_.contains(member),
          "HashRing member already present");
  std::vector<std::uint64_t> placed;
  placed.reserve(virtual_nodes_);
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    std::uint64_t position =
        sha1_prefix64(label + "#" + std::to_string(v));
    // Collisions across members are vanishingly rare but would silently
    // unbalance the ring; probe linearly until free.
    while (ring_.contains(position)) ++position;
    ring_.emplace(position, member);
    placed.push_back(position);
  }
  positions_.emplace(member, std::move(placed));
  ++members_;
}

void HashRing::remove_member(std::uint32_t member) {
  auto it = positions_.find(member);
  require(it != positions_.end(), "HashRing member not present");
  for (std::uint64_t position : it->second) ring_.erase(position);
  positions_.erase(it);
  --members_;
}

std::uint32_t HashRing::owner(std::uint64_t key) const {
  require(!ring_.empty(), "HashRing::owner on empty ring");
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::uint32_t> HashRing::owners(std::uint64_t key,
                                            std::size_t replicas) const {
  require(!ring_.empty(), "HashRing::owners on empty ring");
  std::vector<std::uint32_t> out;
  auto it = ring_.lower_bound(key);
  for (std::size_t steps = 0;
       steps < ring_.size() && out.size() < replicas && out.size() < members_;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const std::uint32_t member = it->second;
    bool seen = false;
    for (std::uint32_t m : out) seen = seen || m == member;
    if (!seen) out.push_back(member);
    ++it;
  }
  return out;
}

}  // namespace mendel::hashing
