// Translated search (blastx-style): nucleotide reads against a protein
// reference database.
//
// Sequencers produce DNA; reference knowledge often lives in protein space
// (the paper's evaluation uses NCBI's protein nr). The classic bridge is
// six-frame translation: translate each read in all six reading frames and
// search every frame against the protein index, reporting the best-scoring
// frame. This example builds a protein Mendel cluster, fabricates DNA reads
// whose +2 frame encodes regions of database proteins (with sequencing
// noise), and maps them back.
//
// Run: ./build/examples/translated_search
#include <cstdio>

#include "src/mendel/client.h"
#include "src/sequence/translate.h"
#include "src/workload/generator.h"

namespace {

// Reverse-translates a protein region into DNA using arbitrary codons
// (first codon found for each amino acid) — good enough to fabricate reads
// whose translation reproduces the region exactly.
std::vector<mendel::seq::Code> reverse_translate(
    mendel::seq::CodeSpan protein) {
  using namespace mendel::seq;
  // codon index -> amino acid; build the inverse lazily.
  static const auto inverse = [] {
    std::array<int, 24> first_codon{};
    first_codon.fill(-1);
    const auto& code = standard_genetic_code();
    for (int codon = 0; codon < 64; ++codon) {
      if (first_codon[code[static_cast<std::size_t>(codon)]] < 0) {
        first_codon[code[static_cast<std::size_t>(codon)]] = codon;
      }
    }
    return first_codon;
  }();
  std::vector<Code> dna;
  dna.reserve(protein.size() * 3);
  for (Code residue : protein) {
    int codon = inverse[residue];
    if (codon < 0) codon = inverse[encode(Alphabet::kProtein, 'A')];
    dna.push_back(static_cast<Code>(codon / 16));
    dna.push_back(static_cast<Code>((codon / 4) % 4));
    dna.push_back(static_cast<Code>(codon % 4));
  }
  return dna;
}

}  // namespace

int main() {
  using namespace mendel;

  // Protein reference collection.
  workload::DatabaseSpec spec;
  spec.families = 8;
  spec.members_per_family = 4;
  spec.background_sequences = 16;
  spec.min_length = 250;
  spec.max_length = 600;
  spec.seed = 7777;
  const auto store = workload::generate_database(spec);

  core::ClientOptions options;
  options.topology.num_groups = 4;
  options.topology.nodes_per_group = 3;
  core::Client client(options);
  client.index(store);
  std::printf("protein reference indexed: %zu sequences, %zu residues\n\n",
              store.size(), store.total_residues());

  // Fabricate DNA reads: protein region -> codons -> +2 frame shift ->
  // light sequencing noise at the DNA level.
  Rng rng(31415);
  std::size_t mapped = 0, correct_frame = 0;
  const int reads = 12;
  for (int r = 0; r < reads; ++r) {
    const auto origin =
        static_cast<seq::SequenceId>(rng.below(store.size()));
    const auto& protein = store.at(origin);
    if (protein.size() < 80) continue;
    const auto offset = rng.below(protein.size() - 60);
    const auto region = protein.window(offset, 60);

    auto dna_codes = reverse_translate(region);
    // Shift into frame +2 with a random leading base and add noise.
    dna_codes.insert(dna_codes.begin(),
                     static_cast<seq::Code>(rng.below(4)));
    seq::Sequence read(seq::Alphabet::kDna, "read", std::move(dna_codes));
    read = workload::mutate(read, {0.02, 0.0, 0.0}, "read", rng);

    // Six-frame translate and query each frame; keep the best hit.
    double best_evalue = 1e9;
    int best_frame = 0;
    seq::SequenceId best_subject = seq::kInvalidSequenceId;
    std::string best_name;
    for (const auto& frame : seq::six_frame_translations(read.codes())) {
      if (frame.protein.size() < 12) continue;
      seq::Sequence probe(seq::Alphabet::kProtein, "frame",
                          std::vector<seq::Code>(frame.protein));
      core::QueryParams params;
      params.evalue = 1e-3;
      const auto outcome = client.query(probe, params);
      if (!outcome.hits.empty() &&
          outcome.hits.front().evalue < best_evalue) {
        best_evalue = outcome.hits.front().evalue;
        best_frame = frame.frame;
        best_subject = outcome.hits.front().subject_id;
        best_name = outcome.hits.front().subject_name;
      }
    }
    if (best_subject == seq::kInvalidSequenceId) {
      std::printf("read %2d: unmapped\n", r);
      continue;
    }
    ++mapped;
    correct_frame += best_frame == 2 ? 1 : 0;
    std::printf("read %2d: frame %+d  %-22s E=%.2e %s\n", r, best_frame,
                best_name.c_str(), best_evalue,
                best_subject == origin ? "(true origin)" : "");
  }
  std::printf("\n%zu/%d reads mapped, %zu in the true +2 frame\n", mapped,
              reads, correct_frame);
  return 0;
}
