// Metagenomics survey — the paper's §I-A usage scenario.
//
// An environmental sample yields a pile of short reads from organisms whose
// genomes (here: proteomes) may or may not be in the reference database.
// Mendel maps every read against the reference collection; reads that map
// with a confident alignment are attributed to their organism, the rest are
// reported as "novel". The example prints a per-organism abundance table —
// the standard output of a community profiling run.
//
// Run: ./build/examples/metagenomics_survey
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "src/common/table.h"
#include "src/mendel/client.h"
#include "src/workload/generator.h"

int main() {
  using namespace mendel;

  // Reference collection: 12 "organisms" (families of related proteins).
  workload::DatabaseSpec spec;
  spec.families = 12;
  spec.members_per_family = 5;
  spec.background_sequences = 0;
  spec.min_length = 300;
  spec.max_length = 700;
  spec.seed = 99;
  const auto store = workload::generate_database(spec);

  core::ClientOptions options;
  options.topology.num_groups = 6;
  options.topology.nodes_per_group = 4;
  core::Client client(options);
  client.index(store);
  std::printf("reference collection indexed: %zu sequences over %u nodes\n",
              store.size(), client.topology().total_nodes());

  // The environmental sample: reads drawn from a subset of organisms with
  // sequencing noise, plus reads from organisms absent from the reference.
  Rng rng(4242);
  struct Read {
    seq::Sequence sequence;
    std::string truth;  // which organism it really came from
  };
  std::vector<Read> sample;
  const std::size_t read_length = 120;
  // Organisms 0..5 present in the community with different abundances.
  const std::size_t abundance[] = {24, 16, 12, 8, 6, 4};
  for (std::size_t organism = 0; organism < 6; ++organism) {
    for (std::size_t r = 0; r < abundance[organism]; ++r) {
      // Pick any member protein of the organism's family.
      const auto member = static_cast<seq::SequenceId>(
          organism * 5 + rng.below(5));
      const auto& protein = store.at(member);
      const auto offset = rng.below(protein.size() - read_length);
      auto region = protein.window(offset, read_length);
      seq::Sequence raw(store.alphabet(), "read",
                        {region.begin(), region.end()});
      sample.push_back(Read{
          workload::mutate(raw, {0.06, 0.005, 0.3}, "read", rng),
          "family" + std::to_string(organism)});
    }
  }
  // 20 reads from organisms not in the reference at all.
  for (std::size_t r = 0; r < 20; ++r) {
    sample.push_back(Read{
        workload::random_sequence(store.alphabet(), read_length, "novel",
                                  rng),
        "(novel)"});
  }
  std::printf("environmental sample: %zu reads\n\n", sample.size());

  // Map every read.
  core::QueryParams params;
  params.evalue = 1e-4;  // confident attributions only
  std::map<std::string, std::size_t> attributed;
  std::map<std::string, std::size_t> correct;
  std::size_t unmapped = 0;
  double total_turnaround = 0;
  for (const auto& read : sample) {
    const auto outcome = client.query(read.sequence, params);
    total_turnaround += outcome.turnaround;
    if (outcome.hits.empty()) {
      ++unmapped;
      continue;
    }
    // Attribute to the top hit's family (name prefix "familyN/...").
    const auto& name = outcome.hits.front().subject_name;
    const auto slash = name.find('/');
    const std::string organism =
        slash == std::string::npos ? name : name.substr(0, slash);
    ++attributed[organism];
    if (organism == read.truth) ++correct[organism];
  }

  TextTable table("Community profile (reads attributed per organism)");
  table.set_header({"organism", "reads", "correctly attributed"});
  for (const auto& [organism, count] : attributed) {
    table.add_row({organism, TextTable::num(count),
                   TextTable::num(correct[organism])});
  }
  table.add_row({"(unmapped / novel)", TextTable::num(unmapped), "-"});
  table.print(std::cout);
  std::printf("mean turnaround per read: %.3f ms (simulated)\n",
              total_turnaround / static_cast<double>(sample.size()) * 1e3);
  return 0;
}
