// Elastic deployment features: index persistence, cluster sizing, and
// fault tolerance with replication.
//
// The paper's future-work list (§VII-B) asks for (a) saving pre-indexed
// data so large reference sets need not be re-indexed per run, and (b)
// fault tolerance. Mendel implements both; this example exercises them:
//
//   1. index a database on a 4x3 cluster and snapshot it to disk,
//   2. restore the snapshot into a fresh client and verify queries work
//      without re-indexing,
//   3. run the same database on clusters of several sizes and report
//      the simulated turnaround (the Figure 6c effect, in miniature),
//   4. enable replication, kill a node, and show queries still succeed,
//   5. grow a live cluster one node at a time and watch the rebalance
//      protocol shift load onto the newcomers.
//
// Run: ./build/examples/elastic_cluster
#include <algorithm>
#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/mendel/client.h"
#include "src/workload/generator.h"

namespace {

mendel::workload::DatabaseSpec database_spec() {
  mendel::workload::DatabaseSpec spec;
  spec.families = 10;
  spec.members_per_family = 5;
  spec.background_sequences = 20;
  spec.min_length = 250;
  spec.max_length = 600;
  spec.seed = 31337;
  return spec;
}

mendel::seq::Sequence make_probe(const mendel::seq::SequenceStore& store) {
  const auto& donor = store.at(7);
  const auto region = donor.window(25, 150);
  return mendel::seq::Sequence(store.alphabet(), "probe",
                               {region.begin(), region.end()});
}

}  // namespace

int main() {
  using namespace mendel;
  const auto store = workload::generate_database(database_spec());
  const auto probe = make_probe(store);
  const std::string snapshot = "/tmp/mendel_elastic_snapshot.bin";

  // --- 1. index + snapshot --------------------------------------------------
  core::ClientOptions options;
  options.topology.num_groups = 4;
  options.topology.nodes_per_group = 3;
  {
    core::Client client(options);
    Stopwatch watch;
    const auto report = client.index(store);
    std::printf("indexed %llu blocks in %.1f ms wall; saving snapshot...\n",
                static_cast<unsigned long long>(report.blocks),
                watch.millis());
    client.save_index(snapshot);
  }

  // --- 2. restore without re-indexing ---------------------------------------
  {
    core::Client restored(options);
    Stopwatch watch;
    restored.load_index(snapshot);
    std::printf("snapshot restored in %.1f ms wall\n", watch.millis());
    const auto outcome = restored.query(probe);
    std::printf("restored cluster answers: %zu hits, top=%s\n\n",
                outcome.hits.size(),
                outcome.hits.empty()
                    ? "(none)"
                    : outcome.hits.front().subject_name.c_str());
  }

  // --- 3. scale-out sweep ------------------------------------------------------
  std::printf("scale-out (same database, growing cluster):\n");
  for (std::uint32_t groups : {2u, 4u, 8u}) {
    core::ClientOptions sized = options;
    sized.topology.num_groups = groups;
    sized.topology.nodes_per_group = 3;
    core::Client client(sized);
    client.index(store);
    // Average a few probes for a stable virtual-time estimate.
    double total = 0;
    for (int i = 0; i < 5; ++i) total += client.query(probe).turnaround;
    std::printf("  %2u nodes: %.3f ms mean simulated turnaround\n",
                client.topology().total_nodes(), total / 5 * 1e3);
  }

  // --- 4. fault tolerance -----------------------------------------------------
  std::printf("\nfault tolerance (replication factor 2):\n");
  core::ClientOptions replicated = options;
  replicated.topology.replication = 2;
  replicated.topology.sequence_replication = 2;
  core::Client client(replicated);
  client.index(store);
  const auto healthy = client.query(probe);
  std::printf("  healthy cluster : %zu hits\n", healthy.hits.size());
  client.fail_node(2);
  const auto degraded = client.query(probe);
  std::printf("  node 2 failed   : %zu hits (served from replicas)\n",
              degraded.hits.size());
  client.heal_node(2);
  const auto healed = client.query(probe);
  std::printf("  node 2 healed   : %zu hits\n", healed.hits.size());

  // --- 5. live scale-out with rebalancing ------------------------------------
  std::printf("\nlive scale-out (add_node + rebalance):\n");
  core::Client growing(options);
  growing.index(store);
  auto counts = growing.block_counts();
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  std::printf("  initial   : %zu nodes, %llu blocks, max node %llu\n",
              counts.size(), static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(
                  *std::max_element(counts.begin(), counts.end())));
  for (std::uint32_t g = 0; g < 3; ++g) {
    const auto id = growing.add_node(g);
    counts = growing.block_counts();
    std::printf("  +node %2u in group %u: newcomer holds %llu blocks\n", id,
                g, static_cast<unsigned long long>(counts[id]));
  }
  const auto grown = growing.query(probe);
  std::printf("  grown cluster answers: %zu hits (same top hit: %s)\n",
              grown.hits.size(),
              grown.hits.empty() ? "(none)"
                                 : grown.hits.front().subject_name.c_str());

  std::remove(snapshot.c_str());
  return 0;
}
