// Protein homology search: Mendel vs the BLAST baseline, side by side.
//
// This example mirrors the paper's core usage scenario — finding remote
// protein homologs in a large reference set — and prints both engines'
// answers for the same queries so their sensitivity and cost profiles can
// be compared directly. It also shows non-default Table I parameters
// (matrix choice, identity/c-score thresholds, E-value).
//
// Run: ./build/examples/protein_homology
#include <cstdio>

#include "src/blast/blast.h"
#include "src/common/stopwatch.h"
#include "src/mendel/client.h"
#include "src/workload/generator.h"

int main() {
  using namespace mendel;

  // Database: protein families with planted homology structure.
  workload::DatabaseSpec spec;
  spec.families = 20;
  spec.members_per_family = 6;
  spec.background_sequences = 40;
  spec.min_length = 250;
  spec.max_length = 900;
  const auto store = workload::generate_database(spec);
  std::printf("database: %zu sequences, %zu residues\n", store.size(),
              store.total_residues());

  // Mendel cluster.
  core::ClientOptions options;
  options.topology.num_groups = 6;
  options.topology.nodes_per_group = 4;
  core::Client mendel_client(options);
  mendel_client.index(store);

  // BLAST baseline over the same store.
  blast::BlastEngine blast_engine(&store, &score::blosum62());
  blast_engine.build();

  // Queries at decreasing similarity to a database member.
  Rng rng(7);
  const auto& donor = store.at(12);
  const auto region = donor.window(30, 200);
  const seq::Sequence original(store.alphabet(), "origin region",
                               {region.begin(), region.end()});

  for (double similarity : {0.9, 0.7, 0.5}) {
    const auto query = workload::mutate_to_similarity(
        original, similarity, "query", rng);
    std::printf("\n=== query at %.0f%% identity to its origin ===\n",
                similarity * 100);

    // Mendel: note the Table I parameters spelled out.
    core::QueryParams params;
    params.matrix = "BLOSUM62";   // M
    params.n = 16;                // nearest neighbors per subquery
    params.identity = 0.25;       // i
    params.c_score = 0.30;        // c
    params.gapped_trigger = 0.8;  // S — sensitivity-leaning (anchors at
                                  // 50% identity average ~2 per column)
    params.band = 24;             // l
    params.evalue = 1.0;          // E
    const auto outcome = mendel_client.query(query, params);
    std::printf("Mendel  : %zu hits, %.3f ms simulated turnaround\n",
                outcome.hits.size(), outcome.turnaround * 1e3);
    for (std::size_t i = 0; i < std::min<std::size_t>(3, outcome.hits.size());
         ++i) {
      const auto& hit = outcome.hits[i];
      std::printf("    %-22s bits=%6.1f E=%.2e id=%4.1f%%%s\n",
                  hit.subject_name.c_str(), hit.bit_score, hit.evalue,
                  hit.alignment.percent_identity() * 100,
                  hit.subject_id == donor.id() ? "   <- true origin" : "");
    }

    // BLAST baseline (single machine, database-proportional work).
    Stopwatch watch;
    blast::BlastSearchStats stats;
    const auto blast_hits = blast_engine.search(query, &stats);
    std::printf(
        "BLAST   : %zu hits, %.3f ms wall, %llu seed hits, %llu gapped\n",
        blast_hits.size(), watch.millis(),
        static_cast<unsigned long long>(stats.seed_hits),
        static_cast<unsigned long long>(stats.gapped_extensions));
    for (std::size_t i = 0; i < std::min<std::size_t>(3, blast_hits.size());
         ++i) {
      const auto& hit = blast_hits[i];
      std::printf("    %-22s bits=%6.1f E=%.2e id=%4.1f%%%s\n",
                  hit.subject_name.c_str(), hit.bit_score, hit.evalue,
                  hit.alignment.percent_identity() * 100,
                  hit.subject_id == donor.id() ? "   <- true origin" : "");
    }
  }
  return 0;
}
