// Quickstart: the smallest complete Mendel session.
//
//   1. build (or load) a protein database,
//   2. index it into a simulated two-tier cluster,
//   3. run a similarity query,
//   4. read the ranked alignments.
//
// Run:  ./build/examples/quickstart [path/to/database.fasta]
//
// With no argument a small synthetic database is generated so the example
// is self-contained.
#include <cstdio>
#include <iostream>

#include "src/mendel/client.h"
#include "src/sequence/fasta.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace mendel;

  // --- 1. obtain a database -------------------------------------------------
  seq::SequenceStore store(seq::Alphabet::kProtein);
  if (argc > 1) {
    for (auto& record :
         seq::read_fasta_file(argv[1], seq::Alphabet::kProtein)) {
      store.add(std::move(record));
    }
    std::printf("loaded %zu sequences (%zu residues) from %s\n",
                store.size(), store.total_residues(), argv[1]);
  } else {
    workload::DatabaseSpec spec;
    spec.families = 10;
    spec.members_per_family = 5;
    spec.background_sequences = 20;
    store = workload::generate_database(spec);
    std::printf("generated synthetic database: %zu sequences, %zu residues\n",
                store.size(), store.total_residues());
  }

  // --- 2. index into a cluster ----------------------------------------------
  core::ClientOptions options;
  options.topology.num_groups = 5;   // tier-1 similarity groups
  options.topology.nodes_per_group = 4;
  options.indexing.window_length = 8;  // inverted-index block length
  core::Client client(options);
  const auto report = client.index(store);
  std::printf("indexed %llu blocks over %u nodes (%llu messages)\n",
              static_cast<unsigned long long>(report.blocks),
              client.topology().total_nodes(),
              static_cast<unsigned long long>(report.messages));

  // --- 3. query ---------------------------------------------------------------
  // Take a region of a database sequence and mutate it a little, as a stand-in
  // for a sequencing read of a related organism.
  Rng rng(2024);
  const auto& donor = store.at(3);
  const auto region = donor.window(10, std::min<std::size_t>(150, donor.size() - 10));
  seq::Sequence read(store.alphabet(), "example read",
                     {region.begin(), region.end()});
  read = workload::mutate_to_similarity(read, 0.9, "example read (10% diverged)", rng);

  core::QueryParams params;   // paper Table I knobs; defaults are sensible
  params.evalue = 1e-3;       // only report confident alignments
  const auto outcome = client.query(read, params);

  // --- 4. results ----------------------------------------------------------------
  std::printf("\nquery turnaround: %.3f ms (simulated cluster time), %llu messages\n",
              outcome.turnaround * 1e3,
              static_cast<unsigned long long>(outcome.traffic.messages));
  std::printf("%zu alignments:\n", outcome.hits.size());
  for (const auto& hit : outcome.hits) {
    std::printf(
        "  %-24s score=%-5d identity=%5.1f%%  E=%.2e  q[%zu,%zu) s[%zu,%zu)\n",
        hit.subject_name.c_str(), hit.alignment.hsp.score,
        hit.alignment.percent_identity() * 100.0, hit.evalue,
        hit.alignment.hsp.q_begin, hit.alignment.hsp.q_end,
        hit.alignment.hsp.s_begin, hit.alignment.hsp.s_end);
  }
  if (!outcome.hits.empty() &&
      outcome.hits.front().subject_id == donor.id()) {
    std::printf("\ntop hit is the read's true origin — as expected.\n");
  }
  return 0;
}
