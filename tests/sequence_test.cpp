// Unit tests for src/sequence: alphabets, sequences, stores, FASTA I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.h"
#include "src/sequence/alphabet.h"
#include "src/sequence/fasta.h"
#include "src/sequence/sequence.h"

namespace mendel::seq {
namespace {

// ---------- Alphabet ----------

TEST(Alphabet, DnaEncodeDecodeRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T', 'N'}) {
    EXPECT_EQ(decode(Alphabet::kDna, encode(Alphabet::kDna, c)), c);
  }
}

TEST(Alphabet, DnaLowercaseAccepted) {
  EXPECT_EQ(encode(Alphabet::kDna, 'a'), kDnaA);
  EXPECT_EQ(encode(Alphabet::kDna, 't'), kDnaT);
}

TEST(Alphabet, RnaUracilFoldsToT) {
  EXPECT_EQ(encode(Alphabet::kDna, 'U'), kDnaT);
}

TEST(Alphabet, DnaAmbiguityCodesMapToN) {
  for (char c : {'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V', 'N'}) {
    EXPECT_EQ(encode(Alphabet::kDna, c), kDnaN) << c;
  }
}

TEST(Alphabet, DnaRejectsInvalid) {
  EXPECT_THROW(encode(Alphabet::kDna, 'Z'), ParseError);
  EXPECT_THROW(encode(Alphabet::kDna, '1'), ParseError);
  EXPECT_THROW(encode(Alphabet::kDna, ' '), ParseError);
}

TEST(Alphabet, ProteinRoundTripAllSymbols) {
  for (char c : std::string(kProteinSymbols)) {
    EXPECT_EQ(decode(Alphabet::kProtein, encode(Alphabet::kProtein, c)), c);
  }
}

TEST(Alphabet, ProteinCodeOrderIsBlosumOrder) {
  EXPECT_EQ(encode(Alphabet::kProtein, 'A'), 0);
  EXPECT_EQ(encode(Alphabet::kProtein, 'R'), 1);
  EXPECT_EQ(encode(Alphabet::kProtein, 'V'), 19);
  EXPECT_EQ(encode(Alphabet::kProtein, 'B'), 20);
  EXPECT_EQ(encode(Alphabet::kProtein, 'Z'), 21);
  EXPECT_EQ(encode(Alphabet::kProtein, 'X'), 22);
  EXPECT_EQ(encode(Alphabet::kProtein, '*'), 23);
}

TEST(Alphabet, RareAminoAcidsMapToX) {
  EXPECT_EQ(encode(Alphabet::kProtein, 'U'), 22);  // selenocysteine
  EXPECT_EQ(encode(Alphabet::kProtein, 'O'), 22);  // pyrrolysine
  EXPECT_EQ(encode(Alphabet::kProtein, 'J'), 22);
}

TEST(Alphabet, Cardinalities) {
  EXPECT_EQ(cardinality(Alphabet::kDna), 5u);
  EXPECT_EQ(cardinality(Alphabet::kProtein), 24u);
  EXPECT_EQ(core_cardinality(Alphabet::kDna), 4u);
  EXPECT_EQ(core_cardinality(Alphabet::kProtein), 20u);
}

TEST(Alphabet, DecodeRejectsOutOfRange) {
  EXPECT_THROW(decode(Alphabet::kDna, 5), InvalidArgument);
  EXPECT_THROW(decode(Alphabet::kProtein, 24), InvalidArgument);
}

TEST(Alphabet, IsValid) {
  EXPECT_TRUE(is_valid(Alphabet::kDna, 'a'));
  EXPECT_FALSE(is_valid(Alphabet::kDna, 'q'));
  EXPECT_TRUE(is_valid(Alphabet::kProtein, 'w'));
  EXPECT_FALSE(is_valid(Alphabet::kProtein, '!'));
}

TEST(Alphabet, ProteinBackgroundFrequenciesSane) {
  const auto& f = protein_background_frequencies();
  double sum = 0;
  for (double p : f) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 0.02);
  // Leu is most frequent, Trp least (paper §III-B cites the ~9x spread).
  const auto leu = f[encode(Alphabet::kProtein, 'L')];
  const auto trp = f[encode(Alphabet::kProtein, 'W')];
  for (double p : f) {
    EXPECT_LE(p, leu);
    EXPECT_GE(p, trp);
  }
  EXPECT_GT(leu / trp, 8.0);
}

// ---------- Sequence ----------

TEST(Sequence, FromStringRoundTrip) {
  const auto s = Sequence::from_string(Alphabet::kProtein, "p1", "MKVLAW");
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.to_string(), "MKVLAW");
  EXPECT_EQ(s.name(), "p1");
}

TEST(Sequence, WindowBoundsChecked) {
  const auto s = Sequence::from_string(Alphabet::kDna, "d", "ACGTACGT");
  const auto w = s.window(2, 4);
  EXPECT_EQ(to_string(Alphabet::kDna, w), "GTAC");
  EXPECT_THROW(s.window(6, 4), InvalidArgument);
  EXPECT_NO_THROW(s.window(4, 4));
  EXPECT_NO_THROW(s.window(8, 0));
}

TEST(Sequence, EqualityIgnoresName) {
  const auto a = Sequence::from_string(Alphabet::kDna, "x", "ACGT");
  const auto b = Sequence::from_string(Alphabet::kDna, "y", "ACGT");
  EXPECT_EQ(a, b);
}

TEST(Sequence, EncodeStringRejectsBadChars) {
  EXPECT_THROW(encode_string(Alphabet::kProtein, "MK!L"), ParseError);
}

// ---------- SequenceStore ----------

TEST(SequenceStore, AssignsSequentialIds) {
  SequenceStore store(Alphabet::kDna);
  const auto id0 =
      store.add(Sequence::from_string(Alphabet::kDna, "a", "ACGT"));
  const auto id1 =
      store.add(Sequence::from_string(Alphabet::kDna, "b", "GGCC"));
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(store.at(1).name(), "b");
  EXPECT_EQ(store.at(1).id(), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_residues(), 8u);
}

TEST(SequenceStore, RejectsAlphabetMismatch) {
  SequenceStore store(Alphabet::kDna);
  EXPECT_THROW(
      store.add(Sequence::from_string(Alphabet::kProtein, "p", "MKV")),
      InvalidArgument);
}

TEST(SequenceStore, AtRejectsUnknownId) {
  SequenceStore store(Alphabet::kDna);
  EXPECT_THROW(store.at(0), InvalidArgument);
  EXPECT_FALSE(store.contains(0));
}

// ---------- FASTA ----------

TEST(Fasta, ParsesMultiRecord) {
  std::istringstream in(
      ">seq1 first protein\n"
      "MKVL\n"
      "AWHH\n"
      "\n"
      ">seq2\n"
      "GGGG\n");
  const auto records = read_fasta(in, Alphabet::kProtein);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name(), "seq1 first protein");
  EXPECT_EQ(records[0].to_string(), "MKVLAWHH");
  EXPECT_EQ(records[1].to_string(), "GGGG");
}

TEST(Fasta, HandlesCrlfAndComments) {
  std::istringstream in(
      "; legacy comment\r\n"
      ">d\r\n"
      "ACGT\r\n");
  const auto records = read_fasta(in, Alphabet::kDna);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
}

TEST(Fasta, RejectsResiduesBeforeHeader) {
  std::istringstream in("ACGT\n>x\nACGT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::kDna), ParseError);
}

TEST(Fasta, RejectsEmptyRecord) {
  std::istringstream in(">only-header\n>second\nACGT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::kDna), ParseError);
}

TEST(Fasta, ReportsLineOfBadResidue) {
  std::istringstream in(">x\nAC!T\n");
  try {
    read_fasta(in, Alphabet::kDna);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Sequence> originals;
  originals.push_back(
      Sequence::from_string(Alphabet::kProtein, "alpha", "MKVLAWHHRR"));
  originals.push_back(Sequence::from_string(
      Alphabet::kProtein, "beta desc",
      std::string(200, 'K')));  // forces wrapping
  std::ostringstream out;
  write_fasta(out, originals, 70);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in, Alphabet::kProtein);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], originals[0]);
  EXPECT_EQ(parsed[1], originals[1]);
  EXPECT_EQ(parsed[1].name(), "beta desc");
}

TEST(Fasta, LoadIntoStore) {
  std::istringstream in(">a\nACGT\n>b\nGGTT\n");
  SequenceStore store(Alphabet::kDna);
  EXPECT_EQ(load_fasta(in, store), 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/file.fa", Alphabet::kDna),
               IoError);
}

// Adversarial-input regressions (mirrors the matrix_fasta fuzz harness
// contract): malformed text must raise ParseError — never crash, never
// throw anything unstructured.

TEST(Fasta, TruncatedFilePrefixesNeverCrash) {
  // Every byte-prefix of a valid two-record file either parses or raises
  // ParseError; nothing in between. Covers header-only, mid-name, and
  // mid-residue-line truncations in one sweep.
  const std::string full = ">alpha first\nMKVLAWHH\nRRKE\n>beta\nGGGG\n";
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    try {
      (void)read_fasta(in, Alphabet::kProtein);
    } catch (const ParseError&) {
    }  // anything else propagates and fails the test
  }
}

TEST(Fasta, OverlongResidueLineParses) {
  // A single multi-megabyte line is legal FASTA; the parser must not
  // impose a hidden line-length cap or degrade quadratically.
  const std::size_t n = 2 << 20;
  std::istringstream in(">long\n" + std::string(n, 'A') + "\n");
  const auto records = read_fasta(in, Alphabet::kDna);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].size(), n);
}

TEST(Fasta, OverlongLineWithBadResidueStillReportsLine) {
  // Out-of-alphabet byte buried deep in an overlong line: still a
  // ParseError carrying the right line number.
  std::istringstream in(">x\nGGGG\n" + std::string(100000, 'A') + "!\n");
  try {
    read_fasta(in, Alphabet::kDna);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Fasta, OutOfAlphabetResidueRejectedPerAlphabet) {
  // Protein-only letters are invalid in DNA mode; digits are invalid in
  // both.
  std::istringstream dna(">d\nACGE\n");
  EXPECT_THROW(read_fasta(dna, Alphabet::kDna), ParseError);
  std::istringstream protein(">p\nMKV1\n");
  EXPECT_THROW(read_fasta(protein, Alphabet::kProtein), ParseError);
}

}  // namespace
}  // namespace mendel::seq
