// Unit tests for src/sequence: alphabets, sequences, stores, FASTA I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.h"
#include "src/sequence/alphabet.h"
#include "src/sequence/fasta.h"
#include "src/sequence/sequence.h"

namespace mendel::seq {
namespace {

// ---------- Alphabet ----------

TEST(Alphabet, DnaEncodeDecodeRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T', 'N'}) {
    EXPECT_EQ(decode(Alphabet::kDna, encode(Alphabet::kDna, c)), c);
  }
}

TEST(Alphabet, DnaLowercaseAccepted) {
  EXPECT_EQ(encode(Alphabet::kDna, 'a'), kDnaA);
  EXPECT_EQ(encode(Alphabet::kDna, 't'), kDnaT);
}

TEST(Alphabet, RnaUracilFoldsToT) {
  EXPECT_EQ(encode(Alphabet::kDna, 'U'), kDnaT);
}

TEST(Alphabet, DnaAmbiguityCodesMapToN) {
  for (char c : {'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V', 'N'}) {
    EXPECT_EQ(encode(Alphabet::kDna, c), kDnaN) << c;
  }
}

TEST(Alphabet, DnaRejectsInvalid) {
  EXPECT_THROW(encode(Alphabet::kDna, 'Z'), ParseError);
  EXPECT_THROW(encode(Alphabet::kDna, '1'), ParseError);
  EXPECT_THROW(encode(Alphabet::kDna, ' '), ParseError);
}

TEST(Alphabet, ProteinRoundTripAllSymbols) {
  for (char c : std::string(kProteinSymbols)) {
    EXPECT_EQ(decode(Alphabet::kProtein, encode(Alphabet::kProtein, c)), c);
  }
}

TEST(Alphabet, ProteinCodeOrderIsBlosumOrder) {
  EXPECT_EQ(encode(Alphabet::kProtein, 'A'), 0);
  EXPECT_EQ(encode(Alphabet::kProtein, 'R'), 1);
  EXPECT_EQ(encode(Alphabet::kProtein, 'V'), 19);
  EXPECT_EQ(encode(Alphabet::kProtein, 'B'), 20);
  EXPECT_EQ(encode(Alphabet::kProtein, 'Z'), 21);
  EXPECT_EQ(encode(Alphabet::kProtein, 'X'), 22);
  EXPECT_EQ(encode(Alphabet::kProtein, '*'), 23);
}

TEST(Alphabet, RareAminoAcidsMapToX) {
  EXPECT_EQ(encode(Alphabet::kProtein, 'U'), 22);  // selenocysteine
  EXPECT_EQ(encode(Alphabet::kProtein, 'O'), 22);  // pyrrolysine
  EXPECT_EQ(encode(Alphabet::kProtein, 'J'), 22);
}

TEST(Alphabet, Cardinalities) {
  EXPECT_EQ(cardinality(Alphabet::kDna), 5u);
  EXPECT_EQ(cardinality(Alphabet::kProtein), 24u);
  EXPECT_EQ(core_cardinality(Alphabet::kDna), 4u);
  EXPECT_EQ(core_cardinality(Alphabet::kProtein), 20u);
}

TEST(Alphabet, DecodeRejectsOutOfRange) {
  EXPECT_THROW(decode(Alphabet::kDna, 5), InvalidArgument);
  EXPECT_THROW(decode(Alphabet::kProtein, 24), InvalidArgument);
}

TEST(Alphabet, IsValid) {
  EXPECT_TRUE(is_valid(Alphabet::kDna, 'a'));
  EXPECT_FALSE(is_valid(Alphabet::kDna, 'q'));
  EXPECT_TRUE(is_valid(Alphabet::kProtein, 'w'));
  EXPECT_FALSE(is_valid(Alphabet::kProtein, '!'));
}

TEST(Alphabet, ProteinBackgroundFrequenciesSane) {
  const auto& f = protein_background_frequencies();
  double sum = 0;
  for (double p : f) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 0.02);
  // Leu is most frequent, Trp least (paper §III-B cites the ~9x spread).
  const auto leu = f[encode(Alphabet::kProtein, 'L')];
  const auto trp = f[encode(Alphabet::kProtein, 'W')];
  for (double p : f) {
    EXPECT_LE(p, leu);
    EXPECT_GE(p, trp);
  }
  EXPECT_GT(leu / trp, 8.0);
}

// ---------- Sequence ----------

TEST(Sequence, FromStringRoundTrip) {
  const auto s = Sequence::from_string(Alphabet::kProtein, "p1", "MKVLAW");
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.to_string(), "MKVLAW");
  EXPECT_EQ(s.name(), "p1");
}

TEST(Sequence, WindowBoundsChecked) {
  const auto s = Sequence::from_string(Alphabet::kDna, "d", "ACGTACGT");
  const auto w = s.window(2, 4);
  EXPECT_EQ(to_string(Alphabet::kDna, w), "GTAC");
  EXPECT_THROW(s.window(6, 4), InvalidArgument);
  EXPECT_NO_THROW(s.window(4, 4));
  EXPECT_NO_THROW(s.window(8, 0));
}

TEST(Sequence, EqualityIgnoresName) {
  const auto a = Sequence::from_string(Alphabet::kDna, "x", "ACGT");
  const auto b = Sequence::from_string(Alphabet::kDna, "y", "ACGT");
  EXPECT_EQ(a, b);
}

TEST(Sequence, EncodeStringRejectsBadChars) {
  EXPECT_THROW(encode_string(Alphabet::kProtein, "MK!L"), ParseError);
}

// ---------- SequenceStore ----------

TEST(SequenceStore, AssignsSequentialIds) {
  SequenceStore store(Alphabet::kDna);
  const auto id0 =
      store.add(Sequence::from_string(Alphabet::kDna, "a", "ACGT"));
  const auto id1 =
      store.add(Sequence::from_string(Alphabet::kDna, "b", "GGCC"));
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(store.at(1).name(), "b");
  EXPECT_EQ(store.at(1).id(), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_residues(), 8u);
}

TEST(SequenceStore, RejectsAlphabetMismatch) {
  SequenceStore store(Alphabet::kDna);
  EXPECT_THROW(
      store.add(Sequence::from_string(Alphabet::kProtein, "p", "MKV")),
      InvalidArgument);
}

TEST(SequenceStore, AtRejectsUnknownId) {
  SequenceStore store(Alphabet::kDna);
  EXPECT_THROW(store.at(0), InvalidArgument);
  EXPECT_FALSE(store.contains(0));
}

// ---------- FASTA ----------

TEST(Fasta, ParsesMultiRecord) {
  std::istringstream in(
      ">seq1 first protein\n"
      "MKVL\n"
      "AWHH\n"
      "\n"
      ">seq2\n"
      "GGGG\n");
  const auto records = read_fasta(in, Alphabet::kProtein);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name(), "seq1 first protein");
  EXPECT_EQ(records[0].to_string(), "MKVLAWHH");
  EXPECT_EQ(records[1].to_string(), "GGGG");
}

TEST(Fasta, HandlesCrlfAndComments) {
  std::istringstream in(
      "; legacy comment\r\n"
      ">d\r\n"
      "ACGT\r\n");
  const auto records = read_fasta(in, Alphabet::kDna);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to_string(), "ACGT");
}

TEST(Fasta, RejectsResiduesBeforeHeader) {
  std::istringstream in("ACGT\n>x\nACGT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::kDna), ParseError);
}

TEST(Fasta, RejectsEmptyRecord) {
  std::istringstream in(">only-header\n>second\nACGT\n");
  EXPECT_THROW(read_fasta(in, Alphabet::kDna), ParseError);
}

TEST(Fasta, ReportsLineOfBadResidue) {
  std::istringstream in(">x\nAC!T\n");
  try {
    read_fasta(in, Alphabet::kDna);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<Sequence> originals;
  originals.push_back(
      Sequence::from_string(Alphabet::kProtein, "alpha", "MKVLAWHHRR"));
  originals.push_back(Sequence::from_string(
      Alphabet::kProtein, "beta desc",
      std::string(200, 'K')));  // forces wrapping
  std::ostringstream out;
  write_fasta(out, originals, 70);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in, Alphabet::kProtein);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], originals[0]);
  EXPECT_EQ(parsed[1], originals[1]);
  EXPECT_EQ(parsed[1].name(), "beta desc");
}

TEST(Fasta, LoadIntoStore) {
  std::istringstream in(">a\nACGT\n>b\nGGTT\n");
  SequenceStore store(Alphabet::kDna);
  EXPECT_EQ(load_fasta(in, store), 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/file.fa", Alphabet::kDna),
               IoError);
}

}  // namespace
}  // namespace mendel::seq
