// System-level tests of the full Mendel pipeline beyond the basic
// integration suite: persistence, fault tolerance with replication,
// symmetric entry points, DNA mode, and the ThreadTransport twin runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>

#include "src/mendel/client.h"
#include "src/mendel/indexer.h"
#include "src/mendel/protocol.h"
#include "src/mendel/storage_node.h"
#include "src/net/thread_transport.h"
#include "src/workload/generator.h"

namespace mendel {
namespace {

core::ClientOptions cluster_options(std::uint32_t groups = 4,
                                    std::uint32_t per_group = 3) {
  core::ClientOptions options;
  options.topology.num_groups = groups;
  options.topology.nodes_per_group = per_group;
  options.indexing.window_length = 8;
  options.indexing.sample_size = 512;
  options.prefix_tree.cutoff_depth = 4;
  options.cost.measured_cpu = false;
  return options;
}

workload::DatabaseSpec database_spec() {
  workload::DatabaseSpec spec;
  spec.families = 6;
  spec.members_per_family = 4;
  spec.background_sequences = 10;
  spec.min_length = 150;
  spec.max_length = 400;
  spec.seed = 42;
  return spec;
}

seq::Sequence probe_of(const seq::SequenceStore& store, seq::SequenceId id,
                       std::size_t offset, std::size_t length) {
  const auto window = store.at(id).window(offset, length);
  return seq::Sequence(store.alphabet(), "probe",
                       {window.begin(), window.end()});
}

bool hits_contain(const std::vector<align::AlignmentHit>& hits,
                  seq::SequenceId id) {
  for (const auto& hit : hits) {
    if (hit.subject_id == id) return true;
  }
  return false;
}

// ---------- repeated queries / symmetric entry ----------

TEST(Pipeline, RepeatedQueriesAreConsistentAcrossEntryPoints) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  const auto query = probe_of(store, 5, 20, 120);

  // Each query rotates to a different system entry point (symmetric
  // architecture, paper §V-B: "any node ... generates identical results").
  const auto first = client.query(query);
  for (int i = 0; i < 4; ++i) {
    const auto again = client.query(query);
    ASSERT_EQ(again.hits.size(), first.hits.size());
    for (std::size_t h = 0; h < first.hits.size(); ++h) {
      EXPECT_EQ(again.hits[h].subject_id, first.hits[h].subject_id);
      EXPECT_EQ(again.hits[h].alignment.hsp.score,
                first.hits[h].alignment.hsp.score);
    }
  }
}

TEST(Pipeline, ManyDifferentQueriesNoCrosstalk) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  // Interleave queries against different donors; pending state of one
  // query must never leak into another.
  for (seq::SequenceId donor : {0u, 7u, 13u, 21u, 30u}) {
    if (store.at(donor).size() < 120) continue;
    const auto outcome = client.query(probe_of(store, donor, 0, 120));
    EXPECT_TRUE(hits_contain(outcome.hits, donor)) << "donor " << donor;
  }
}

TEST(Pipeline, TurnaroundMonotonicVirtualTime) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  const auto query = probe_of(store, 4, 0, 100);
  for (int i = 0; i < 3; ++i) {
    const auto outcome = client.query(query);
    EXPECT_GT(outcome.turnaround, 0.0);
    EXPECT_LT(outcome.turnaround, 10.0);  // sanity bound, virtual seconds
  }
}

// ---------- DNA end-to-end ----------

TEST(Pipeline, DnaDatabaseEndToEnd) {
  workload::DatabaseSpec spec = database_spec();
  spec.alphabet = seq::Alphabet::kDna;
  spec.families = 4;
  spec.min_length = 300;
  spec.max_length = 600;
  const auto store = workload::generate_database(spec);

  auto options = cluster_options();
  options.indexing.window_length = 12;  // DNA windows are longer
  core::Client client(options);
  client.index(store);

  core::QueryParams params;
  params.matrix = "DNA";
  params.identity = 0.6;
  params.c_score = 0.4;
  // S is matrix-relative: a perfect DNA column scores +2, so the protein
  // default (2.5) would reject even exact matches.
  params.gapped_trigger = 1.0;
  const auto query = probe_of(store, 2, 50, 200);
  const auto outcome = client.query(query, params);
  ASSERT_FALSE(outcome.hits.empty());
  EXPECT_TRUE(hits_contain(outcome.hits, 2));
  EXPECT_GT(outcome.hits.front().alignment.percent_identity(), 0.95);
}

// ---------- persistence ----------

TEST(Pipeline, SaveAndLoadIndexReproducesResults) {
  const auto store = workload::generate_database(database_spec());
  const std::string path = "/tmp/mendel_index_test.bin";

  core::Client original(cluster_options());
  original.index(store);
  const auto query = probe_of(store, 9, 10, 130);
  const auto before = original.query(query);
  original.save_index(path);

  core::Client restored(cluster_options());
  restored.load_index(path);
  EXPECT_TRUE(restored.indexed());
  const auto after = restored.query(query);

  ASSERT_EQ(after.hits.size(), before.hits.size());
  for (std::size_t i = 0; i < before.hits.size(); ++i) {
    EXPECT_EQ(after.hits[i].subject_id, before.hits[i].subject_id);
    EXPECT_EQ(after.hits[i].alignment.hsp.score,
              before.hits[i].alignment.hsp.score);
    EXPECT_DOUBLE_EQ(after.hits[i].evalue, before.hits[i].evalue);
  }
  // Block placement survives the round trip exactly.
  EXPECT_EQ(restored.block_counts(), original.block_counts());
  std::remove(path.c_str());
}

TEST(Pipeline, LoadIndexAdoptsSnapshotTopology) {
  const auto store = workload::generate_database(database_spec());
  const std::string path = "/tmp/mendel_index_adopt.bin";
  core::Client original(cluster_options(4, 3));
  original.index(store);
  original.save_index(path);

  // The restoring client was configured for a different shape; the
  // snapshot's 4x3 topology wins (an index is only valid on the cluster
  // shape it was built for).
  core::Client restored(cluster_options(2, 3));
  restored.load_index(path);
  EXPECT_EQ(restored.topology().num_groups(), 4u);
  EXPECT_EQ(restored.topology().nodes_per_group(), 3u);
  const auto outcome = restored.query(probe_of(store, 2, 0, 120));
  EXPECT_TRUE(hits_contain(outcome.hits, 2));
  std::remove(path.c_str());
}

TEST(Pipeline, IncrementalAddSequencesFindsNewData) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);

  // A brand-new family arrives after the initial build.
  workload::DatabaseSpec extra_spec;
  extra_spec.families = 1;
  extra_spec.members_per_family = 3;
  extra_spec.background_sequences = 0;
  extra_spec.min_length = 200;
  extra_spec.max_length = 200;
  extra_spec.seed = 777;
  const auto extra = workload::generate_database(extra_spec);
  const auto base = client.add_sequences(extra);
  EXPECT_EQ(base, store.size());

  // A probe cut from the new ancestor must resolve to its cluster-wide id.
  const auto outcome = client.query(probe_of(extra, 0, 10, 150));
  ASSERT_FALSE(outcome.hits.empty());
  EXPECT_TRUE(hits_contain(outcome.hits, static_cast<seq::SequenceId>(base)));
  // Old data is still fully queryable.
  const auto old_outcome = client.query(probe_of(store, 3, 10, 120));
  EXPECT_TRUE(hits_contain(old_outcome.hits, 3));
}

TEST(Pipeline, AddNodeMigratesBlocksAndPreservesResults) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  const auto query = probe_of(store, 5, 20, 120);
  const auto before = client.query(query);
  ASSERT_TRUE(hits_contain(before.hits, 5));
  const auto counts_before = client.block_counts();
  std::uint64_t total_before = 0;
  for (auto c : counts_before) total_before += c;

  // Grow group 1 by one node; the rebalance must move ~1/(n+1) of that
  // group's blocks (plus a slice of the sequence repository) onto it.
  const auto new_id = client.add_node(1);
  EXPECT_EQ(new_id, counts_before.size());
  const auto counts_after = client.block_counts();
  ASSERT_EQ(counts_after.size(), counts_before.size() + 1);
  EXPECT_GT(counts_after[new_id], 0u) << "newcomer received no blocks";
  std::uint64_t total_after = 0;
  for (auto c : counts_after) total_after += c;
  EXPECT_EQ(total_after, total_before) << "blocks lost or duplicated";
  // Only group 1's nodes shed blocks.
  for (net::NodeId id = 0; id < counts_before.size(); ++id) {
    if (client.topology().address(id).group == 1) {
      EXPECT_LE(counts_after[id], counts_before[id]);
    }
  }

  // Queries produce the same answers on the rebalanced cluster.
  const auto after = client.query(query);
  ASSERT_EQ(after.hits.size(), before.hits.size());
  for (std::size_t i = 0; i < before.hits.size(); ++i) {
    EXPECT_EQ(after.hits[i].subject_id, before.hits[i].subject_id);
    EXPECT_EQ(after.hits[i].alignment.hsp.score,
              before.hits[i].alignment.hsp.score);
  }
}

TEST(Pipeline, AddNodeThenSaveLoadRoundTrip) {
  const auto store = workload::generate_database(database_spec());
  const std::string path = "/tmp/mendel_index_grown.bin";
  core::Client original(cluster_options());
  original.index(store);
  original.add_node(0);
  original.add_node(2);
  const auto query = probe_of(store, 7, 0, 120);
  const auto before = original.query(query);
  original.save_index(path);

  core::Client restored(cluster_options());
  restored.load_index(path);
  EXPECT_EQ(restored.topology().total_nodes(),
            original.topology().total_nodes());
  EXPECT_EQ(restored.block_counts(), original.block_counts());
  const auto after = restored.query(query);
  ASSERT_EQ(after.hits.size(), before.hits.size());
  for (std::size_t i = 0; i < before.hits.size(); ++i) {
    EXPECT_EQ(after.hits[i].subject_id, before.hits[i].subject_id);
  }
  std::remove(path.c_str());
}

TEST(Pipeline, RepeatedAddNodeKeepsClusterConsistent) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  std::uint64_t expected_total = 0;
  for (auto c : client.block_counts()) expected_total += c;
  for (std::uint32_t g = 0; g < 3; ++g) {
    client.add_node(g % client.topology().num_groups());
    std::uint64_t total = 0;
    for (auto c : client.block_counts()) total += c;
    EXPECT_EQ(total, expected_total) << "after growth round " << g;
  }
  const auto outcome = client.query(probe_of(store, 11, 0, 120));
  EXPECT_TRUE(hits_contain(outcome.hits, 11));
}

TEST(Pipeline, AddSequencesRequiresIndexedClient) {
  core::Client client(cluster_options());
  const auto extra = workload::generate_database(database_spec());
  EXPECT_THROW(client.add_sequences(extra), InvalidArgument);
}

TEST(Pipeline, LoadIndexMissingFileThrows) {
  core::Client client(cluster_options());
  EXPECT_THROW(client.load_index("/nonexistent/index.bin"), IoError);
}

// ---------- fault tolerance (paper future work, implemented) ----------

TEST(Pipeline, QuerySurvivesNodeFailureWithReplication) {
  auto options = cluster_options();
  options.topology.replication = 2;           // block replicas in-group
  options.topology.sequence_replication = 2;  // repository replicas
  const auto store = workload::generate_database(database_spec());
  core::Client client(options);
  client.index(store);

  const auto query = probe_of(store, 3, 10, 120);
  const auto healthy = client.query(query);
  ASSERT_TRUE(hits_contain(healthy.hits, 3));

  // Fail one node; replicas must keep the donor reachable.
  client.fail_node(4);
  const auto degraded = client.query(query);
  EXPECT_TRUE(hits_contain(degraded.hits, 3));

  // Heal and verify full service resumes.
  client.heal_node(4);
  const auto recovered = client.query(query);
  EXPECT_TRUE(hits_contain(recovered.hits, 3));
}

TEST(Pipeline, WithoutReplicationFailureDegradesButAnswers) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  client.fail_node(0);
  client.fail_node(5);
  // Queries still complete (no hangs, no exceptions) even if some hits are
  // unreachable.
  const auto outcome = client.query(probe_of(store, 12, 0, 120));
  SUCCEED();
  (void)outcome;
}

TEST(Pipeline, SilentNodeFailureYieldsIncompleteOutcomeAndRecovers) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);

  // Drop node 2's traffic WITHOUT updating membership: fan-ins that await
  // it can never complete, which is the stall the cancel protocol handles.
  client.transport().fail_node(2);
  const auto stalled = client.query(probe_of(store, 3, 10, 120));
  EXPECT_FALSE(stalled.completed);
  EXPECT_TRUE(stalled.hits.empty());

  // After healing, subsequent queries work and no stale pending state from
  // the aborted query interferes.
  client.transport().heal_node(2);
  const auto recovered = client.query(probe_of(store, 3, 10, 120));
  EXPECT_TRUE(recovered.completed);
  EXPECT_TRUE(hits_contain(recovered.hits, 3));
}

// ---------- counters / telemetry ----------

TEST(Pipeline, CountersReflectWork) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  const auto report = client.index(store);
  EXPECT_EQ(report.sequences, store.size());

  const auto counters_before = client.total_counters();
  EXPECT_EQ(counters_before.blocks_inserted, report.blocks);
  // Sequence replication 1: every sequence stored exactly once.
  EXPECT_EQ(counters_before.sequences_stored, store.size());

  client.query(probe_of(store, 1, 0, 100));
  const auto counters_after = client.total_counters();
  EXPECT_EQ(counters_after.queries_coordinated, 1u);
  EXPECT_GT(counters_after.group_queries, 0u);
  EXPECT_GT(counters_after.nn_searches, 0u);
}

TEST(Pipeline, BlockCountsSumToReport) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  const auto report = client.index(store);
  std::uint64_t total = 0;
  for (auto c : client.block_counts()) total += c;
  EXPECT_EQ(total, report.blocks);
}

// ---------- degenerate queries ----------

TEST(Pipeline, QueryShorterThanBlockIsEmptyNotCrash) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  const auto tiny =
      seq::Sequence::from_string(seq::Alphabet::kProtein, "tiny", "MKV");
  const auto outcome = client.query(tiny);
  EXPECT_TRUE(outcome.hits.empty());
}

TEST(Pipeline, AlphabetMismatchRejected) {
  const auto store = workload::generate_database(database_spec());
  core::Client client(cluster_options());
  client.index(store);
  const auto dna =
      seq::Sequence::from_string(seq::Alphabet::kDna, "d", "ACGTACGTACGT");
  EXPECT_THROW(client.query(dna), InvalidArgument);
}

TEST(Pipeline, QueryBeforeIndexRejected) {
  core::Client client(cluster_options());
  const auto q =
      seq::Sequence::from_string(seq::Alphabet::kProtein, "q", "MKVLAWHH");
  EXPECT_THROW(client.query(q), InvalidArgument);
}

// ---------- ThreadTransport twin runtime ----------

// Runs the identical StorageNode code under real threads: index a store,
// issue one query, and check the answer matches the donor. This pins the
// protocol's freedom from single-threaded-scheduler assumptions.
TEST(Pipeline, ThreadTransportEndToEnd) {
  workload::DatabaseSpec spec = database_spec();
  spec.families = 3;
  spec.background_sequences = 5;
  const auto store = workload::generate_database(spec);

  cluster::TopologyConfig topo_config;
  topo_config.num_groups = 3;
  topo_config.nodes_per_group = 2;
  cluster::Topology topology(topo_config);
  const auto distance = score::default_distance(store.alphabet());

  core::IndexingOptions indexing;
  indexing.window_length = 8;
  indexing.sample_size = 256;
  core::Indexer indexer(&topology, &distance, indexing);
  const auto prefix_tree =
      indexer.build_prefix_tree(store, {.cutoff_depth = 4});
  topology.bind_prefixes(prefix_tree.leaf_prefixes());

  core::StorageNodeConfig node_config;
  node_config.topology = &topology;
  node_config.prefix_tree = &prefix_tree;
  node_config.distance = &distance;
  node_config.alphabet = store.alphabet();
  node_config.database_residues = store.total_residues();

  net::ThreadTransport transport;
  std::vector<std::unique_ptr<core::StorageNode>> nodes;
  for (net::NodeId id = 0; id < topology.total_nodes(); ++id) {
    nodes.push_back(std::make_unique<core::StorageNode>(id, node_config));
    transport.register_actor(id, nodes.back().get());
  }
  std::promise<core::QueryResultPayload> result_promise;
  std::atomic<bool> fulfilled{false};
  net::FunctionActor client([&](const net::Message& m, net::Context&) {
    if (m.type == core::kQueryResult && !fulfilled.exchange(true)) {
      result_promise.set_value(
          core::decode_payload<core::QueryResultPayload>(m.payload));
    }
  });
  transport.register_actor(net::kClientNode, &client);
  transport.start();

  // Index, then query. Mailboxes are FIFO, so every node sees its inserts
  // before any search for them arrives (searches are only generated after
  // the query request, which is sent after all inserts).
  indexer.index_store(store, prefix_tree, transport, net::kClientNode);

  const auto query = probe_of(store, 1, 0, 120);
  core::QueryRequestPayload request;
  request.query.assign(query.codes().begin(), query.codes().end());
  net::Message message;
  message.from = net::kClientNode;
  message.to = 0;
  message.type = core::kQueryRequest;
  message.request_id = 1;
  message.payload = core::encode_payload(request);
  transport.send(std::move(message));

  auto future = result_promise.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "query did not complete under ThreadTransport";
  const auto result = future.get();
  EXPECT_TRUE(hits_contain(result.hits, 1));
  transport.drain_and_stop();
}

}  // namespace
}  // namespace mendel
