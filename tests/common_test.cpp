// Unit tests for src/common: RNG, statistics, codec, table, thread pool.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "src/common/codec.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"

namespace mendel {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Rng rng(11);
  std::array<int, 8> counts{};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 8, trials / 8 * 0.15);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsP) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, WeightedSamplingProportional) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.03);
}

TEST(Rng, ReseedReproduces) {
  Rng rng(42);
  const auto first = rng();
  rng.reseed(42);
  EXPECT_EQ(rng(), first);
}

// ---------- RunningStats ----------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, combined;
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform() * 10;
    a.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 57; ++i) {
    const double x = rng.uniform() * 3 - 5;
    b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

// ---------- percentile / cov ----------

TEST(Percentile, NearestRank) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(percentile(xs, 50), 5.0);
  EXPECT_EQ(percentile(xs, 100), 10.0);
  EXPECT_EQ(percentile(xs, 10), 1.0);
  EXPECT_EQ(percentile(xs, 0), 1.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50), InvalidArgument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1), InvalidArgument);
  EXPECT_THROW(percentile(xs, 101), InvalidArgument);
}

TEST(CoefficientOfVariation, UniformDataIsZero) {
  const std::vector<double> xs = {3, 3, 3, 3};
  EXPECT_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  const std::vector<double> xs = {2, 4};
  // mean 3, sample stddev sqrt(2)
  EXPECT_NEAR(coefficient_of_variation(xs), std::sqrt(2.0) / 3.0, 1e-12);
}

// ---------- Histogram ----------

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(15.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

// ---------- Codec ----------

TEST(Codec, RoundTripScalars) {
  CodecWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  CodecReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Codec, RoundTripStringsAndBytes) {
  CodecWriter w;
  w.str("hello, Mendel");
  w.str("");
  const std::vector<std::uint8_t> blob = {0, 1, 255, 128};
  w.bytes(blob);
  CodecReader r(w.data());
  EXPECT_EQ(r.str(), "hello, Mendel");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
}

TEST(Codec, RoundTripVector) {
  CodecWriter w;
  const std::vector<std::uint32_t> values = {1, 2, 3, 500};
  w.vec(values, [](CodecWriter& ww, std::uint32_t v) { ww.u32(v); });
  CodecReader r(w.data());
  const auto decoded =
      r.vec<std::uint32_t>([](CodecReader& rr) { return rr.u32(); });
  EXPECT_EQ(decoded, values);
}

TEST(Codec, TruncatedBufferThrows) {
  CodecWriter w;
  w.u64(42);
  auto bytes = w.take();
  bytes.resize(4);
  CodecReader r(bytes);
  EXPECT_THROW(r.u64(), ParseError);
}

TEST(Codec, TruncatedStringThrows) {
  CodecWriter w;
  w.str("abcdef");
  auto bytes = w.take();
  bytes.resize(6);  // length prefix says 6 chars but only 2 present
  CodecReader r(bytes);
  EXPECT_THROW(r.str(), ParseError);
}

TEST(Codec, NegativeDoubleRoundTrip) {
  CodecWriter w;
  w.f64(-0.0);
  w.f64(-1e300);
  CodecReader r(w.data());
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), -1e300);
}

// ---------- TextTable ----------

TEST(TextTable, AlignedOutputContainsCells) {
  TextTable t("My results");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "2.25"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("My results"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.25"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t("x");
  t.set_header({"a", "b"});
  t.add_row({"va,lue", "say \"hi\""});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n\"va,lue\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t("x");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(std::size_t{42}), "42");
  EXPECT_EQ(TextTable::percent(0.1234, 1), "12.3%");
}

// ---------- ThreadPool ----------

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  pool.parallel_for(touched.size(), [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(1);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 100; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

}  // namespace
}  // namespace mendel
