// Unit tests for the indexing pipeline (src/mendel/indexer.*): prefix-tree
// construction, two-tier placement, batching, and replication.
#include <gtest/gtest.h>

#include <map>

#include "src/common/error.h"
#include "src/cluster/telemetry.h"
#include "src/mendel/indexer.h"
#include "src/mendel/protocol.h"
#include "src/net/sim_transport.h"
#include "src/workload/generator.h"

namespace mendel::core {
namespace {

seq::SequenceStore small_store() {
  workload::DatabaseSpec spec;
  spec.families = 4;
  spec.members_per_family = 3;
  spec.background_sequences = 6;
  spec.min_length = 100;
  spec.max_length = 300;
  spec.seed = 7;
  return workload::generate_database(spec);
}

struct Fixture {
  cluster::Topology topology;
  const score::DistanceMatrix& distance;
  Indexer indexer;
  seq::SequenceStore store;
  vpt::VpPrefixTree prefix_tree;

  explicit Fixture(IndexingOptions options = make_options())
      : topology(make_topology()),
        distance(score::default_distance(seq::Alphabet::kProtein)),
        indexer(&topology, &distance, options),
        store(small_store()),
        prefix_tree(indexer.build_prefix_tree(store, {.cutoff_depth = 4})) {
    topology.bind_prefixes(prefix_tree.leaf_prefixes());
  }

  static cluster::TopologyConfig make_topology_config() {
    cluster::TopologyConfig config;
    config.num_groups = 3;
    config.nodes_per_group = 2;
    return config;
  }
  static cluster::Topology make_topology() {
    return cluster::Topology(make_topology_config());
  }
  static IndexingOptions make_options() {
    IndexingOptions options;
    options.window_length = 8;
    options.sample_size = 256;
    options.batch_size = 64;
    return options;
  }
};

TEST(Indexer, PrefixTreeSampleWindowLength) {
  Fixture f;
  EXPECT_TRUE(f.prefix_tree.built());
  EXPECT_EQ(f.prefix_tree.window_length(), 8u);
  EXPECT_FALSE(f.prefix_tree.leaf_prefixes().empty());
}

TEST(Indexer, PlacementCountsCoverAllBlocks) {
  Fixture f;
  const auto counts = f.indexer.placement_counts(f.store, f.prefix_tree);
  ASSERT_EQ(counts.size(), 6u);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  std::uint64_t expected = 0;
  for (const auto& s : f.store) {
    if (s.size() >= 8) expected += s.size() - 8 + 1;
  }
  EXPECT_EQ(total, expected);
}

TEST(Indexer, FlatPlacementIsMoreEvenThanSimilarityOnly) {
  Fixture f;
  const auto flat = f.indexer.flat_placement_counts(f.store);
  const auto sim =
      f.indexer.similarity_only_placement_counts(f.store, f.prefix_tree);
  const auto flat_report = cluster::analyze_load(flat);
  const auto sim_report = cluster::analyze_load(sim);
  EXPECT_LT(flat_report.cov, sim_report.cov);
}

TEST(Indexer, IndexStoreDeliversEverythingOnce) {
  Fixture f;
  net::SimTransport transport({.measured_cpu = false});
  // Count deliveries per node and type with probe actors.
  std::map<net::NodeId, std::size_t> blocks_received, sequences_received;
  std::vector<std::unique_ptr<net::FunctionActor>> actors;
  for (net::NodeId id = 0; id < f.topology.total_nodes(); ++id) {
    actors.push_back(std::make_unique<net::FunctionActor>(
        [&, id](const net::Message& m, net::Context&) {
          if (m.type == kInsertBlocks) {
            blocks_received[id] +=
                decode_payload<InsertBlocksPayload>(m.payload).blocks.size();
          } else if (m.type == kStoreSequence) {
            sequences_received[id] += 1;
          }
        }));
    transport.register_actor(id, actors.back().get());
  }
  const auto report =
      f.indexer.index_store(f.store, f.prefix_tree, transport,
                            net::kClientNode);
  transport.run_until_idle();

  EXPECT_EQ(report.sequences, f.store.size());
  std::uint64_t blocks_total = 0;
  for (const auto& [id, count] : blocks_received) blocks_total += count;
  EXPECT_EQ(blocks_total, report.blocks);
  std::uint64_t sequences_total = 0;
  for (const auto& [id, count] : sequences_received) {
    sequences_total += count;
  }
  EXPECT_EQ(sequences_total, f.store.size());  // replication 1
}

TEST(Indexer, PlacementMatchesMessageDelivery) {
  // The pure placement computation must agree with what index_store
  // actually ships (replication 1, primary owners only).
  Fixture f;
  const auto expected = f.indexer.placement_counts(f.store, f.prefix_tree);

  net::SimTransport transport({.measured_cpu = false});
  std::vector<std::uint64_t> received(f.topology.total_nodes(), 0);
  std::vector<std::unique_ptr<net::FunctionActor>> actors;
  for (net::NodeId id = 0; id < f.topology.total_nodes(); ++id) {
    actors.push_back(std::make_unique<net::FunctionActor>(
        [&received, id](const net::Message& m, net::Context&) {
          if (m.type == kInsertBlocks) {
            received[id] +=
                decode_payload<InsertBlocksPayload>(m.payload).blocks.size();
          }
        }));
    transport.register_actor(id, actors.back().get());
  }
  f.indexer.index_store(f.store, f.prefix_tree, transport, net::kClientNode);
  transport.run_until_idle();
  EXPECT_EQ(received, expected);
}

TEST(Indexer, ReplicationMultipliesDeliveries) {
  auto config = Fixture::make_topology_config();
  config.replication = 2;
  config.sequence_replication = 2;
  cluster::Topology topology(config);
  const auto& distance =
      score::default_distance(seq::Alphabet::kProtein);
  Indexer indexer(&topology, &distance, Fixture::make_options());
  const auto store = small_store();
  const auto tree = indexer.build_prefix_tree(store, {.cutoff_depth = 4});
  topology.bind_prefixes(tree.leaf_prefixes());

  net::SimTransport transport({.measured_cpu = false});
  std::uint64_t blocks = 0, sequences = 0;
  std::vector<std::unique_ptr<net::FunctionActor>> actors;
  for (net::NodeId id = 0; id < topology.total_nodes(); ++id) {
    actors.push_back(std::make_unique<net::FunctionActor>(
        [&](const net::Message& m, net::Context&) {
          if (m.type == kInsertBlocks) {
            blocks += decode_payload<InsertBlocksPayload>(m.payload)
                          .blocks.size();
          } else if (m.type == kStoreSequence) {
            ++sequences;
          }
        }));
    transport.register_actor(id, actors.back().get());
  }
  const auto report =
      indexer.index_store(store, tree, transport, net::kClientNode);
  transport.run_until_idle();
  EXPECT_EQ(blocks, 2 * report.blocks);
  EXPECT_EQ(sequences, 2 * store.size());
}

TEST(Indexer, BatchSizeBoundsMessagePayloads) {
  IndexingOptions options = Fixture::make_options();
  options.batch_size = 16;
  Fixture f(options);
  net::SimTransport transport({.measured_cpu = false});
  std::size_t oversized = 0;
  std::vector<std::unique_ptr<net::FunctionActor>> actors;
  for (net::NodeId id = 0; id < f.topology.total_nodes(); ++id) {
    actors.push_back(std::make_unique<net::FunctionActor>(
        [&](const net::Message& m, net::Context&) {
          if (m.type == kInsertBlocks) {
            const auto batch =
                decode_payload<InsertBlocksPayload>(m.payload);
            if (batch.blocks.size() > 16) ++oversized;
          }
        }));
    transport.register_actor(id, actors.back().get());
  }
  f.indexer.index_store(f.store, f.prefix_tree, transport, net::kClientNode);
  transport.run_until_idle();
  EXPECT_EQ(oversized, 0u);
}

TEST(Indexer, RejectsBadOptions) {
  auto topology = Fixture::make_topology();
  const auto& distance =
      score::default_distance(seq::Alphabet::kProtein);
  IndexingOptions bad;
  bad.window_length = 2;
  EXPECT_THROW(Indexer(&topology, &distance, bad), InvalidArgument);
  bad = Fixture::make_options();
  bad.batch_size = 0;
  EXPECT_THROW(Indexer(&topology, &distance, bad), InvalidArgument);
}

TEST(Indexer, EmptyStoreRejectedAtTreeBuild) {
  auto topology = Fixture::make_topology();
  const auto& distance =
      score::default_distance(seq::Alphabet::kProtein);
  Indexer indexer(&topology, &distance, Fixture::make_options());
  seq::SequenceStore empty(seq::Alphabet::kProtein);
  EXPECT_THROW(indexer.build_prefix_tree(empty, {.cutoff_depth = 4}),
               InvalidArgument);
}

}  // namespace
}  // namespace mendel::core
