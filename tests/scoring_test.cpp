// Unit tests for src/scoring: substitution matrices, Mendel distance
// derivations (including the metric-repair property tests DESIGN.md §6.2
// calls out), and Karlin–Altschul statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.h"
#include "src/scoring/distance.h"
#include "src/scoring/karlin.h"
#include "src/scoring/matrix.h"
#include "src/sequence/alphabet.h"

namespace mendel::score {
namespace {

using seq::Alphabet;
using seq::encode;

seq::Code P(char c) { return encode(Alphabet::kProtein, c); }
seq::Code D(char c) { return encode(Alphabet::kDna, c); }

// ---------- ScoringMatrix ----------

TEST(ScoringMatrix, Blosum62KnownEntries) {
  const auto& m = blosum62();
  EXPECT_EQ(m.score(P('W'), P('W')), 11);
  EXPECT_EQ(m.score(P('A'), P('A')), 4);
  EXPECT_EQ(m.score(P('L'), P('L')), 4);
  EXPECT_EQ(m.score(P('A'), P('R')), -1);
  EXPECT_EQ(m.score(P('W'), P('C')), -2);
  EXPECT_EQ(m.score(P('I'), P('L')), 2);
  EXPECT_EQ(m.score(P('E'), P('Z')), 4);
  EXPECT_EQ(m.score(P('*'), P('*')), 1);
  EXPECT_EQ(m.score(P('A'), P('*')), -4);
}

TEST(ScoringMatrix, Pam250KnownEntries) {
  const auto& m = pam250();
  EXPECT_EQ(m.score(P('W'), P('W')), 17);
  EXPECT_EQ(m.score(P('C'), P('C')), 12);
  EXPECT_EQ(m.score(P('F'), P('Y')), 7);
}

class CanonicalMatrixTest
    : public ::testing::TestWithParam<const ScoringMatrix*> {};

TEST_P(CanonicalMatrixTest, IsSymmetric) {
  EXPECT_TRUE(GetParam()->is_symmetric()) << GetParam()->name();
}

TEST_P(CanonicalMatrixTest, DiagonalIsRowMaximumForCoreResidues) {
  const ScoringMatrix& m = *GetParam();
  for (seq::Code a = 0; a < 20; ++a) {
    for (seq::Code b = 0; b < 20; ++b) {
      EXPECT_LE(m.score(a, b), m.score(a, a))
          << m.name() << " row " << int(a) << " col " << int(b);
    }
  }
}

TEST_P(CanonicalMatrixTest, MaxAndMinConsistent) {
  const ScoringMatrix& m = *GetParam();
  EXPECT_GT(m.max_match_score(), 0);
  EXPECT_LT(m.min_score(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, CanonicalMatrixTest,
                         ::testing::Values(&blosum62(), &blosum80(),
                                           &pam250()),
                         [](const auto& param_info) { return param_info.param->name(); });

TEST(ScoringMatrix, DnaMatchMismatch) {
  const auto m = dna_matrix(2, -3);
  EXPECT_EQ(m.score(D('A'), D('A')), 2);
  EXPECT_EQ(m.score(D('A'), D('C')), -3);
  EXPECT_EQ(m.score(D('A'), D('N')), 0);
  EXPECT_EQ(m.score(D('N'), D('N')), 0);
}

TEST(ScoringMatrix, LookupByName) {
  EXPECT_EQ(matrix_by_name("BLOSUM62").name(), "BLOSUM62");
  EXPECT_EQ(matrix_by_name("BLOSUM80").name(), "BLOSUM80");
  EXPECT_EQ(matrix_by_name("PAM250").name(), "PAM250");
  EXPECT_EQ(matrix_by_name("DNA").alphabet(), Alphabet::kDna);
  EXPECT_THROW(matrix_by_name("BLOSUM999"), InvalidArgument);
}

// ---------- DistanceMatrix ----------

TEST(DistanceMatrix, HammingIsMetric) {
  const auto d = DistanceMatrix::hamming(Alphabet::kDna);
  EXPECT_TRUE(d.is_metric());
  EXPECT_EQ(d.at(D('A'), D('A')), 0.0);
  EXPECT_EQ(d.at(D('A'), D('G')), 1.0);
}

TEST(DistanceMatrix, PaperDerivationMatchesFormula) {
  // Paper §III-B: M[i][j] = |B[i][j] - B[i][i]|.
  const auto d = DistanceMatrix::paper_from_scores(blosum62());
  EXPECT_EQ(d.at(P('A'), P('R')), std::abs(-1 - 4));
  EXPECT_EQ(d.at(P('W'), P('C')), std::abs(-2 - 11));
  EXPECT_TRUE(d.zero_diagonal());
}

TEST(DistanceMatrix, PaperDerivationIsNotSymmetric) {
  // The published transform is asymmetric because B[i][i] != B[j][j]:
  // this is the flaw DESIGN.md documents and the metric variant repairs.
  const auto d = DistanceMatrix::paper_from_scores(blosum62());
  EXPECT_FALSE(d.is_symmetric());
  EXPECT_NE(d.at(P('A'), P('W')), d.at(P('W'), P('A')));
}

class MetricDerivationTest
    : public ::testing::TestWithParam<const ScoringMatrix*> {};

TEST_P(MetricDerivationTest, SatisfiesAllMetricAxioms) {
  const auto d = DistanceMatrix::metric_from_scores(*GetParam());
  EXPECT_TRUE(d.zero_diagonal());
  EXPECT_TRUE(d.is_symmetric());
  EXPECT_TRUE(d.satisfies_triangle_inequality());
  EXPECT_TRUE(d.is_metric());
}

TEST_P(MetricDerivationTest, DistinctResiduesHavePositiveDistance) {
  const auto d = DistanceMatrix::metric_from_scores(*GetParam());
  for (seq::Code a = 0; a < 20; ++a) {
    for (seq::Code b = 0; b < 20; ++b) {
      if (a == b) continue;
      EXPECT_GT(d.at(a, b), 0.0)
          << GetParam()->name() << " " << int(a) << "," << int(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, MetricDerivationTest,
                         ::testing::Values(&blosum62(), &blosum80(),
                                           &pam250()),
                         [](const auto& param_info) { return param_info.param->name(); });

TEST(DistanceMatrix, RepairEnforcesTriangle) {
  DistanceMatrix d(Alphabet::kDna);
  // Start from uniform distance 5, then plant a triangle violation:
  // d(0,2)=10 but d(0,1)+d(1,2)=2.
  for (seq::Code a = 0; a < 5; ++a) {
    for (seq::Code b = 0; b < 5; ++b) d.set(a, b, a == b ? 0.0 : 5.0);
  }
  d.set(0, 2, 10.0);
  d.set(2, 0, 10.0);
  d.set(0, 1, 1.0);
  d.set(1, 0, 1.0);
  d.set(1, 2, 1.0);
  d.set(2, 1, 1.0);
  EXPECT_FALSE(d.satisfies_triangle_inequality());
  d.repair_triangle_inequality();
  EXPECT_TRUE(d.satisfies_triangle_inequality());
  // The violating pair relaxes through code 1.
  EXPECT_EQ(d.at(0, 2), 2.0);
  EXPECT_TRUE(d.is_symmetric());
}

TEST(DistanceMatrix, MetricDerivationPreservesSimilarityOrdering) {
  // I/L are similar (BLOSUM62 +2), W/C dissimilar (-2): the distance must
  // reflect that.
  const auto d = DistanceMatrix::metric_from_scores(blosum62());
  EXPECT_LT(d.at(P('I'), P('L')), d.at(P('W'), P('C')));
}

TEST(DistanceMatrix, MaxEntryBoundsWindowDistance) {
  const auto d = DistanceMatrix::metric_from_scores(blosum62());
  const auto a = seq::encode_string(Alphabet::kProtein, "MKVLAWHH");
  const auto b = seq::encode_string(Alphabet::kProtein, "WWWWWWWW");
  EXPECT_LE(window_distance(d, a, b), 8 * d.max_entry());
}

// ---------- window distances ----------

TEST(WindowDistance, SumsPerResidue) {
  const auto d = DistanceMatrix::hamming(Alphabet::kDna);
  const auto a = seq::encode_string(Alphabet::kDna, "ACGT");
  const auto b = seq::encode_string(Alphabet::kDna, "AGGT");
  EXPECT_EQ(window_distance(d, a, b), 1.0);
  EXPECT_EQ(window_distance(d, a, a), 0.0);
}

TEST(WindowDistance, MismatchedLengthThrows) {
  const auto d = DistanceMatrix::hamming(Alphabet::kDna);
  const auto a = seq::encode_string(Alphabet::kDna, "ACGT");
  const auto b = seq::encode_string(Alphabet::kDna, "ACG");
  EXPECT_THROW(window_distance(d, a, b), InvalidArgument);
}

TEST(WindowDistance, BoundedVariantExactUnderBound) {
  const auto d = DistanceMatrix::metric_from_scores(blosum62());
  const auto a = seq::encode_string(Alphabet::kProtein, "MKVLAWHH");
  const auto b = seq::encode_string(Alphabet::kProtein, "MKVLAWHW");
  const double exact = window_distance(d, a, b);
  EXPECT_EQ(window_distance_bounded(d, a, b, exact + 1), exact);
  EXPECT_GT(window_distance_bounded(d, a, b, exact / 2), exact / 2);
}

TEST(HammingDistance, CountsAndIdentity) {
  const auto a = seq::encode_string(Alphabet::kDna, "ACGTACGT");
  const auto b = seq::encode_string(Alphabet::kDna, "ACGAACGA");
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_DOUBLE_EQ(percent_identity(a, b), 0.75);
  EXPECT_DOUBLE_EQ(percent_identity(a, a), 1.0);
}

// ---------- consecutivity score ----------

TEST(ConsecutivityScore, AllMatchesConsecutive) {
  const auto m = dna_matrix();
  const auto a = seq::encode_string(Alphabet::kDna, "ACGTACGT");
  EXPECT_DOUBLE_EQ(consecutivity_score(a, a, m), 1.0);
}

TEST(ConsecutivityScore, IsolatedMatchesScoreZero) {
  const auto m = dna_matrix();
  const auto a = seq::encode_string(Alphabet::kDna, "AAAA");
  const auto b = seq::encode_string(Alphabet::kDna, "ACAC");
  // Matches at positions 0 and 2 only — both isolated runs of length 1.
  EXPECT_DOUBLE_EQ(consecutivity_score(a, b, m), 0.0);
}

TEST(ConsecutivityScore, PartialRuns) {
  const auto m = dna_matrix();
  const auto a = seq::encode_string(Alphabet::kDna, "ACACACAC");
  const auto b = seq::encode_string(Alphabet::kDna, "AGATATAC");
  // Matches at 0, 2, 4, 6, 7; only the 6-7 run has length >= 2.
  EXPECT_DOUBLE_EQ(consecutivity_score(a, b, m), 2.0 / 5.0);
}

TEST(ConsecutivityScore, MixedRuns) {
  const auto m = dna_matrix();
  const auto a = seq::encode_string(Alphabet::kDna, "AAAACAAA");
  const auto b = seq::encode_string(Alphabet::kDna, "AAAAGCAA");
  // Pairing: AAAA match (run 4), pos4 C/G mismatch, pos5 A/C mismatch,
  // pos6-7 AA match (run 2). 6 matches, all in runs >= 2 -> 1.0.
  EXPECT_DOUBLE_EQ(consecutivity_score(a, b, m), 1.0);
}

TEST(ConsecutivityScore, ProteinUsesPositiveSubstitutions) {
  const auto& m = blosum62();
  // I/L scores +2 (positive => counts as successive match).
  const auto a = seq::encode_string(Alphabet::kProtein, "IIII");
  const auto b = seq::encode_string(Alphabet::kProtein, "LLLL");
  EXPECT_DOUBLE_EQ(consecutivity_score(a, b, m), 1.0);
  // W vs C scores -2 (no match at all).
  const auto c = seq::encode_string(Alphabet::kProtein, "WWWW");
  const auto d = seq::encode_string(Alphabet::kProtein, "CCCC");
  EXPECT_DOUBLE_EQ(consecutivity_score(c, d, m), 0.0);
}

TEST(ConsecutivityScore, NoMatchesIsZero) {
  const auto m = dna_matrix();
  const auto a = seq::encode_string(Alphabet::kDna, "AAAA");
  const auto b = seq::encode_string(Alphabet::kDna, "CCCC");
  EXPECT_DOUBLE_EQ(consecutivity_score(a, b, m), 0.0);
}

TEST(DefaultDistance, SelectsByAlphabet) {
  EXPECT_EQ(default_distance(Alphabet::kDna).at(D('A'), D('C')), 1.0);
  EXPECT_TRUE(default_distance(Alphabet::kProtein).is_metric());
}

// ---------- Karlin–Altschul ----------

TEST(Karlin, LambdaSatisfiesRootEquation) {
  const auto& freqs = seq::protein_background_frequencies();
  const auto params = solve_ungapped(blosum62(), freqs);
  // Verify sum p_i p_j exp(lambda s_ij) == 1 at the solved lambda.
  double total = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    for (std::size_t j = 0; j < freqs.size(); ++j) {
      total += freqs[i] * freqs[j] *
               std::exp(params.lambda *
                        blosum62().score(static_cast<seq::Code>(i),
                                         static_cast<seq::Code>(j)));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Karlin, Blosum62UngappedLambdaNearPublished) {
  // NCBI's ungapped BLOSUM62 lambda is ~0.318 (Robinson frequencies); with
  // UniProt composition the root lands close by.
  const auto params =
      solve_ungapped(blosum62(), seq::protein_background_frequencies());
  EXPECT_GT(params.lambda, 0.25);
  EXPECT_LT(params.lambda, 0.40);
  EXPECT_GT(params.h, 0.0);
  EXPECT_GT(params.k, 0.0);
}

TEST(Karlin, DnaUngappedLambda) {
  const auto m = dna_matrix(1, -1);  // classic +1/-1
  const auto params =
      solve_ungapped(m, seq::dna_background_frequencies());
  // Known closed form: lambda = ln 3 for +1/-1 at uniform composition.
  EXPECT_NEAR(params.lambda, std::log(3.0), 1e-4);
}

TEST(Karlin, RejectsAllPositiveMatrix) {
  ScoringMatrix m("BAD", seq::Alphabet::kDna, {1, 1});
  for (seq::Code a = 0; a < 4; ++a) {
    for (seq::Code b = 0; b < 4; ++b) m.set(a, b, 1);
  }
  EXPECT_THROW(
      solve_ungapped(m, seq::dna_background_frequencies()),
      InvalidArgument);
}

TEST(Karlin, GappedParamsTabulated) {
  EXPECT_NEAR(gapped_params(blosum62()).lambda, 0.267, 1e-9);
  EXPECT_NEAR(gapped_params(pam250()).lambda, 0.215, 1e-9);
}

TEST(Karlin, EvalueDecreasesWithScore) {
  const auto params = gapped_params(blosum62());
  const double e1 = evalue(params, 50, 500, 1000000);
  const double e2 = evalue(params, 100, 500, 1000000);
  EXPECT_GT(e1, e2);
}

TEST(Karlin, EvalueScalesWithSearchSpace) {
  const auto params = gapped_params(blosum62());
  EXPECT_DOUBLE_EQ(evalue(params, 60, 500, 2000000),
                   2 * evalue(params, 60, 500, 1000000));
  EXPECT_DOUBLE_EQ(evalue(params, 60, 1000, 1000000),
                   2 * evalue(params, 60, 500, 1000000));
}

TEST(Karlin, BitScoreMonotone) {
  const auto params = gapped_params(blosum62());
  EXPECT_LT(bit_score(params, 50), bit_score(params, 100));
}

}  // namespace
}  // namespace mendel::score
