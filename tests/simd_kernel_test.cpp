// Randomized exactness pinning for the SIMD kernels.
//
// The dispatched kernels (quantized window distances, batched leaf scans,
// striped banded DP) are only admissible because they are *exact*: every
// result the search pipeline can observe must be bit-identical to the
// scalar references. This suite fuzzes thousands of random windows,
// matrices, tau values, and band geometries against those references on
// every SIMD level runnable on the build host — so a scalar-only CI leg
// degenerates to scalar-vs-scalar (vacuous but harmless) while an AVX2 leg
// pins the vector kernels.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/align/banded.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/scoring/distance.h"
#include "src/scoring/matrix.h"
#include "src/scoring/quantized.h"
#include "src/sequence/alphabet.h"
#include "src/vptree/window_arena.h"

namespace mendel {
namespace {

using score::DistanceMatrix;
using score::QuantizedDistance;

std::vector<seq::Code> random_window(Rng& rng, std::size_t length,
                                     std::size_t cardinality) {
  std::vector<seq::Code> w(length);
  for (auto& c : w) c = static_cast<seq::Code>(rng.below(cardinality));
  return w;
}

// A random exactly-representable matrix: cells are k/scale with k <=
// 65535, zero diagonal, symmetric. requantize() must accept it.
DistanceMatrix random_exact_matrix(Rng& rng, seq::Alphabet alphabet,
                                   std::int64_t scale) {
  DistanceMatrix d(alphabet);
  const std::size_t n = seq::cardinality(alphabet);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double v = static_cast<double>(rng.below(200)) /
                       static_cast<double>(scale);
      d.set(static_cast<seq::Code>(a), static_cast<seq::Code>(b), v);
      d.set(static_cast<seq::Code>(b), static_cast<seq::Code>(a), v);
    }
  }
  EXPECT_TRUE(d.requantize());
  return d;
}

class SimdLevelGuard {
 public:
  SimdLevelGuard() : saved_(simd::active_level()) {}
  ~SimdLevelGuard() { simd::set_active_level(saved_); }

 private:
  simd::Level saved_;
};

TEST(SimdDispatch, LevelsAreRunnableAndRestorable) {
  SimdLevelGuard guard;
  const auto levels = simd::available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  for (simd::Level level : levels) {
    EXPECT_EQ(simd::set_active_level(level), level);
    EXPECT_EQ(simd::active_level(), level);
  }
}

TEST(Quantization, ShippedMatricesHaveExactTwins) {
  EXPECT_NE(score::default_distance(seq::Alphabet::kDna).quantized(),
            nullptr);
  EXPECT_NE(score::default_distance(seq::Alphabet::kProtein).quantized(),
            nullptr);
  // The DNA default is a plain mismatch indicator: the Hamming byte-compare
  // fast path must engage.
  const auto* dna = score::default_distance(seq::Alphabet::kDna).quantized();
  EXPECT_TRUE(dna->indicator());
  EXPECT_EQ(dna->scale(), 1);
  // The symmetrized BLOSUM62 metric is half-integral, not an indicator.
  const auto* prot =
      score::default_distance(seq::Alphabet::kProtein).quantized();
  EXPECT_FALSE(prot->indicator());
}

TEST(Quantization, UnrepresentableMatrixFallsBackToDouble) {
  DistanceMatrix d = DistanceMatrix::hamming(seq::Alphabet::kDna);
  ASSERT_NE(d.quantized(), nullptr);
  d.set(0, 1, 0.3);  // not k/scale for scale in {1,2,4,8}
  d.set(1, 0, 0.3);
  EXPECT_EQ(d.quantized(), nullptr);
  EXPECT_FALSE(d.requantize());
  // The double path still answers.
  const std::vector<seq::Code> a{0, 1, 2, 3}, b{1, 0, 2, 3};
  EXPECT_DOUBLE_EQ(score::window_distance_unchecked(d, a.data(), b.data(), 4),
                   0.6);
}

TEST(Quantization, ThresholdEdgeCases) {
  const DistanceMatrix d = DistanceMatrix::hamming(seq::Alphabet::kDna);
  const QuantizedDistance* q = d.quantized();
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->threshold(std::numeric_limits<double>::quiet_NaN()),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(q->threshold(std::numeric_limits<double>::infinity()),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(q->threshold(-1.0), -1);
  EXPECT_EQ(q->threshold(-0.0), 0);
  EXPECT_EQ(q->threshold(3.0), 3);
  EXPECT_EQ(q->threshold(3.5), 3);
}

// Distance + bounded distance: every level vs the double scalar reference.
TEST(SimdKernels, WindowDistanceBitIdenticalAcrossLevels) {
  SimdLevelGuard guard;
  Rng rng(0x51D0001);
  std::vector<DistanceMatrix> matrices;
  matrices.push_back(DistanceMatrix::hamming(seq::Alphabet::kDna));
  matrices.push_back(
      DistanceMatrix::metric_from_scores(score::blosum62()));
  matrices.push_back(DistanceMatrix::paper_from_scores(score::pam250()));
  matrices.push_back(random_exact_matrix(rng, seq::Alphabet::kProtein, 2));
  matrices.push_back(random_exact_matrix(rng, seq::Alphabet::kDna, 8));

  for (const DistanceMatrix& d : matrices) {
    ASSERT_NE(d.quantized(), nullptr);
    const std::size_t card = seq::cardinality(d.alphabet());
    for (int iter = 0; iter < 400; ++iter) {
      const std::size_t len = 1 + rng.below(96);
      const auto a = random_window(rng, len, card);
      const auto b = random_window(rng, len, card);
      const double ref =
          score::detail::window_distance_scalar(d, a.data(), b.data(), len);
      // A mix of decisive, marginal, and degenerate bounds.
      const double bounds[] = {ref, ref / 2.0, ref * 2.0 + 1.0, 0.0,
                               rng.uniform() * static_cast<double>(len)};
      for (simd::Level level : simd::available_levels()) {
        simd::set_active_level(level);
        EXPECT_EQ(score::window_distance_unchecked(d, a.data(), b.data(), len),
                  ref)
            << "level " << simd::level_name(level);
        for (double bound : bounds) {
          const double got = score::window_distance_bounded_unchecked(
              d, a.data(), b.data(), len, bound);
          const double want = score::detail::window_distance_bounded_scalar(
              d, a.data(), b.data(), len, bound);
          // Identical keep/abandon decision...
          ASSERT_EQ(got <= bound, want <= bound)
              << "level " << simd::level_name(level) << " bound " << bound;
          // ...and bit-identical value whenever the result is kept.
          if (want <= bound) {
            ASSERT_EQ(got, want)
                << "level " << simd::level_name(level) << " bound " << bound;
          }
        }
      }
    }
  }
}

// Batched leaf scan vs the item-at-a-time scalar kernel, straight at the
// kernel-table layer (arena layout contract included).
TEST(SimdKernels, BatchedScanMatchesScalarPerItem) {
  Rng rng(0x51D0002);
  std::vector<DistanceMatrix> matrices;
  matrices.push_back(DistanceMatrix::hamming(seq::Alphabet::kDna));
  matrices.push_back(
      DistanceMatrix::metric_from_scores(score::blosum62()));
  for (const DistanceMatrix& d : matrices) {
    const QuantizedDistance* q = d.quantized();
    ASSERT_NE(q, nullptr);
    const std::size_t card = seq::cardinality(d.alphabet());
    for (std::size_t len : {1UL, 7UL, 8UL, 16UL, 33UL, 64UL}) {
      vpt::WindowArena arena;
      const std::size_t windows = 70;
      for (std::size_t i = 0; i < windows; ++i) {
        arena.append(seq::CodeSpan(random_window(rng, len, card)));
      }
      ASSERT_TRUE(arena.layout_ok());
      const auto probe = random_window(rng, len, card);
      std::vector<std::uint32_t> slots(windows);
      for (std::size_t i = 0; i < windows; ++i) {
        slots[i] = static_cast<std::uint32_t>(rng.below(windows));
      }
      const auto& scalar = score::qkernels_for(0);
      for (int iter = 0; iter < 24; ++iter) {
        const std::int64_t qthresh = static_cast<std::int64_t>(
            rng.below(len * 4 + 2)) - 1;
        std::vector<std::int64_t> want(windows);
        scalar.distance_batch(*q, probe.data(), arena.base(), arena.stride(),
                              slots.data(), windows, len, qthresh,
                              want.data());
        for (simd::Level level : simd::available_levels()) {
          const auto& k =
              score::qkernels_for(static_cast<int>(level));
          std::vector<std::int64_t> got(windows, -42);
          k.distance_batch(*q, probe.data(), arena.base(), arena.stride(),
                           slots.data(), windows, len, qthresh, got.data());
          for (std::size_t j = 0; j < windows; ++j) {
            ASSERT_EQ(got[j] > qthresh, want[j] > qthresh)
                << "level " << simd::level_name(level) << " len " << len
                << " slot " << j;
            if (want[j] <= qthresh) {
              ASSERT_EQ(got[j], want[j])
                  << "level " << simd::level_name(level) << " len " << len;
            }
          }
        }
      }
    }
  }
}

bool alignments_identical(const align::GappedAlignment& a,
                          const align::GappedAlignment& b) {
  return a.hsp.score == b.hsp.score && a.hsp.q_begin == b.hsp.q_begin &&
         a.hsp.q_end == b.hsp.q_end && a.hsp.s_begin == b.hsp.s_begin &&
         a.hsp.s_end == b.hsp.s_end && a.columns == b.columns &&
         a.identities == b.identities && a.gap_columns == b.gap_columns &&
         a.cigar == b.cigar;
}

// Striped banded DP vs the scalar oracle: identical alignment, not just
// identical score — coordinates, CIGAR, and column stats included.
TEST(SimdKernels, BandedAlignmentIdenticalToReference) {
  Rng rng(0x51D0003);
  const score::ScoringMatrix dna = score::dna_matrix();
  const score::ScoringMatrix& prot = score::blosum62();
  for (int iter = 0; iter < 600; ++iter) {
    const bool protein = iter % 2 == 1;
    const score::ScoringMatrix& scores = protein ? prot : dna;
    const std::size_t card = seq::cardinality(scores.alphabet());
    const std::size_t qlen = 1 + rng.below(80);
    const std::size_t slen = 1 + rng.below(80);
    // Half the time: a mutated copy so real alignments exist; otherwise
    // independent noise exercises the dead-cell plumbing.
    std::vector<seq::Code> query = random_window(rng, qlen, card);
    std::vector<seq::Code> subject;
    if (iter % 2 == 0 && qlen <= slen) {
      subject = query;
      subject.resize(slen);
      for (std::size_t i = qlen; i < slen; ++i) {
        subject[i] = static_cast<seq::Code>(rng.below(card));
      }
      for (std::size_t i = 0; i < slen / 8; ++i) {
        subject[rng.below(slen)] = static_cast<seq::Code>(rng.below(card));
      }
    } else {
      subject = random_window(rng, slen, card);
    }
    align::BandedParams params;
    params.band_radius = 1 + rng.below(24);
    params.center_diag =
        static_cast<std::ptrdiff_t>(rng.below(2 * slen + 1)) -
        static_cast<std::ptrdiff_t>(slen);
    const score::GapPenalties gaps{
        static_cast<int>(1 + rng.below(12)),
        static_cast<int>(1 + rng.below(3))};
    const auto ref = align::banded_local_align_reference(
        seq::CodeSpan(query), seq::CodeSpan(subject), scores, gaps, params);
    const auto simd_result = align::detail::banded_local_align_simd(
        seq::CodeSpan(query), seq::CodeSpan(subject), scores, gaps, params);
    ASSERT_TRUE(alignments_identical(ref, simd_result))
        << "iter " << iter << ": ref score " << ref.hsp.score << " cigar "
        << ref.hsp.score << " vs simd score " << simd_result.hsp.score;
  }
}

// The public entry point must dispatch consistently at every level.
TEST(SimdKernels, BandedDispatchMatchesReferenceAtEveryLevel) {
  SimdLevelGuard guard;
  Rng rng(0x51D0004);
  const score::ScoringMatrix& scores = score::blosum62();
  const std::size_t card = seq::cardinality(scores.alphabet());
  for (int iter = 0; iter < 50; ++iter) {
    const auto query = random_window(rng, 40 + rng.below(40), card);
    const auto subject = random_window(rng, 40 + rng.below(40), card);
    align::BandedParams params;
    params.band_radius = 16;
    params.center_diag = 0;
    const auto ref = align::banded_local_align_reference(
        seq::CodeSpan(query), seq::CodeSpan(subject), scores,
        scores.default_gaps(), params);
    for (simd::Level level : simd::available_levels()) {
      simd::set_active_level(level);
      const auto got = align::banded_local_align(
          seq::CodeSpan(query), seq::CodeSpan(subject), scores,
          scores.default_gaps(), params);
      ASSERT_TRUE(alignments_identical(ref, got))
          << "level " << simd::level_name(level);
    }
  }
}

// Packed batched leaf scan: the kernels that fuse 2-bit/4-bit row decode
// into the scan must make exactly the unpacked scalar kernel's
// keep/abandon decisions and produce bit-identical kept values — on every
// SIMD level runnable on the build host, phase boundaries and tail slots
// included.
TEST(SimdKernels, PackedBatchedScanMatchesUnpackedOracle) {
  Rng rng(0x51D0006);
  std::vector<DistanceMatrix> matrices;
  matrices.push_back(DistanceMatrix::hamming(seq::Alphabet::kDna));
  matrices.push_back(random_exact_matrix(rng, seq::Alphabet::kDna, 8));
  for (const DistanceMatrix& d : matrices) {
    const QuantizedDistance* q = d.quantized();
    ASSERT_NE(q, nullptr);
    const std::size_t card = seq::cardinality(d.alphabet());
    for (unsigned bits : {2u, 4u}) {
      // Codes must fit both the alphabet and the packed width (the 2-bit
      // pass exercises the DNA core; 4-bit fits the ambiguity code too).
      const std::size_t limit = std::min<std::size_t>(card, 1u << bits);
      for (std::size_t len : {1UL, 7UL, 8UL, 15UL, 16UL, 31UL, 33UL, 64UL}) {
        vpt::WindowArena packed;
        packed.configure({.packed_bits = bits});
        vpt::WindowArena plain;
        const std::size_t windows = 70;
        for (std::size_t i = 0; i < windows; ++i) {
          const auto w = random_window(rng, len, limit);
          packed.append(seq::CodeSpan(w));
          plain.append(seq::CodeSpan(w));
        }
        ASSERT_EQ(packed.packed_bits(), bits);
        ASSERT_TRUE(packed.layout_ok());
        const auto probe = random_window(rng, len, card);
        std::vector<std::uint32_t> slots(windows);
        for (std::size_t i = 0; i < windows; ++i) {
          slots[i] = static_cast<std::uint32_t>(rng.below(windows));
        }
        const auto& scalar = score::qkernels_for(0);
        for (int iter = 0; iter < 16; ++iter) {
          const std::int64_t qthresh =
              static_cast<std::int64_t>(rng.below(len * 4 + 2)) - 1;
          std::vector<std::int64_t> want(windows);
          scalar.distance_batch(*q, probe.data(), plain.base(),
                                plain.stride(), slots.data(), windows, len,
                                qthresh, want.data());
          for (simd::Level level : simd::available_levels()) {
            const auto& k = score::qkernels_for(static_cast<int>(level));
            std::vector<std::int64_t> got(windows, -42);
            k.distance_batch_packed(*q, probe.data(), packed.base(),
                                    packed.stride(), bits, slots.data(),
                                    windows, len, qthresh, got.data());
            for (std::size_t j = 0; j < windows; ++j) {
              ASSERT_EQ(got[j] > qthresh, want[j] > qthresh)
                  << "level " << simd::level_name(level) << " bits " << bits
                  << " len " << len << " slot " << j;
              if (want[j] <= qthresh) {
                ASSERT_EQ(got[j], want[j])
                    << "level " << simd::level_name(level) << " bits "
                    << bits << " len " << len;
              }
            }
          }
        }
      }
    }
  }
}

// A 2-bit DNA arena must widen itself (2 -> 4 -> unpacked) the moment a
// code stops fitting, preserving every already-stored row exactly.
TEST(WindowArena, PackedArenaWidensOnOversizedCodes) {
  Rng rng(0x51D0007);
  vpt::WindowArena arena;
  arena.configure({.packed_bits = 2});
  const std::size_t len = 8;
  std::vector<std::vector<seq::Code>> shadow;
  for (std::size_t i = 0; i < 200; ++i) {
    shadow.push_back(random_window(rng, len, 4));
    arena.append(seq::CodeSpan(shadow.back()));
  }
  EXPECT_EQ(arena.packed_bits(), 2u);
  EXPECT_EQ(arena.row_bytes(), 2u);  // true 4x packing at len 8

  // An ambiguity code (N = 4) forces the 4-bit width.
  shadow.push_back({0, 1, 2, 3, 4, 3, 2, 1});
  arena.append(seq::CodeSpan(shadow.back()));
  EXPECT_EQ(arena.packed_bits(), 4u);
  ASSERT_TRUE(arena.layout_ok());

  // A code past 4 bits forces plain byte storage.
  shadow.push_back({0, 1, 2, 3, 17, 3, 2, 1});
  arena.append(seq::CodeSpan(shadow.back()));
  EXPECT_EQ(arena.packed_bits(), 0u);
  ASSERT_TRUE(arena.layout_ok());

  std::vector<seq::Code> decoded(len);
  for (std::size_t i = 0; i < shadow.size(); ++i) {
    arena.copy_row(static_cast<std::uint32_t>(i), decoded.data());
    ASSERT_EQ(decoded, shadow[i]) << "slot " << i;
    ASSERT_TRUE(arena.row_roundtrip_ok(static_cast<std::uint32_t>(i)));
  }
}

// A spilled arena under a tiny resident budget must evict (and re-fault)
// yet return exactly the same rows and batched-scan results as an
// all-resident arena holding the same windows.
TEST(WindowArena, SpilledArenaIsLosslessUnderEviction) {
  if (!vpt::BlockStore::supported()) GTEST_SKIP() << "no mmap on this host";
  Rng rng(0x51D0008);
  const DistanceMatrix d = DistanceMatrix::hamming(seq::Alphabet::kDna);
  const QuantizedDistance* q = d.quantized();
  ASSERT_NE(q, nullptr);

  vpt::WindowArena::Config cfg;
  cfg.packed_bits = 2;
  cfg.segment_bytes = 4096;
  cfg.resident_budget = 8 * 4096;  // the kMinResidentSegments floor
  vpt::WindowArena spilled;
  spilled.configure(cfg);
  vpt::WindowArena plain;

  const std::size_t len = 8;
  const std::size_t windows = 40000;  // ~80 KB packed >> 32 KB budget
  for (std::size_t i = 0; i < windows; ++i) {
    const auto w = random_window(rng, len, 4);
    spilled.append(seq::CodeSpan(w));
    plain.append(seq::CodeSpan(w));
  }
  ASSERT_TRUE(spilled.spilled());
  ASSERT_TRUE(spilled.layout_ok());

  const auto stats = spilled.stats();
  EXPECT_GT(stats.store.evictions, 0u) << "budget never forced eviction";
  // Nothing is pinned here, so residency must respect the budget.
  EXPECT_LE(stats.resident_bytes, cfg.resident_budget);
  std::string why;
  EXPECT_TRUE(spilled.store_audit(&why)) << why;

  // Item-wise reads decode identically.
  std::vector<seq::Code> a(len), b(len);
  for (std::size_t i = 0; i < windows; i += 997) {
    spilled.copy_row(static_cast<std::uint32_t>(i), a.data());
    plain.copy_row(static_cast<std::uint32_t>(i), b.data());
    ASSERT_EQ(a, b) << "slot " << i;
  }

  // Batched scans over pinned runs match the all-resident oracle.
  const auto probe = random_window(rng, len, 5);
  const auto& kernels = score::qkernels();
  const auto& scalar = score::qkernels_for(0);
  for (int iter = 0; iter < 8; ++iter) {
    std::vector<std::uint32_t> slots(256);
    for (auto& slot : slots) {
      slot = static_cast<std::uint32_t>(rng.below(windows));
    }
    const std::int64_t qthresh = static_cast<std::int64_t>(rng.below(9)) - 1;
    std::vector<std::int64_t> want(slots.size());
    scalar.distance_batch(*q, probe.data(), plain.base(), plain.stride(),
                          slots.data(), slots.size(), len, qthresh,
                          want.data());
    std::vector<std::int64_t> got(slots.size(), -42);
    {
      const auto pin = spilled.pin_scan(slots.data(), slots.size());
      kernels.distance_batch_packed(*q, probe.data(), spilled.base(),
                                    spilled.stride(), 2, slots.data(),
                                    slots.size(), len, qthresh, got.data());
    }
    for (std::size_t j = 0; j < slots.size(); ++j) {
      ASSERT_EQ(got[j] > qthresh, want[j] > qthresh) << "slot " << j;
      if (want[j] <= qthresh) {
        ASSERT_EQ(got[j], want[j]) << "slot " << j;
      }
    }
  }
  EXPECT_TRUE(spilled.store_audit(&why)) << why;
}

// Arena growth keeps slots stable, rows aligned, and contents intact.
TEST(WindowArena, GeometricGrowthPreservesLayoutAndContents) {
  Rng rng(0x51D0005);
  vpt::WindowArena arena;
  const std::size_t len = 8;
  std::vector<std::vector<seq::Code>> shadow;
  for (std::size_t i = 0; i < 5000; ++i) {
    auto w = random_window(rng, len, 4);
    const std::uint32_t slot = arena.append(seq::CodeSpan(w));
    EXPECT_EQ(slot, i);
    shadow.push_back(std::move(w));
  }
  ASSERT_TRUE(arena.layout_ok());
  EXPECT_EQ(arena.stride() % vpt::WindowArena::kRowAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.base()) %
                vpt::WindowArena::kBaseAlignment,
            0u);
  for (std::size_t i = 0; i < shadow.size(); ++i) {
    const auto span = arena.span(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(std::equal(span.begin(), span.end(), shadow[i].begin()));
  }
  // clear() keeps geometry and re-zeroes padding for the next epoch.
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.window_length(), len);
  const std::uint32_t slot = arena.append(seq::CodeSpan(shadow[0]));
  EXPECT_EQ(slot, 0u);
  ASSERT_TRUE(arena.layout_ok());
}

}  // namespace
}  // namespace mendel
