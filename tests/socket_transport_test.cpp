// Socket transport: frame layer, live Unix-domain/TCP loopback wiring,
// reconnect/heartbeat machinery, and the FaultInjector contract shared by
// all three transports.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/net/frame.h"
#include "src/net/sim_transport.h"
#include "src/net/socket_transport.h"
#include "src/net/thread_transport.h"

namespace mendel {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------ frame layer

net::Message sample_message() {
  net::Message m;
  m.from = 3;
  m.to = 7;
  m.type = 42;
  m.request_id = 0x1122334455667788ull;
  m.payload = {1, 2, 3, 250, 0};
  return m;
}

TEST(Frame, RoundtripAllKindsThroughParser) {
  net::FrameParser parser;
  parser.feed(net::encode_message_frame(sample_message()));
  parser.feed(net::encode_hello_frame({0, 5, net::kClientNode}));
  parser.feed(net::encode_ping_frame(net::FrameKind::kPing, 99));
  parser.feed(net::encode_ping_frame(net::FrameKind::kPong, 100));

  net::Frame frame;
  ASSERT_TRUE(parser.next(frame));
  EXPECT_EQ(frame.kind, net::FrameKind::kMessage);
  EXPECT_EQ(frame.message.from, 3u);
  EXPECT_EQ(frame.message.to, 7u);
  EXPECT_EQ(frame.message.type, 42u);
  EXPECT_EQ(frame.message.request_id, 0x1122334455667788ull);
  EXPECT_EQ(frame.message.payload, sample_message().payload);

  ASSERT_TRUE(parser.next(frame));
  EXPECT_EQ(frame.kind, net::FrameKind::kHello);
  EXPECT_EQ(frame.hello,
            (std::vector<net::NodeId>{0, 5, net::kClientNode}));

  ASSERT_TRUE(parser.next(frame));
  EXPECT_EQ(frame.kind, net::FrameKind::kPing);
  EXPECT_EQ(frame.nonce, 99u);

  ASSERT_TRUE(parser.next(frame));
  EXPECT_EQ(frame.kind, net::FrameKind::kPong);
  EXPECT_EQ(frame.nonce, 100u);

  EXPECT_FALSE(parser.next(frame));
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Frame, SplitFeedsReassembleExactly) {
  // A stream has no message boundaries: byte-at-a-time feeds must emit the
  // same frames as one coalesced feed.
  const auto message = sample_message();
  auto bytes = net::encode_message_frame(message);
  const auto hello = net::encode_hello_frame({4});
  bytes.insert(bytes.end(), hello.begin(), hello.end());

  net::FrameParser parser;
  net::Frame frame;
  std::vector<net::Frame> seen;
  for (const std::uint8_t byte : bytes) {
    parser.feed({&byte, 1});
    while (parser.next(frame)) seen.push_back(frame);
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, net::FrameKind::kMessage);
  EXPECT_EQ(seen[0].message.payload, message.payload);
  EXPECT_EQ(seen[1].kind, net::FrameKind::kHello);
  EXPECT_EQ(seen[1].hello, std::vector<net::NodeId>{4});
}

TEST(Frame, CoalescedFramesDrainInOrder) {
  std::vector<std::uint8_t> bytes;
  for (std::uint64_t nonce : {1, 2, 3}) {
    const auto one = net::encode_ping_frame(net::FrameKind::kPing, nonce);
    bytes.insert(bytes.end(), one.begin(), one.end());
  }
  net::FrameParser parser;
  parser.feed(bytes);
  net::Frame frame;
  for (std::uint64_t nonce : {1, 2, 3}) {
    ASSERT_TRUE(parser.next(frame));
    EXPECT_EQ(frame.nonce, nonce);
  }
  EXPECT_FALSE(parser.next(frame));
}

TEST(Frame, OversizedLengthPrefixRejected) {
  // A hostile length prefix must be rejected before any allocation of that
  // size — both against a custom bound and the default kMaxFrameBytes.
  net::FrameParser small(64);
  const std::vector<std::uint8_t> big_length = {0x00, 0x01, 0x00, 0x00};
  small.feed(big_length);  // 256 > 64
  net::Frame frame;
  EXPECT_THROW(small.next(frame), DecodeError);

  net::FrameParser dflt;
  const std::vector<std::uint8_t> huge = {0xff, 0xff, 0xff, 0xff};
  dflt.feed(huge);
  EXPECT_THROW(dflt.next(frame), DecodeError);
}

TEST(Frame, UnknownKindRejected) {
  std::vector<std::uint8_t> bytes = {1, 0, 0, 0, 9};  // length 1, kind 9
  net::FrameParser parser;
  parser.feed(bytes);
  net::Frame frame;
  EXPECT_THROW(parser.next(frame), DecodeError);
}

TEST(Frame, BodyLengthMismatchRejected) {
  // A hello body whose id list does not consume the declared length
  // exactly is a framing error (strict decode, like the application
  // codecs).
  auto bytes = net::encode_hello_frame({1, 2});
  bytes[0] += 1;           // stretch the declared body length
  bytes.push_back(0xaa);   // ... and supply the trailing byte
  net::FrameParser parser;
  parser.feed(bytes);
  net::Frame frame;
  EXPECT_THROW(parser.next(frame), DecodeError);
}

TEST(Frame, TruncatedFrameLeavesBufferedBytes) {
  const auto bytes = net::encode_message_frame(sample_message());
  net::FrameParser parser;
  parser.feed({bytes.data(), bytes.size() - 3});
  net::Frame frame;
  EXPECT_FALSE(parser.next(frame));
  // Nonzero buffered() at EOF is how the transport detects a peer that
  // died mid-frame.
  EXPECT_GT(parser.buffered(), 0u);
}

// -------------------------------------------------- live socket wiring

std::string uds_endpoint(const std::string& tag, int index) {
  return "unix:" + testing::TempDir() + "mendel_" +
         std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(index) + ".sock";
}

// Polls until `done` returns true or the deadline passes.
bool poll_until(const std::function<bool()>& done,
                std::chrono::seconds budget = 10s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

net::SocketOptions socket_options(std::vector<std::string> endpoints) {
  net::SocketOptions options;
  options.endpoints = std::move(endpoints);
  options.connect_timeout = 10.0;
  return options;
}

// Two transports in one process, exactly as two processes would wire up:
// the server side hosts node 0 on its endpoint; the client side hosts the
// endpoint-less client actor and reaches node 0 by dialing.
void run_echo_roundtrip(const std::string& endpoint) {
  net::SocketTransport server(socket_options({endpoint}));
  net::FunctionActor echo([](const net::Message& m, net::Context& ctx) {
    ctx.send(m.from, m.type + 1, m.request_id, m.payload);
  });
  server.register_actor(0, &echo);
  server.start();

  net::SocketTransport client(socket_options({endpoint}));
  std::mutex mu;
  std::vector<net::Message> replies;
  net::FunctionActor sink([&](const net::Message& m, net::Context&) {
    std::lock_guard lock(mu);
    replies.push_back(m);
  });
  client.register_actor(net::kClientNode, &sink);
  client.start();

  net::Message m;
  m.from = net::kClientNode;
  m.to = 0;
  m.type = 7;
  m.request_id = 12345;
  m.payload = {9, 8, 7};
  client.send(std::move(m));

  ASSERT_TRUE(poll_until([&] {
    std::lock_guard lock(mu);
    return !replies.empty();
  })) << "no echo reply over " << endpoint;
  {
    std::lock_guard lock(mu);
    EXPECT_EQ(replies[0].from, 0u);
    EXPECT_EQ(replies[0].to, net::kClientNode);
    EXPECT_EQ(replies[0].type, 8u);
    EXPECT_EQ(replies[0].request_id, 12345u);
    EXPECT_EQ(replies[0].payload, (std::vector<std::uint8_t>{9, 8, 7}));
  }
  EXPECT_EQ(server.handler_errors().size(), 0u);
  EXPECT_EQ(client.handler_errors().size(), 0u);
  client.stop();
  server.stop();
}

TEST(SocketTransport, UnixDomainEchoRoundtrip) {
  run_echo_roundtrip(uds_endpoint("echo", 0));
}

TEST(SocketTransport, TcpEchoRoundtrip) {
  // No ephemeral-port support (the static endpoint table needs concrete
  // ports), so probe a pid-derived range for a free one.
  const int base = 21000 + static_cast<int>(::getpid() % 20000);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::string endpoint =
        "127.0.0.1:" + std::to_string(base + attempt * 13);
    try {
      run_echo_roundtrip(endpoint);
      return;
    } catch (const IoError&) {
      continue;  // port taken; try the next
    }
  }
  FAIL() << "no free TCP port in the probed range";
}

// ------------------------------------------------ FaultInjector contract

// The chaos surface is written once against net::FaultInjector; this
// harness pins the shared semantics on every transport. `pump` drives the
// transport toward quiescence (sim: drain; threaded: wait_idle; socket:
// nothing — delivery is awaited by polling).
struct FaultHarness {
  net::Transport* transport = nullptr;
  net::FaultInjector* fault = nullptr;
  std::function<void()> pump;
  std::function<std::vector<std::uint32_t>()> received_types;
};

void exercise_fault_contract(const FaultHarness& h) {
  auto send = [&](std::uint32_t type) {
    net::Message m;
    m.from = 0;
    m.to = 1;
    m.type = type;
    m.request_id = 1;
    h.transport->send(std::move(m));
  };
  auto delivered = [&](std::vector<std::uint32_t> expected) {
    h.pump();
    EXPECT_TRUE(poll_until([&] { return h.received_types() == expected; }))
        << "delivered types diverged";
  };

  EXPECT_FALSE(h.fault->node_down(1));
  EXPECT_EQ(h.fault->dropped_messages(), 0u);
  send(7);
  delivered({7});

  // Full failure: traffic dropped and counted, membership reports down.
  h.fault->fail_node(1);
  EXPECT_TRUE(h.fault->node_down(1));
  send(7);
  h.pump();
  EXPECT_TRUE(poll_until([&] { return h.fault->dropped_messages() == 1u; }));
  delivered({7});

  // Heal restores delivery.
  h.fault->heal_node(1);
  EXPECT_FALSE(h.fault->node_down(1));
  send(8);
  delivered({7, 8});

  // Partial failure: only the dropped type is lost, the node is NOT down.
  h.fault->drop_type_to(1, 7);
  EXPECT_FALSE(h.fault->node_down(1));
  send(7);  // dropped
  send(9);  // in-order behind the drop: its arrival proves 7 never will
  delivered({7, 8, 9});
  EXPECT_TRUE(poll_until([&] { return h.fault->dropped_messages() == 2u; }));

  h.fault->heal_node(1);
  send(7);
  delivered({7, 8, 9, 7});
  EXPECT_EQ(h.fault->dropped_messages(), 2u);
}

class TypeRecorder : public net::Actor {
 public:
  void handle(const net::Message& m, net::Context&) override {
    std::lock_guard lock(mu_);
    types_.push_back(m.type);
  }
  std::vector<std::uint32_t> types() const {
    std::lock_guard lock(mu_);
    return types_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint32_t> types_;
};

TEST(FaultInjector, ContractHoldsOnSimTransport) {
  net::SimTransport transport;
  TypeRecorder recorder;
  transport.register_actor(1, &recorder);
  FaultHarness h;
  h.transport = &transport;
  h.fault = transport.fault_injector();
  h.pump = [&] { transport.run_until_idle(); };
  h.received_types = [&] { return recorder.types(); };
  exercise_fault_contract(h);
}

TEST(FaultInjector, ContractHoldsOnThreadTransport) {
  net::ThreadTransport transport;
  TypeRecorder recorder;
  transport.register_actor(1, &recorder);
  transport.start();
  FaultHarness h;
  h.transport = &transport;
  h.fault = transport.fault_injector();
  h.pump = [&] { transport.wait_idle(); };
  h.received_types = [&] { return recorder.types(); };
  exercise_fault_contract(h);
  transport.drain_and_stop();
}

TEST(FaultInjector, ContractHoldsOnSocketTransport) {
  // Both actors local to one transport: the fault check sits ahead of
  // local dispatch, so the contract is transport-topology independent.
  net::SocketTransport transport(
      socket_options({uds_endpoint("fault", 0), uds_endpoint("fault", 1)}));
  net::FunctionActor sender([](const net::Message&, net::Context&) {});
  TypeRecorder recorder;
  transport.register_actor(0, &sender);  // else id 0 would be dialed
  transport.register_actor(1, &recorder);
  transport.start();
  FaultHarness h;
  h.transport = &transport;
  h.fault = transport.fault_injector();
  h.pump = [&] { transport.wait_local_idle(); };
  h.received_types = [&] { return recorder.types(); };
  exercise_fault_contract(h);
  transport.stop();
}

// ------------------------------------- reconnects, heartbeats, bad bytes

TEST(SocketTransport, PeerRestartTriggersRedialAndDelivery) {
  const std::string ep = uds_endpoint("restart", 0);
  net::SocketTransport client(socket_options({ep}));
  net::FunctionActor sink([](const net::Message&, net::Context&) {});
  client.register_actor(net::kClientNode, &sink);

  TypeRecorder first_recorder;
  auto server = std::make_unique<net::SocketTransport>(socket_options({ep}));
  server->register_actor(0, &first_recorder);
  server->start();
  client.start();

  auto send_one = [&](std::uint32_t type) {
    net::Message m;
    m.from = net::kClientNode;
    m.to = 0;
    m.type = type;
    m.request_id = 1;
    client.send(std::move(m));
  };
  send_one(1);
  ASSERT_TRUE(poll_until([&] { return first_recorder.types().size() == 1; }));

  // Kill the peer process (transport teardown closes its sockets). Sends
  // now drop — and are counted — while the backoff machinery gates
  // redials.
  server->stop();
  EXPECT_TRUE(poll_until([&] {
    send_one(2);
    return client.dropped_messages() > 0;
  }));

  // "Restart" on the same endpoint; send-path redials must find it without
  // any explicit heal.
  TypeRecorder second_recorder;
  net::SocketTransport revived(socket_options({ep}));
  revived.register_actor(0, &second_recorder);
  revived.start();
  EXPECT_TRUE(poll_until([&] {
    send_one(3);
    return !second_recorder.types().empty();
  })) << "redial never reached the restarted peer";
  EXPECT_GE(client.reconnects(), 1u);

  client.stop();
  revived.stop();
}

TEST(SocketTransport, HeartbeatMarksSilentPeerDownThenRecovers) {
  const std::string ep = uds_endpoint("hb", 0);
  auto client_options = socket_options({ep});
  client_options.heartbeat_interval = 0.05;
  client_options.heartbeat_timeout = 0.3;
  net::SocketTransport client(client_options);
  net::FunctionActor sink([](const net::Message&, net::Context&) {});
  client.register_actor(net::kClientNode, &sink);

  TypeRecorder recorder;
  auto server = std::make_unique<net::SocketTransport>(socket_options({ep}));
  server->register_actor(0, &recorder);
  server->start();
  client.start();
  ASSERT_FALSE(client.node_down(0));

  server->stop();
  server.reset();
  EXPECT_TRUE(poll_until([&] { return client.node_down(0); }))
      << "silent peer never marked down";
  EXPECT_GE(client.heartbeats_missed(), 1u);

  // The monitor keeps redialing: once the peer is back and a pong lands,
  // the down verdict clears without any manual heal.
  net::SocketTransport revived(socket_options({ep}));
  TypeRecorder revived_recorder;
  revived.register_actor(0, &revived_recorder);
  revived.start();
  EXPECT_TRUE(poll_until([&] { return !client.node_down(0); }))
      << "recovered peer still reported down";

  client.stop();
  revived.stop();
}

TEST(SocketTransport, MalformedStreamCountsFrameErrors) {
  const std::string ep = uds_endpoint("bad", 0);
  net::SocketTransport server(socket_options({ep}));
  TypeRecorder recorder;
  server.register_actor(0, &recorder);
  server.start();

  const std::string path = ep.substr(5);  // strip "unix:"
  auto raw_connect = [&] {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  };

  // Hostile length prefix: rejected at the framing layer, connection
  // dropped, both error counters advance.
  {
    const int fd = raw_connect();
    const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
    EXPECT_EQ(::write(fd, huge, sizeof(huge)), 4);
    EXPECT_TRUE(poll_until([&] { return server.frame_errors() >= 1; }));
    EXPECT_GE(server.decode_errors(), 1u);
    ::close(fd);
  }

  // Peer dying mid-frame: the truncated tail is a framing error too.
  {
    const auto bytes = net::encode_message_frame(sample_message());
    const int fd = raw_connect();
    EXPECT_EQ(::write(fd, bytes.data(), bytes.size() - 3),
              static_cast<ssize_t>(bytes.size() - 3));
    ::close(fd);
    EXPECT_TRUE(poll_until([&] { return server.frame_errors() >= 2; }));
  }
  EXPECT_TRUE(recorder.types().empty());
  server.stop();
}

TEST(SocketTransport, EndpointParsingAndEnvOverride) {
  EXPECT_TRUE(net::parse_endpoint_list("").empty());
  EXPECT_EQ(net::parse_endpoint_list("a:1, unix:/x ,b:2"),
            (std::vector<std::string>{"a:1", "unix:/x", "b:2"}));

  ::setenv("MENDEL_ENDPOINTS", "h1:1,h2:2", 1);
  EXPECT_EQ(net::endpoints_from_env({"fallback:9"}),
            (std::vector<std::string>{"h1:1", "h2:2"}));
  ::unsetenv("MENDEL_ENDPOINTS");
  EXPECT_EQ(net::endpoints_from_env({"fallback:9"}),
            (std::vector<std::string>{"fallback:9"}));
}

}  // namespace
}  // namespace mendel
