// Tests for the fused node-local NN hot path: bounded (early-abandon)
// distance kernels, the SoA window arena, k-NN exactness under abandonment,
// serial-vs-parallel indexing determinism, and snapshot restore counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "src/common/error.h"
#include "src/mendel/client.h"
#include "src/mendel/indexer.h"
#include "src/mendel/protocol.h"
#include "src/scoring/distance.h"
#include "src/vptree/dynamic_vptree.h"
#include "src/vptree/window_arena.h"
#include "src/workload/generator.h"

namespace mendel {
namespace {

std::vector<vpt::Window> random_windows(seq::Alphabet alphabet,
                                        std::size_t count, std::size_t length,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<vpt::Window> windows;
  windows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto s = workload::random_sequence(alphabet, length, "w", rng);
    windows.emplace_back(s.codes().begin(), s.codes().end());
  }
  return windows;
}

// ---------- bounded kernel properties ----------

TEST(HotPath, BoundedMatchesUnboundedAtInfinity) {
  for (const auto alphabet : {seq::Alphabet::kProtein, seq::Alphabet::kDna}) {
    const auto& d = score::default_distance(alphabet);
    const auto windows = random_windows(alphabet, 64, 12, 101);
    for (std::size_t i = 0; i + 1 < windows.size(); i += 2) {
      const double full = score::window_distance(d, windows[i], windows[i + 1]);
      const double bounded = score::window_distance_bounded(
          d, windows[i], windows[i + 1],
          std::numeric_limits<double>::infinity());
      // Identical accumulation order: bit-exact, not just approximately equal.
      EXPECT_EQ(full, bounded);
    }
  }
}

TEST(HotPath, BoundedAbandonStaysAdmissible) {
  const auto& d = score::default_distance(seq::Alphabet::kProtein);
  const auto windows = random_windows(seq::Alphabet::kProtein, 64, 12, 102);
  for (std::size_t i = 0; i + 1 < windows.size(); i += 2) {
    const double full = score::window_distance(d, windows[i], windows[i + 1]);
    const double bound = full / 2.0;
    const double value =
        score::window_distance_bounded(d, windows[i], windows[i + 1], bound);
    if (full <= bound) {
      EXPECT_EQ(value, full);
    } else {
      // Abandoned: the partial sum exceeds the bound but never overshoots
      // the true distance (distances are non-negative per cell).
      EXPECT_GT(value, bound);
      EXPECT_LE(value, full);
    }
  }
}

TEST(HotPath, FlattenedMatrixRowAccessor) {
  const auto& d = score::default_distance(seq::Alphabet::kProtein);
  for (seq::Code a = 0; a < 24; ++a) {
    const double* row = d.row(a);
    for (seq::Code b = 0; b < 24; ++b) {
      EXPECT_EQ(row[b], d.at(a, b));
    }
  }
}

// ---------- window arena ----------

TEST(HotPath, WindowArenaFixesLengthAndRoundTrips) {
  vpt::WindowArena arena;
  EXPECT_EQ(arena.window_length(), 0u);
  EXPECT_TRUE(arena.empty());

  const auto windows = random_windows(seq::Alphabet::kProtein, 8, 10, 103);
  std::vector<std::uint32_t> slots;
  for (const auto& w : windows) {
    slots.push_back(arena.append(seq::CodeSpan(w)));
  }
  EXPECT_EQ(arena.window_length(), 10u);
  EXPECT_EQ(arena.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto span = arena.span(slots[i]);
    EXPECT_TRUE(std::equal(span.begin(), span.end(), windows[i].begin(),
                           windows[i].end()));
  }

  // The first append fixed the length; mismatches are rejected.
  const auto other = random_windows(seq::Alphabet::kProtein, 1, 9, 104);
  EXPECT_THROW(arena.append(seq::CodeSpan(other[0])), InvalidArgument);
  arena.clear();
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.window_length(), 10u);  // length survives clear()
}

// ---------- k-NN exactness under early abandonment ----------

struct BoundedWindowMetric {
  const score::DistanceMatrix* distance;
  double operator()(const vpt::Window& a, const vpt::Window& b) const {
    return score::window_distance(*distance, a, b);
  }
  double bounded(const vpt::Window& a, const vpt::Window& b,
                 double bound) const {
    return score::window_distance_bounded(*distance, a, b, bound);
  }
};

TEST(HotPath, KnnWithEarlyAbandonMatchesBruteForce) {
  const auto& d = score::default_distance(seq::Alphabet::kProtein);
  const auto windows = random_windows(seq::Alphabet::kProtein, 800, 8, 105);
  vpt::DynamicVpTree<vpt::Window, BoundedWindowMetric> tree(
      BoundedWindowMetric{&d}, {.bucket_capacity = 16});
  tree.insert_batch(windows);

  const auto probes = random_windows(seq::Alphabet::kProtein, 24, 8, 106);
  for (const auto& probe : probes) {
    std::vector<double> brute;
    brute.reserve(windows.size());
    for (const auto& w : windows) {
      brute.push_back(score::window_distance(d, probe, w));
    }
    std::sort(brute.begin(), brute.end());
    const auto neighbors = tree.nearest(probe, 16);
    ASSERT_EQ(neighbors.size(), 16u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_EQ(neighbors[i].distance, brute[i]);
    }
  }
}

// ---------- serial vs parallel indexing determinism ----------

// Captures every message verbatim in send order — the strongest possible
// equality: identical bytes, identical order, regardless of thread count.
class RecordingTransport : public net::Transport {
 public:
  void register_actor(net::NodeId, net::Actor*) override {}
  void send(net::Message message) override {
    sent.push_back(std::move(message));
  }
  net::NetworkStats stats() const override { return {}; }

  std::vector<net::Message> sent;
};

seq::SequenceStore determinism_store() {
  workload::DatabaseSpec spec;
  spec.families = 5;
  spec.members_per_family = 3;
  spec.background_sequences = 8;
  spec.min_length = 120;
  spec.max_length = 350;
  spec.seed = 21;
  return workload::generate_database(spec);
}

TEST(HotPath, SerialAndParallelIndexingBitIdentical) {
  const auto store = determinism_store();
  const auto& distance = score::default_distance(seq::Alphabet::kProtein);
  cluster::TopologyConfig config;
  config.num_groups = 3;
  config.nodes_per_group = 2;

  core::IndexingOptions options;
  options.sample_size = 256;
  options.batch_size = 64;

  std::vector<std::vector<net::Message>> streams;
  std::vector<std::vector<std::uint8_t>> trees;
  std::vector<core::IndexReport> reports;
  for (unsigned threads : {1u, 4u}) {
    options.threads = threads;
    cluster::Topology topology(config);
    core::Indexer indexer(&topology, &distance, options);
    auto tree = indexer.build_prefix_tree(store, {.cutoff_depth = 4});
    topology.bind_prefixes(tree.leaf_prefixes());
    CodecWriter writer;
    tree.encode(writer);
    trees.push_back(writer.data());

    RecordingTransport transport;
    reports.push_back(
        indexer.index_store(store, tree, transport, net::kClientNode));
    streams.push_back(std::move(transport.sent));
  }

  EXPECT_EQ(trees[0], trees[1]);
  EXPECT_EQ(reports[0].sequences, reports[1].sequences);
  EXPECT_EQ(reports[0].blocks, reports[1].blocks);
  EXPECT_EQ(reports[0].messages, reports[1].messages);
  ASSERT_EQ(streams[0].size(), streams[1].size());
  for (std::size_t i = 0; i < streams[0].size(); ++i) {
    EXPECT_EQ(streams[0][i].to, streams[1][i].to);
    EXPECT_EQ(streams[0][i].type, streams[1][i].type);
    EXPECT_EQ(streams[0][i].payload, streams[1][i].payload);
  }
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

core::ClientOptions client_options(unsigned threads) {
  core::ClientOptions options;
  options.topology.num_groups = 3;
  options.topology.nodes_per_group = 2;
  options.indexing.sample_size = 256;
  options.indexing.threads = threads;
  options.prefix_tree.cutoff_depth = 4;
  options.cost.measured_cpu = false;
  return options;
}

TEST(HotPath, SerialAndParallelSnapshotsByteIdentical) {
  const auto store = determinism_store();
  const std::string serial_path = "/tmp/mendel_hotpath_serial.bin";
  const std::string parallel_path = "/tmp/mendel_hotpath_parallel.bin";

  core::Client serial(client_options(1));
  serial.index(store);
  serial.save_index(serial_path);

  core::Client parallel(client_options(4));
  parallel.index(store);
  parallel.save_index(parallel_path);

  EXPECT_EQ(file_bytes(serial_path), file_bytes(parallel_path));
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
}

// ---------- restore counters (regression: load once double-counted) ----------

TEST(HotPath, LoadCountsRestoredSeparatelyFromInserted) {
  const auto store = determinism_store();
  const std::string path = "/tmp/mendel_hotpath_restore.bin";

  core::Client original(client_options(1));
  original.index(store);
  const auto built = original.total_counters();
  EXPECT_GT(built.blocks_inserted, 0u);
  EXPECT_EQ(built.blocks_restored, 0u);
  EXPECT_EQ(built.sequences_restored, 0u);
  original.save_index(path);

  core::Client restored(client_options(1));
  restored.load_index(path);
  const auto loaded = restored.total_counters();
  // A restore is not an insert: the live-traffic counters stay zero and the
  // restored totals mirror what the original cluster held.
  EXPECT_EQ(loaded.blocks_inserted, 0u);
  EXPECT_EQ(loaded.sequences_stored, 0u);
  EXPECT_EQ(loaded.blocks_restored, built.blocks_inserted);
  EXPECT_EQ(loaded.sequences_restored, built.sequences_stored);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mendel
