// Tests for DNA translation (src/sequence/translate.*).
#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/sequence/translate.h"

namespace mendel::seq {
namespace {

std::vector<Code> dna(const std::string& s) {
  return encode_string(Alphabet::kDna, s);
}

std::string aa(const std::vector<Code>& codes) {
  return to_string(Alphabet::kProtein, codes);
}

TEST(Translate, KnownCodons) {
  EXPECT_EQ(aa(translate(dna("ATG"), 0)), "M");
  EXPECT_EQ(aa(translate(dna("TGG"), 0)), "W");
  EXPECT_EQ(aa(translate(dna("TAA"), 0)), "*");
  EXPECT_EQ(aa(translate(dna("TGA"), 0)), "*");
  EXPECT_EQ(aa(translate(dna("TAG"), 0)), "*");
  EXPECT_EQ(aa(translate(dna("ATGGCCAAA"), 0)), "MAK");
}

TEST(Translate, GeneticCodeHasAllCodonsAndThreeStops) {
  const auto& code = standard_genetic_code();
  int stops = 0, met = 0, trp = 0;
  for (Code c : code) {
    EXPECT_LT(c, kProteinCardinality);
    if (decode(Alphabet::kProtein, c) == '*') ++stops;
    if (decode(Alphabet::kProtein, c) == 'M') ++met;
    if (decode(Alphabet::kProtein, c) == 'W') ++trp;
  }
  EXPECT_EQ(stops, 3);
  EXPECT_EQ(met, 1);  // ATG only
  EXPECT_EQ(trp, 1);  // TGG only
}

TEST(Translate, LeucineHasSixCodons) {
  int leucine = 0;
  for (Code c : standard_genetic_code()) {
    if (decode(Alphabet::kProtein, c) == 'L') ++leucine;
  }
  EXPECT_EQ(leucine, 6);
}

TEST(Translate, FramesShiftTheRead) {
  const auto d = dna("AATGGCC");  // frame 1: ATG GCC -> MA
  EXPECT_EQ(aa(translate(d, 1)), "MA");
  EXPECT_EQ(aa(translate(d, 0)), "NG");  // AAT GGC
  EXPECT_EQ(aa(translate(d, 2)), "W");   // TGG (CC dropped)
}

TEST(Translate, PartialCodonsDropped) {
  EXPECT_TRUE(translate(dna("AT"), 0).empty());
  EXPECT_EQ(translate(dna("ATGA"), 0).size(), 1u);
}

TEST(Translate, AmbiguousCodonsBecomeX) {
  EXPECT_EQ(aa(translate(dna("ATNGCC"), 0)), "XA");
}

TEST(Translate, FrameOutOfRangeThrows) {
  EXPECT_THROW(translate(dna("ATG"), 3), InvalidArgument);
}

TEST(ReverseComplement, BasicAndInvolution) {
  EXPECT_EQ(to_string(Alphabet::kDna, reverse_complement(dna("ACGT"))),
            "ACGT");  // palindrome
  EXPECT_EQ(to_string(Alphabet::kDna, reverse_complement(dna("AACGN"))),
            "NCGTT");
  const auto original = dna("ATTGCCGTAGGTTCA");
  EXPECT_EQ(reverse_complement(reverse_complement(original)), original);
}

TEST(SixFrames, CountsAndNumbering) {
  const auto frames = six_frame_translations(dna("ATGGCCAAATTTGGG"));
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames[0].frame, 1);
  EXPECT_EQ(frames[3].frame, -1);
  EXPECT_EQ(aa(frames[0].protein), "MAKFG");
}

TEST(SixFrames, ShortInputOmitsEmptyFrames) {
  // 3 bases: only frame +1 and -1 yield a codon.
  const auto frames = six_frame_translations(dna("ATG"));
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].frame, 1);
  EXPECT_EQ(frames[1].frame, -1);
}

TEST(SixFrames, ReverseFramesTranslateTheComplement) {
  // ATG on the reverse strand of CAT.
  const auto frames = six_frame_translations(dna("CAT"));
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(aa(frames[1].protein), "M");
}

}  // namespace
}  // namespace mendel::seq
