// Unit and property tests for src/align: ungapped X-drop extension, full
// Smith–Waterman, and the banded gapped aligner (including the
// banded == SW oracle property from DESIGN.md §4).
#include <gtest/gtest.h>

#include "src/align/banded.h"
#include "src/align/smith_waterman.h"
#include "src/align/ungapped.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/scoring/matrix.h"
#include "src/workload/generator.h"

namespace mendel::align {
namespace {

using seq::Alphabet;

std::vector<seq::Code> dna(const std::string& s) {
  return seq::encode_string(Alphabet::kDna, s);
}
std::vector<seq::Code> prot(const std::string& s) {
  return seq::encode_string(Alphabet::kProtein, s);
}

// Counts cigar column totals to cross-check alignment spans.
struct CigarTotals {
  std::size_t q = 0, s = 0, columns = 0;
};
CigarTotals cigar_totals(const std::string& cigar) {
  CigarTotals t;
  std::size_t i = 0;
  while (i < cigar.size()) {
    std::size_t count = 0;
    while (i < cigar.size() && std::isdigit(static_cast<unsigned char>(cigar[i]))) {
      count = count * 10 + static_cast<std::size_t>(cigar[i] - '0');
      ++i;
    }
    const char op = cigar[i++];
    t.columns += count;
    if (op == 'M' || op == 'D') t.q += count;
    if (op == 'M' || op == 'I') t.s += count;
  }
  return t;
}

// ---------- window_score / ungapped extension ----------

TEST(Ungapped, WindowScoreSums) {
  const auto m = score::dna_matrix(2, -3);
  EXPECT_EQ(window_score(dna("ACGT"), dna("ACGT"), m), 8);
  EXPECT_EQ(window_score(dna("ACGT"), dna("ACGA"), m), 3);
  EXPECT_THROW(window_score(dna("ACG"), dna("ACGT"), m), InvalidArgument);
}

TEST(Ungapped, ExtendsPerfectMatchToFullLength) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("ACGTACGTACGT");
  const auto hsp = extend_ungapped(q, q, 4, 4, 4, m, {16});
  EXPECT_EQ(hsp.q_begin, 0u);
  EXPECT_EQ(hsp.q_end, q.size());
  EXPECT_EQ(hsp.s_begin, 0u);
  EXPECT_EQ(hsp.s_end, q.size());
  EXPECT_EQ(hsp.score, static_cast<int>(2 * q.size()));
}

TEST(Ungapped, StopsAtMismatchRun) {
  const auto m = score::dna_matrix(2, -3);
  // Subject shares the middle 8-mer, everything else disagrees badly.
  const auto q = dna("CCCCACGTACGTCCCC");
  const auto s = dna("GGGGACGTACGTGGGG");
  const auto hsp = extend_ungapped(q, s, 4, 4, 8, m, {4});
  EXPECT_EQ(hsp.q_begin, 4u);
  EXPECT_EQ(hsp.q_end, 12u);
  EXPECT_EQ(hsp.score, 16);
}

TEST(Ungapped, ExtensionAbsorbsSingleMismatch) {
  const auto m = score::dna_matrix(2, -3);
  //                 0123456789
  const auto q = dna("ACGTACGTAA");
  const auto s = dna("ACGTACGTCA");  // mismatch at 8, match at 9
  const auto hsp = extend_ungapped(q, s, 0, 0, 4, m, {16});
  // Extending through the mismatch (-3) to gain the final match (+2) nets
  // -1 — extension keeps the best prefix, which stops at position 8.
  EXPECT_EQ(hsp.q_end, 8u);
  EXPECT_EQ(hsp.score, 16);
}

TEST(Ungapped, DiagonalPreserved) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("TTACGTACGT");
  const auto s = dna("ACGTACGT");
  const auto hsp = extend_ungapped(q, s, 2, 0, 4, m, {16});
  EXPECT_EQ(hsp.diagonal(), -2);
  EXPECT_EQ(hsp.q_end - hsp.q_begin, hsp.s_end - hsp.s_begin);
}

TEST(Ungapped, RejectsSeedOutOfRange) {
  const auto m = score::dna_matrix();
  const auto q = dna("ACGT");
  EXPECT_THROW(extend_ungapped(q, q, 2, 2, 4, m, {}), InvalidArgument);
  EXPECT_THROW(extend_ungapped(q, q, 0, 0, 0, m, {}), InvalidArgument);
}

// ---------- Smith–Waterman ----------

TEST(SmithWaterman, IdenticalSequences) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("ACGTACGTAC");
  const auto a = smith_waterman(q, q, m, {5, 2});
  EXPECT_EQ(a.hsp.score, 20);
  EXPECT_EQ(a.hsp.q_begin, 0u);
  EXPECT_EQ(a.hsp.q_end, 10u);
  EXPECT_EQ(a.identities, 10u);
  EXPECT_EQ(a.gap_columns, 0u);
  EXPECT_EQ(a.cigar, "10M");
}

TEST(SmithWaterman, FindsEmbeddedLocalMatch) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("TTTTTACGTACGTTTTTT");
  const auto s = dna("GGGGGACGTACGGGGGG");
  const auto a = smith_waterman(q, s, m, {5, 2});
  EXPECT_EQ(a.hsp.score, 14);  // 7 matching residues ACGTACG
  EXPECT_EQ(a.identities, 7u);
}

TEST(SmithWaterman, HandlesSingleGap) {
  const auto m = score::dna_matrix(2, -3);
  // subject = query with one residue deleted; gap open 5 extend 2 means a
  // 1-column gap costs 7 but regains 2*6 from the right side.
  const auto q = dna("ACGTACGTACGT");
  const auto s = dna("ACGTAGTACGT");  // 'C' at position 5 deleted
  const auto a = smith_waterman(q, s, m, {5, 2});
  EXPECT_EQ(a.gap_columns, 1u);
  EXPECT_EQ(a.hsp.score, 2 * 11 - 7);
  const auto totals = cigar_totals(a.cigar);
  EXPECT_EQ(totals.q, a.hsp.q_len());
  EXPECT_EQ(totals.s, a.hsp.s_len());
  EXPECT_EQ(totals.columns, a.columns);
}

TEST(SmithWaterman, EmptyInputsYieldEmptyAlignment) {
  const auto m = score::dna_matrix();
  const auto q = dna("ACGT");
  const std::vector<seq::Code> empty;
  EXPECT_EQ(smith_waterman(q, empty, m, {5, 2}).hsp.score, 0);
  EXPECT_EQ(smith_waterman(empty, q, m, {5, 2}).hsp.score, 0);
}

TEST(SmithWaterman, NoPositivePairMeansNoAlignment) {
  const auto m = score::dna_matrix(2, -3);
  const auto a = smith_waterman(dna("AAAA"), dna("CCCC"), m, {5, 2});
  EXPECT_EQ(a.hsp.score, 0);
  EXPECT_EQ(a.columns, 0u);
}

TEST(SmithWaterman, ProteinAlignmentUsesSubstitutionScores) {
  const auto& m = score::blosum62();
  const auto q = prot("MKVLAWHH");
  const auto s = prot("MKVLAWHH");
  const auto a = smith_waterman(q, s, m, m.default_gaps());
  int expected = 0;
  for (seq::Code c : q) expected += m.score(c, c);
  EXPECT_EQ(a.hsp.score, expected);
}

// ---------- banded ----------

TEST(Banded, MatchesSmithWatermanWhenBandCoversEverything) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("ACGTACGTTGCAACGT");
  const auto s = dna("TACGTACGTAACGTT");
  const auto sw = smith_waterman(q, s, m, {5, 2});
  const auto banded = banded_local_align(
      q, s, m, {5, 2}, {0, q.size() + s.size()});
  EXPECT_EQ(banded.hsp.score, sw.hsp.score);
  EXPECT_EQ(banded.identities, sw.identities);
}

// Property: over random homologous pairs, a full-width band reproduces the
// exact Smith–Waterman score, and any band yields a score <= SW.
class BandedOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandedOracleTest, FullBandEqualsSwAndNarrowBandNeverExceeds) {
  Rng rng(GetParam());
  const auto& m = score::blosum62();
  const auto base =
      workload::random_sequence(Alphabet::kProtein, 120, "base", rng);
  const auto mutated =
      workload::mutate(base, {0.15, 0.02, 0.4}, "mut", rng);
  const auto sw =
      smith_waterman(base.codes(), mutated.codes(), m, m.default_gaps());
  const auto full = banded_local_align(base.codes(), mutated.codes(), m,
                                       m.default_gaps(), {0, 400});
  EXPECT_EQ(full.hsp.score, sw.hsp.score);

  for (std::size_t radius : {2u, 8u, 16u}) {
    const auto narrow = banded_local_align(base.codes(), mutated.codes(), m,
                                           m.default_gaps(), {0, radius});
    EXPECT_LE(narrow.hsp.score, sw.hsp.score) << "radius " << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, BandedOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Banded, RespectsBandRestriction) {
  const auto m = score::dna_matrix(2, -3);
  // The only strong alignment sits on diagonal +6; a radius-2 band at
  // diagonal 0 must not see it.
  const auto q = dna("ACGTACGTAAAAAA");
  const auto s = dna("TTTTTTACGTACGT");
  const auto off_band = banded_local_align(q, s, m, {5, 2}, {0, 2});
  EXPECT_LT(off_band.hsp.score, 16);
  const auto on_band = banded_local_align(q, s, m, {5, 2}, {6, 2});
  EXPECT_EQ(on_band.hsp.score, 16);
}

TEST(Banded, CenteredDiagonalFindsShiftedMatch) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("AACGTACGTACGTAA");
  const auto s = dna("CGTACGTACGT");
  // Alignment lies on diagonal -2.
  const auto a = banded_local_align(q, s, m, {5, 2}, {-2, 1});
  EXPECT_EQ(a.hsp.score, 22);
  EXPECT_EQ(static_cast<std::ptrdiff_t>(a.hsp.s_begin) -
                static_cast<std::ptrdiff_t>(a.hsp.q_begin),
            -2);
}

TEST(Banded, CigarColumnsConsistent) {
  Rng rng(77);
  const auto& m = score::blosum62();
  const auto base =
      workload::random_sequence(Alphabet::kProtein, 90, "b", rng);
  const auto mutated = workload::mutate(base, {0.1, 0.03, 0.5}, "m", rng);
  const auto a = banded_local_align(base.codes(), mutated.codes(), m,
                                    m.default_gaps(), {0, 24});
  if (a.hsp.score > 0) {
    const auto totals = cigar_totals(a.cigar);
    EXPECT_EQ(totals.q, a.hsp.q_len());
    EXPECT_EQ(totals.s, a.hsp.s_len());
    EXPECT_EQ(totals.columns, a.columns);
    EXPECT_LE(a.identities, a.columns);
  }
}

TEST(Banded, EmptyInputs) {
  const auto m = score::dna_matrix();
  const std::vector<seq::Code> empty;
  const auto q = dna("ACGT");
  EXPECT_EQ(banded_local_align(q, empty, m, {5, 2}, {0, 4}).hsp.score, 0);
  EXPECT_EQ(banded_local_align(empty, q, m, {5, 2}, {0, 4}).hsp.score, 0);
}

}  // namespace
}  // namespace mendel::align
