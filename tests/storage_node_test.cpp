// Message-level unit tests of the StorageNode actor: each server-side role
// exercised in isolation with hand-crafted protocol messages over a
// deterministic SimTransport.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/common/error.h"
#include "src/mendel/client.h"
#include "src/mendel/indexer.h"
#include "src/mendel/protocol.h"
#include "src/mendel/storage_node.h"
#include "src/net/sim_transport.h"
#include "src/workload/generator.h"

namespace mendel::core {
namespace {

// A tiny single-group cluster whose internals the tests can poke directly.
struct MiniCluster {
  cluster::Topology topology;
  const score::DistanceMatrix& distance;
  seq::SequenceStore store;
  vpt::VpPrefixTree prefix_tree;
  net::SimTransport transport;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::vector<net::Message> client_inbox;
  std::unique_ptr<net::FunctionActor> client;

  MiniCluster()
      : topology(make_config()),
        distance(score::default_distance(seq::Alphabet::kProtein)),
        store(make_store()),
        prefix_tree(make_tree()),
        transport(net::CostModel{.measured_cpu = false}) {
    topology.bind_prefixes(prefix_tree.leaf_prefixes());
    StorageNodeConfig config;
    config.topology = &topology;
    config.prefix_tree = &prefix_tree;
    config.distance = &distance;
    config.alphabet = seq::Alphabet::kProtein;
    config.database_residues = store.total_residues();
    // These tests address nodes directly with hand-crafted, unrouted
    // blocks; the MENDEL_CHECKED placement audit would rightly reject
    // them, so it is opted out at the node level.
    config.checked_placement_audit = false;
    for (net::NodeId id = 0; id < topology.total_nodes(); ++id) {
      nodes.push_back(std::make_unique<StorageNode>(id, config));
      transport.register_actor(id, nodes.back().get());
    }
    client = std::make_unique<net::FunctionActor>(
        [this](const net::Message& m, net::Context&) {
          client_inbox.push_back(m);
        });
    transport.register_actor(net::kClientNode, client.get());
  }

  static cluster::TopologyConfig make_config() {
    cluster::TopologyConfig config;
    config.num_groups = 2;
    config.nodes_per_group = 2;
    return config;
  }

  static seq::SequenceStore make_store() {
    workload::DatabaseSpec spec;
    spec.families = 3;
    spec.members_per_family = 3;
    spec.background_sequences = 4;
    spec.min_length = 120;
    spec.max_length = 250;
    spec.seed = 11;
    return workload::generate_database(spec);
  }

  vpt::VpPrefixTree make_tree() {
    IndexingOptions options;
    options.window_length = 8;
    options.sample_size = 128;
    Indexer indexer(&topology, &distance, options);
    return indexer.build_prefix_tree(store, {.cutoff_depth = 3});
  }

  void index_everything() {
    IndexingOptions options;
    options.window_length = 8;
    options.sample_size = 128;
    Indexer indexer(&topology, &distance, options);
    indexer.index_store(store, prefix_tree, transport, net::kClientNode);
    transport.run_until_idle();
  }

  void send(net::NodeId to, std::uint32_t type, std::uint64_t request_id,
            std::vector<std::uint8_t> payload) {
    net::Message m;
    m.from = net::kClientNode;
    m.to = to;
    m.type = type;
    m.request_id = request_id;
    m.payload = std::move(payload);
    transport.send(std::move(m));
  }
};

TEST(StorageNode, StoreSequenceAndFetchRange) {
  MiniCluster mini;
  StoreSequencePayload stored;
  stored.sequence = 3;
  stored.name = "probe sequence";
  stored.codes = seq::encode_string(seq::Alphabet::kProtein,
                                    "MKVLAWHHRRMKVLAWHHRR");
  mini.send(1, kStoreSequence, 0, encode_payload(stored));
  mini.transport.run_until_idle();
  EXPECT_EQ(mini.nodes[1]->sequence_count(), 1u);

  FetchRangePayload fetch;
  fetch.purpose = 0;
  fetch.token = 9;
  fetch.sequence = 3;
  fetch.start = 5;
  fetch.length = 8;
  mini.send(1, kFetchRange, 77, encode_payload(fetch));
  mini.transport.run_until_idle();
  ASSERT_EQ(mini.client_inbox.size(), 1u);
  const auto reply = decode_payload<FetchRangeResultPayload>(
      mini.client_inbox[0].payload);
  EXPECT_EQ(reply.token, 9u);
  EXPECT_EQ(reply.start, 5u);
  EXPECT_EQ(reply.sequence_length, 20u);
  EXPECT_EQ(reply.sequence_name, "probe sequence");
  EXPECT_EQ(seq::to_string(seq::Alphabet::kProtein, reply.codes),
            "WHHRRMKV");
  EXPECT_EQ(mini.client_inbox[0].request_id, 77u);
}

TEST(StorageNode, FetchRangeClampsToSequenceEnd) {
  MiniCluster mini;
  StoreSequencePayload stored;
  stored.sequence = 1;
  stored.name = "short";
  stored.codes = seq::encode_string(seq::Alphabet::kProtein, "MKVLAW");
  mini.send(0, kStoreSequence, 0, encode_payload(stored));
  // Drain before fetching: the smaller fetch message would otherwise pay
  // less transfer delay and overtake the store.
  mini.transport.run_until_idle();
  FetchRangePayload fetch;
  fetch.sequence = 1;
  fetch.start = 4;
  fetch.length = 100;
  mini.send(0, kFetchRange, 1, encode_payload(fetch));
  mini.transport.run_until_idle();
  const auto reply = decode_payload<FetchRangeResultPayload>(
      mini.client_inbox[0].payload);
  EXPECT_EQ(seq::to_string(seq::Alphabet::kProtein, reply.codes), "AW");
}

TEST(StorageNode, FetchUnknownSequenceReturnsEmpty) {
  MiniCluster mini;
  FetchRangePayload fetch;
  fetch.sequence = 999;
  fetch.start = 0;
  fetch.length = 10;
  mini.send(0, kFetchRange, 1, encode_payload(fetch));
  mini.transport.run_until_idle();
  const auto reply = decode_payload<FetchRangeResultPayload>(
      mini.client_inbox[0].payload);
  EXPECT_TRUE(reply.codes.empty());
  EXPECT_EQ(reply.sequence_length, 0u);
}

TEST(StorageNode, InsertBlocksGrowLocalTree) {
  MiniCluster mini;
  InsertBlocksPayload payload;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Block block;
    block.sequence = 1;
    block.start = static_cast<std::uint32_t>(i);
    const auto s = workload::random_sequence(seq::Alphabet::kProtein, 8,
                                             "w", rng);
    block.window.assign(s.codes().begin(), s.codes().end());
    payload.blocks.push_back(std::move(block));
  }
  mini.send(2, kInsertBlocks, 0, encode_payload(payload));
  mini.transport.run_until_idle();
  EXPECT_EQ(mini.nodes[2]->block_count(), 100u);
  EXPECT_EQ(mini.nodes[2]->counters().blocks_inserted, 100u);
}

TEST(StorageNode, NodeSearchAppliesFilters) {
  MiniCluster mini;
  // Plant one block; search with its exact window and with thresholds that
  // cannot pass.
  InsertBlocksPayload payload;
  Block block;
  block.sequence = 7;
  block.start = 42;
  block.window =
      seq::encode_string(seq::Alphabet::kProtein, "MKVLAWHH");
  payload.blocks.push_back(block);
  mini.send(3, kInsertBlocks, 0, encode_payload(payload));
  mini.transport.run_until_idle();

  NodeSearchPayload search;
  search.params.n = 4;
  search.params.identity = 0.9;
  search.params.c_score = 0.9;
  Subquery sub;
  sub.query_offset = 16;
  sub.window = block.window;
  search.subqueries.push_back(sub);
  mini.send(3, kNodeSearch, 5, encode_payload(search));
  mini.transport.run_until_idle();
  ASSERT_EQ(mini.client_inbox.size(), 1u);
  auto reply = decode_payload<NodeSearchResultPayload>(
      mini.client_inbox[0].payload);
  ASSERT_EQ(reply.seeds.size(), 1u);
  EXPECT_EQ(reply.seeds[0].sequence, 7u);
  EXPECT_EQ(reply.seeds[0].subject_start, 42u);
  EXPECT_EQ(reply.seeds[0].query_offset, 16u);
  EXPECT_DOUBLE_EQ(reply.seeds[0].identity, 1.0);

  // Impossible identity threshold: no seeds.
  mini.client_inbox.clear();
  search.params.identity = 1.1;
  mini.send(3, kNodeSearch, 6, encode_payload(search));
  mini.transport.run_until_idle();
  reply = decode_payload<NodeSearchResultPayload>(
      mini.client_inbox[0].payload);
  EXPECT_TRUE(reply.seeds.empty());
}

TEST(StorageNode, QueryRequestTooShortAnswersEmptyImmediately) {
  MiniCluster mini;
  mini.index_everything();
  QueryRequestPayload request;
  request.query = seq::encode_string(seq::Alphabet::kProtein, "MKV");
  mini.send(0, kQueryRequest, 50, encode_payload(request));
  mini.transport.run_until_idle();
  ASSERT_EQ(mini.client_inbox.size(), 1u);
  EXPECT_EQ(mini.client_inbox[0].type,
            static_cast<std::uint32_t>(kQueryResult));
  const auto reply =
      decode_payload<QueryResultPayload>(mini.client_inbox[0].payload);
  EXPECT_TRUE(reply.hits.empty());
}

TEST(StorageNode, FullQueryThroughHandCraftedMessages) {
  MiniCluster mini;
  mini.index_everything();
  const auto& donor = mini.store.at(2);
  const auto window = donor.window(10, 100);
  QueryRequestPayload request;
  request.query.assign(window.begin(), window.end());
  mini.send(1, kQueryRequest, 99, encode_payload(request));
  mini.transport.run_until_idle();
  ASSERT_EQ(mini.client_inbox.size(), 1u);
  const auto reply =
      decode_payload<QueryResultPayload>(mini.client_inbox[0].payload);
  ASSERT_FALSE(reply.hits.empty());
  bool found = false;
  for (const auto& hit : reply.hits) found = found || hit.subject_id == 2;
  EXPECT_TRUE(found);
}

TEST(StorageNode, UnknownMessageTypeIsCountedAndDropped) {
  // A bad frame (any peer can send any type value) must not tear the node
  // down: the bad-frame guard counts it and the node keeps serving.
  MiniCluster mini;
  mini.send(0, 0xdead, 0, {});
  EXPECT_NO_THROW(mini.transport.run_until_idle());
  EXPECT_EQ(mini.nodes[0]->counters().decode_errors, 1u);
  EXPECT_NE(mini.nodes[0]->last_decode_error().find("unknown message type"),
            std::string::npos);
}

TEST(StorageNode, TruncatedPayloadIsCountedAndDropped) {
  MiniCluster mini;
  mini.index_everything();
  // A store-sequence frame cut short mid-payload must surface as a counted
  // decode error, not a crash or a partial store.
  StoreSequencePayload payload;
  payload.sequence = 77;
  payload.name = "trunc";
  payload.codes = {0, 1, 2, 3};
  auto bytes = encode_payload(payload);
  bytes.resize(bytes.size() / 2);
  const std::size_t before = mini.nodes[0]->sequence_count();
  mini.send(0, kStoreSequence, 0, bytes);
  EXPECT_NO_THROW(mini.transport.run_until_idle());
  EXPECT_EQ(mini.nodes[0]->counters().decode_errors, 1u);
  EXPECT_EQ(mini.nodes[0]->sequence_count(), before);
}

TEST(StorageNode, OutOfAlphabetCodesAreRejected) {
  MiniCluster mini;
  // Residue codes past the alphabet would index distance LUTs out of
  // bounds downstream; the ingress validation must reject the frame.
  StoreSequencePayload payload;
  payload.sequence = 78;
  payload.name = "hostile";
  payload.codes = {0, 1, 250};
  mini.send(0, kStoreSequence, 0, encode_payload(payload));
  EXPECT_NO_THROW(mini.transport.run_until_idle());
  EXPECT_EQ(mini.nodes[0]->counters().decode_errors, 1u);
  EXPECT_EQ(mini.nodes[0]->sequence_count(), 0u);
}

TEST(StorageNode, StaleResponsesAreIgnored) {
  MiniCluster mini;
  mini.index_everything();
  // A NodeSearchResult / GroupResult / FetchRangeResult for an unknown
  // query id must be dropped silently (stale after completion).
  NodeSearchResultPayload stale_seeds;
  mini.send(0, kNodeSearchResult, 12345, encode_payload(stale_seeds));
  GroupResultPayload stale_group;
  mini.send(0, kGroupResult, 12345, encode_payload(stale_group));
  FetchRangeResultPayload stale_fetch;
  mini.send(0, kFetchRangeResult, 12345, encode_payload(stale_fetch));
  EXPECT_NO_THROW(mini.transport.run_until_idle());
  EXPECT_TRUE(mini.client_inbox.empty());
}

TEST(StorageNode, SaveLoadRoundTripPreservesState) {
  MiniCluster mini;
  mini.index_everything();
  const auto& node = *mini.nodes[1];
  CodecWriter writer;
  node.save(writer);

  StorageNodeConfig config;
  config.topology = &mini.topology;
  config.prefix_tree = &mini.prefix_tree;
  config.distance = &mini.distance;
  config.alphabet = seq::Alphabet::kProtein;
  StorageNode restored(1, config);
  CodecReader reader(writer.data());
  restored.load(reader);
  EXPECT_EQ(restored.block_count(), node.block_count());
  EXPECT_EQ(restored.sequence_count(), node.sequence_count());
}

TEST(StorageNode, LoadRejectsWrongNodeId) {
  MiniCluster mini;
  mini.index_everything();
  CodecWriter writer;
  mini.nodes[1]->save(writer);
  StorageNodeConfig config;
  config.topology = &mini.topology;
  config.prefix_tree = &mini.prefix_tree;
  config.distance = &mini.distance;
  StorageNode other(2, config);
  CodecReader reader(writer.data());
  EXPECT_THROW(other.load(reader), InvalidArgument);
}

// ---------- packed / spilled snapshot round trips ----------

// Ranked hits must be byte-identical whether the restored cluster keeps
// its packed arenas fully resident or spills them through the block store
// under a clamped budget: out-of-core storage is a memory policy, never a
// results policy.
TEST(StorageNode, SnapshotRoundTripUnderSpillBudgetMatchesAllResident) {
  workload::DatabaseSpec spec;
  spec.alphabet = seq::Alphabet::kDna;
  spec.families = 4;
  spec.members_per_family = 3;
  spec.background_sequences = 6;
  spec.min_length = 200;
  spec.max_length = 500;
  spec.seed = 91;
  const auto store = workload::generate_database(spec);

  ClientOptions options;
  options.topology.num_groups = 2;
  options.topology.nodes_per_group = 2;
  options.indexing.window_length = 12;
  options.indexing.sample_size = 256;
  options.prefix_tree.cutoff_depth = 3;
  options.cost.measured_cpu = false;

  const std::string path = "/tmp/mendel_spill_roundtrip.bin";
  Client resident(options);
  resident.index(store);
  // DNA with no stray codes packs at 2 bits per residue.
  EXPECT_GT(resident.metrics().gauge("arena.packed_bytes"), 0);
  resident.save_index(path);

  auto spill_options = options;
  spill_options.runtime.arena_resident_budget = 1;  // clamps to store floor
  Client restored(spill_options);
  restored.load_index(path);
  EXPECT_TRUE(restored.indexed());
  EXPECT_EQ(restored.block_counts(), resident.block_counts());

  QueryParams params;
  params.matrix = "DNA";
  params.identity = 0.6;
  params.c_score = 0.4;
  params.gapped_trigger = 1.0;
  for (const seq::SequenceId donor : {1u, 5u, 9u}) {
    const auto window = store.at(donor).window(20, 150);
    const seq::Sequence query(store.alphabet(), "probe",
                              {window.begin(), window.end()});
    const auto want = resident.query(query, params);
    const auto got = restored.query(query, params);
    ASSERT_EQ(got.hits.size(), want.hits.size()) << "donor " << donor;
    for (std::size_t i = 0; i < want.hits.size(); ++i) {
      EXPECT_EQ(got.hits[i].subject_id, want.hits[i].subject_id);
      EXPECT_EQ(got.hits[i].alignment.hsp.score,
                want.hits[i].alignment.hsp.score);
      EXPECT_EQ(got.hits[i].alignment.cigar, want.hits[i].alignment.cigar);
      EXPECT_DOUBLE_EQ(got.hits[i].evalue, want.hits[i].evalue);
    }
  }
  std::remove(path.c_str());
}

// The spilled cluster's snapshot must itself be byte-identical to the
// resident cluster's: the save path reads rows back through the block
// store without an inflate/deflate round trip.
TEST(StorageNode, SpilledClusterSavesByteIdenticalSnapshot) {
  workload::DatabaseSpec spec;
  spec.alphabet = seq::Alphabet::kDna;
  spec.families = 3;
  spec.members_per_family = 3;
  spec.background_sequences = 4;
  spec.min_length = 150;
  spec.max_length = 400;
  spec.seed = 92;
  const auto store = workload::generate_database(spec);

  ClientOptions options;
  options.topology.num_groups = 2;
  options.topology.nodes_per_group = 2;
  options.indexing.window_length = 12;
  options.indexing.sample_size = 256;
  options.prefix_tree.cutoff_depth = 3;
  options.cost.measured_cpu = false;

  Client resident(options);
  resident.index(store);
  const std::string resident_path = "/tmp/mendel_snap_resident.bin";
  resident.save_index(resident_path);

  auto spill_options = options;
  spill_options.runtime.arena_resident_budget = 1;
  Client spilled(spill_options);
  spilled.index(store);
  const std::string spilled_path = "/tmp/mendel_snap_spilled.bin";
  spilled.save_index(spilled_path);

  auto slurp = [](const std::string& p) {
    std::vector<char> bytes;
    std::FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr) << p;
    if (f != nullptr) {
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        bytes.insert(bytes.end(), buf, buf + n);
      }
      std::fclose(f);
    }
    return bytes;
  };
  EXPECT_EQ(slurp(spilled_path), slurp(resident_path));
  std::remove(resident_path.c_str());
  std::remove(spilled_path.c_str());
}

TEST(StorageNode, DownNodesExcludedFromFanOut) {
  MiniCluster mini;
  mini.index_everything();
  // Mark node 1 down everywhere (and drop its traffic).
  for (auto& node : mini.nodes) node->set_down(1, true);
  mini.transport.fail_node(1);
  const auto& donor = mini.store.at(0);
  const auto window = donor.window(0, 100);
  QueryRequestPayload request;
  request.query.assign(window.begin(), window.end());
  mini.send(0, kQueryRequest, 7, encode_payload(request));
  // Must complete without stalling (no response from node 1 is awaited).
  mini.transport.run_until_idle();
  ASSERT_EQ(mini.client_inbox.size(), 1u);
}

}  // namespace
}  // namespace mendel::core
