// Multi-process deployment smoke test: real mendel-node daemon processes,
// a socket-mode coordinator, quickstart-sized queries, and kill-a-process
// chaos. This is the only tier that crosses genuine process boundaries —
// everything in-process (including the socket parity suite) shares one
// address space, so only here do SIGKILL, daemon restart, and the
// heartbeat/heal recovery path run against the real thing.
//
// The mendel-node binary path is injected by CMake as MENDEL_NODE_BIN.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/mendel/client.h"
#include "src/net/socket_transport.h"
#include "src/workload/generator.h"

#ifndef MENDEL_NODE_BIN
#error "MENDEL_NODE_BIN must be defined (see tests/CMakeLists.txt)"
#endif

namespace mendel {
namespace {

using namespace std::chrono_literals;

workload::DatabaseSpec spec() {
  workload::DatabaseSpec s;
  s.families = 4;
  s.members_per_family = 3;
  s.background_sequences = 6;
  s.min_length = 150;
  s.max_length = 350;
  s.seed = 77;
  return s;
}

std::vector<seq::Sequence> probes(const seq::SequenceStore& store) {
  std::vector<seq::Sequence> queries;
  for (std::size_t donor : {2u, 5u, 9u}) {
    const auto region = store.at(donor).window(5, 110);
    queries.emplace_back(store.alphabet(),
                         "probe" + std::to_string(queries.size()),
                         std::vector<seq::Code>{region.begin(), region.end()});
  }
  return queries;
}

core::ClientOptions base_options() {
  core::ClientOptions options;
  options.topology.num_groups = 2;
  options.topology.nodes_per_group = 2;
  options.indexing.window_length = 8;
  options.indexing.sample_size = 256;
  options.prefix_tree.cutoff_depth = 4;
  options.cost.measured_cpu = false;
  return options;
}

// One mendel-node child process.
class DaemonProcess {
 public:
  DaemonProcess(const std::string& nodes, const std::string& endpoints) {
    pid_ = ::fork();
    if (pid_ == 0) {
      const std::string nodes_flag = "--nodes=" + nodes;
      const std::string endpoints_flag = "--endpoints=" + endpoints;
      ::execl(MENDEL_NODE_BIN, "mendel-node", nodes_flag.c_str(),
              endpoints_flag.c_str(), "--heartbeat-interval=0.1",
              "--heartbeat-timeout=0.5", "--connect-timeout=10",
              static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
  }
  ~DaemonProcess() { terminate(); }

  void kill9() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    reap();
  }
  void terminate() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGTERM);
    reap();
  }
  pid_t pid() const { return pid_; }

 private:
  void reap() {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
  pid_t pid_ = -1;
};

std::string join(const std::vector<std::string>& items) {
  std::string csv;
  for (const auto& item : items) {
    if (!csv.empty()) csv += ",";
    csv += item;
  }
  return csv;
}

// Every hit in `outcome` also appears in `reference` (by subject): after a
// daemon restart its shard is empty, so recall may shrink, but the
// surviving shards must not invent hits.
void expect_hits_subset(const core::QueryOutcome& outcome,
                        const core::QueryOutcome& reference) {
  for (const auto& hit : outcome.hits) {
    bool found = false;
    for (const auto& ref : reference.hits) {
      found |= ref.subject_id == hit.subject_id;
    }
    EXPECT_TRUE(found) << "unexpected subject " << hit.subject_id;
  }
}

TEST(DeploySmoke, TwoDaemonClusterParityKillRestartHeal) {
  const auto store = workload::generate_database(spec());
  const auto queries = probes(store);

  // Simulator baseline for the parity half of the smoke.
  core::Client sim_client(base_options());
  sim_client.index(store);
  const auto sim_outcomes = sim_client.query_batch(queries);
  for (const auto& outcome : sim_outcomes) {
    ASSERT_TRUE(outcome.completed);
    ASSERT_FALSE(outcome.hits.empty());
  }

  // 4 nodes over 2 daemons: daemon A hosts group 0 (nodes 0,1), daemon B
  // hosts group 1 (nodes 2,3).
  std::vector<std::string> endpoints;
  for (int id = 0; id < 4; ++id) {
    endpoints.push_back("unix:" + testing::TempDir() + "mendel_smoke_" +
                        std::to_string(::getpid()) + "_" +
                        std::to_string(id) + ".sock");
  }
  DaemonProcess daemon_a("0,1", join(endpoints));
  auto daemon_b =
      std::make_unique<DaemonProcess>("2-3", join(endpoints));
  ASSERT_GT(daemon_a.pid(), 0);
  ASSERT_GT(daemon_b->pid(), 0);

  auto options = base_options();
  options.runtime.transport_mode = core::TransportMode::kSocket;
  options.runtime.socket.endpoints = endpoints;
  options.runtime.socket.heartbeat_interval = 0.1;
  options.runtime.socket.heartbeat_timeout = 0.6;
  options.runtime.socket.query_timeout = 5.0;
  options.runtime.socket.settle_timeout = 10.0;
  options.runtime.socket.connect_timeout = 15.0;
  core::Client client(options);
  client.index(store);

  // Healthy cluster: ranked hits must match the simulator exactly.
  const auto healthy = client.query_batch(queries);
  ASSERT_EQ(healthy.size(), sim_outcomes.size());
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    ASSERT_TRUE(healthy[i].completed) << "query " << i;
    ASSERT_EQ(healthy[i].hits.size(), sim_outcomes[i].hits.size());
    for (std::size_t j = 0; j < healthy[i].hits.size(); ++j) {
      EXPECT_EQ(healthy[i].hits[j].subject_id,
                sim_outcomes[i].hits[j].subject_id);
      EXPECT_EQ(healthy[i].hits[j].alignment.hsp.score,
                sim_outcomes[i].hits[j].alignment.hsp.score);
      EXPECT_DOUBLE_EQ(healthy[i].hits[j].evalue,
                       sim_outcomes[i].hits[j].evalue);
    }
  }

  // Chaos: SIGKILL daemon B with queries in flight. Every in-flight query
  // must terminate — completed, or cancelled cleanly by the stall
  // machinery — within the query timeout; nothing may hang.
  std::vector<core::QueryTicket> inflight;
  for (const auto& query : queries) inflight.push_back(client.submit(query));
  daemon_b->kill9();
  for (const auto& ticket : inflight) {
    const auto outcome = client.wait(ticket);
    if (outcome.completed) {
      EXPECT_FALSE(outcome.hits.empty());
    } else {
      EXPECT_TRUE(outcome.hits.empty());  // clean cancel, no partial junk
    }
  }

  // The heartbeat monitor notices the silent peer without any manual
  // fail_node (both of daemon B's nodes share its connection).
  const auto hb_deadline = std::chrono::steady_clock::now() + 10s;
  while ((!client.socket_transport().node_down(2) ||
          !client.socket_transport().node_down(3)) &&
         std::chrono::steady_clock::now() < hb_deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(client.socket_transport().node_down(2));
  EXPECT_TRUE(client.socket_transport().node_down(3));
  EXPECT_GE(client.socket_transport().heartbeats_missed(), 1u);

  // Make the down state explicit membership (mirrors the operator flow:
  // monitor alerts, operator or supervisor confirms the failure).
  client.fail_node(2);
  client.fail_node(3);

  // Restart the daemon on the same endpoints (fresh process, empty
  // shards) and heal. heal_node re-inits the restarted daemon over the
  // wire and flushes deferred cancels.
  daemon_b = std::make_unique<DaemonProcess>("2-3", join(endpoints));
  ASSERT_GT(daemon_b->pid(), 0);
  client.heal_node(2);
  client.heal_node(3);

  // Queries complete again. Daemon B's shard died with the process, so
  // recall may drop, but every query must complete and no hit may be
  // fabricated.
  const auto recovered = client.query_batch(queries);
  ASSERT_EQ(recovered.size(), queries.size());
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_TRUE(recovered[i].completed) << "query " << i;
    expect_hits_subset(recovered[i], healthy[i]);
  }
  // Record how much recall the lost shard cost (informational — placement
  // decides which queries lose hits).
  std::size_t intact = 0;
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    intact += recovered[i].hits.size() == healthy[i].hits.size();
  }
  RecordProperty("queries_with_full_recall_after_restart",
                 static_cast<int>(intact));
  EXPECT_EQ(client.socket_transport().handler_errors().size(), 0u);
}

}  // namespace
}  // namespace mendel
