// Tests for PSSMs and iterative profile search (src/blast/pssm.*, psi.*).
#include <gtest/gtest.h>

#include "src/align/smith_waterman.h"
#include "src/blast/psi.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"

namespace mendel::blast {
namespace {

using seq::Alphabet;

// ---------- Pssm ----------

TEST(Pssm, FromQueryEqualsMatrixRows) {
  const auto query = seq::encode_string(Alphabet::kProtein, "MKVLAWHH");
  const auto pssm = Pssm::from_query(query, score::blosum62());
  ASSERT_EQ(pssm.length(), 8u);
  for (std::size_t c = 0; c < 8; ++c) {
    for (seq::Code a = 0; a < 24; ++a) {
      EXPECT_EQ(pssm.score(c, a), score::blosum62().score(query[c], a));
    }
  }
}

TEST(Pssm, ProteinOnly) {
  const auto dna = seq::encode_string(Alphabet::kDna, "ACGT");
  const auto matrix = score::dna_matrix();
  EXPECT_THROW(Pssm::from_query(dna, matrix), InvalidArgument);
}

TEST(Pssm, ConservedColumnBoostsObservedResidue) {
  // Query has 'A' at column 0, but every included homolog shows 'W'.
  const auto query = seq::encode_string(Alphabet::kProtein, "AAAA");
  Pssm::ColumnCounts counts(4);
  const auto w = seq::encode(Alphabet::kProtein, 'W');
  const auto a = seq::encode(Alphabet::kProtein, 'A');
  counts[0][w] = 30.0;  // strong conservation signal
  const auto pssm =
      Pssm::from_counts(query, score::blosum62(), counts, 5.0);
  // W now outscores the BLOSUM62 A-row value for W (-3).
  EXPECT_GT(pssm.score(0, w), score::blosum62().score(a, w));
  EXPECT_GT(pssm.score(0, w), 0);
  // Columns without observations keep the matrix row.
  EXPECT_EQ(pssm.score(1, w), score::blosum62().score(a, w));
}

TEST(Pssm, CountsLengthMismatchRejected) {
  const auto query = seq::encode_string(Alphabet::kProtein, "AAAA");
  Pssm::ColumnCounts counts(3);
  EXPECT_THROW(Pssm::from_counts(query, score::blosum62(), counts),
               InvalidArgument);
}

// ---------- accumulate_counts ----------

TEST(AccumulateCounts, IdentityAlignmentCountsSubjectResidues) {
  align::AlignmentHit hit;
  hit.alignment.hsp = {2, 6, 0, 4, 20};
  hit.alignment.cigar = "4M";
  hit.subject_segment = seq::encode_string(Alphabet::kProtein, "WKVL");
  Pssm::ColumnCounts counts(10);
  accumulate_counts(hit, counts);
  EXPECT_EQ(counts[2][seq::encode(Alphabet::kProtein, 'W')], 1.0);
  EXPECT_EQ(counts[5][seq::encode(Alphabet::kProtein, 'L')], 1.0);
  EXPECT_EQ(counts[6][seq::encode(Alphabet::kProtein, 'L')], 0.0);
}

TEST(AccumulateCounts, GapsSkipColumns) {
  align::AlignmentHit hit;
  hit.alignment.hsp = {0, 3, 0, 3, 10};
  hit.alignment.cigar = "1M1D1M1I";  // pairs (q0,s0), gap q1, (q2,s1), ins s2
  hit.subject_segment = seq::encode_string(Alphabet::kProtein, "KVL");
  Pssm::ColumnCounts counts(5);
  accumulate_counts(hit, counts);
  EXPECT_EQ(counts[0][seq::encode(Alphabet::kProtein, 'K')], 1.0);
  // Column 1 was a query-only column (D): nothing counted there.
  double column1 = 0;
  for (double v : counts[1]) column1 += v;
  EXPECT_EQ(column1, 0.0);
  EXPECT_EQ(counts[2][seq::encode(Alphabet::kProtein, 'V')], 1.0);
}

TEST(AccumulateCounts, RequiresSubjectSegment) {
  align::AlignmentHit hit;
  hit.alignment.cigar = "4M";
  Pssm::ColumnCounts counts(4);
  EXPECT_THROW(accumulate_counts(hit, counts), InvalidArgument);
}

// ---------- profile_local_align ----------

class ProfileOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileOracleTest, FromQueryProfileMatchesSmithWaterman) {
  Rng rng(GetParam());
  const auto base =
      workload::random_sequence(Alphabet::kProtein, 120, "b", rng);
  const auto mutated = workload::mutate(base, {0.2, 0.02, 0.4}, "m", rng);
  const auto& m = score::blosum62();
  const auto pssm = Pssm::from_query(base.codes(), m);
  const auto profile_hsp =
      profile_local_align(pssm, mutated.codes(), m.default_gaps());
  const auto sw =
      align::smith_waterman(base.codes(), mutated.codes(), m,
                            m.default_gaps());
  EXPECT_EQ(profile_hsp.score, sw.hsp.score);
  if (profile_hsp.score > 0) {
    EXPECT_EQ(profile_hsp.q_begin, sw.hsp.q_begin);
    EXPECT_EQ(profile_hsp.q_end, sw.hsp.q_end);
    EXPECT_EQ(profile_hsp.s_begin, sw.hsp.s_begin);
    EXPECT_EQ(profile_hsp.s_end, sw.hsp.s_end);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, ProfileOracleTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

// ---------- PsiBlastEngine ----------

struct ChainWorkload {
  seq::SequenceStore store{Alphabet::kProtein};
  seq::Sequence query{Alphabet::kProtein, "query", {}};
  seq::SequenceId mid_id = 0;
  seq::SequenceId remote_id = 0;
};

// A homology chain: query -- 65% -- mid -- 55% -- remote, so
// query-vs-remote sits near 36% identity while mid bridges the profile.
ChainWorkload make_chain(std::uint64_t seed) {
  ChainWorkload w;
  Rng rng(seed);
  w.query = workload::random_sequence(Alphabet::kProtein, 300, "query", rng);
  const auto mid =
      workload::mutate_to_similarity(w.query, 0.65, "mid", rng);
  const auto remote = workload::mutate_to_similarity(mid, 0.55, "remote", rng);
  w.mid_id = w.store.add(mid);
  w.remote_id = w.store.add(remote);
  for (int i = 0; i < 25; ++i) {
    w.store.add(workload::random_sequence(Alphabet::kProtein, 300,
                                          "bg" + std::to_string(i), rng));
  }
  return w;
}

TEST(PsiBlast, OneIterationEqualsPlainBlast) {
  const auto w = make_chain(401);
  BlastEngine plain(&w.store, &score::blosum62());
  plain.build();
  PsiBlastEngine psi(&w.store, &score::blosum62(), {}, {.iterations = 1});
  psi.build();
  const auto plain_hits = plain.search(w.query);
  const auto psi_hits = psi.search(w.query);
  ASSERT_EQ(psi_hits.size(), plain_hits.size());
  for (std::size_t i = 0; i < plain_hits.size(); ++i) {
    EXPECT_EQ(psi_hits[i].subject_id, plain_hits[i].subject_id);
    EXPECT_EQ(psi_hits[i].alignment.hsp.score,
              plain_hits[i].alignment.hsp.score);
  }
}

TEST(PsiBlast, ProfileRoundsNeverLoseTheBridgeHomolog) {
  const auto w = make_chain(402);
  PsiBlastEngine psi(&w.store, &score::blosum62(), {},
                     {.iterations = 3, .inclusion_evalue = 1e-3});
  psi.build();
  PsiSearchStats stats;
  const auto hits = psi.search(w.query, &stats);
  EXPECT_GE(stats.rounds, 2u);
  EXPECT_GE(stats.included_subjects, 1u);
  bool mid_found = false;
  for (const auto& hit : hits) mid_found |= hit.subject_id == w.mid_id;
  EXPECT_TRUE(mid_found);
}

TEST(PsiBlast, ProfileImprovesRemoteHomologScore) {
  // Whether the remote homolog crosses the report threshold depends on
  // seeds; the profile's *score* for it must at least match the plain
  // matrix score (profiles sharpen true signals).
  const auto w = make_chain(403);
  BlastEngine plain(&w.store, &score::blosum62());
  plain.build();
  PsiBlastEngine psi(&w.store, &score::blosum62(), {},
                     {.iterations = 3, .inclusion_evalue = 1e-3});
  psi.build();

  auto score_of = [&](const std::vector<align::AlignmentHit>& hits,
                      seq::SequenceId id) {
    for (const auto& hit : hits) {
      if (hit.subject_id == id) return hit.alignment.hsp.score;
    }
    return 0;
  };
  const int plain_remote = score_of(plain.search(w.query), w.remote_id);
  const int psi_remote = score_of(psi.search(w.query), w.remote_id);
  EXPECT_GE(psi_remote, plain_remote);
  EXPECT_GT(psi_remote, 0) << "profile rounds should surface the remote "
                              "homolog";
}

TEST(PsiBlast, StopsWhenNothingNewIncluded) {
  // Query unrelated to everything: round 1 includes nothing, iteration
  // stops immediately.
  const auto w = make_chain(404);
  Rng rng(9);
  const auto stranger =
      workload::random_sequence(Alphabet::kProtein, 200, "stranger", rng);
  PsiBlastEngine psi(&w.store, &score::blosum62(), {}, {.iterations = 5});
  psi.build();
  PsiSearchStats stats;
  psi.search(stranger, &stats);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.included_subjects, 0u);
}

}  // namespace
}  // namespace mendel::blast
