// Unit tests for the BLAST-style baseline (src/blast).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/blast/blast.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"

namespace mendel::blast {
namespace {

using seq::Alphabet;

seq::SequenceStore protein_store() {
  seq::SequenceStore store(Alphabet::kProtein);
  Rng rng(101);
  for (int i = 0; i < 30; ++i) {
    store.add(workload::random_sequence(Alphabet::kProtein, 300,
                                        "bg" + std::to_string(i), rng));
  }
  return store;
}

// ---------- WordIndex ----------

TEST(WordIndex, PackRejectsWrongLength) {
  WordIndex index(Alphabet::kProtein, 3);
  std::uint32_t key;
  EXPECT_THROW(index.pack(seq::encode_string(Alphabet::kProtein, "MK"), key),
               InvalidArgument);
}

TEST(WordIndex, PackSkipsAmbiguity) {
  WordIndex index(Alphabet::kProtein, 3);
  std::uint32_t key;
  EXPECT_TRUE(index.pack(seq::encode_string(Alphabet::kProtein, "MKV"), key));
  EXPECT_FALSE(
      index.pack(seq::encode_string(Alphabet::kProtein, "MXV"), key));
}

TEST(WordIndex, LookupFindsIndexedPositions) {
  WordIndex index(Alphabet::kProtein, 3);
  auto s = seq::Sequence::from_string(Alphabet::kProtein, "s", "MKVMKV");
  s.set_id(7);
  index.add_sequence(s);
  EXPECT_EQ(index.indexed_words(), 4u);
  const auto* hits =
      index.lookup(seq::encode_string(Alphabet::kProtein, "MKV"));
  ASSERT_NE(hits, nullptr);
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].sequence, 7u);
  EXPECT_EQ((*hits)[0].offset, 0u);
  EXPECT_EQ((*hits)[1].offset, 3u);
}

TEST(WordIndex, LookupMissingWordIsNull) {
  WordIndex index(Alphabet::kProtein, 3);
  EXPECT_EQ(index.lookup(seq::encode_string(Alphabet::kProtein, "WWW")),
            nullptr);
}

TEST(WordIndex, NeighborhoodContainsSelfAtModerateThreshold) {
  WordIndex index(Alphabet::kProtein, 3);
  const auto word = seq::encode_string(Alphabet::kProtein, "MKV");
  std::uint32_t self_key;
  ASSERT_TRUE(index.pack(word, self_key));
  const auto hood = index.neighborhood(word, score::blosum62(), 11);
  EXPECT_NE(std::find(hood.begin(), hood.end(), self_key), hood.end());
}

TEST(WordIndex, NeighborhoodShrinksWithThreshold) {
  WordIndex index(Alphabet::kProtein, 3);
  const auto word = seq::encode_string(Alphabet::kProtein, "MKV");
  const auto loose = index.neighborhood(word, score::blosum62(), 8);
  const auto tight = index.neighborhood(word, score::blosum62(), 13);
  EXPECT_GT(loose.size(), tight.size());
  // Every tight member appears in the loose set.
  for (auto k : tight) {
    EXPECT_NE(std::find(loose.begin(), loose.end(), k), loose.end());
  }
}

TEST(WordIndex, NeighborhoodExhaustiveAgainstBruteForce) {
  WordIndex index(Alphabet::kProtein, 2);
  const auto word = seq::encode_string(Alphabet::kProtein, "WC");
  const int threshold = 6;
  const auto hood = index.neighborhood(word, score::blosum62(), threshold);
  std::size_t expected = 0;
  for (seq::Code a = 0; a < 20; ++a) {
    for (seq::Code b = 0; b < 20; ++b) {
      const int s = score::blosum62().score(word[0], a) +
                    score::blosum62().score(word[1], b);
      expected += s >= threshold ? 1 : 0;
    }
  }
  EXPECT_EQ(hood.size(), expected);
}

TEST(WordIndex, DnaWordSizeEleven) {
  WordIndex index(Alphabet::kDna, 11);
  auto s = seq::Sequence::from_string(
      Alphabet::kDna, "d", "ACGTACGTACGTACGT");
  s.set_id(1);
  index.add_sequence(s);
  EXPECT_EQ(index.indexed_words(), 6u);
  const auto* hits = index.lookup(
      seq::encode_string(Alphabet::kDna, "ACGTACGTACG"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 2u);  // positions 0 and 4
}

TEST(WordIndex, RejectsOversizedWords) {
  EXPECT_THROW(WordIndex(Alphabet::kProtein, 8), InvalidArgument);
  EXPECT_NO_THROW(WordIndex(Alphabet::kProtein, 7));
  EXPECT_NO_THROW(WordIndex(Alphabet::kDna, 15));
  EXPECT_THROW(WordIndex(Alphabet::kDna, 16), InvalidArgument);
}

// ---------- BlastEngine ----------

TEST(BlastEngine, FindsExactSubsequence) {
  auto store = protein_store();
  BlastEngine engine(&store, &score::blosum62());
  engine.build();

  const auto& donor = store.at(5);
  const auto window = donor.window(50, 80);
  const seq::Sequence query(Alphabet::kProtein, "q",
                            {window.begin(), window.end()});
  BlastSearchStats stats;
  const auto hits = engine.search(query, &stats);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front().subject_id, donor.id());
  EXPECT_GT(hits.front().alignment.percent_identity(), 0.99);
  EXPECT_LT(hits.front().evalue, 1e-20);
  EXPECT_GT(stats.seed_hits, 0u);
  EXPECT_GT(stats.gapped_extensions, 0u);
}

TEST(BlastEngine, ResultsSortedByEvalue) {
  auto store = protein_store();
  BlastEngine engine(&store, &score::blosum62());
  engine.build();
  const auto& donor = store.at(2);
  const auto window = donor.window(0, 120);
  const seq::Sequence query(Alphabet::kProtein, "q",
                            {window.begin(), window.end()});
  const auto hits = engine.search(query);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].evalue, hits[i].evalue);
  }
}

TEST(BlastEngine, FindsModeratelyDivergedHomolog) {
  seq::SequenceStore store(Alphabet::kProtein);
  Rng rng(55);
  const auto target =
      workload::random_sequence(Alphabet::kProtein, 400, "target", rng);
  const auto target_id = store.add(target);
  for (int i = 0; i < 20; ++i) {
    store.add(workload::random_sequence(Alphabet::kProtein, 400,
                                        "bg" + std::to_string(i), rng));
  }
  BlastEngine engine(&store, &score::blosum62());
  engine.build();

  const auto query =
      workload::mutate_to_similarity(target, 0.6, "homolog", rng);
  const auto hits = engine.search(query);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front().subject_id, target_id);
}

TEST(BlastEngine, NoHitsForUnrelatedQueryAtStrictEvalue) {
  auto store = protein_store();
  BlastOptions options;
  options.evalue_cutoff = 1e-8;
  BlastEngine engine(&store, &score::blosum62(), options);
  engine.build();
  Rng rng(77);
  const auto query =
      workload::random_sequence(Alphabet::kProtein, 200, "noise", rng);
  EXPECT_TRUE(engine.search(query).empty());
}

TEST(BlastEngine, DnaModeExactWords) {
  seq::SequenceStore store(Alphabet::kDna);
  Rng rng(88);
  for (int i = 0; i < 10; ++i) {
    store.add(workload::random_sequence(Alphabet::kDna, 600,
                                        "g" + std::to_string(i), rng));
  }
  static const score::ScoringMatrix dna = score::dna_matrix();
  BlastOptions options;
  options.word_size = 11;
  options.gapped_trigger = 20;   // DNA scores accrue +2/column
  options.two_hit = false;       // exact 11-mers are specific enough alone
  BlastEngine engine(&store, &dna, options);
  engine.build();

  const auto& donor = store.at(4);
  const auto window = donor.window(100, 150);
  const seq::Sequence query(Alphabet::kDna, "q",
                            {window.begin(), window.end()});
  const auto hits = engine.search(query);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front().subject_id, donor.id());
}

TEST(BlastEngine, TwoHitReducesExtensions) {
  auto store = protein_store();
  const auto& donor = store.at(1);
  const auto window = donor.window(20, 150);
  const seq::Sequence query(Alphabet::kProtein, "q",
                            {window.begin(), window.end()});

  BlastOptions one_hit;
  one_hit.two_hit = false;
  BlastEngine engine1(&store, &score::blosum62(), one_hit);
  engine1.build();
  BlastSearchStats stats1;
  const auto hits1 = engine1.search(query, &stats1);

  BlastOptions two_hit;
  two_hit.two_hit = true;
  BlastEngine engine2(&store, &score::blosum62(), two_hit);
  engine2.build();
  BlastSearchStats stats2;
  const auto hits2 = engine2.search(query, &stats2);

  EXPECT_LT(stats2.ungapped_extensions, stats1.ungapped_extensions);
  // The strong true positive must survive the two-hit filter.
  ASSERT_FALSE(hits2.empty());
  EXPECT_EQ(hits2.front().subject_id, donor.id());
}

TEST(BlastEngine, MaxHitsTruncates) {
  // Database of near-identical family members: a family query matches all.
  workload::DatabaseSpec spec;
  spec.families = 1;
  spec.members_per_family = 30;
  spec.background_sequences = 0;
  spec.min_length = 300;
  spec.max_length = 300;
  auto store = workload::generate_database(spec);
  BlastOptions options;
  options.max_hits = 5;
  BlastEngine engine(&store, &score::blosum62(), options);
  engine.build();
  const auto& donor = store.at(0);
  const auto window = donor.window(0, 200);
  const seq::Sequence query(Alphabet::kProtein, "q",
                            {window.begin(), window.end()});
  const auto hits = engine.search(query);
  EXPECT_EQ(hits.size(), 5u);
}

TEST(BlastEngine, SearchBeforeBuildThrows) {
  auto store = protein_store();
  BlastEngine engine(&store, &score::blosum62());
  Rng rng(3);
  const auto query =
      workload::random_sequence(Alphabet::kProtein, 100, "q", rng);
  EXPECT_THROW(engine.search(query), InvalidArgument);
}

TEST(BlastEngine, QueryShorterThanWordIsEmpty) {
  auto store = protein_store();
  BlastEngine engine(&store, &score::blosum62());
  engine.build();
  const auto query =
      seq::Sequence::from_string(Alphabet::kProtein, "tiny", "MK");
  EXPECT_TRUE(engine.search(query).empty());
}

}  // namespace
}  // namespace mendel::blast
