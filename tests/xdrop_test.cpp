// Tests for the X-drop gapped extension (src/align/xdrop.*), pinned against
// full Smith–Waterman as the oracle.
#include <gtest/gtest.h>

#include "src/align/smith_waterman.h"
#include "src/align/xdrop.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/workload/generator.h"

namespace mendel::align {
namespace {

using seq::Alphabet;

std::vector<seq::Code> dna(const std::string& s) {
  return seq::encode_string(Alphabet::kDna, s);
}

TEST(XDrop, IdenticalSequencesFullScore) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("ACGTACGTACGT");
  const auto hsp = xdrop_gapped_extend(q, q, 6, 6, m, {5, 2});
  EXPECT_EQ(hsp.score, 24);
  EXPECT_EQ(hsp.q_begin, 0u);
  EXPECT_EQ(hsp.q_end, q.size());
  EXPECT_EQ(hsp.s_begin, 0u);
  EXPECT_EQ(hsp.s_end, q.size());
}

TEST(XDrop, AnchorPairAlwaysIncluded) {
  const auto m = score::dna_matrix(2, -3);
  // The anchor pair itself mismatches: the extension still reports an
  // alignment through it (possibly just the anchor with negative score).
  const auto q = dna("AAAA");
  const auto s = dna("CCCC");
  const auto hsp = xdrop_gapped_extend(q, s, 1, 1, m, {5, 2});
  EXPECT_EQ(hsp.q_begin, 1u);
  EXPECT_EQ(hsp.q_end, 2u);
  EXPECT_EQ(hsp.score, -3);
}

TEST(XDrop, CrossesSingleGap) {
  const auto m = score::dna_matrix(2, -3);
  const auto q = dna("ACGTACGTACGT");
  const auto s = dna("ACGTAGTACGT");  // one deletion
  const auto hsp = xdrop_gapped_extend(q, s, 0, 0, m, {5, 2});
  const auto sw = smith_waterman(q, s, m, {5, 2});
  EXPECT_EQ(hsp.score, sw.hsp.score);
}

TEST(XDrop, RejectsBadAnchors) {
  const auto m = score::dna_matrix();
  const auto q = dna("ACGT");
  EXPECT_THROW(xdrop_gapped_extend(q, q, 4, 0, m, {5, 2}), InvalidArgument);
  EXPECT_THROW(xdrop_gapped_extend(q, q, 0, 0, m, {5, 2}, {0}),
               InvalidArgument);
}

// Property: with an anchor inside the true alignment and a generous X, the
// X-drop score matches full Smith–Waterman on homologous pairs; with any X
// it never exceeds it.
class XDropOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XDropOracleTest, MatchesSmithWatermanThroughTrueAnchor) {
  Rng rng(GetParam());
  const auto& m = score::blosum62();
  const auto base =
      workload::random_sequence(Alphabet::kProtein, 150, "b", rng);
  const auto mutated = workload::mutate(base, {0.12, 0.02, 0.4}, "m", rng);
  const auto sw =
      smith_waterman(base.codes(), mutated.codes(), m, m.default_gaps());
  if (sw.hsp.score == 0) GTEST_SKIP() << "no alignment for this seed";

  // Find an anchor: an identical residue pair inside the SW alignment by
  // scanning the middle diagonal region.
  std::size_t q0 = sw.hsp.q_begin, s0 = sw.hsp.s_begin;
  bool found = false;
  for (std::size_t d = 0; d < std::min(sw.hsp.q_len(), sw.hsp.s_len());
       ++d) {
    if (base.codes()[sw.hsp.q_begin + d] ==
        mutated.codes()[sw.hsp.s_begin + d]) {
      q0 = sw.hsp.q_begin + d;
      s0 = sw.hsp.s_begin + d;
      found = true;
      break;
    }
  }
  if (!found) GTEST_SKIP() << "no on-diagonal identity anchor";

  const auto generous = xdrop_gapped_extend(
      base.codes(), mutated.codes(), q0, s0, m, m.default_gaps(), {1000});
  EXPECT_GE(generous.score, sw.hsp.score * 9 / 10)
      << "x-drop through an in-alignment anchor should recover ~the SW "
         "score";
  EXPECT_LE(generous.score, sw.hsp.score);

  for (int x : {10, 30, 60}) {
    const auto bounded = xdrop_gapped_extend(
        base.codes(), mutated.codes(), q0, s0, m, m.default_gaps(), {x});
    EXPECT_LE(bounded.score, sw.hsp.score) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, XDropOracleTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(XDrop, ExploredRegionShrinksWithX) {
  // Indirect cost check: tiny X must stop early on a diverged pair, giving
  // a shorter span than a generous X.
  Rng rng(99);
  const auto base =
      workload::random_sequence(Alphabet::kProtein, 400, "b", rng);
  const auto mutated = workload::mutate_to_similarity(base, 0.55, "m", rng);
  const auto& m = score::blosum62();
  const auto tight = xdrop_gapped_extend(base.codes(), mutated.codes(), 200,
                                         200, m, m.default_gaps(), {5});
  const auto loose = xdrop_gapped_extend(base.codes(), mutated.codes(), 200,
                                         200, m, m.default_gaps(), {200});
  EXPECT_LE(tight.q_len(), loose.q_len());
  EXPECT_LE(tight.score, loose.score);
}

}  // namespace
}  // namespace mendel::align
