// Unit tests for src/net: the discrete-event SimTransport (virtual time,
// parallel makespan semantics, failure injection) and the thread-backed
// ThreadTransport (real concurrency, quiescence drain).
#include <gtest/gtest.h>

#include <atomic>

#include "src/common/error.h"
#include "src/net/sim_transport.h"
#include "src/net/thread_transport.h"

namespace mendel::net {
namespace {

Message make(NodeId from, NodeId to, std::uint32_t type,
             std::uint64_t request_id = 0,
             std::vector<std::uint8_t> payload = {}) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.request_id = request_id;
  m.payload = std::move(payload);
  return m;
}

// Deterministic cost model for timing assertions.
CostModel fixed_cost() {
  CostModel cost;
  cost.latency = 1e-3;        // 1 ms links
  cost.bandwidth = 1e12;      // negligible transfer time
  cost.proc_overhead = 1e-4;  // 0.1 ms per message
  cost.measured_cpu = false;
  return cost;
}

// ---------- SimTransport ----------

TEST(SimTransport, DeliversToRegisteredActor) {
  SimTransport transport(fixed_cost());
  int received = 0;
  FunctionActor actor([&](const Message& m, Context&) {
    EXPECT_EQ(m.type, 7u);
    ++received;
  });
  transport.register_actor(1, &actor);
  transport.send(make(0xff, 1, 7));
  transport.run_until_idle();
  EXPECT_EQ(received, 1);
}

TEST(SimTransport, UnknownDestinationThrows) {
  SimTransport transport;
  EXPECT_THROW(transport.send(make(0, 99, 1)), ProtocolError);
}

TEST(SimTransport, DuplicateRegistrationThrows) {
  SimTransport transport;
  FunctionActor actor([](const Message&, Context&) {});
  transport.register_actor(1, &actor);
  EXPECT_THROW(transport.register_actor(1, &actor), InvalidArgument);
}

TEST(SimTransport, RequestReplyRoundTrip) {
  SimTransport transport(fixed_cost());
  FunctionActor server([](const Message& m, Context& ctx) {
    ctx.send(m.from, m.type + 1, m.request_id, {});
  });
  std::uint64_t reply_request = 0;
  FunctionActor client([&](const Message& m, Context&) {
    reply_request = m.request_id;
    EXPECT_EQ(m.type, 11u);
  });
  transport.register_actor(1, &server);
  transport.register_actor(2, &client);
  transport.send(make(2, 1, 10, 42));
  transport.run_until_idle();
  EXPECT_EQ(reply_request, 42u);
}

TEST(SimTransport, VirtualTimeAccumulatesLatencyAndProcessing) {
  SimTransport transport(fixed_cost());
  double arrival = -1;
  FunctionActor server([](const Message& m, Context& ctx) {
    ctx.send(m.from, 2, m.request_id, {});
  });
  FunctionActor client([&](const Message&, Context& ctx) {
    arrival = ctx.now();
  });
  transport.register_actor(1, &server);
  transport.register_actor(2, &client);
  transport.send(make(2, 1, 1));
  transport.run_until_idle();
  // Path: latency (1ms) -> processing (0.1ms) -> latency (1ms); arrival at
  // the client is ~2.1 ms (plus negligible transfer bytes).
  EXPECT_NEAR(arrival, 2.1e-3, 2e-4);
}

TEST(SimTransport, FanOutProcessesInParallelAcrossNodes) {
  // One coordinator fans out to N workers; each worker charges
  // proc_overhead. Under virtual time the workers run concurrently, so the
  // fan-in completes in ~(2 * latency + 1 * processing), NOT N * processing.
  CostModel cost = fixed_cost();
  cost.proc_overhead = 10e-3;  // make per-node processing dominant
  SimTransport transport(cost);

  const int workers = 10;
  FunctionActor worker([](const Message& m, Context& ctx) {
    ctx.send(0, 2, m.request_id, {});
  });
  std::vector<std::unique_ptr<FunctionActor>> workers_alive;
  int replies = 0;
  double done_at = -1;
  FunctionActor coordinator([&](const Message& m, Context& ctx) {
    if (m.type == 1) {
      for (int w = 1; w <= workers; ++w) {
        ctx.send(static_cast<NodeId>(w), 1, m.request_id, {});
      }
      return;
    }
    if (++replies == workers) done_at = ctx.now();
  });
  transport.register_actor(0, &coordinator);
  for (int w = 1; w <= workers; ++w) {
    workers_alive.push_back(std::make_unique<FunctionActor>(
        [](const Message& m, Context& ctx) {
          ctx.send(0, 2, m.request_id, {});
        }));
    transport.register_actor(static_cast<NodeId>(w),
                             workers_alive.back().get());
  }
  transport.send(make(0xff, 0, 1));
  transport.run_until_idle();

  ASSERT_EQ(replies, workers);
  // Serial execution would need ~workers * 10 ms = 100 ms; parallel
  // virtual time needs ~10 ms (one worker's processing) + overheads. The
  // coordinator then processes 10 replies serially (10 * 10 ms) — so use
  // the *workers'* completion: done_at is when the last reply was handled.
  // Bound loosely: must be far below the fully serial 10*10ms fan-out plus
  // 10*10ms fan-in = 200 ms.
  EXPECT_LT(done_at, 150e-3);
  // And the per-node clocks show each worker only did ~1 unit of work.
  for (int w = 1; w <= workers; ++w) {
    EXPECT_LT(transport.node_clock(static_cast<NodeId>(w)), 25e-3);
  }
}

TEST(SimTransport, SerialWorkOnOneNodeQueues) {
  CostModel cost = fixed_cost();
  cost.proc_overhead = 5e-3;
  SimTransport transport(cost);
  int handled = 0;
  FunctionActor server([&](const Message&, Context&) { ++handled; });
  transport.register_actor(1, &server);
  for (int i = 0; i < 10; ++i) transport.send(make(0xff, 1, 1));
  transport.run_until_idle();
  EXPECT_EQ(handled, 10);
  // All ten messages arrive ~simultaneously but the node processes them
  // back to back: clock ~= latency + 10 * 5ms.
  EXPECT_NEAR(transport.node_clock(1), 1e-3 + 10 * 5e-3, 2e-3);
}

TEST(SimTransport, StatsCountMessagesAndBytes) {
  SimTransport transport(fixed_cost());
  FunctionActor sink([](const Message&, Context&) {});
  transport.register_actor(1, &sink);
  transport.send(make(0xff, 1, 1, 0, std::vector<std::uint8_t>(100)));
  transport.send(make(0xff, 1, 1, 0, std::vector<std::uint8_t>(50)));
  transport.run_until_idle();
  EXPECT_EQ(transport.stats().messages, 2u);
  EXPECT_EQ(transport.stats().bytes, 2 * 24 + 150u);
}

TEST(SimTransport, FailedNodeDropsMessages) {
  SimTransport transport(fixed_cost());
  int received = 0;
  FunctionActor sink([&](const Message&, Context&) { ++received; });
  transport.register_actor(1, &sink);
  transport.fail_node(1);
  transport.send(make(0xff, 1, 1));
  transport.run_until_idle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(transport.dropped_messages(), 1u);
  transport.heal_node(1);
  transport.send(make(0xff, 1, 1));
  transport.run_until_idle();
  EXPECT_EQ(received, 1);
}

TEST(SimTransport, ExternalTimeAdvancesBetweenInjections) {
  SimTransport transport(fixed_cost());
  double second_arrival = -1;
  FunctionActor sink([&](const Message& m, Context& ctx) {
    if (m.request_id == 2) second_arrival = ctx.now();
  });
  transport.register_actor(1, &sink);
  transport.send(make(0xff, 1, 1, 1));
  const double horizon = transport.run_until_idle();
  transport.set_external_time(horizon);
  transport.send(make(0xff, 1, 1, 2));
  transport.run_until_idle();
  EXPECT_GE(second_arrival, horizon);
}

TEST(SimTransport, MeasuredCpuChargesHandlerTime) {
  CostModel cost;
  cost.latency = 0;
  cost.bandwidth = 1e15;
  cost.proc_overhead = 0;
  cost.measured_cpu = true;
  SimTransport transport(cost);
  FunctionActor burner([](const Message&, Context&) {
    // Busy-work the handler so measured CPU is clearly > 0.
    volatile double x = 0;
    for (int i = 0; i < 2000000; ++i) x = x + i * 0.5;
  });
  transport.register_actor(1, &burner);
  transport.send(make(0xff, 1, 1));
  const double horizon = transport.run_until_idle();
  EXPECT_GT(horizon, 0.0);
  EXPECT_GT(transport.total_cpu_seconds(), 0.0);
  EXPECT_NEAR(transport.node_clock(1), transport.total_cpu_seconds(), 1e-6);
}

// ---------- ThreadTransport ----------

TEST(ThreadTransport, EchoAcrossThreads) {
  ThreadTransport transport;
  FunctionActor server([](const Message& m, Context& ctx) {
    ctx.send(m.from, m.type + 1, m.request_id, m.payload);
  });
  std::atomic<int> replies{0};
  FunctionActor client([&](const Message& m, Context&) {
    EXPECT_EQ(m.type, 6u);
    ++replies;
  });
  transport.register_actor(1, &server);
  transport.register_actor(2, &client);
  transport.start();
  for (int i = 0; i < 20; ++i) transport.send(make(2, 1, 5, i));
  transport.drain_and_stop();
  EXPECT_EQ(replies.load(), 20);
}

TEST(ThreadTransport, CascadeDrainsCompletely) {
  // A chain of forwards: 0 -> 1 -> 2 -> 3; drain must wait for the whole
  // cascade, not just the first hop.
  ThreadTransport transport;
  std::atomic<int> terminal{0};
  FunctionActor hop0([](const Message& m, Context& ctx) {
    ctx.send(1, m.type, m.request_id, {});
  });
  FunctionActor hop1([](const Message& m, Context& ctx) {
    ctx.send(2, m.type, m.request_id, {});
  });
  FunctionActor hop2([&](const Message&, Context&) { ++terminal; });
  transport.register_actor(0, &hop0);
  transport.register_actor(1, &hop1);
  transport.register_actor(2, &hop2);
  transport.start();
  for (int i = 0; i < 50; ++i) transport.send(make(0xff, 0, 1));
  transport.drain_and_stop();
  EXPECT_EQ(terminal.load(), 50);
}

TEST(ThreadTransport, UnknownDestinationThrows) {
  ThreadTransport transport;
  EXPECT_THROW(transport.send(make(0, 4, 1)), ProtocolError);
}

TEST(ThreadTransport, RegisterAfterStartThrows) {
  ThreadTransport transport;
  FunctionActor actor([](const Message&, Context&) {});
  transport.register_actor(0, &actor);
  transport.start();
  FunctionActor late([](const Message&, Context&) {});
  EXPECT_THROW(transport.register_actor(1, &late), InvalidArgument);
  transport.drain_and_stop();
}

TEST(ThreadTransport, ThrowingHandlerRecordsErrorAndStillDrains) {
  // A handler that throws must not wedge the in-flight accounting: the
  // worker records the error, keeps serving its mailbox, and the drain
  // barrier still completes (a wedged counter would deadlock here).
  ThreadTransport transport;
  std::atomic<int> survived{0};
  FunctionActor flaky([&](const Message& m, Context&) {
    if (m.request_id % 2 == 0) throw std::runtime_error("boom");
    ++survived;
  });
  transport.register_actor(3, &flaky);
  transport.start();
  for (int i = 0; i < 10; ++i) transport.send(make(0xff, 3, 1, i));
  transport.drain_and_stop();

  EXPECT_EQ(survived.load(), 5);
  const auto errors = transport.handler_errors();
  ASSERT_EQ(errors.size(), 5u);
  EXPECT_NE(errors[0].find("node 3"), std::string::npos);
  EXPECT_NE(errors[0].find("boom"), std::string::npos);
  EXPECT_TRUE(transport.idle());
}

TEST(ThreadTransport, FailedNodeDropsMessagesUntilHealed) {
  ThreadTransport transport;
  std::atomic<int> received{0};
  FunctionActor sink([&](const Message&, Context&) { ++received; });
  transport.register_actor(1, &sink);
  transport.start();

  EXPECT_FALSE(transport.node_down(1));
  transport.fail_node(1);
  EXPECT_TRUE(transport.node_down(1));
  for (int i = 0; i < 4; ++i) transport.send(make(0xff, 1, 1));
  transport.wait_idle();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(transport.dropped_messages(), 4u);
  // Drops still count as traffic the sender paid for.
  EXPECT_EQ(transport.stats().messages, 4u);

  transport.heal_node(1);
  EXPECT_FALSE(transport.node_down(1));
  transport.send(make(0xff, 1, 1));
  transport.drain_and_stop();
  EXPECT_EQ(received.load(), 1);
  EXPECT_EQ(transport.dropped_messages(), 4u);
}

TEST(ThreadTransport, StatsAreThreadSafe) {
  ThreadTransport transport;
  FunctionActor ping([](const Message& m, Context& ctx) {
    if (m.request_id > 0) ctx.send(1, 1, m.request_id - 1, {});
  });
  FunctionActor pong([](const Message& m, Context& ctx) {
    if (m.request_id > 0) ctx.send(0, 1, m.request_id - 1, {});
  });
  transport.register_actor(0, &ping);
  transport.register_actor(1, &pong);
  transport.start();
  transport.send(make(0xff, 0, 1, 100));  // 100-hop ping-pong
  transport.drain_and_stop();
  EXPECT_EQ(transport.stats().messages, 101u);
}

}  // namespace
}  // namespace mendel::net
