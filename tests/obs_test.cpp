// Observability subsystem tests: metrics registry primitives, export
// round-trips, per-query distributed tracing (determinism under the
// simulator, stage coverage under both transports), exact per-query
// traffic attribution, and metrics consistency under concurrent batches
// (the TSan CI job runs this binary).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/error.h"
#include "src/mendel/client.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workload/generator.h"

namespace mendel {
namespace {

// ---------- registry primitives ----------

TEST(Metrics, CounterSumsAcrossShards) {
  obs::Counter counter;
  counter.add(3);
  counter.add_shard(0, 2);
  counter.add_shard(7, 5);
  counter.add_shard(7 + obs::Counter::kShards, 1);  // wraps onto shard 7
  EXPECT_EQ(counter.value(), 11u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::Gauge gauge;
  gauge.set(10);
  gauge.add(-4);
  EXPECT_EQ(gauge.value(), 6);
}

TEST(Metrics, HistogramBinsAndPercentiles) {
  obs::LatencyHistogram h;
  h.record_ns(0);
  h.record_ns(1);     // bin 1: [1, 2)
  h.record_ns(1000);  // bin 10: [512, 1024)
  h.record_seconds(1e-6);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 0u + 1u + 1000u + 1000u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(10), 2u);
}

TEST(Metrics, RegistryHandlesAreStableAndShared) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x.events");
  obs::Counter& b = registry.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("x.events"), 5u);
  EXPECT_EQ(snap.counter("never.registered"), 0u);
}

// ---------- export round-trip ----------

TEST(Metrics, JsonExportRoundTrips) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(42);
  registry.gauge("b.depth").set(-7);
  registry.histogram("c.latency_seconds").record_ns(900);
  const auto snap = registry.snapshot();

  const obs::Json doc = obs::Json::parse(snap.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("counters")->find("a.count")->number(), 42.0);
  EXPECT_EQ(doc.find("gauges")->find("b.depth")->number(), -7.0);
  const obs::Json* histogram =
      doc.find("histograms")->find("c.latency_seconds");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->find("count")->number(), 1.0);
  EXPECT_EQ(histogram->find("sum_ns")->number(), 900.0);
  ASSERT_EQ(histogram->find("bins")->array().size(), 1u);
}

// ---------- adversarial JSON input ----------
// The parser reads external text (metrics exports round-tripped through
// files, schema documents); malformed input must raise ParseError, never
// crash or accept garbage. These pin the hardening the json_fuzz harness
// enforces over arbitrary bytes.

TEST(Json, DeeplyNestedDocumentIsRejectedNotStackOverflow) {
  const std::string deep(100000, '[');
  EXPECT_THROW(obs::Json::parse(deep), ParseError);
  // A balanced but too-deep document fails the same way.
  std::string balanced(1000, '[');
  balanced += std::string(1000, ']');
  EXPECT_THROW(obs::Json::parse(balanced), ParseError);
  // Realistic nesting stays well inside the limit.
  EXPECT_NO_THROW(obs::Json::parse("[[[[[[[[[[1]]]]]]]]]]"));
}

TEST(Json, TruncatedUnicodeEscapeIsRejected) {
  EXPECT_THROW(obs::Json::parse(R"("\u00)"), ParseError);
  EXPECT_THROW(obs::Json::parse(R"("\u")"), ParseError);
  EXPECT_THROW(obs::Json::parse(R"("\uZZZZ")"), ParseError);
  EXPECT_EQ(obs::Json::parse(R"("A")").str(), "A");
}

TEST(Json, NonFiniteNumbersAreRejected) {
  EXPECT_THROW(obs::Json::parse("1e999"), ParseError);
  EXPECT_THROW(obs::Json::parse("-1e999"), ParseError);
  EXPECT_THROW(obs::Json::parse("inf"), ParseError);
  EXPECT_THROW(obs::Json::parse("nan"), ParseError);
  EXPECT_DOUBLE_EQ(obs::Json::parse("1.7976931348623157e308").number(),
                   1.7976931348623157e308);
}

TEST(Json, MalformedDocumentsRaiseStructuredErrors) {
  for (const char* bad :
       {"", "{", "[1,", "\"abc", "{\"a\":}", "truex", "01x", "[1 2]",
        "{\"a\" 1}", "\xff\xfe"}) {
    EXPECT_THROW(obs::Json::parse(bad), ParseError) << bad;
  }
}

TEST(Metrics, PrometheusExportNamesAndTypes) {
  obs::MetricsRegistry registry;
  registry.counter("net.messages").add(5);
  registry.histogram("node.search_seconds").record_ns(1000);
  const auto text = registry.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE net_messages counter"), std::string::npos);
  EXPECT_NE(text.find("net_messages 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE node_search_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("node_search_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

// ---------- span buffer ----------

TEST(Trace, SpanBufferBoundsAndDrainsByQuery) {
  obs::SpanBuffer buffer(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::SpanRecord span;
    span.name = "s";
    span.query_id = i % 2;
    span.span_id = buffer.next_span_id(9);
    buffer.add(std::move(span));
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  const auto q0 = buffer.take(0);
  for (const auto& span : q0) EXPECT_EQ(span.query_id, 0u);
  EXPECT_EQ(buffer.size(), 3u - q0.size());
  // Span ids embed the node id in the high word.
  EXPECT_EQ(q0.at(0).span_id >> 32, 9u);
}

// ---------- cluster fixtures ----------

workload::DatabaseSpec obs_spec() {
  workload::DatabaseSpec spec;
  spec.families = 4;
  spec.members_per_family = 3;
  spec.background_sequences = 8;
  spec.min_length = 150;
  spec.max_length = 300;
  spec.seed = 77;
  return spec;
}

core::ClientOptions obs_options(core::TransportMode mode) {
  core::ClientOptions options;
  options.topology.num_groups = 3;
  options.topology.nodes_per_group = 2;
  options.indexing.window_length = 8;
  options.indexing.sample_size = 256;
  options.prefix_tree.cutoff_depth = 4;
  // Fixed handler charge: virtual timestamps are then bit-exact across
  // runs, which the byte-stability test below relies on.
  options.cost.measured_cpu = false;
  options.runtime.transport_mode = mode;
  options.runtime.enable_tracing = true;
  return options;
}

seq::Sequence probe_of(const seq::SequenceStore& store, std::size_t donor) {
  const auto window = store.at(donor).window(5, 110);
  return seq::Sequence(store.alphabet(), "probe",
                       std::vector<seq::Code>{window.begin(), window.end()});
}

// Every stage of the paper's query dataflow, client admit through reply.
const char* const kPipelineStages[] = {
    "client.submit", "coord.route",  "group.broadcast", "node.search",
    "group.merge",   "node.fetch",   "group.extend",    "coord.fanin",
    "coord.finish",  "client.reply",
};

obs::QueryTrace traced_query(core::Client& client, const seq::Sequence& query) {
  const auto ticket = client.submit(query);
  const auto outcome = client.wait(ticket);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.hits.empty());
  return client.collect_trace(ticket.id);
}

// ---------- tracing ----------

TEST(Trace, TimelineIsByteStableUnderSim) {
  const auto store = workload::generate_database(obs_spec());
  const auto query = probe_of(store, 2);

  std::string first;
  for (int run = 0; run < 2; ++run) {
    core::Client client(obs_options(core::TransportMode::kSim));
    client.index(store);
    const auto trace = traced_query(client, query);
    for (const char* stage : kPipelineStages) {
      EXPECT_TRUE(trace.has_span(stage)) << "missing span " << stage;
    }
    const std::string formatted = trace.format();
    if (run == 0) {
      first = formatted;
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(first, formatted)
          << "identical sim runs must produce identical timelines";
    }
  }
}

TEST(Trace, CoversEveryStageUnderThreads) {
  const auto store = workload::generate_database(obs_spec());
  auto options = obs_options(core::TransportMode::kThreaded);
  options.runtime.search_threads = 2;
  core::Client client(options);
  client.index(store);
  const auto trace = traced_query(client, probe_of(store, 2));
  for (const char* stage : kPipelineStages) {
    EXPECT_TRUE(trace.has_span(stage)) << "missing span " << stage;
  }
  // Under wall-clock time the searcher spans carry measured durations.
  EXPECT_EQ(trace.to_json().find("\"spans\": []"), std::string::npos);
}

TEST(Trace, CollectedSpansAreRemovedFromNodeBuffers) {
  const auto store = workload::generate_database(obs_spec());
  core::Client client(obs_options(core::TransportMode::kSim));
  client.index(store);
  const auto trace = traced_query(client, probe_of(store, 2));
  EXPECT_GT(trace.spans.size(), 0u);
  // A second collection finds nothing: buffers were drained.
  const auto again = client.collect_trace(trace.query_id);
  EXPECT_TRUE(again.spans.empty());
  EXPECT_EQ(client.metrics().gauge("trace.spans_buffered"), 0);
}

TEST(Trace, DisabledTracingRecordsNothing) {
  const auto store = workload::generate_database(obs_spec());
  auto options = obs_options(core::TransportMode::kSim);
  options.runtime.enable_tracing = false;
  core::Client client(options);
  client.index(store);
  const auto ticket = client.submit(probe_of(store, 2));
  EXPECT_TRUE(client.wait(ticket).completed);
  EXPECT_TRUE(client.collect_trace(ticket.id).spans.empty());
  EXPECT_EQ(client.metrics().gauge("trace.spans_buffered"), 0);
}

// ---------- exact per-query traffic ----------

TEST(Traffic, PerQueryAttributionIsExactUnderConcurrency) {
  const auto store = workload::generate_database(obs_spec());
  const auto query = probe_of(store, 2);

  // Baseline: the query alone.
  core::Client solo(obs_options(core::TransportMode::kSim));
  solo.index(store);
  const auto solo_outcome = solo.query(query);
  ASSERT_GT(solo_outcome.traffic.messages, 0u);

  // Same query admitted first in a concurrent batch: its attributed traffic
  // must be identical — overlapping queries' messages no longer bleed in.
  core::Client busy(obs_options(core::TransportMode::kSim));
  busy.index(store);
  const auto outcomes = busy.query_batch(
      {query, probe_of(store, 5), probe_of(store, 9)});
  EXPECT_EQ(outcomes[0].traffic.messages, solo_outcome.traffic.messages);
  EXPECT_EQ(outcomes[0].traffic.bytes, solo_outcome.traffic.bytes);
  // Each concurrent query got a non-empty, per-query count.
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.completed);
    EXPECT_GT(outcome.traffic.messages, 0u);
    EXPECT_LT(outcome.traffic.messages, busy.metrics().counter("net.messages"));
  }
}

// ---------- unified stats under concurrency ----------

TEST(Metrics, ConsistentUnderConcurrentBatch) {
  const auto store = workload::generate_database(obs_spec());
  auto options = obs_options(core::TransportMode::kThreaded);
  options.runtime.search_threads = 2;
  core::Client client(options);
  client.index(store);

  std::vector<seq::Sequence> queries;
  for (std::size_t donor : {1u, 2u, 5u, 9u, 2u, 5u}) {
    queries.push_back(probe_of(store, donor));
  }
  const auto outcomes = client.query_batch(queries);
  for (const auto& outcome : outcomes) EXPECT_TRUE(outcome.completed);

  const auto snap = client.metrics();
  EXPECT_EQ(snap.counter("client.queries_submitted"), queries.size());
  EXPECT_EQ(snap.counter("client.queries_completed"), queries.size());
  EXPECT_EQ(snap.counter("client.queries_stalled"), 0u);
  const obs::HistogramValue* turnaround =
      snap.histogram("client.turnaround_seconds");
  ASSERT_NE(turnaround, nullptr);
  EXPECT_EQ(turnaround->count, queries.size());
  // The registry view agrees with the deprecated NodeCounters totals.
  const auto totals = client.total_counters();
  EXPECT_EQ(snap.counter("node.nn_searches"), totals.nn_searches);
  EXPECT_EQ(snap.counter("node.nn_cache_hits"), totals.nn_cache_hits);
  EXPECT_EQ(snap.counter("node.nn_cache_misses"), totals.nn_cache_misses);
  // Pipeline-stage histograms saw real work.
  EXPECT_GT(snap.histogram("node.handler_seconds")->count, 0u);
  EXPECT_GT(snap.histogram("node.search_seconds")->count, 0u);
  // Load gauges were published at index time.
  EXPECT_EQ(snap.gauge("cluster.nodes"), 6);

  // The full client-facing export parses back cleanly.
  const obs::Json doc = obs::Json::parse(snap.to_json());
  EXPECT_EQ(doc.find("counters")->find("client.queries_submitted")->number(),
            static_cast<double>(queries.size()));
}

TEST(Metrics, ExtensionPipelineCountersAndHistograms) {
  // Long homologous sequences plus short unrelated ones: a long query's
  // top hit is certain to outscore anything a short subject can offer, so
  // the coordinator's score-bounded pruning has bins to skip.
  workload::DatabaseSpec long_spec = obs_spec();
  long_spec.families = 2;
  long_spec.background_sequences = 0;
  long_spec.min_length = 350;
  long_spec.max_length = 420;
  workload::DatabaseSpec short_spec = obs_spec();
  short_spec.families = 3;
  short_spec.members_per_family = 2;
  short_spec.background_sequences = 6;
  short_spec.min_length = 40;
  short_spec.max_length = 60;
  short_spec.seed = 78;
  seq::SequenceStore store(seq::Alphabet::kProtein);
  for (const auto& s : workload::generate_database(long_spec)) store.add(s);
  for (const auto& s : workload::generate_database(short_spec)) store.add(s);

  auto options = obs_options(core::TransportMode::kThreaded);
  options.runtime.search_threads = 2;
  core::Client client(options);
  client.index(store);

  const auto window = store.at(1).window(5, 345);
  const seq::Sequence probe(store.alphabet(), "probe",
                            std::vector<seq::Code>{window.begin(),
                                                   window.end()});
  // Permissive trigger admits the short-subject bins; top-1 makes the
  // guaranteed-hit cutoff as sharp as possible.
  core::QueryParams params;
  params.gapped_trigger = 0.1;
  params.max_hits = 1;
  const auto outcome = client.query(probe, params);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.hits.empty());

  const auto snap = client.metrics();
  EXPECT_GT(snap.counter("fetch.ranges_coalesced"), 0u);
  EXPECT_GT(snap.counter("extend.anchors_pruned"), 0u);
  // The registry view agrees with the NodeCounters totals.
  const auto totals = client.total_counters();
  EXPECT_EQ(snap.counter("node.fetch_ranges_coalesced"),
            totals.fetch_ranges_coalesced);
  EXPECT_EQ(snap.counter("node.anchors_pruned"), totals.anchors_pruned);
  // Extension-phase histograms record wall time under the threaded
  // transport (virtual time runs extensions inline, unmeasured).
  const obs::HistogramValue* group_extend =
      snap.histogram("group.extend_seconds");
  ASSERT_NE(group_extend, nullptr);
  EXPECT_GT(group_extend->count, 0u);
  const obs::HistogramValue* coord_extend =
      snap.histogram("coord.extend_seconds");
  ASSERT_NE(coord_extend, nullptr);
  EXPECT_GT(coord_extend->count, 0u);
}

}  // namespace
}  // namespace mendel
