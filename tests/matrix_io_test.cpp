// Tests for the NCBI matrix-file loader and the runtime matrix registry
// (src/scoring/matrix_io.*).
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.h"
#include "src/scoring/matrix_io.h"

namespace mendel::score {
namespace {

using seq::Alphabet;

// A tiny but complete DNA matrix in NCBI text format.
constexpr const char* kDnaMatrixText = R"(# test matrix
   A  C  G  T  N
A  5 -4 -4 -4  0
C -4  5 -4 -4  0
G -4 -4  5 -4  0
T -4 -4 -4  5  0
N  0  0  0  0  0
)";

TEST(MatrixIo, ParsesDnaMatrix) {
  std::istringstream in(kDnaMatrixText);
  const auto m = parse_ncbi_matrix(in, "TEST-DNA", Alphabet::kDna, {4, 2});
  EXPECT_EQ(m.name(), "TEST-DNA");
  EXPECT_EQ(m.score(seq::kDnaA, seq::kDnaA), 5);
  EXPECT_EQ(m.score(seq::kDnaA, seq::kDnaC), -4);
  EXPECT_EQ(m.score(seq::kDnaN, seq::kDnaT), 0);
  EXPECT_TRUE(m.is_symmetric());
  EXPECT_EQ(m.default_gaps().open, 4);
}

TEST(MatrixIo, ParsesFullProteinMatrixRoundTrip) {
  // Render BLOSUM62 to text and parse it back: must be identical.
  std::ostringstream text;
  const std::string letters = "ARNDCQEGHILKMFPSTWYVBZX*";
  text << " ";
  for (char c : letters) text << "  " << c;
  text << "\n";
  for (char row : letters) {
    text << row;
    for (char col : letters) {
      text << "  "
           << blosum62().score(seq::encode(Alphabet::kProtein, row),
                               seq::encode(Alphabet::kProtein, col));
    }
    text << "\n";
  }
  std::istringstream in(text.str());
  const auto m = parse_ncbi_matrix(in, "B62-COPY", Alphabet::kProtein);
  for (seq::Code a = 0; a < 24; ++a) {
    for (seq::Code b = 0; b < 24; ++b) {
      ASSERT_EQ(m.score(a, b), blosum62().score(a, b))
          << int(a) << "," << int(b);
    }
  }
}

TEST(MatrixIo, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# header comment\n\n   A  C  G  T\n# mid comment\nA 1 -1 -1 -1\n"
      "C -1 1 -1 -1\nG -1 -1 1 -1\nT -1 -1 -1 1 # trailing\n");
  const auto m = parse_ncbi_matrix(in, "X", Alphabet::kDna);
  EXPECT_EQ(m.score(seq::kDnaT, seq::kDnaT), 1);
}

TEST(MatrixIo, RejectsBadColumnLetter) {
  std::istringstream in("   A  J!  G\nA 1 2 3\n");
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), ParseError);
}

TEST(MatrixIo, RejectsShortRow) {
  std::istringstream in("   A  C  G  T\nA 1 -1 -1\n");
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), ParseError);
}

TEST(MatrixIo, RejectsLongRow) {
  std::istringstream in("   A  C\nA 1 -1 7\nC -1 1 7\nG 0 0 0\nT 0 0\n");
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), ParseError);
}

TEST(MatrixIo, RejectsMissingCoreResidue) {
  std::istringstream in("   A  C  G\nA 1 -1 -1\nC -1 1 -1\nG -1 -1 1\n");
  // T is missing.
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), InvalidArgument);
}

TEST(MatrixIo, EmptyFileRejected) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), InvalidArgument);
}

// Adversarial-input regressions (mirrors the matrix_fasta fuzz harness
// contract): malformed text must raise a structured mendel error —
// ParseError or InvalidArgument — never crash or throw anything else.

TEST(MatrixIo, TruncatedFilePrefixesNeverCrash) {
  // Every byte-prefix of a valid matrix file either parses or raises a
  // structured error; nothing in between.
  const std::string full(kDnaMatrixText);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    try {
      (void)parse_ncbi_matrix(in, "TRUNC", Alphabet::kDna);
    } catch (const ParseError&) {
    } catch (const InvalidArgument&) {
    }  // anything else propagates and fails the test
  }
}

TEST(MatrixIo, TruncatedMidRowRejected) {
  // File ends mid-row: the T row stops after two of four scores.
  std::istringstream in("   A  C  G  T\nA 1 0 0 0\nC 0 1 0 0\nG 0 0 1 0\nT 0 0");
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), ParseError);
}

TEST(MatrixIo, OverlongRowRejected) {
  // A data row with thousands of extra scores must fail cleanly, not
  // accumulate unbounded state.
  std::string text = "   A  C  G  T\nA";
  for (int i = 0; i < 10000; ++i) text += " 1";
  text += "\n";
  std::istringstream in(text);
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), ParseError);
}

TEST(MatrixIo, OutOfAlphabetRowLetterRejected) {
  // 'J' is not a DNA residue; '?' is not a residue in any alphabet
  // (rare amino acids like 'O' fold to X, so they are NOT rejected).
  std::istringstream dna("   A  C  G  T\nJ 1 1 1 1\n");
  EXPECT_THROW(parse_ncbi_matrix(dna, "X", Alphabet::kDna), ParseError);
  std::istringstream protein("   A  R  N\n? 1 1 1\n");
  EXPECT_THROW(parse_ncbi_matrix(protein, "X", Alphabet::kProtein),
               ParseError);
}

TEST(MatrixIo, NonNumericScoreRejected) {
  std::istringstream in("   A  C  G  T\nA 1 banana 0 0\n");
  EXPECT_THROW(parse_ncbi_matrix(in, "X", Alphabet::kDna), ParseError);
}

TEST(MatrixIo, MissingFileThrowsIoError) {
  EXPECT_THROW(load_matrix_file("/nonexistent/matrix.txt", "X",
                                Alphabet::kDna),
               IoError);
}

TEST(MatrixIo, RegistryResolvesThroughMatrixByName) {
  std::istringstream in(kDnaMatrixText);
  auto m = parse_ncbi_matrix(in, "REGISTERED-DNA", Alphabet::kDna);
  register_matrix(std::move(m));
  const auto& resolved = matrix_by_name("REGISTERED-DNA");
  EXPECT_EQ(resolved.score(seq::kDnaG, seq::kDnaG), 5);
  EXPECT_NE(find_registered_matrix("REGISTERED-DNA"), nullptr);
  EXPECT_EQ(find_registered_matrix("NEVER-REGISTERED"), nullptr);
}

TEST(MatrixIo, BuiltinsCannotBeShadowed) {
  std::istringstream in(kDnaMatrixText);
  auto m = parse_ncbi_matrix(in, "BLOSUM62", Alphabet::kDna);
  EXPECT_THROW(register_matrix(std::move(m)), InvalidArgument);
}

TEST(MatrixIo, ReRegistrationReplaces) {
  {
    std::istringstream in(kDnaMatrixText);
    register_matrix(parse_ncbi_matrix(in, "REPLACEABLE", Alphabet::kDna));
  }
  std::istringstream in(
      "   A  C  G  T\nA 9 0 0 0\nC 0 9 0 0\nG 0 0 9 0\nT 0 0 0 9\n");
  register_matrix(parse_ncbi_matrix(in, "REPLACEABLE", Alphabet::kDna));
  EXPECT_EQ(matrix_by_name("REPLACEABLE").score(seq::kDnaA, seq::kDnaA), 9);
}

}  // namespace
}  // namespace mendel::score
